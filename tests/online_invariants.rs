//! Invariants of the online engine across methods and datasets:
//! shortcut-reduced trees never lose query variables, never raise costs,
//! and report coherent statistics.

use peanut::junction::{build_junction_tree, QueryEngine, RootedTree};
use peanut::materialize::{OfflineContext, OnlineEngine, Peanut, PeanutConfig, Variant, Workload};
use peanut::pgm::Scope;
use peanut::workload::{skewed_queries, QuerySpec};

fn methods_for(
    p: &peanut::datasets::DatasetSpec,
) -> (
    peanut::pgm::BayesianNetwork,
    peanut::junction::JunctionTree,
    Vec<(String, peanut::materialize::Materialization)>,
    Vec<Scope>,
) {
    let bn = p.build().unwrap();
    let tree = build_junction_tree(&bn).unwrap();
    let rooted = RootedTree::new(&tree);
    let train = skewed_queries(&tree, &rooted, 150, QuerySpec::default(), 31);
    let test = skewed_queries(&tree, &rooted, 60, QuerySpec::default(), 32);
    let budget = tree.total_separator_size().saturating_mul(100);
    let w = Workload::from_queries(train);
    let ctx = OfflineContext::new(&tree, &w).unwrap();
    let mut mats = Vec::new();
    for (name, variant) in [
        ("PEANUT", Variant::Peanut),
        ("PEANUT+", Variant::PeanutPlus),
    ] {
        let cfg = PeanutConfig {
            budget,
            epsilon: 1.2,
            threads: 2,
            variant,
        };
        mats.push((name.to_string(), Peanut::offline(&ctx, &cfg)));
    }
    let idx = peanut::indsep::build_index(&tree, &rooted, 1000, None).unwrap();
    mats.push(("INDSEP".to_string(), idx.materialization));
    (bn, tree, mats, test)
}

/// The reduced tree handed to message passing must still cover every query
/// variable with at least one node scope.
#[test]
fn reduced_trees_cover_query_variables() {
    for name in ["Child", "Hailfinder", "TPC-H", "Barley"] {
        let spec = peanut::datasets::dataset(name).unwrap();
        let (_bn, tree, mats, test) = methods_for(&spec);
        let engine = QueryEngine::symbolic(&tree);
        for (mname, mat) in &mats {
            let online = OnlineEngine::new(&engine, mat);
            for q in &test {
                if let Some(rt) = online.reduce(q).unwrap() {
                    for x in q.iter() {
                        let covered = rt.nodes().iter().any(|n| n.scope.contains(x));
                        assert!(covered, "{name}/{mname}: query var {x} lost");
                    }
                    // tree shape: exactly one root, parents consistent
                    let roots = (0..rt.len()).filter(|&i| rt.parent(i).is_none()).count();
                    assert_eq!(roots, 1, "{name}/{mname}: malformed reduced tree");
                }
            }
        }
    }
}

/// Shortcut counts reported in the query cost match the tree's bookkeeping
/// and shortcut usage only ever lowers the cost.
#[test]
fn shortcut_use_is_profitable_and_counted() {
    for name in ["Child", "TPC-H"] {
        let spec = peanut::datasets::dataset(name).unwrap();
        let (_bn, tree, mats, test) = methods_for(&spec);
        let engine = QueryEngine::symbolic(&tree);
        let mut any_used = false;
        for (mname, mat) in &mats {
            let online = OnlineEngine::new(&engine, mat);
            for q in &test {
                let base = online.baseline_cost(q).unwrap();
                let with = online.cost(q).unwrap();
                assert!(with.ops <= base.ops, "{name}/{mname}: cost rose");
                if with.shortcuts_used > 0 {
                    any_used = true;
                    assert!(
                        with.ops < base.ops,
                        "{name}/{mname}: shortcut counted but no strict gain"
                    );
                }
            }
        }
        assert!(any_used, "{name}: no method ever used a shortcut");
    }
}
