//! Integration tests of the conditional-query API (`P(targets | evidence)`)
//! through both the plain engine and the materialization-aware one.

use peanut::junction::{build_junction_tree, QueryEngine};
use peanut::materialize::{OfflineContext, OnlineEngine, Peanut, PeanutConfig, Workload};
use peanut::pgm::{fixtures, joint, Scope, Var};

/// Brute-force conditional: P(t | e) from the full joint.
fn oracle_conditional(
    bn: &peanut::pgm::BayesianNetwork,
    targets: &Scope,
    evidence: &[(Var, u32)],
) -> peanut::pgm::Potential {
    let ev_scope = Scope::from_iter(evidence.iter().map(|&(v, _)| v));
    let q = targets.union(&ev_scope);
    let mut joint = joint::marginal(bn, &q).unwrap();
    for &(v, val) in evidence {
        joint = joint.restrict(v, val).unwrap();
    }
    joint.normalize();
    joint
}

#[test]
fn conditionals_match_brute_force() {
    let bn = fixtures::figure1();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let d = bn.domain();
    type Case = (&'static [&'static str], &'static [(&'static str, u32)]);
    let cases: [Case; 4] = [
        (&["l"], &[("a", 1)]),
        (&["a", "d"], &[("l", 0)]),
        (&["f"], &[("b", 1), ("i", 0)]),
        (&["h"], &[("a", 0), ("l", 1)]),
    ];
    for (t_names, e_names) in cases {
        let targets = Scope::from_iter(t_names.iter().map(|n| d.var(n).unwrap()));
        let evidence: Vec<(Var, u32)> = e_names
            .iter()
            .map(|&(n, v)| (d.var(n).unwrap(), v))
            .collect();
        let (got, cost) = engine.conditional(&targets, &evidence).unwrap();
        let want = oracle_conditional(&bn, &targets, &evidence);
        assert!(
            got.max_abs_diff(&want).unwrap() < 1e-9,
            "conditional {t_names:?} | {e_names:?}"
        );
        assert!((got.sum() - 1.0).abs() < 1e-9, "normalized");
        assert!(cost.ops > 0);
    }
}

#[test]
fn conditionals_through_materialization() {
    let bn = fixtures::figure1();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let d = bn.domain();

    let q = Scope::from_iter([
        d.var("b").unwrap(),
        d.var("i").unwrap(),
        d.var("f").unwrap(),
    ]);
    let w = Workload::from_queries(vec![q; 10]);
    let ctx = OfflineContext::new(&tree, &w).unwrap();
    let (mat, _) = Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(64).with_epsilon(1.0),
        engine.numeric_state().unwrap(),
    )
    .unwrap();
    let online = OnlineEngine::new(&engine, &mat);

    let targets = Scope::from_iter([d.var("b").unwrap(), d.var("f").unwrap()]);
    let evidence = vec![(d.var("i").unwrap(), 1u32)];
    let (got, _) = online.conditional(&targets, &evidence).unwrap();
    let want = oracle_conditional(&bn, &targets, &evidence);
    assert!(got.max_abs_diff(&want).unwrap() < 1e-9);
}

/// Evidence variables that fall *inside* a materialized shortcut's scope:
/// the joint is answered over `targets ∪ vars(evidence)`, so the shortcut
/// must carry the evidence variables through the reduced tree and the
/// restriction must happen on the correct axes of the shortcut-produced
/// joint.
#[test]
fn evidence_inside_shortcut_scope() {
    use peanut::junction::{NumericState, RootedTree};
    use peanut::materialize::{MaterializedShortcut, Shortcut};

    let bn = fixtures::figure1();
    let mut tree = build_junction_tree(&bn).unwrap();
    let d = bn.domain().clone();
    // root at clique {b,c} so the {e,g,h} clique sits deep in the tree
    let bc = Scope::from_iter([d.var("b").unwrap(), d.var("c").unwrap()]);
    let pivot = tree.cliques().iter().position(|c| *c == bc).unwrap();
    tree.set_pivot(pivot);
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let rooted = RootedTree::new(&tree);
    let mut ns = NumericState::initialize(&tree, &bn).unwrap();
    ns.calibrate(&tree, &rooted).unwrap();

    // materialize the shortcut over the {e,g,h} clique: scope {e, g}
    let egh = tree
        .cliques()
        .iter()
        .position(|c| {
            c.len() == 3 && c.contains(d.var("g").unwrap()) && c.contains(d.var("h").unwrap())
        })
        .unwrap();
    let s = Shortcut::from_nodes(&tree, &rooted, vec![egh]).unwrap();
    let (pot, _) = s.materialize(&tree, &rooted, &ns).unwrap();
    let shortcut_scope = s.scope().clone();
    assert!(shortcut_scope.contains(d.var("g").unwrap()), "test premise");
    let mat = peanut::materialize::Materialization {
        shortcuts: vec![MaterializedShortcut {
            ratio: 1.0,
            benefit: 1.0,
            potential: Some(pot),
            shortcut: s,
        }],
        overlapping: false,
        epoch: 0,
    };
    let online = OnlineEngine::new(&engine, &mat);

    // evidence on g (inside the shortcut scope), targets far away: the
    // joint query {b, i, f, g} is the one the shortcut accelerates
    let g = d.var("g").unwrap();
    let e_var = d.var("e").unwrap();
    type EvidenceCase<'a> = (Vec<&'a str>, Vec<(Var, u32)>);
    let cases: Vec<EvidenceCase> = vec![
        (vec!["b", "f"], vec![(g, 1)]),
        (vec!["b", "i"], vec![(g, 0)]),
        (vec!["b", "f"], vec![(g, 1), (e_var, 0)]), // both evidence vars in scope
        (vec!["i"], vec![(e_var, 1)]),
    ];
    let mut shortcut_hit = false;
    for (t_names, evidence) in cases {
        let targets = Scope::from_iter(t_names.iter().map(|n| d.var(n).unwrap()));
        let (got, cost) = online.conditional(&targets, &evidence).unwrap();
        let want = oracle_conditional(&bn, &targets, &evidence);
        assert!(
            got.max_abs_diff(&want).unwrap() < 1e-9,
            "conditional {t_names:?} | {evidence:?} through in-scope-evidence shortcut"
        );
        assert!((got.sum() - 1.0).abs() < 1e-9);
        // plain-engine must agree too
        let (plain, _) = engine.conditional(&targets, &evidence).unwrap();
        assert!(got.max_abs_diff(&plain).unwrap() < 1e-9);
        shortcut_hit |= cost.shortcuts_used > 0;
    }
    assert!(
        shortcut_hit,
        "at least one case must actually route through the shortcut"
    );
}

#[test]
fn overlapping_targets_and_evidence_rejected() {
    let bn = fixtures::sprinkler();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let targets = Scope::from_indices(&[0, 1]);
    let evidence = vec![(Var(1), 0u32)];
    assert!(engine.conditional(&targets, &evidence).is_err());
}

#[test]
fn impossible_evidence_yields_zero_table() {
    // P(wet=1) = 0 given sprinkler=0, rain=0 in the sprinkler network has a
    // deterministic CPT row; conditioning on a zero-probability event
    // produces an all-zero (unnormalizable) table rather than NaNs.
    let bn = fixtures::sprinkler();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let d = bn.domain();
    let targets = Scope::singleton(d.var("cloudy").unwrap());
    let evidence = vec![
        (d.var("sprinkler").unwrap(), 0u32),
        (d.var("rain").unwrap(), 0u32),
        (d.var("wet").unwrap(), 1u32), // impossible: P(wet=1|s=0,r=0) = 0
    ];
    let (got, _) = engine.conditional(&targets, &evidence).unwrap();
    assert!(got.values().iter().all(|v| v.is_finite()));
    assert!(
        got.sum().abs() < 1e-12,
        "all-zero table for impossible evidence"
    );
}
