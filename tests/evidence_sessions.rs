//! Integration tests of stateful evidence sessions: differential checks
//! against the brute-force oracle, the per-query conditional API, and the
//! raw restricted engine, plus epoch-swap isolation for in-flight sessions.

use peanut::junction::{build_junction_tree, QueryEngine};
use peanut::materialize::Materialization;
use peanut::pgm::{fixtures, joint, Scope, Var};
use peanut::serving::{ServeOutcome, ServeRequest, ServingConfig, ServingEngine};

/// Brute-force conditional: P(t | e) from the full joint.
fn oracle_conditional(
    bn: &peanut::pgm::BayesianNetwork,
    targets: &Scope,
    evidence: &[(Var, u32)],
) -> peanut::pgm::Potential {
    let ev_scope = Scope::from_iter(evidence.iter().map(|&(v, _)| v));
    let q = targets.union(&ev_scope);
    let mut joint = joint::marginal(bn, &q).unwrap();
    for &(v, val) in evidence {
        joint = joint.restrict(v, val).unwrap();
    }
    joint.normalize();
    joint
}

fn targets_for(n_vars: u32, ev: &[(Var, u32)]) -> Vec<Scope> {
    let pinned = Scope::from_iter(ev.iter().map(|&(v, _)| v));
    [1u32, 3]
        .into_iter()
        .flat_map(|span| (0..n_vars - span).map(move |a| Scope::from_indices(&[a, a + span])))
        .filter(|t| t.intersect(&pinned).is_empty())
        .collect()
}

#[test]
fn session_answers_match_brute_force_oracle() {
    let bn = fixtures::figure1();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let serving = ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
    let d = bn.domain();
    let evidence = vec![(d.var("a").unwrap(), 1u32), (d.var("l").unwrap(), 0u32)];
    let session = serving.open_session(evidence.clone()).unwrap();

    let pinned = Scope::from_iter(evidence.iter().map(|&(v, _)| v));
    let targets: Vec<Scope> = ["b", "f", "h", "i"]
        .iter()
        .flat_map(|a| ["d", "e"].iter().map(move |b| (a, b)))
        .map(|(a, b)| Scope::from_iter([d.var(a).unwrap(), d.var(b).unwrap()]))
        .filter(|t| t.intersect(&pinned).is_empty())
        .collect();
    let (outcomes, _) = session.serve_batch(&targets);
    assert_eq!(outcomes.len(), targets.len());
    for (t, o) in targets.iter().zip(&outcomes) {
        let got = &o.served().expect("served").potential;
        let want = oracle_conditional(&bn, t, &evidence);
        assert!(
            got.max_abs_diff(&want).unwrap() < 1e-9,
            "session answer for {t} diverged from the joint oracle"
        );
        assert!((got.sum() - 1.0).abs() < 1e-9, "normalized");
    }
}

#[test]
fn session_bit_identical_to_direct_restricted_engine() {
    // the session is *defined* as answering on the evidence-restricted,
    // re-calibrated tree — so against that engine the answers must be
    // bit-identical, not merely close
    let bn = fixtures::chain(16, 2, 41);
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let evidence = vec![(Var(15), 1u32), (Var(0), 0u32)];
    let restricted = engine.restricted_to_evidence(&evidence).unwrap();

    let serving = ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
    let session = serving.open_session(evidence.clone()).unwrap();
    let targets = targets_for(16, &evidence);
    assert!(!targets.is_empty());
    let (outcomes, _) = session.serve_batch(&targets);
    for (t, o) in targets.iter().zip(&outcomes) {
        let got = &o.served().expect("served").potential;
        let (mut want, _) = restricted.answer(t).unwrap();
        want.normalize();
        assert_eq!(got.values().len(), want.values().len());
        for (x, y) in got.values().iter().zip(want.values()) {
            assert_eq!(x.to_bits(), y.to_bits(), "target {t}");
        }
    }
}

#[test]
fn session_agrees_with_per_query_conditional_api() {
    let bn = fixtures::chain(14, 3, 9);
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let serving = ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
    let evidence = vec![(Var(13), 2u32)];
    let session = serving.open_session(evidence.clone()).unwrap();
    let targets = targets_for(14, &evidence);
    let (session_answers, _) = session.serve_batch(&targets);

    let requests: Vec<ServeRequest> = targets
        .iter()
        .map(|t| ServeRequest::new(t.clone(), evidence.clone()))
        .collect();
    let (per_query, _) = serving.serve_batch(&requests);
    assert!(per_query.iter().all(ServeOutcome::is_served));
    for ((t, s), p) in targets.iter().zip(&session_answers).zip(&per_query) {
        let s = &s.served().expect("served").potential;
        let p = &p.served().expect("served").potential;
        assert!(
            s.max_abs_diff(p).unwrap() < 1e-9,
            "session and per-query conditional disagree on {t}"
        );
    }
}

#[test]
fn publish_mid_session_keeps_open_sessions_on_their_epoch() {
    let bn = fixtures::chain(12, 2, 5);
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let serving = ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
    let evidence = vec![(Var(11), 1u32)];
    let targets = targets_for(12, &evidence);

    let session = serving.open_session(evidence.clone()).unwrap();
    assert_eq!(session.epoch(), 0);
    let (before, _) = session.serve_batch(&targets);

    // hot-publish a new epoch while the session is open
    let epoch = serving.publish(Materialization::default());
    assert_eq!(epoch, 1);
    assert_eq!(serving.epoch(), 1);

    // the in-flight session stays pinned to its open-time epoch, and its
    // answers are bitwise unchanged by the swap
    assert_eq!(session.epoch(), 0);
    let (after, _) = session.serve_batch(&targets);
    for (b, a) in before.iter().zip(&after) {
        let (b, a) = (b.served().expect("served"), a.served().expect("served"));
        assert_eq!(b.epoch, 0);
        assert_eq!(a.epoch, 0, "published epoch must not leak into the session");
        for (x, y) in b.potential.values().iter().zip(a.potential.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    drop(session);

    // sessions opened after the swap serve the new epoch
    let fresh = serving.open_session(evidence).unwrap();
    assert_eq!(fresh.epoch(), 1);
    let out = fresh.serve_one(&targets[0]);
    assert_eq!(out.served().expect("served").epoch, 1);
}
