//! Reproducibility guarantees: the same dataset spec + seed must produce
//! byte-identical CPTs, and the same workload + budget must select the same
//! shortcuts, across independent runs. Protects the retuned dataset seeds
//! (PR 1) and the offline DP from hidden iteration-order nondeterminism.

use peanut::datasets::dataset;
use peanut::junction::{build_junction_tree, RootedTree};
use peanut::materialize::{OfflineContext, Peanut, PeanutConfig, Workload};
use peanut::workload::{skewed_queries, QuerySpec};

/// Every CPT entry, as raw bits (bitwise equality is stricter than `==`:
/// it also pins down signed zeros and would expose NaNs).
fn cpt_bits(bn: &peanut::pgm::BayesianNetwork) -> Vec<u64> {
    bn.cpts()
        .flat_map(|c| c.values().iter().map(|v| v.to_bits()))
        .collect()
}

#[test]
fn dataset_generation_is_byte_identical() {
    for name in ["Child", "HeparII", "Barley"] {
        let spec = dataset(name).expect("known dataset");
        let a = spec.build().expect("generates");
        let b = spec.build().expect("generates");
        assert_eq!(a.n_vars(), b.n_vars(), "{name}: structure drift");
        assert_eq!(
            a.edges().collect::<Vec<_>>(),
            b.edges().collect::<Vec<_>>(),
            "{name}: edge drift"
        );
        assert_eq!(cpt_bits(&a), cpt_bits(&b), "{name}: CPT bits drift");
    }
}

#[test]
fn peanut_selection_is_run_to_run_identical() {
    let spec = dataset("Child").expect("known dataset");
    let select = || {
        let bn = spec.build().expect("generates");
        let tree = build_junction_tree(&bn).expect("tree");
        let rooted = RootedTree::new(&tree);
        let queries = skewed_queries(&tree, &rooted, 150, QuerySpec::default(), 42);
        let w = Workload::from_queries(queries);
        let ctx = OfflineContext::new(&tree, &w).expect("context");
        let plus = Peanut::offline(&ctx, &PeanutConfig::plus(512).with_epsilon(1.2));
        let disjoint = Peanut::offline(&ctx, &PeanutConfig::disjoint(512).with_epsilon(1.2));
        let fingerprint = |m: &peanut::materialize::Materialization| -> Vec<(Vec<usize>, u64)> {
            m.shortcuts
                .iter()
                .map(|s| (s.shortcut.nodes().to_vec(), s.shortcut.size()))
                .collect()
        };
        (fingerprint(&plus), fingerprint(&disjoint))
    };
    let run1 = select();
    let run2 = select();
    assert_eq!(run1.0, run2.0, "PEANUT+ selection drift");
    assert_eq!(run1.1, run2.1, "PEANUT selection drift");
    assert!(!run1.0.is_empty(), "selection must be non-trivial");
}

/// The flat-arena calibration (one contiguous slab, lane kernels) must be
/// bit-for-bit the calibration the per-node `Vec` layout produced — on a
/// real retuned dataset, not just the unit fixtures. Anything less would
/// silently break every committed expectation downstream of clique
/// marginals.
#[test]
fn arena_calibration_is_bit_identical_to_legacy_layout() {
    use peanut::junction::calibrate::legacy_state::LegacyNumericState;
    use peanut::junction::NumericState;

    let spec = dataset("Child").expect("known dataset");
    let bn = spec.build().expect("generates");
    let tree = build_junction_tree(&bn).expect("tree");
    let rooted = RootedTree::new(&tree);
    let mut arena = NumericState::initialize(&tree, &bn).expect("arena init");
    let mut legacy = LegacyNumericState::initialize(&tree, &bn).expect("legacy init");
    arena.calibrate(&tree, &rooted).expect("arena calibration");
    legacy
        .calibrate(&tree, &rooted)
        .expect("legacy calibration");
    for u in 0..tree.n_cliques() {
        let new_vals = arena.clique_table(u).values();
        let old_vals = legacy.clique_potential(u).values();
        assert_eq!(new_vals.len(), old_vals.len(), "clique {u} length");
        for (i, (a, b)) in new_vals.iter().zip(old_vals).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "clique {u} entry {i}: arena {a:?} vs legacy {b:?}"
            );
        }
    }
    for e in 0..tree.edges().len() {
        let new_vals = arena.separator_table(e).values();
        let old_vals = legacy.separator_potential(e).values();
        assert_eq!(new_vals.len(), old_vals.len(), "separator {e} length");
        for (a, b) in new_vals.iter().zip(old_vals) {
            assert_eq!(a.to_bits(), b.to_bits(), "separator {e} drift");
        }
    }
}

#[test]
fn workload_sampling_is_seed_stable() {
    let spec = dataset("Child").expect("known dataset");
    let bn = spec.build().expect("generates");
    let tree = build_junction_tree(&bn).expect("tree");
    let rooted = RootedTree::new(&tree);
    let a = skewed_queries(&tree, &rooted, 100, QuerySpec::default(), 7);
    let b = skewed_queries(&tree, &rooted, 100, QuerySpec::default(), 7);
    assert_eq!(a, b);
}
