//! Integration tests spanning every crate: network generation → junction
//! tree → workload → offline materialization → online answering, for all
//! methods, in both numeric and symbolic modes.

use peanut::junction::{build_junction_tree, QueryEngine, RootedTree};
use peanut::materialize::{OfflineContext, OnlineEngine, Peanut, PeanutConfig, Variant, Workload};
use peanut::pgm::{fixtures, joint, Scope};
use peanut::workload::{skewed_queries, uniform_queries, QuerySpec};

/// Full numeric pipeline on the Figure-1 network: every method must return
/// the exact brute-force marginal for every pairwise query.
#[test]
fn all_methods_agree_with_brute_force() {
    let bn = fixtures::figure1();
    let tree = build_junction_tree(&bn).unwrap();
    let rooted = RootedTree::new(&tree);
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let ns = engine.numeric_state().unwrap();

    let train = skewed_queries(&tree, &rooted, 100, QuerySpec::default(), 5);
    let w = Workload::from_queries(train);
    let ctx = OfflineContext::new(&tree, &w).unwrap();

    // PEANUT and PEANUT+
    let (mat_plus, _) =
        Peanut::offline_numeric(&ctx, &PeanutConfig::plus(128).with_epsilon(1.0), ns).unwrap();
    let (mat_disj, _) =
        Peanut::offline_numeric(&ctx, &PeanutConfig::disjoint(128).with_epsilon(1.0), ns).unwrap();
    // INDSEP
    let idx = peanut::indsep::build_index(&tree, &rooted, 16, Some(ns)).unwrap();

    let n = bn.n_vars() as u32;
    for a in 0..n {
        for b in (a + 1)..n {
            let q = Scope::from_indices(&[a, b]);
            let want = joint::marginal(&bn, &q).unwrap();
            for mat in [&mat_plus, &mat_disj, &idx.materialization] {
                let online = OnlineEngine::new(&engine, mat);
                let (got, cost) = online.answer(&q).unwrap();
                assert!(
                    got.max_abs_diff(&want).unwrap() < 1e-9,
                    "answer drift for {{x{a},x{b}}}"
                );
                let base = online.baseline_cost(&q).unwrap();
                assert!(cost.ops <= base.ops, "materialization made query dearer");
            }
        }
    }
}

/// Symbolic pipeline on every synthetic dataset: costs are finite, shortcuts
/// never increase the cost, and budgets are respected.
#[test]
fn symbolic_pipeline_all_datasets() {
    for spec in peanut::datasets::all_datasets() {
        let bn = spec.build().unwrap();
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let train = skewed_queries(&tree, &rooted, 120, QuerySpec::default(), 3);
        let test = skewed_queries(&tree, &rooted, 40, QuerySpec::default(), 4);
        let budget = tree.total_separator_size().saturating_mul(10);
        let w = Workload::from_queries(train);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        for variant in [Variant::Peanut, Variant::PeanutPlus] {
            let cfg = PeanutConfig {
                budget,
                epsilon: 6.0,
                threads: 2,
                variant,
            };
            let mat = Peanut::offline(&ctx, &cfg);
            assert!(
                mat.total_size() <= budget,
                "{}: budget exceeded ({} > {budget})",
                spec.name,
                mat.total_size()
            );
            let engine = QueryEngine::symbolic(&tree);
            let online = OnlineEngine::new(&engine, &mat);
            for q in &test {
                let base = online.baseline_cost(q).unwrap().ops;
                let with = online.cost(q).unwrap().ops;
                assert!(with <= base, "{}: cost increased", spec.name);
            }
        }
    }
}

/// INDSEP hierarchical index respects block sizes on all datasets and its
/// query costs never exceed plain JT.
#[test]
fn indsep_all_datasets() {
    for spec in peanut::datasets::all_datasets() {
        let bn = spec.build().unwrap();
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let idx = peanut::indsep::build_index(&tree, &rooted, 1000, None).unwrap();
        for ms in &idx.materialization.shortcuts {
            assert!(ms.shortcut.size() <= 1000, "{}: block exceeded", spec.name);
        }
        let engine = QueryEngine::symbolic(&tree);
        let online = OnlineEngine::new(&engine, &idx.materialization);
        let test = uniform_queries(bn.domain(), 30, QuerySpec::default(), 9);
        for q in &test {
            let base = online.baseline_cost(q).unwrap().ops;
            let with = online.cost(q).unwrap().ops;
            assert!(with <= base, "{}: INDSEP made query dearer", spec.name);
        }
    }
}

/// VE-n agrees with the junction tree numerically.
#[test]
fn ve_and_jt_agree() {
    let bn = fixtures::asia();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let queries: Vec<Scope> = (0..7u32)
        .map(|a| Scope::from_indices(&[a, a + 1]))
        .collect();
    let weighted: Vec<(Scope, f64)> = queries.iter().map(|q| (q.clone(), 1.0)).collect();
    let mut ven = peanut::ve::VeN::select(&bn, &weighted, 3);
    ven.materialize_numeric(&bn).unwrap();
    for q in &queries {
        let (jt_ans, _) = engine.answer(q).unwrap();
        let (ve_ans, _) = ven.answer(&bn, q).unwrap();
        assert!(jt_ans.max_abs_diff(&ve_ans).unwrap() < 1e-9);
    }
}

/// Workload drift does not catastrophically invalidate a materialization:
/// savings under full drift stay non-negative (shortcuts are only applied
/// when they help).
#[test]
fn drift_never_hurts() {
    let bn = fixtures::chain(16, 2, 3);
    let tree = build_junction_tree(&bn).unwrap();
    let rooted = RootedTree::new(&tree);
    let skew = skewed_queries(&tree, &rooted, 200, QuerySpec::default(), 1);
    let unif = uniform_queries(bn.domain(), 200, QuerySpec::default(), 2);
    let w = Workload::from_queries(skew);
    let ctx = OfflineContext::new(&tree, &w).unwrap();
    let mat = Peanut::offline(&ctx, &PeanutConfig::plus(200).with_epsilon(1.2));
    let engine = QueryEngine::symbolic(&tree);
    let online = OnlineEngine::new(&engine, &mat);
    for q in &unif {
        let base = online.baseline_cost(q).unwrap().ops;
        let with = online.cost(q).unwrap().ops;
        assert!(with <= base);
    }
}

/// Determinism across the whole pipeline: same seeds, same materialization,
/// same costs.
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let spec = peanut::datasets::dataset("Child").unwrap();
        let bn = spec.build().unwrap();
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let train = skewed_queries(&tree, &rooted, 100, QuerySpec::default(), 5);
        let w = Workload::from_queries(train);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let mat = Peanut::offline(&ctx, &PeanutConfig::plus(500).with_epsilon(1.2));
        let engine = QueryEngine::symbolic(&tree);
        let online = OnlineEngine::new(&engine, &mat);
        let test = skewed_queries(&tree, &rooted, 50, QuerySpec::default(), 6);
        let costs: Vec<u64> = test.iter().map(|q| online.cost(q).unwrap().ops).collect();
        (mat.total_size(), costs)
    };
    assert_eq!(run(), run());
}

/// Error paths surface as typed errors, not panics.
#[test]
fn failure_injection() {
    let bn = fixtures::sprinkler();
    let tree = build_junction_tree(&bn).unwrap();
    let rooted = RootedTree::new(&tree);

    // empty query
    let engine = QueryEngine::symbolic(&tree);
    assert!(engine.cost(&Scope::empty()).is_err());

    // unknown variable in the workload
    let w = Workload::from_queries([Scope::from_indices(&[99])]);
    assert!(OfflineContext::new(&tree, &w).is_err());

    // numeric answering on a symbolic engine
    assert!(engine.answer(&Scope::from_indices(&[0])).is_err());

    // empty workload: offline runs and materializes nothing
    let w = Workload::from_queries(std::iter::empty());
    let ctx = OfflineContext::new(&tree, &w).unwrap();
    let mat = Peanut::offline(&ctx, &PeanutConfig::plus(100).with_epsilon(1.0));
    assert!(mat.is_empty());

    // zero block size: INDSEP materializes nothing but builds
    let idx = peanut::indsep::build_index(&tree, &rooted, 0, None);
    assert!(idx.is_ok());
}
