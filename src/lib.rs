#![forbid(unsafe_code)]
//! # peanut
//!
//! Umbrella crate of the PEANUT reproduction (*Workload-Aware
//! Materialization of Junction Trees*, EDBT 2022): re-exports the public API
//! of every workspace crate so examples and downstream users need a single
//! dependency.
//!
//! ```
//! use peanut::pgm::fixtures;
//!
//! let bn = fixtures::sprinkler();
//! assert_eq!(bn.n_vars(), 4);
//! ```
//!
//! End to end — build a junction tree, run the paper's offline shortcut
//! selection on a training workload, and serve a batch over the
//! materialized tree:
//!
//! ```
//! use peanut::junction::{build_junction_tree, QueryEngine};
//! use peanut::materialize::{OfflineContext, Peanut, PeanutConfig, Workload};
//! use peanut::pgm::{fixtures, Scope};
//! use peanut::serving::{ServeRequest, ServingConfig, ServingEngine};
//!
//! let bn = fixtures::sprinkler();
//! let tree = build_junction_tree(&bn).unwrap();
//! let engine = QueryEngine::numeric(&tree, &bn).unwrap();
//!
//! // train on the query we are about to serve
//! let train = Scope::from_indices(&[0, 3]);
//! let workload = Workload::from_queries([train.clone()]);
//! let ctx = OfflineContext::new(&tree, &workload).unwrap();
//! let (mat, _report) = Peanut::offline_numeric(
//!     &ctx,
//!     &PeanutConfig::plus(4096),
//!     engine.numeric_state().expect("calibrated"),
//! )
//! .unwrap();
//!
//! let serving = ServingEngine::new(engine, mat, ServingConfig::default());
//! let (answers, _stats) = serving.serve_batch(&[ServeRequest::marginal(train)]);
//! assert!(answers[0].is_served());
//! ```

pub use peanut_core as materialize;
pub use peanut_datasets as datasets;
pub use peanut_indsep as indsep;
pub use peanut_junction as junction;
pub use peanut_pgm as pgm;
pub use peanut_serving as serving;
pub use peanut_store as store;
pub use peanut_ve as ve;
pub use peanut_workload as workload;
