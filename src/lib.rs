#![forbid(unsafe_code)]
//! # peanut
//!
//! Umbrella crate of the PEANUT reproduction (*Workload-Aware
//! Materialization of Junction Trees*, EDBT 2022): re-exports the public API
//! of every workspace crate so examples and downstream users need a single
//! dependency.
//!
//! ```
//! use peanut::pgm::fixtures;
//!
//! let bn = fixtures::sprinkler();
//! assert_eq!(bn.n_vars(), 4);
//! ```

pub use peanut_core as materialize;
pub use peanut_datasets as datasets;
pub use peanut_indsep as indsep;
pub use peanut_junction as junction;
pub use peanut_pgm as pgm;
pub use peanut_serving as serving;
pub use peanut_store as store;
pub use peanut_ve as ve;
pub use peanut_workload as workload;
