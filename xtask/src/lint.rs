//! The concurrency-hygiene lint pass: line-oriented source analysis that
//! enforces the repo's unsafe/ordering/panic discipline. Five rules:
//!
//! * **R1 — unsafe allowlist.** The `unsafe` keyword may appear only in
//!   the files listed in [`UNSAFE_ALLOWLIST`] (today: the worker pool's
//!   lifetime-erasure site and the materialization store's audited byte
//!   module). Anywhere else it is a violation even though
//!   the crate roots already `#![forbid(unsafe_code)]` — the lint is the
//!   layer that catches a root attribute being dropped together with the
//!   unsafe block it guarded.
//! * **R2 — `SAFETY:` comments.** Inside allowlisted files, every line
//!   containing `unsafe` must carry a `SAFETY:` comment on the same line
//!   or within the [`SAFETY_WINDOW`] lines above it.
//! * **R3 — atomic ordering justifications.** Every atomic
//!   `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` site must carry
//!   an `ordering:` comment on the same line or within the
//!   [`ORDERING_WINDOW`] lines above — or be covered by an earlier
//!   blanket comment (one containing both `ordering:` and the word
//!   `below`) in the same file. `use` declarations and `cmp::Ordering`
//!   variants are not sites.
//! * **R4 — no panics on serving hot paths.** Files in [`HOT_PATHS`] may
//!   not call `.unwrap()` / `.expect(` / `panic!(` / `unreachable!(` /
//!   `todo!(` / `unimplemented!(` outside `#[cfg(test)]` code. A
//!   deliberate exception is spelled `// lint:allow(hot_panic) — reason`
//!   on the line or within [`ORDERING_WINDOW`] lines above. `assert!`
//!   family macros stay allowed: invariant checks are wanted on hot
//!   paths, limping on with a violated invariant is not.
//! * **R5 — crate-root attributes.** Every crate root must open with
//!   `#![forbid(unsafe_code)]`, except `peanut-serving`'s and
//!   `peanut-store`'s, which carry `#![deny(unsafe_code)]` +
//!   `#![deny(unsafe_op_in_unsafe_fn)]` and scope their single
//!   `#[allow(unsafe_code)]` to the audited module (`pool`, `bytes`).
//!
//! The analysis is deliberately lexical (comment-stripped line scans, no
//! syn): it must keep working on any Rust the workspace grows, never
//! needs a parser update, and the few constructs it cannot see through
//! (a `//` inside a string literal) don't occur in lint-relevant
//! positions. The scanner is a pure function over `(path, content)` so
//! the unit tests below feed it synthetic violations directly.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files allowed to contain `unsafe` (R1), all subject to R2: the worker
/// pool's lifetime-erasure site and the materialization store's audited
/// byte module (mmap + aligned slice reinterpretation).
const UNSAFE_ALLOWLIST: &[&str] = &["crates/serving/src/pool.rs", "crates/store/src/bytes.rs"];

/// Serving hot-path files subject to R4.
const HOT_PATHS: &[&str] = &[
    "crates/serving/src/pool.rs",
    "crates/serving/src/engine.rs",
    "crates/serving/src/shard.rs",
];

/// Panicking constructs forbidden on hot paths (R4).
const HOT_PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Atomic memory-ordering variants that constitute an R3 site.
const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 8;

/// How many lines above a site an `ordering:` / `lint:allow` comment may sit.
const ORDERING_WINDOW: usize = 3;

/// Files exempt from scanning: the linter's own source necessarily
/// contains every forbidden token as *data* (rule tables and test
/// fixtures), which a lexical scanner cannot tell from code.
const SKIP_FILES: &[&str] = &["xtask/src/lint.rs"];

/// Directory names never descended into.
const SKIP_DIR_NAMES: &[&str] = &["target", ".git"];

/// Vendored third-party crates exempt from the lint (not our code).
/// `vendor/interleave` is deliberately NOT here: the model checker is
/// first-party and held to the same discipline.
const SKIP_DIR_PATHS: &[&str] = &["vendor/rand", "vendor/proptest", "vendor/criterion"];

pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// The code portion of a line: everything before a `//` comment opener.
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Word-boundary containment: `needle` not embedded in a larger identifier.
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(i) = hay[from..].find(needle) {
        let at = from + i;
        let before = hay[..at].chars().next_back();
        let after = hay[at + needle.len()..].chars().next();
        let is_word = |c: char| c.is_alphanumeric() || c == '_';
        if !before.is_some_and(is_word) && !after.is_some_and(is_word) {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// True if the line at `end` or the lines above it carry `marker`.
/// Comment, blank, and attribute lines never consume the window — a
/// multi-line justification block counts as one annotation — but at most
/// `window` lines of *code* may sit between the marker and the site.
fn window_has(lines: &[&str], end: usize, window: usize, marker: &str) -> bool {
    if lines[end].contains(marker) {
        return true;
    }
    let mut code_between = 0;
    for line in lines[..end].iter().rev() {
        if line.contains(marker) {
            return true;
        }
        let t = line.trim_start();
        let is_free =
            t.is_empty() || t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!");
        if !is_free {
            code_between += 1;
            if code_between >= window {
                return false;
            }
        }
    }
    false
}

/// Whether this path is a crate root the R5 attribute rules apply to.
fn crate_root_kind(path: &str) -> Option<&'static str> {
    // these two roots scope an `#[allow(unsafe_code)]` to one audited
    // module, so they carry the deny pair instead of the forbid
    if path == "crates/serving/src/lib.rs" || path == "crates/store/src/lib.rs" {
        return Some("deny-pair");
    }
    let is_root = path == "src/lib.rs"
        || path == "xtask/src/main.rs"
        || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
        || (path.starts_with("vendor/") && path.ends_with("/src/lib.rs"));
    is_root.then_some("forbid")
}

/// Scan one file. Pure function over `(repo-relative path, content)`.
pub fn scan(path: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    if SKIP_FILES.contains(&path) {
        return out;
    }
    let lines: Vec<&str> = content.lines().collect();
    let unsafe_allowed = UNSAFE_ALLOWLIST.contains(&path);
    let hot_path = HOT_PATHS.contains(&path);
    // R3 documents production memory-ordering choices: library code only.
    // Integration tests, examples and benches use atomics as plain test
    // counters, and `#[cfg(test)]` modules are skipped below for the
    // same reason.
    let ordering_checked = path.starts_with("src/") || path.contains("/src/");
    let mut ordering_blanket = false;
    let mut in_cfg_test = false;
    let mut prev_site_covered = false;

    for (idx, raw) in lines.iter().enumerate() {
        let n = idx + 1;
        let code = code_part(raw);

        if raw.contains("ordering:") && raw.contains("below") {
            ordering_blanket = true;
        }
        // a top-level (unindented) `#[cfg(test)]` starts the test module:
        // R4 stops applying — tests are where panics belong
        if raw.starts_with("#[cfg(test)]") {
            in_cfg_test = true;
        }

        // R1 / R2: the unsafe keyword
        if contains_word(code, "unsafe") {
            if !unsafe_allowed {
                out.push(Violation {
                    file: path.to_string(),
                    line: n,
                    rule: "R1/unsafe-allowlist",
                    msg: format!(
                        "`unsafe` outside the allowlist ({})",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                });
            } else if !window_has(&lines, idx, SAFETY_WINDOW, "SAFETY:") {
                out.push(Violation {
                    file: path.to_string(),
                    line: n,
                    rule: "R2/safety-comment",
                    msg: format!(
                        "`unsafe` without a `SAFETY:` comment within {SAFETY_WINDOW} lines"
                    ),
                });
            }
        }

        // R3: atomic ordering sites need a justification comment
        let is_use = code.trim_start().starts_with("use ");
        let is_site = !is_use && ATOMIC_ORDERINGS.iter().any(|ord| code.contains(ord));
        if is_site && ordering_checked && !in_cfg_test && !ordering_blanket {
            // one comment covers an unbroken run of sites (e.g. a stats
            // snapshot loading five counters on consecutive lines)
            let covered =
                prev_site_covered || window_has(&lines, idx, ORDERING_WINDOW, "ordering:");
            if !covered {
                out.push(Violation {
                    file: path.to_string(),
                    line: n,
                    rule: "R3/ordering-comment",
                    msg: format!(
                        "atomic `Ordering` site without an `ordering:` justification within \
                         {ORDERING_WINDOW} code lines (or a blanket `ordering: ... below` above)"
                    ),
                });
            }
            prev_site_covered = covered;
        } else if !is_site {
            prev_site_covered = false;
        }

        // R4: no panicking constructs on serving hot paths
        if hot_path && !in_cfg_test {
            for pat in HOT_PANIC_PATTERNS {
                if code.contains(pat)
                    && !window_has(&lines, idx, ORDERING_WINDOW, "lint:allow(hot_panic)")
                {
                    out.push(Violation {
                        file: path.to_string(),
                        line: n,
                        rule: "R4/hot-path-panic",
                        msg: format!(
                            "`{pat}` on a serving hot path — handle the error or annotate \
                             `// lint:allow(hot_panic) — reason`"
                        ),
                    });
                    break;
                }
            }
        }
    }

    // R5: crate-root attributes
    match crate_root_kind(path) {
        Some("deny-pair") => {
            for attr in ["#![deny(unsafe_code)]", "#![deny(unsafe_op_in_unsafe_fn)]"] {
                if !content.contains(attr) {
                    out.push(Violation {
                        file: path.to_string(),
                        line: 1,
                        rule: "R5/crate-root",
                        msg: format!("this crate root must carry `{attr}`"),
                    });
                }
            }
        }
        Some(_) if !content.contains("#![forbid(unsafe_code)]") => {
            out.push(Violation {
                file: path.to_string(),
                line: 1,
                rule: "R5/crate-root",
                msg: "crate root must carry `#![forbid(unsafe_code)]`".to_string(),
            });
        }
        _ => {}
    }

    out
}

/// Collect every `.rs` file under `root`, skipping build output and
/// third-party vendor trees. Returned paths are repo-relative.
fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIR_NAMES.contains(&name.as_ref()) {
                    continue;
                }
                let rel_str = rel.to_string_lossy().replace('\\', "/");
                if SKIP_DIR_PATHS.contains(&rel_str.as_str()) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(rel.to_path_buf());
            }
        }
    }
    out.sort();
    out
}

/// Repo root: the xtask crate lives one level below it.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the repo")
        .to_path_buf()
}

/// Run the full pass; prints violations and returns the exit code.
pub fn run() -> ExitCode {
    let root = repo_root();
    let files = collect_rs_files(&root);
    let mut violations = Vec::new();
    for rel in &files {
        let path = rel.to_string_lossy().replace('\\', "/");
        let content = match std::fs::read_to_string(root.join(rel)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        violations.extend(scan(&path, &content));
    }
    for v in &violations {
        eprintln!("{v}");
    }
    if violations.is_empty() {
        println!(
            "xtask lint: {} files clean (unsafe allowlist, SAFETY:, ordering:, hot-path panics, crate-root attributes)",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask lint: {} violation(s) in {} files",
            violations.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(path: &str, content: &str) -> Vec<&'static str> {
        scan(path, content).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let src = "fn f() {\n    let x = unsafe { *p };\n}\n";
        assert_eq!(
            rules("crates/core/src/exec.rs", src),
            ["R1/unsafe-allowlist"]
        );
        // ...even when a comment tries to look like a justification
        let src = "// SAFETY: trust me\nlet x = unsafe { *p };\n";
        assert_eq!(
            rules("crates/junction/src/tree.rs", src),
            ["R1/unsafe-allowlist"]
        );
    }

    #[test]
    fn unsafe_in_allowlisted_file_needs_a_safety_comment() {
        let bare = "fn f() {\n    let x = unsafe { *p };\n}\n";
        assert_eq!(
            rules("crates/serving/src/pool.rs", bare),
            ["R2/safety-comment"]
        );

        let documented = "// SAFETY: p outlives the wave; see run_wave.\nlet x = unsafe { *p };\n";
        assert!(rules("crates/serving/src/pool.rs", documented).is_empty());

        // the window is bounded in *code* lines: 9 statements between the
        // comment and the site push it out of range…
        let far = format!(
            "// SAFETY: too far away\n{}let x = unsafe {{ *p }};\n",
            "let a = 1;\n".repeat(9)
        );
        assert_eq!(
            rules("crates/serving/src/pool.rs", &far),
            ["R2/safety-comment"]
        );

        // …but comment and blank lines are free: a multi-line SAFETY block
        // over a handful of statements still counts
        let block = format!(
            "// SAFETY: a long explanation\n// spanning several lines\n\n{}let x = unsafe {{ *p }};\n",
            "let a = 1;\n".repeat(7)
        );
        assert!(rules("crates/serving/src/pool.rs", &block).is_empty());
    }

    #[test]
    fn unsafe_inside_identifiers_or_comments_is_not_a_site() {
        let src = "#![forbid(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\n// unsafe is discussed here only\n";
        assert!(rules("crates/core/src/exec.rs", src).is_empty());
    }

    #[test]
    fn atomic_ordering_needs_justification() {
        let bare = "fn f(a: &AtomicUsize) {\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert_eq!(
            rules("crates/core/src/stats.rs", bare),
            ["R3/ordering-comment"]
        );

        let same_line = "a.fetch_add(1, Ordering::Relaxed); // ordering: counter only\n";
        assert!(rules("crates/core/src/stats.rs", same_line).is_empty());

        let above =
            "// ordering: monotone counter, no synchronization.\na.store(1, Ordering::SeqCst);\n";
        assert!(rules("crates/core/src/stats.rs", above).is_empty());
    }

    #[test]
    fn ordering_rule_covers_production_code_only() {
        let bare = "fn f(a: &AtomicUsize) {\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        // integration tests, benches and examples use atomics as plain
        // test counters — no justification mandated there
        assert!(rules("crates/serving/tests/pool.rs", bare).is_empty());
        assert!(rules("examples/lifecycle.rs", bare).is_empty());
        // ...and neither do `#[cfg(test)]` modules inside src files
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n{bare}}}\n");
        assert!(rules("crates/core/src/stats.rs", &in_tests).is_empty());
    }

    #[test]
    fn one_comment_covers_an_unbroken_run_of_sites() {
        let run = "// ordering: independent telemetry counters, advisory reads.\n\
                   PoolStats {\n\
                       waves: s.waves.load(Ordering::Relaxed),\n\
                       tasks: s.tasks.load(Ordering::Relaxed),\n\
                       parks: s.parks.load(Ordering::Relaxed),\n\
                       unparks: s.unparks.load(Ordering::Relaxed),\n\
                       panics: s.panics.load(Ordering::Relaxed),\n\
                   }\n";
        assert!(rules("crates/serving/src/pool.rs", run).is_empty());

        // a non-site code line breaks the run: coverage does not leak past it
        let broken = "// ordering: covers only the first site.\n\
                      a.load(Ordering::Relaxed);\n\
                      let x = compute();\n\
                      let y = frobnicate(x);\n\
                      let z = munge(y);\n\
                      b.load(Ordering::Relaxed);\n";
        assert_eq!(
            rules("crates/core/src/stats.rs", broken),
            ["R3/ordering-comment"]
        );
    }

    #[test]
    fn ordering_blanket_comment_covers_the_rest_of_the_file() {
        let src = "// ordering: every atomic below is an independent counter.\n\n\n\n\n\
                   a.fetch_add(1, Ordering::Relaxed);\nb.load(Ordering::Acquire);\n";
        assert!(rules("crates/core/src/stats.rs", src).is_empty());
    }

    #[test]
    fn use_lines_and_cmp_ordering_are_not_sites() {
        let src = "use std::sync::atomic::Ordering::Relaxed;\n\
                   fn c(a: i32, b: i32) -> std::cmp::Ordering { a.cmp(&b) }\n\
                   let _ = std::cmp::Ordering::Less;\n";
        assert!(rules("crates/core/src/exec.rs", src).is_empty());
    }

    #[test]
    fn hot_path_panics_are_flagged_and_escapable() {
        let bare = "fn serve() {\n    let v = m.get(&k).unwrap();\n}\n";
        assert_eq!(
            rules("crates/serving/src/engine.rs", bare),
            ["R4/hot-path-panic"]
        );

        let escaped = "// lint:allow(hot_panic) — construction-time only, not per-query.\n\
                       let v = m.get(&k).expect(\"present\");\n";
        assert!(rules("crates/serving/src/engine.rs", escaped).is_empty());

        // the same code off the hot path is fine
        assert!(rules("crates/core/src/stats.rs", bare).is_empty());

        // and test modules inside hot-path files are exempt
        let tests = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(rules("crates/serving/src/shard.rs", tests).is_empty());
    }

    #[test]
    fn every_hot_panic_pattern_is_caught() {
        for pat in [
            "x.unwrap();",
            "x.expect(\"y\");",
            "panic!(\"y\");",
            "unreachable!();",
            "todo!();",
            "unimplemented!();",
        ] {
            let src = format!("fn f() {{ {pat} }}\n");
            assert_eq!(
                rules("crates/serving/src/pool.rs", &src),
                ["R4/hot-path-panic"],
                "pattern {pat} must be caught"
            );
        }
        // assert! stays allowed: invariants are wanted on hot paths
        let src = "fn f() { assert!(x > 0); assert_eq!(a, b); }\n";
        assert!(rules("crates/serving/src/pool.rs", src).is_empty());
    }

    #[test]
    fn crate_roots_must_pin_their_unsafe_stance() {
        assert_eq!(
            rules("crates/core/src/lib.rs", "//! docs\n"),
            ["R5/crate-root"]
        );
        assert!(rules(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n//! docs\n"
        )
        .is_empty());

        // serving and store need the deny pair (forbid would reject the
        // scoped `#[allow(unsafe_code)]` on their audited modules)
        assert_eq!(
            rules("crates/serving/src/lib.rs", "#![deny(unsafe_code)]\n"),
            ["R5/crate-root"]
        );
        let ok = "#![deny(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\n";
        assert!(rules("crates/serving/src/lib.rs", ok).is_empty());
        assert_eq!(
            rules("crates/store/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ["R5/crate-root", "R5/crate-root"]
        );
        assert!(rules("crates/store/src/lib.rs", ok).is_empty());

        // non-root files carry no attribute obligation
        assert!(rules("crates/core/src/exec.rs", "//! docs\n").is_empty());
    }

    #[test]
    fn the_repo_itself_is_clean() {
        // the real pass over the real tree: the lint gate must hold on
        // every commit, so its own test suite enforces it too
        let root = repo_root();
        let mut all = Vec::new();
        for rel in collect_rs_files(&root) {
            let path = rel.to_string_lossy().replace('\\', "/");
            let content = std::fs::read_to_string(root.join(&rel)).expect("readable source");
            all.extend(scan(&path, &content));
        }
        let rendered: Vec<String> = all.iter().map(|v| v.to_string()).collect();
        assert!(
            all.is_empty(),
            "repo lint violations:\n{}",
            rendered.join("\n")
        );
    }

    #[test]
    fn walker_skips_third_party_vendor_but_not_interleave() {
        let files = collect_rs_files(&repo_root());
        let paths: Vec<String> = files
            .iter()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect();
        assert!(paths.iter().any(|p| p.starts_with("vendor/interleave/")));
        assert!(!paths.iter().any(|p| p.starts_with("vendor/rand/")
            || p.starts_with("vendor/proptest/")
            || p.starts_with("vendor/criterion/")));
        assert!(paths.contains(&"crates/serving/src/pool.rs".to_string()));
    }
}
