#![forbid(unsafe_code)]
//! Repo automation. `cargo xtask lint` runs the concurrency-hygiene
//! static analysis pass over every Rust source in the workspace — see
//! [`lint`] for the rules. Exits non-zero on any violation, so CI can
//! gate on it.

use std::process::ExitCode;

mod lint;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint::run(),
        Some(other) => {
            eprintln!("unknown xtask `{other}`\nusage: cargo xtask lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}
