//! Property tests for the INDSEP baseline.

use peanut_indsep::{build_index, kundu_misra};
use peanut_junction::{build_junction_tree, RootedTree};
use peanut_pgm::generate::{generate_network, DagConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kundu–Misra parts are connected and within capacity (unless a single
    /// node exceeds it by itself).
    #[test]
    fn partition_invariants(
        weights in prop::collection::vec(1u64..20, 2..40),
        block in 4u64..40,
    ) {
        // build a random tree shape: parent of node i is some j < i
        let n = weights.len();
        let parent: Vec<Option<usize>> = (0..n)
            .map(|i| if i == 0 { None } else { Some((i * 7 + 3) % i) })
            .collect();
        let part = kundu_misra(&parent, &weights, block);
        let k = part.iter().copied().max().unwrap() + 1;
        for id in 0..k {
            let members: Vec<usize> = (0..n).filter(|&v| part[v] == id).collect();
            prop_assert!(!members.is_empty());
            // capacity
            let w: u64 = members.iter().map(|&v| weights[v]).sum();
            prop_assert!(w <= block || members.len() == 1);
            // connectivity: every member except the top has its parent in
            // the same part
            let tops = members
                .iter()
                .filter(|&&v| parent[v].map(|p| part[p] != id).unwrap_or(true))
                .count();
            prop_assert_eq!(tops, 1, "part {} has {} tops", id, tops);
        }
    }

    /// The index's materialized shortcuts always fit the block and cover
    /// disjoint-or-nested regions level by level.
    #[test]
    fn index_invariants(seed in 0u64..2_000, n in 6usize..16, block in 4u64..200) {
        let cfg = DagConfig {
            n_nodes: n,
            n_edges: n - 1 + n / 4,
            max_in_degree: 2,
            window: 3,
            cardinalities: vec![2, 3],
        };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let idx = build_index(&tree, &rooted, block, None).unwrap();
        for ms in &idx.materialization.shortcuts {
            prop_assert!(ms.shortcut.size() <= block);
        }
        // level-1 nodes partition the cliques
        let mut covered: Vec<usize> = idx
            .nodes
            .iter()
            .filter(|nd| nd.level == 1)
            .flat_map(|nd| nd.cliques.iter().copied())
            .collect();
        covered.sort_unstable();
        covered.dedup();
        prop_assert_eq!(covered.len(), tree.n_cliques());
    }
}
