//! The hierarchical INDSEP index: recursive partitioning of the junction
//! tree, one shortcut potential per index node, bounded by the block size.

use crate::partition::kundu_misra;
use peanut_core::{Materialization, MaterializedShortcut, Shortcut};
use peanut_junction::{JunctionTree, NumericState, RootedTree};
use peanut_pgm::{PgmError, Size};

/// One node of the hierarchical index.
#[derive(Clone, Debug)]
pub struct IndexNode {
    /// Hierarchy level (1 = partitions of the clique tree).
    pub level: usize,
    /// Base cliques covered by this index node (a connected subtree).
    pub cliques: Vec<usize>,
    /// The node's shortcut potential (absent for the all-covering root,
    /// whose cut is empty).
    pub shortcut: Option<Shortcut>,
    /// Whether the shortcut fits the block size and was materialized.
    pub materialized: bool,
}

/// The assembled index plus the derived materialization for the shared
/// online engine.
#[derive(Clone, Debug)]
pub struct IndsepIndex {
    /// Index nodes, all levels (level 1 first).
    pub nodes: Vec<IndexNode>,
    /// Shortcut potentials that fit the block size, ready for the online
    /// engine (overlapping: the hierarchy nests).
    pub materialization: Materialization,
    /// Index nodes whose shortcut exceeded the block size (handled by the
    /// original system with a multi-level approximation; we skip them and
    /// report the count).
    pub skipped_oversize: usize,
    /// Number of hierarchy levels built.
    pub levels: usize,
}

/// Builds the INDSEP index with the given disk-block size (in table
/// entries). Shortcut tables are materialized numerically when `numeric` is
/// given (calibrated state), size-only otherwise.
pub fn build_index(
    tree: &JunctionTree,
    rooted: &RootedTree,
    block: Size,
    numeric: Option<&NumericState>,
) -> Result<IndsepIndex, PgmError> {
    let n = tree.n_cliques();
    // level-0 tree: the clique tree itself
    let mut parent: Vec<Option<usize>> = (0..n).map(|v| rooted.parent(v)).collect();
    let mut weights: Vec<Size> = (0..n).map(|v| tree.clique_size(v)).collect();
    // base-clique coverage per current-level node
    let mut coverage: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();

    let mut nodes: Vec<IndexNode> = Vec::new();
    let mut skipped = 0usize;
    let mut level = 0usize;
    const MAX_LEVELS: usize = 32;

    while coverage.len() > 1 && level < MAX_LEVELS {
        level += 1;
        let part = kundu_misra(&parent, &weights, block);
        let k = part.iter().copied().max().expect("non-empty") + 1;
        // quotient: coverage, parents, weights of the new level
        let mut new_cov: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (v, &p) in part.iter().enumerate() {
            new_cov[p].extend_from_slice(&coverage[v]);
        }
        let mut new_parent: Vec<Option<usize>> = vec![None; k];
        for (v, &pv) in parent.iter().enumerate() {
            if let Some(pv) = pv {
                if part[v] != part[pv] {
                    new_parent[part[v]] = Some(part[pv]);
                }
            }
        }
        let mut new_weights: Vec<Size> = vec![1; k];
        for (p, cov) in new_cov.iter_mut().enumerate() {
            cov.sort_unstable();
            let shortcut = Shortcut::from_nodes(tree, rooted, cov.clone())?;
            let fits = shortcut.size() <= block && !shortcut.cut().is_empty();
            new_weights[p] = shortcut.size().max(1);
            if !fits && !shortcut.cut().is_empty() {
                skipped += 1;
            }
            nodes.push(IndexNode {
                level,
                cliques: cov.clone(),
                materialized: fits,
                shortcut: if shortcut.cut().is_empty() {
                    None
                } else {
                    Some(shortcut)
                },
            });
        }
        // no progress (every node already its own part and still > 1):
        // collapse everything into a single root part next round by lifting
        // the block size — the hierarchy must terminate with one root.
        if k == coverage.len() && k > 1 && level >= 2 {
            let all: Vec<usize> = (0..n).collect();
            let shortcut = Shortcut::from_nodes(tree, rooted, all.clone())?;
            nodes.push(IndexNode {
                level: level + 1,
                cliques: all,
                shortcut: None,
                materialized: false,
            });
            let _ = shortcut;
            break;
        }
        parent = new_parent;
        weights = new_weights;
        coverage = new_cov;
        if coverage.len() == 1 {
            break;
        }
    }

    // dedup identical regions across levels (a part that survives
    // unchanged up the hierarchy would otherwise materialize twice)
    let mut shortcuts: Vec<MaterializedShortcut> = Vec::new();
    let mut seen: Vec<&[usize]> = Vec::new();
    for node in &nodes {
        let (Some(shortcut), true) = (&node.shortcut, node.materialized) else {
            continue;
        };
        if seen.contains(&node.cliques.as_slice()) {
            continue;
        }
        seen.push(node.cliques.as_slice());
        // workload-agnostic weight: the clique mass the shortcut can skip
        let mass: f64 = shortcut
            .nodes()
            .iter()
            .map(|&u| tree.clique_size(u) as f64)
            .sum();
        let potential = match numeric {
            Some(ns) => Some(shortcut.materialize(tree, rooted, ns)?.0),
            None => None,
        };
        shortcuts.push(MaterializedShortcut {
            ratio: mass / shortcut.size().max(1) as f64,
            benefit: mass,
            potential,
            shortcut: shortcut.clone(),
        });
    }
    shortcuts.sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("finite"));

    Ok(IndsepIndex {
        nodes,
        materialization: Materialization {
            shortcuts,
            overlapping: true,
            epoch: 0,
        },
        skipped_oversize: skipped,
        levels: level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_core::OnlineEngine;
    use peanut_junction::{build_junction_tree, QueryEngine};
    use peanut_pgm::{fixtures, joint, Scope};

    fn setup(bn: &peanut_pgm::BayesianNetwork) -> (JunctionTree, RootedTree) {
        let tree = build_junction_tree(bn).unwrap();
        let rooted = RootedTree::new(&tree);
        (tree, rooted)
    }

    #[test]
    fn hierarchy_covers_and_nests() {
        let bn = fixtures::chain(16, 2, 3);
        let (tree, rooted) = setup(&bn);
        let idx = build_index(&tree, &rooted, 8, None).unwrap();
        assert!(idx.levels >= 1);
        // every level partitions the cliques exactly
        for lvl in 1..=idx.levels {
            let mut covered: Vec<usize> = idx
                .nodes
                .iter()
                .filter(|n| n.level == lvl)
                .flat_map(|n| n.cliques.iter().copied())
                .collect();
            covered.sort_unstable();
            if covered.is_empty() {
                continue; // terminal pseudo-level
            }
            assert_eq!(covered, (0..tree.n_cliques()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn materialized_shortcuts_fit_block() {
        let bn = fixtures::binary_tree(31, 4);
        let (tree, rooted) = setup(&bn);
        for block in [4u64, 16, 64] {
            let idx = build_index(&tree, &rooted, block, None).unwrap();
            for ms in &idx.materialization.shortcuts {
                assert!(ms.shortcut.size() <= block);
            }
        }
    }

    #[test]
    fn larger_blocks_fewer_partitions() {
        let bn = fixtures::chain(20, 2, 9);
        let (tree, rooted) = setup(&bn);
        let small = build_index(&tree, &rooted, 6, None).unwrap();
        let big = build_index(&tree, &rooted, 1000, None).unwrap();
        let level1 = |idx: &IndsepIndex| idx.nodes.iter().filter(|n| n.level == 1).count();
        assert!(level1(&small) > level1(&big));
        assert_eq!(level1(&big), 1);
    }

    #[test]
    fn indsep_answers_remain_exact() {
        let bn = fixtures::figure1();
        let (tree, rooted) = setup(&bn);
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let idx = build_index(&tree, &rooted, 16, engine.numeric_state()).unwrap();
        let online = OnlineEngine::new(&engine, &idx.materialization);
        let d = bn.domain();
        for pair in [["a", "l"], ["d", "f"], ["b", "h"], ["f", "l"], ["a", "i"]] {
            let q = Scope::from_iter(pair.iter().map(|n| d.var(n).unwrap()));
            let (got, cost) = online.answer(&q).unwrap();
            let want = joint::marginal(&bn, &q).unwrap();
            assert!(got.max_abs_diff(&want).unwrap() < 1e-9, "query {pair:?}");
            let base = online.baseline_cost(&q).unwrap();
            assert!(cost.ops <= base.ops);
        }
    }

    #[test]
    fn indsep_saves_on_long_chains() {
        let bn = fixtures::chain(24, 2, 8);
        let (tree, rooted) = setup(&bn);
        let engine = QueryEngine::symbolic(&tree);
        let idx = build_index(&tree, &rooted, 16, None).unwrap();
        assert!(!idx.materialization.is_empty());
        let online = OnlineEngine::new(&engine, &idx.materialization);
        let q = Scope::from_indices(&[0, 23]);
        let base = online.baseline_cost(&q).unwrap().ops;
        let with = online.cost(&q).unwrap().ops;
        assert!(
            with < base,
            "INDSEP should prune the long chain: {with} vs {base}"
        );
    }

    #[test]
    fn tiny_block_skips_oversize() {
        let bn = fixtures::figure1();
        let (tree, rooted) = setup(&bn);
        let idx = build_index(&tree, &rooted, 1, None).unwrap();
        // nothing fits one entry, everything oversize or cutless
        assert!(idx.materialization.is_empty());
    }
}
