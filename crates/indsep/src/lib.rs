#![forbid(unsafe_code)]
//! # peanut-indsep
//!
//! The **INDSEP** baseline of Kanagal & Deshpande (SIGMOD 2009), as used in
//! the paper's evaluation: a hierarchical index over the junction tree built
//! by recursive tree partitioning (Kundu–Misra), where every index node
//! materializes the shortcut potential of its subtree — provided it fits the
//! disk-block size.
//!
//! INDSEP is *workload-agnostic*: which potentials exist depends only on the
//! tree structure and the block size. Query processing reuses the shared
//! online engine of `peanut-core` (conflict graph + GWMIN over the — nested,
//! hence overlapping — index shortcuts), so operation counts are strictly
//! comparable with PEANUT/PEANUT+ (substitution documented in `DESIGN.md`:
//! the original is a disk-based recursive processor; the comparison metric,
//! message-passing operations saved by shortcut potentials, is preserved).

pub mod index;
pub mod partition;

pub use index::{build_index, IndexNode, IndsepIndex};
pub use partition::kundu_misra;
