//! Kundu–Misra linear tree partitioning (SIAM J. Comput. 1977): split a
//! rooted, node-weighted tree into the fewest connected parts of weight at
//! most `block`.

/// Partitions a rooted tree given as parent pointers.
///
/// * `parent[v]` — parent of `v` (`None` for the root);
/// * `weights[v]` — non-negative node weight;
/// * `block` — capacity of one part.
///
/// Returns `part[v]`: a dense partition id per node. Parts are connected.
/// Processing is bottom-up: when a node's accumulated subtree weight
/// exceeds `block`, the heaviest still-attached child subtrees are detached
/// (becoming their own parts) until the node fits. A single node heavier
/// than `block` forms its own (oversized) part — the caller decides how to
/// handle it (INDSEP's multi-level approximation; we skip materialization).
pub fn kundu_misra(parent: &[Option<usize>], weights: &[u64], block: u64) -> Vec<usize> {
    let n = parent.len();
    assert_eq!(weights.len(), n);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut root = None;
    for (v, &p) in parent.iter().enumerate() {
        match p {
            Some(p) => children[p].push(v),
            None => {
                assert!(root.is_none(), "exactly one root expected");
                root = Some(v);
            }
        }
    }
    let root = root.expect("tree has a root");

    // post-order via iterative DFS
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        order.push(v);
        stack.extend_from_slice(&children[v]);
    }

    let mut residual: Vec<u64> = weights.to_vec();
    let mut is_part_root = vec![false; n];
    for &v in order.iter().rev() {
        let mut attached: Vec<usize> = children[v]
            .iter()
            .copied()
            .filter(|&c| !is_part_root[c])
            .collect();
        let mut total = weights[v] + attached.iter().map(|&c| residual[c]).sum::<u64>();
        // detach heaviest children until the accumulated weight fits
        attached.sort_by_key(|&c| std::cmp::Reverse(residual[c]));
        let mut i = 0;
        while total > block && i < attached.len() {
            let c = attached[i];
            is_part_root[c] = true;
            total -= residual[c];
            i += 1;
        }
        residual[v] = total;
    }
    is_part_root[root] = true;

    // assign ids: nearest part-root ancestor-or-self, in pre-order
    let mut part = vec![usize::MAX; n];
    let mut next_id = 0usize;
    for &v in &order {
        if is_part_root[v] {
            part[v] = next_id;
            next_id += 1;
        } else {
            part[v] = part[parent[v].expect("non-root")];
        }
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts_of(part: &[usize]) -> usize {
        part.iter().copied().max().map_or(0, |m| m + 1)
    }

    fn part_weight(part: &[usize], weights: &[u64], id: usize) -> u64 {
        part.iter()
            .zip(weights)
            .filter(|(&p, _)| p == id)
            .map(|(_, &w)| w)
            .sum()
    }

    #[test]
    fn single_node() {
        let part = kundu_misra(&[None], &[5], 10);
        assert_eq!(part, vec![0]);
    }

    #[test]
    fn chain_splits_by_capacity() {
        // chain 0-1-2-3-4-5, all weight 1, block 2 → 3 parts
        let parent: Vec<Option<usize>> = vec![None, Some(0), Some(1), Some(2), Some(3), Some(4)];
        let weights = vec![1u64; 6];
        let part = kundu_misra(&parent, &weights, 2);
        let k = parts_of(&part);
        assert_eq!(k, 3);
        for id in 0..k {
            assert!(part_weight(&part, &weights, id) <= 2);
        }
    }

    #[test]
    fn parts_are_connected() {
        // star with heavy leaves
        let parent: Vec<Option<usize>> = vec![None, Some(0), Some(0), Some(0), Some(1), Some(1)];
        let weights = vec![1u64, 2, 3, 4, 5, 6];
        let part = kundu_misra(&parent, &weights, 7);
        // connectivity: every non-root node shares its part with its parent
        // or is a part root (the unique minimum of its part in BFS order)
        for v in 1..parent.len() {
            let p = parent[v].unwrap();
            if part[v] != part[p] {
                // v must be the topmost node of its part
                assert!(parent
                    .iter()
                    .enumerate()
                    .filter(|(u, _)| part[*u] == part[v])
                    .all(|(u, pu)| u == v || pu.map(|x| part[x] == part[v]).unwrap_or(false)));
            }
        }
    }

    #[test]
    fn capacity_respected_unless_single_oversized_node() {
        let parent: Vec<Option<usize>> = vec![None, Some(0), Some(1), Some(1)];
        let weights = vec![3u64, 9, 2, 2];
        let part = kundu_misra(&parent, &weights, 8);
        let k = parts_of(&part);
        for id in 0..k {
            let w = part_weight(&part, &weights, id);
            let members: Vec<usize> = (0..4).filter(|&v| part[v] == id).collect();
            assert!(
                w <= 8 || members.len() == 1,
                "part {id} weight {w} with members {members:?}"
            );
        }
    }

    #[test]
    fn generous_block_single_part() {
        let parent: Vec<Option<usize>> = vec![None, Some(0), Some(0), Some(2)];
        let weights = vec![1u64, 1, 1, 1];
        let part = kundu_misra(&parent, &weights, 100);
        assert_eq!(parts_of(&part), 1);
    }
}
