//! Extension experiment (the paper's §3.1/§6 future work): how much does
//! the pivot choice matter, for both plain query cost and the quality of
//! the PEANUT+ materialization?
//!
//! The paper fixes an arbitrary pivot and notes that optimizing the
//! materialization across pivot selections is open. Here we sweep a sample
//! of pivots on each dataset and report the spread of (a) plain JT workload
//! cost and (b) PEANUT+ savings — quantifying how much a pivot-aware
//! optimizer could gain.

use peanut_bench::harness::{is_quick, mean, savings_percent, skewed_counts, Prepared};
use peanut_core::{OfflineContext, Peanut, PeanutConfig, Workload};
use peanut_junction::{build_junction_tree, RootedTree};
use peanut_workload::{skewed_queries, QuerySpec};

fn main() {
    let (n_train, n_test) = skewed_counts();
    let n_pivots = if is_quick() { 3 } else { 6 };
    println!("Pivot study: spread of plain cost and PEANUT+ savings across pivot choices");
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "dataset", "plain min", "plain max", "savings min%", "savings max%"
    );
    for spec in peanut_datasets::all_datasets() {
        let bn = spec.build().expect("dataset");
        let base_tree = build_junction_tree(&bn).expect("tree");
        let n = base_tree.n_cliques();
        let pivots: Vec<usize> = (0..n_pivots).map(|i| i * n / n_pivots).collect();
        let mut plain: Vec<f64> = Vec::new();
        let mut savings: Vec<f64> = Vec::new();
        for &pivot in &pivots {
            let mut tree = build_junction_tree(&bn).expect("tree");
            tree.set_pivot(pivot);
            let rooted = RootedTree::new(&tree);
            // workload depends on the pivot (skew is depth-based)
            let train = skewed_queries(&tree, &rooted, n_train, QuerySpec::default(), 11);
            let test = skewed_queries(&tree, &rooted, n_test, QuerySpec::default(), 12);
            let engine = peanut_junction::QueryEngine::symbolic(&tree);
            let total: u128 = test
                .iter()
                .map(|q| engine.cost(q).expect("cost").ops as u128)
                .sum();
            plain.push(total as f64 / n_test as f64);

            let w = Workload::from_queries(train);
            let ctx = OfflineContext::new(&tree, &w).expect("ctx");
            let budget = tree.total_separator_size().saturating_mul(10_000);
            let mat = Peanut::offline(&ctx, &PeanutConfig::plus(budget).with_epsilon(1.2));
            // adapt the harness helper to this tree
            let p = Prepared {
                spec: spec.clone(),
                bn: bn.clone(),
                tree,
            };
            savings.push(mean(&savings_percent(&p, &mat, &test)));
        }
        let fmin = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let fmax = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>12.2} {:>12.2}",
            spec.name,
            fmin(&plain),
            fmax(&plain),
            fmin(&savings),
            fmax(&savings)
        );
    }
    println!("\n(large spreads = a pivot-aware materialization optimizer has headroom — the");
    println!(" open problem the paper sketches in its future work)");
}
