//! Figure 5 — distribution of cost-savings percentage against materialized
//! (actual) budget, for INDSEP (three block sizes) and PEANUT+ (three ε
//! levels), on the skewed workload.
//!
//! For INDSEP the paper picks the block sizes giving the minimum, median
//! and maximum materialized space among the §5.1 candidates; PEANUT+ runs
//! the three target budgets {b_T/10, 10·b_T, 10⁴·b_T}.

use peanut_bench::harness::{
    indsep_blocks, mean, percentile, run_indsep, run_offline, savings_percent, skewed_counts,
    Prepared,
};
use peanut_core::Variant;

fn print_dist(label: &str, budget: u64, savings: &[f64]) {
    println!(
        "    {label:<16} actual {:>12}  mean {:>6.2}%  p25 {:>6.2}%  median {:>6.2}%  p75 {:>6.2}%",
        budget,
        mean(savings),
        percentile(savings, 25.0),
        percentile(savings, 50.0),
        percentile(savings, 75.0),
    );
}

fn main() {
    let (n_train, n_test) = skewed_counts();
    println!("Figure 5: cost-savings distribution vs materialized budget (skewed workload)");
    for p in Prepared::all() {
        let train = p.skewed(n_train, 11);
        let test = p.skewed(n_test, 12);
        println!("{}:", p.spec.name);

        // INDSEP at min / median / max materialized space
        let mut ind: Vec<(u64, peanut_core::Materialization)> = indsep_blocks()
            .into_iter()
            .map(|b| {
                let (mat, _) = run_indsep(&p, b);
                (mat.total_size(), mat)
            })
            .collect();
        ind.sort_by_key(|(sz, _)| *sz);
        ind.dedup_by_key(|(sz, _)| *sz);
        let picks = [0, ind.len() / 2, ind.len() - 1];
        for &i in &picks {
            let (sz, mat) = &ind[i];
            let savings = savings_percent(&p, mat, &test);
            print_dist("INDSEP", *sz, &savings);
        }

        // PEANUT+ at the three targets for each eps
        for eps in [1.2, 6.0, 12.0] {
            for mult in [0.1f64, 10.0, 10_000.0] {
                let budget = ((p.b_t() as f64) * mult).max(1.0) as u64;
                let (mat, _) = run_offline(&p, &train, budget, eps, Variant::PeanutPlus);
                let savings = savings_percent(&p, &mat, &test);
                print_dist(&format!("PEANUT+ e={eps}"), mat.total_size(), &savings);
            }
        }
    }
}
