//! Figure 7 — average query-processing cost by query size |q| for VE-5,
//! JT, INDSEP, PEANUT and PEANUT+ on the uniform workload, plus the
//! aggregate average each method prints in the paper's panels.
//!
//! Settings (§5.1): the same 250 uniform queries (sizes 1–5) are used for
//! optimization and evaluation; INDSEP block 10³; PEANUT/PEANUT+ target
//! budget 1000·b_T, ε = 1.2; VE-n with n = 5.

use peanut_bench::harness::{mean, run_indsep, run_offline, uniform_count, Prepared};
use peanut_core::{OnlineEngine, Variant};
use peanut_junction::QueryEngine;
use peanut_ve::VeN;

fn main() {
    let n_q = uniform_count();
    println!("Figure 7: average query cost by |q| (uniform workload)");
    for p in Prepared::all() {
        let queries = p.uniform(n_q, 21);
        let weighted: Vec<(peanut_pgm::Scope, f64)> =
            queries.iter().map(|q| (q.clone(), 1.0)).collect();

        let ven = VeN::select(&p.bn, &weighted, 5);
        let (ind_mat, _) = run_indsep(&p, 1_000);
        let budget = p.b_t().saturating_mul(1_000);
        let (pea_mat, _) = run_offline(&p, &queries, budget, 1.2, Variant::Peanut);
        let (plus_mat, _) = run_offline(&p, &queries, budget, 1.2, Variant::PeanutPlus);

        let engine = QueryEngine::symbolic(&p.tree);
        let ind = OnlineEngine::new(&engine, &ind_mat);
        let pea = OnlineEngine::new(&engine, &pea_mat);
        let plus = OnlineEngine::new(&engine, &plus_mat);

        // cost rows per method, bucketed by |q|
        let mut buckets: Vec<Vec<[f64; 5]>> = vec![Vec::new(); 6];
        for q in &queries {
            let costs = [
                ven.cost(&p.bn, q) as f64,
                engine.cost(q).expect("jt").ops as f64,
                ind.cost(q).expect("indsep").ops as f64,
                pea.cost(q).expect("peanut").ops as f64,
                plus.cost(q).expect("plus").ops as f64,
            ];
            buckets[q.len().min(5)].push(costs);
        }
        println!("{}:", p.spec.name);
        println!(
            "    {:<6} {:>14} {:>14} {:>14} {:>14} {:>14}",
            "|q|", "VE-5", "JT", "INDSEP", "PEANUT", "PEANUT+"
        );
        let mut totals = [0.0f64; 5];
        let mut count = 0usize;
        for (size, rows) in buckets.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let mut avg = [0.0f64; 5];
            for row in rows {
                for (a, r) in avg.iter_mut().zip(row) {
                    *a += r;
                }
                for (t, r) in totals.iter_mut().zip(row) {
                    *t += r;
                }
            }
            count += rows.len();
            for a in &mut avg {
                *a /= rows.len() as f64;
            }
            println!(
                "    {:<6} {:>14.0} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
                size, avg[0], avg[1], avg[2], avg[3], avg[4]
            );
        }
        for t in &mut totals {
            *t /= count as f64;
        }
        println!(
            "    {:<6} {:>14} {:>14} {:>14} {:>14} {:>14}",
            "avg",
            peanut_bench::harness::sci(totals[0]),
            peanut_bench::harness::sci(totals[1]),
            peanut_bench::harness::sci(totals[2]),
            peanut_bench::harness::sci(totals[3]),
            peanut_bench::harness::sci(totals[4]),
        );
        let _ = mean(&[]);
    }
}
