//! Figure 9 — robustness to workload drift, uniform-trained: average cost
//! of Q′ = λ·uniform + (1−λ)·skewed for JT, PEANUT and PEANUT+ materialized
//! on the *uniform* workload (K = 10·b_T, ε = 1.2).

use peanut_bench::harness::{drifted, evaluate, run_offline, Prepared};
use peanut_core::Variant;

fn main() {
    println!("Figure 9: robustness to drift, materialization trained on the UNIFORM workload");
    println!("(avg cost of Q' = lambda*uniform + (1-lambda)*skewed)");
    let n_pool = 500;
    let n_test = 500;
    for p in Prepared::all() {
        let skew = p.skewed(n_pool, 41);
        let unif = p.uniform(n_pool, 42);
        let budget = p.b_t().saturating_mul(10);
        let (pea, _) = run_offline(&p, &unif, budget, 1.2, Variant::Peanut);
        let (plus, _) = run_offline(&p, &unif, budget, 1.2, Variant::PeanutPlus);
        println!("{}:", p.spec.name);
        println!(
            "    {:>6} {:>16} {:>16} {:>16}",
            "lambda", "JT", "PEANUT", "PEANUT+"
        );
        for (i, lambda) in [0.0, 0.25, 0.5, 0.75, 1.0].into_iter().enumerate() {
            let test = drifted(&unif, &skew, lambda, n_test, 200 + i as u64);
            let (with_pea, base) = evaluate(&p, &pea, &test);
            let (with_plus, _) = evaluate(&p, &plus, &test);
            println!(
                "    {:>6.2} {:>16} {:>16} {:>16}",
                lambda,
                base / n_test as u128,
                with_pea / n_test as u128,
                with_plus / n_test as u128,
            );
        }
    }
}
