//! Umbrella runner: executes every table/figure binary of the reproduction
//! and tees their output into `results/*.txt`.
//!
//! Usage: `cargo run --release -p peanut-bench --bin repro [-- --quick]`

use std::fs;
use std::path::Path;
use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let results = Path::new("results");
    fs::create_dir_all(results).expect("create results dir");
    let bins = [
        "table1",
        "table2",
        "table3",
        "table4",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "ablation",
        "pivot_study",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for bin in bins {
        eprintln!("== running {bin} ==");
        let mut cmd = Command::new(exe_dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let out = cmd.output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
        if !out.status.success() {
            eprintln!("{bin} FAILED: {}", String::from_utf8_lossy(&out.stderr));
        }
        let path = results.join(format!("{bin}.txt"));
        fs::write(&path, &out.stdout).expect("write result");
        eprintln!("   -> {} ({} bytes)", path.display(), out.stdout.len());
    }
    eprintln!("done; see results/*.txt");
}
