//! Table 4 — materialization-phase statistics: disk space (MB) and time (s)
//! for VE-5, JT (construction + calibration), INDSEP, PEANUT and PEANUT+.
//!
//! Settings follow the uniform-workload experiment (§5.1): INDSEP block
//! size 10³, PEANUT/PEANUT+ target budget 1000·b_T, ε = 1.2, VE-n with
//! n = 5. Datasets whose calibration the paper could not finish (TPC-H,
//! Munin, Barley) are marked `NA` in the JT column here too: our pipeline
//! runs them in size-only mode exactly as the paper ran them uncalibrated.

use peanut_bench::harness::{run_indsep, run_offline, uniform_count, Prepared};
use peanut_core::Variant;
use peanut_junction::{NumericState, RootedTree};
use std::time::Instant;

const BYTES_PER_ENTRY: f64 = 8.0;

fn mb(entries: u64) -> f64 {
    entries as f64 * BYTES_PER_ENTRY / 1e6
}

fn main() {
    let n_q = uniform_count();
    println!("Table 4: materialization phase — disk space (MB) and time (seconds)");
    println!(
        "{:<12} | {:>10} {:>10} {:>10} {:>10} {:>10} | {:>9} {:>9} {:>9} {:>9} {:>9}",
        "dataset",
        "VE-5 MB",
        "JT MB",
        "INDSEP MB",
        "PEANUT MB",
        "PNUT+ MB",
        "VE-5 s",
        "JT s",
        "INDSEP s",
        "PEANUT s",
        "PNUT+ s"
    );
    for p in Prepared::all() {
        let train = p.uniform(n_q, 21);

        // VE-5
        let weighted: Vec<(peanut_pgm::Scope, f64)> =
            train.iter().map(|q| (q.clone(), 1.0)).collect();
        let t0 = Instant::now();
        let ven = peanut_ve::VeN::select(&p.bn, &weighted, 5);
        let ve_time = t0.elapsed().as_secs_f64();
        let ve_mb = mb(ven.total_size());

        // JT: clique + separator tables; calibration time when feasible
        let jt_entries: u64 = (0..p.tree.n_cliques())
            .map(|u| p.tree.clique_size(u))
            .chain((0..p.tree.edges().len()).map(|e| p.tree.separator_size(e)))
            .fold(0u64, u64::saturating_add);
        let (jt_mb, jt_time) = if p.spec.paper.calibratable {
            let rooted = RootedTree::new(&p.tree);
            let t0 = Instant::now();
            match NumericState::initialize(&p.tree, &p.bn) {
                Ok(mut ns) => match ns.calibrate(&p.tree, &rooted) {
                    Ok(()) => (
                        format!("{:.3}", mb(jt_entries)),
                        format!("{:.2}", t0.elapsed().as_secs_f64()),
                    ),
                    Err(_) => ("NA".into(), "NA".into()),
                },
                Err(_) => ("NA".into(), "NA".into()),
            }
        } else {
            (format!("{:.3}*", mb(jt_entries)), "NA".into())
        };

        // INDSEP, block 10^3
        let (ind_mat, ind_time) = run_indsep(&p, 1_000);
        // PEANUT / PEANUT+ at K = 1000 b_T, eps = 1.2
        let budget = p.b_t().saturating_mul(1_000);
        let (pea_mat, pea_time) = run_offline(&p, &train, budget, 1.2, Variant::Peanut);
        let (plus_mat, plus_time) = run_offline(&p, &train, budget, 1.2, Variant::PeanutPlus);

        println!(
            "{:<12} | {:>10.3} {:>10} {:>10.3} {:>10.3} {:>10.3} | {:>9.2} {:>9} {:>9.4} {:>9.2} {:>9.2}",
            p.spec.name,
            ve_mb,
            jt_mb,
            mb(ind_mat.total_size()),
            mb(pea_mat.total_size()),
            mb(plus_mat.total_size()),
            ve_time,
            jt_time,
            ind_time,
            pea_time,
            plus_time,
        );
    }
    println!("(* = stored uncalibrated, as in the paper: TPC-H, Munin, Barley)");
}
