//! Table 2 — summary statistics of the junction trees: ours against the
//! paper's.

use peanut_bench::harness::Prepared;

fn main() {
    println!("Table 2: summary statistics of junction trees (ours vs paper)");
    println!(
        "{:<12} {:>9} {:>12} {:>9} {:>12} {:>10} {:>13}",
        "dataset", "cliques", "cliq(paper)", "diameter", "diam(paper)", "treewidth", "tw(paper)"
    );
    for p in Prepared::all() {
        println!(
            "{:<12} {:>9} {:>12} {:>9} {:>12} {:>10} {:>13}",
            p.spec.name,
            p.tree.n_cliques(),
            p.spec.paper.cliques,
            p.tree.diameter(),
            p.spec.paper.diameter,
            p.tree.treewidth(),
            p.spec.paper.treewidth,
        );
    }
}
