//! Figure 10 — impact of the query-log size N_q used by the offline
//! optimization on the savings of PEANUT and PEANUT+ (ε = 6, K = 10·b_T,
//! test log of 1000 skewed queries). The paper finds the impact is minor.

use peanut_bench::harness::{is_quick, mean, run_offline, savings_percent, Prepared};
use peanut_core::Variant;

fn main() {
    println!("Figure 10: average cost savings (%) vs training-log size N_q");
    let n_test = if is_quick() { 200 } else { 1000 };
    let sizes: &[usize] = if is_quick() {
        &[50, 250]
    } else {
        &[50, 250, 500, 1000]
    };
    for p in Prepared::all() {
        let test = p.skewed(n_test, 77);
        let budget = p.b_t().saturating_mul(10);
        println!("{}:", p.spec.name);
        println!("    {:>6} {:>14} {:>14}", "N_q", "PEANUT %", "PEANUT+ %");
        for &nq in sizes {
            let train = p.skewed(nq, 76);
            let (pea, _) = run_offline(&p, &train, budget, 6.0, Variant::Peanut);
            let (plus, _) = run_offline(&p, &train, budget, 6.0, Variant::PeanutPlus);
            let s_pea = mean(&savings_percent(&p, &pea, &test));
            let s_plus = mean(&savings_percent(&p, &plus, &test));
            println!("    {:>6} {:>14.2} {:>14.2}", nq, s_pea, s_plus);
        }
    }
}
