//! CI bench-regression guard.
//!
//! The serving benches write their ratio metrics (the same numbers they
//! assert on) to `results/bench_<name>.json`. This binary compares the
//! latest run against the committed floors in
//! `results/bench_baseline.json` and exits non-zero when a metric is
//! missing, has regressed below its floor, or when a floor key names a
//! metric no current bench emits (an orphan left behind by a rename) — so
//! a change that quietly erodes a proven speedup, or quietly disconnects
//! its guard, fails `bench-smoke` instead of landing.
//!
//! The floors are *ratios* (pool vs scoped, batched vs loop, post-swap vs
//! stale, shared vs isolated), not absolute throughputs, so the guard is
//! machine-independent. Run the benches first, quick mode with
//! `PEANUT_WORKERS=2` (what `bench-smoke` does):
//!
//! ```text
//! PEANUT_QUICK=1 PEANUT_WORKERS=2 cargo bench --bench query_serving \
//!   --bench drift_serving --bench multi_tenant_serving
//! cargo run -p peanut-bench --bin bench_check
//! ```

use peanut_bench::harness::{is_known_metric, read_metrics, results_dir};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let dir = results_dir();
    let baseline_path = dir.join("bench_baseline.json");
    let baseline = match read_metrics(&baseline_path) {
        Ok(b) if !b.is_empty() => b,
        Ok(_) => {
            eprintln!("bench_check: {} has no floors", baseline_path.display());
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };

    // gather every bench summary next to the baseline
    let mut measured: HashMap<String, f64> = HashMap::new();
    let mut summaries = 0usize;
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench_check: cannot list {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.starts_with("bench_") || !name.ends_with(".json") || name == "bench_baseline.json"
        {
            continue;
        }
        match read_metrics(&path) {
            Ok(metrics) => {
                summaries += 1;
                // a stale summary from an old run satisfies its floors
                // without anything having been re-measured; warn so a
                // local "all floors hold" is not false confidence (CI
                // writes every summary fresh in the same job)
                let age = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok());
                if let Some(age) = age.filter(|a| *a > Duration::from_secs(3600)) {
                    eprintln!(
                        "bench_check: warning: {name} is {}h old — re-run its \
                         bench for a fresh measurement",
                        age.as_secs() / 3600
                    );
                }
                measured.extend(metrics);
            }
            Err(e) => {
                eprintln!("bench_check: skipping {}: {e}", path.display());
            }
        }
    }
    if summaries == 0 {
        eprintln!(
            "bench_check: no bench_*.json summaries in {} — run the serving \
             benches (quick mode, PEANUT_WORKERS=2) first",
            dir.display()
        );
        return ExitCode::FAILURE;
    }

    println!(
        "bench_check: {summaries} summaries vs {}",
        baseline_path.display()
    );
    println!("{:<48} {:>9} {:>9}  status", "metric", "floor", "measured");
    let mut failures = 0usize;
    for (key, floor) in &baseline {
        // a floor whose metric no current bench emits is a leftover from a
        // rename: a stale summary could satisfy it forever (or it would sit
        // MISSING with no bench able to fix it) — fail loudly either way
        if !is_known_metric(key) {
            println!("{key:<48} {floor:>8.2}x {:>9}  ORPHANED", "-");
            eprintln!(
                "bench_check: floor `{key}` names a metric no current bench \
                 emits — update the floor key or the registry \
                 (harness::is_known_metric)"
            );
            failures += 1;
            continue;
        }
        match measured.get(key) {
            Some(&value) if value >= *floor => {
                println!("{key:<48} {floor:>8.2}x {value:>8.2}x  ok");
            }
            Some(&value) => {
                println!("{key:<48} {floor:>8.2}x {value:>8.2}x  REGRESSED");
                failures += 1;
            }
            None => {
                println!("{key:<48} {floor:>8.2}x {:>9}  MISSING", "-");
                failures += 1;
            }
        }
    }
    // measured-but-unfloored metrics are informational, never failures
    // (worker sweeps emit per-count variants only some runs produce)
    let mut extra: Vec<(&String, &f64)> = measured
        .iter()
        .filter(|(k, _)| baseline.iter().all(|(b, _)| b != *k))
        .collect();
    extra.sort_by_key(|&(k, _)| k);
    for (key, value) in extra {
        println!("{key:<48} {:>9} {value:>8.2}x  (no floor)", "-");
    }
    if failures > 0 {
        eprintln!("bench_check: {failures} metric(s) regressed or missing");
        return ExitCode::FAILURE;
    }
    println!("bench_check: all floors hold");
    ExitCode::SUCCESS
}
