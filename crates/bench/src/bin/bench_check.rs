//! CI bench-regression guard.
//!
//! The serving benches write their ratio metrics (the same numbers they
//! assert on) to `results/bench_<name>.json`. This binary compares the
//! latest run against the committed floors in
//! `results/bench_baseline.json` and exits non-zero when a metric is
//! missing, has regressed below its floor, or when a floor key names a
//! metric no current bench emits (an orphan left behind by a rename) — so
//! a change that quietly erodes a proven speedup, or quietly disconnects
//! its guard, fails `bench-smoke` instead of landing.
//!
//! The floors are *ratios* (pool vs scoped, batched vs loop, post-swap vs
//! stale, shared vs isolated, shed p99 vs FIFO p99), not absolute
//! throughputs, so the guard is machine-independent. Run the benches
//! first, quick mode with `PEANUT_WORKERS=2` (what `bench-smoke` does):
//!
//! ```text
//! PEANUT_QUICK=1 PEANUT_WORKERS=2 cargo bench --bench query_serving \
//!   --bench drift_serving --bench multi_tenant_serving
//! cargo run -p peanut-bench --bin bench_check
//! ```
//!
//! With `--readme` the binary instead prints the floors as a GitHub
//! markdown table (metric, committed floor, latest local measurement) —
//! the generated "Performance floors" section of the README:
//!
//! ```text
//! cargo run -p peanut-bench --bin bench_check -- --readme
//! ```

use peanut_bench::harness::{is_known_metric, read_metrics, results_dir};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

/// Every floor from `bench_baseline.json`, in file order.
fn load_baseline(path: &std::path::Path) -> Result<Vec<(String, f64)>, String> {
    match read_metrics(path) {
        Ok(b) if !b.is_empty() => Ok(b),
        Ok(_) => Err(format!("{} has no floors", path.display())),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Gathers every `bench_*.json` summary next to the baseline into one
/// metric map, returning the map and how many summary files contributed.
/// `warn_stale` prints an age warning for summaries older than an hour —
/// a stale summary satisfies its floors without anything having been
/// re-measured, so a local "all floors hold" must not be false confidence
/// (CI writes every summary fresh in the same job).
fn gather_measured(
    dir: &std::path::Path,
    warn_stale: bool,
) -> Result<(HashMap<String, f64>, usize), String> {
    let mut measured: HashMap<String, f64> = HashMap::new();
    let mut summaries = 0usize;
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.starts_with("bench_") || !name.ends_with(".json") || name == "bench_baseline.json"
        {
            continue;
        }
        match read_metrics(&path) {
            Ok(metrics) => {
                summaries += 1;
                let age = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok());
                if let Some(age) = age.filter(|a| warn_stale && *a > Duration::from_secs(3600)) {
                    eprintln!(
                        "bench_check: warning: {name} is {}h old — re-run its \
                         bench for a fresh measurement",
                        age.as_secs() / 3600
                    );
                }
                measured.extend(metrics);
            }
            Err(e) => {
                eprintln!("bench_check: skipping {}: {e}", path.display());
            }
        }
    }
    Ok((measured, summaries))
}

/// `--readme`: the floors as a markdown table for the README.
fn print_readme_table(baseline: &[(String, f64)], measured: &HashMap<String, f64>) {
    println!("| Metric | Committed floor | Latest measured |");
    println!("| --- | ---: | ---: |");
    for (key, floor) in baseline {
        let latest = measured
            .get(key)
            .map(|v| format!("{v:.2}×"))
            .unwrap_or_else(|| "—".to_string());
        println!("| `{key}` | {floor:.2}× | {latest} |");
    }
}

fn main() -> ExitCode {
    let readme_mode = std::env::args().any(|a| a == "--readme");
    let dir = results_dir();
    let baseline_path = dir.join("bench_baseline.json");
    let baseline = match load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (measured, summaries) = match gather_measured(&dir, !readme_mode) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };

    if readme_mode {
        // measured values are best-effort decoration here: the table must
        // be printable from a clean checkout with no local bench runs
        print_readme_table(&baseline, &measured);
        return ExitCode::SUCCESS;
    }

    if summaries == 0 {
        eprintln!(
            "bench_check: no bench_*.json summaries in {} — run the serving \
             benches (quick mode, PEANUT_WORKERS=2) first",
            dir.display()
        );
        return ExitCode::FAILURE;
    }

    println!(
        "bench_check: {summaries} summaries vs {}",
        baseline_path.display()
    );
    println!("{:<48} {:>9} {:>9}  status", "metric", "floor", "measured");
    let mut failures = 0usize;
    for (key, floor) in &baseline {
        // a floor whose metric no current bench emits is a leftover from a
        // rename: a stale summary could satisfy it forever (or it would sit
        // MISSING with no bench able to fix it) — fail loudly either way
        if !is_known_metric(key) {
            println!("{key:<48} {floor:>8.2}x {:>9}  ORPHANED", "-");
            eprintln!(
                "bench_check: floor `{key}` names a metric no current bench \
                 emits — update the floor key or the registry \
                 (harness::is_known_metric)"
            );
            failures += 1;
            continue;
        }
        match measured.get(key) {
            Some(&value) if value >= *floor => {
                println!("{key:<48} {floor:>8.2}x {value:>8.2}x  ok");
            }
            Some(&value) => {
                println!("{key:<48} {floor:>8.2}x {value:>8.2}x  REGRESSED");
                failures += 1;
            }
            None => {
                println!("{key:<48} {floor:>8.2}x {:>9}  MISSING", "-");
                failures += 1;
            }
        }
    }
    // measured-but-unfloored metrics are informational, never failures
    // (worker sweeps emit per-count variants only some runs produce)
    let mut extra: Vec<(&String, &f64)> = measured
        .iter()
        .filter(|(k, _)| baseline.iter().all(|(b, _)| b != *k))
        .collect();
    extra.sort_by_key(|&(k, _)| k);
    for (key, value) in extra {
        println!("{key:<48} {:>9} {value:>8.2}x  (no floor)", "-");
    }
    if failures > 0 {
        eprintln!("bench_check: {failures} metric(s) regressed or missing");
        return ExitCode::FAILURE;
    }
    println!("bench_check: all floors hold");
    ExitCode::SUCCESS
}
