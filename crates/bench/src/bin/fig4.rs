//! Figure 4 — materialized (actual) budget against target budget for
//! PEANUT at approximation levels ε ∈ {1.2, 6, 12} (log-log in the paper).
//!
//! Reproduces the paper's qualitative finding: the actual budget is far
//! below the target, and the gap widens as ε grows (coarser grids round
//! costs up more aggressively and leave more budget unused).

use peanut_bench::harness::{is_quick, run_offline, skewed_counts, Prepared};
use peanut_core::Variant;

fn main() {
    let (n_train, _) = skewed_counts();
    let targets: Vec<u64> = if is_quick() {
        vec![100, 10_000, 1_000_000]
    } else {
        vec![
            100,
            1_000,
            10_000,
            100_000,
            1_000_000,
            10_000_000,
            100_000_000,
        ]
    };
    println!("Figure 4: actual vs target budget for PEANUT at three eps levels");
    for name in ["Andes", "Hailfinder", "PathFinder"] {
        let p = Prepared::by_name(name);
        let train = p.skewed(n_train, 7);
        println!("{name}:");
        println!(
            "  {:>12} {:>14} {:>14} {:>14}",
            "target", "actual e=1.2", "actual e=6", "actual e=12"
        );
        for &target in &targets {
            let mut row = Vec::new();
            for eps in [1.2, 6.0, 12.0] {
                let (mat, _) = run_offline(&p, &train, target, eps, Variant::Peanut);
                row.push(mat.total_size());
            }
            println!(
                "  {:>12} {:>14} {:>14} {:>14}",
                target, row[0], row[1], row[2]
            );
        }
    }
}
