//! Table 3 — offline running times (seconds) for PEANUT (PEANUT+ in
//! parentheses) at ε ∈ {1.2, 6, 12} and INDSEP index construction.
//!
//! Matches the paper's setting: skewed training workload, budget `b_T / 10`
//! for PEANUT/PEANUT+, the smallest block size for INDSEP.

use peanut_bench::harness::{run_indsep, run_offline, skewed_counts, Prepared};
use peanut_core::Variant;

fn main() {
    let (n_train, _) = skewed_counts();
    println!("Table 3: offline running times in seconds, budget K = b_T/10");
    println!(
        "{:<12} {:>18} {:>18} {:>18} {:>10}",
        "dataset", "eps=1.2", "eps=6", "eps=12", "INDSEP"
    );
    for p in Prepared::all() {
        let train = p.skewed(n_train, 11);
        let budget = (p.b_t() / 10).max(1);
        let mut cols = Vec::new();
        for eps in [1.2, 6.0, 12.0] {
            let (_, t_peanut) = run_offline(&p, &train, budget, eps, Variant::Peanut);
            let (_, t_plus) = run_offline(&p, &train, budget, eps, Variant::PeanutPlus);
            cols.push(format!("{t_peanut:.3} ({t_plus:.3})"));
        }
        let (_, t_ind) = run_indsep(&p, 10);
        println!(
            "{:<12} {:>18} {:>18} {:>18} {:>10.4}",
            p.spec.name, cols[0], cols[1], cols[2], t_ind
        );
    }
}
