//! Table 1 — summary statistics of the Bayesian networks: ours (synthetic,
//! matched by construction) against the paper's originals.

use peanut_bench::harness::Prepared;

fn main() {
    println!("Table 1: summary statistics of Bayesian networks (ours vs paper)");
    println!(
        "{:<12} {:>7} {:>7} {:>12} {:>14} {:>10} {:>12}",
        "dataset", "nodes", "edges", "params", "params(paper)", "max-in", "max-in(ppr)"
    );
    for p in Prepared::all() {
        println!(
            "{:<12} {:>7} {:>7} {:>12} {:>14} {:>10} {:>12}",
            p.spec.name,
            p.bn.n_vars(),
            p.bn.n_edges(),
            p.bn.n_parameters(),
            p.spec.paper.parameters,
            p.bn.max_in_degree(),
            p.spec.paper.max_in_degree,
        );
    }
}
