//! Ablation studies for the design choices called out in `DESIGN.md`:
//!
//! 1. **Workload-awareness** — the paper's central claim: compare PEANUT+
//!    trained on the true (skewed) workload against the same machinery
//!    trained on an uninformative uniform workload, evaluated on skewed
//!    test queries.
//! 2. **Online conflict resolution** — GWMIN over overlapping shortcuts vs
//!    naive first-fit in ratio order (disjointness enforced greedily at
//!    materialization time instead).
//! 3. **Grid resolution** — ε sweep of solution quality at fixed budget.

use peanut_bench::harness::{mean, run_offline, savings_percent, skewed_counts, Prepared};
use peanut_core::Variant;

fn main() {
    let (n_train, n_test) = skewed_counts();
    println!("Ablation 1: workload-aware vs workload-agnostic training (PEANUT+, K = b_T)");
    println!(
        "{:<12} {:>16} {:>18} {:>10}",
        "dataset", "aware mean %", "agnostic mean %", "delta"
    );
    for p in Prepared::all() {
        let train_skew = p.skewed(n_train, 11);
        let train_unif = p.uniform(n_train, 15);
        let test = p.skewed(n_test, 12);
        // a *contested* budget: with K = 10^4 b_T everything beneficial fits
        // either way and awareness cannot show; at K = b_T the methods must
        // choose, which is where the workload signal pays.
        let budget = p.b_t();
        let (aware, _) = run_offline(&p, &train_skew, budget, 1.2, Variant::PeanutPlus);
        let (agnostic, _) = run_offline(&p, &train_unif, budget, 1.2, Variant::PeanutPlus);
        let s_aware = mean(&savings_percent(&p, &aware, &test));
        let s_agn = mean(&savings_percent(&p, &agnostic, &test));
        println!(
            "{:<12} {:>16.2} {:>18.2} {:>+10.2}",
            p.spec.name,
            s_aware,
            s_agn,
            s_aware - s_agn
        );
    }

    println!("\nAblation 2: epsilon sweep at fixed budget (PEANUT+, K = 10 b_T, skewed)");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "dataset", "e=1.05", "e=1.2", "e=6", "e=12"
    );
    for p in Prepared::all() {
        let train = p.skewed(n_train, 11);
        let test = p.skewed(n_test, 12);
        let budget = p.b_t().saturating_mul(10);
        let mut row = Vec::new();
        for eps in [1.05, 1.2, 6.0, 12.0] {
            let (mat, _) = run_offline(&p, &train, budget, eps, Variant::PeanutPlus);
            row.push(mean(&savings_percent(&p, &mat, &test)));
        }
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            p.spec.name, row[0], row[1], row[2], row[3]
        );
    }
}
