//! Figure 8 — robustness to workload drift, skewed-trained: average cost of
//! processing Q′ = λ·skewed + (1−λ)·uniform for JT, PEANUT and PEANUT+
//! materialized on the *skewed* workload (K = 10·b_T, ε = 1.2).

use peanut_bench::harness::{drifted, evaluate, run_offline, Prepared};
use peanut_core::Variant;

/// Shared by fig8/fig9: `primary_skewed` selects which workload trains the
/// materialization and anchors λ.
pub fn run_drift(primary_skewed: bool) {
    let n_pool = 500;
    let n_test = 500;
    for p in Prepared::all() {
        let skew = p.skewed(n_pool, 41);
        let unif = p.uniform(n_pool, 42);
        let (train, other) = if primary_skewed {
            (&skew, &unif)
        } else {
            (&unif, &skew)
        };
        let budget = p.b_t().saturating_mul(10);
        let (pea, _) = run_offline(&p, train, budget, 1.2, Variant::Peanut);
        let (plus, _) = run_offline(&p, train, budget, 1.2, Variant::PeanutPlus);
        println!("{}:", p.spec.name);
        println!(
            "    {:>6} {:>16} {:>16} {:>16}",
            "lambda", "JT", "PEANUT", "PEANUT+"
        );
        for (i, lambda) in [0.0, 0.25, 0.5, 0.75, 1.0].into_iter().enumerate() {
            let test = drifted(train, other, lambda, n_test, 100 + i as u64);
            let (with_pea, base) = evaluate(&p, &pea, &test);
            let (with_plus, _) = evaluate(&p, &plus, &test);
            println!(
                "    {:>6.2} {:>16} {:>16} {:>16}",
                lambda,
                base / n_test as u128,
                with_pea / n_test as u128,
                with_plus / n_test as u128,
            );
        }
    }
}

fn main() {
    println!("Figure 8: robustness to drift, materialization trained on the SKEWED workload");
    println!("(avg cost of Q' = lambda*skewed + (1-lambda)*uniform)");
    run_drift(true);
}
