//! Figure 3 — wall-clock running time against the operation-count cost
//! model, for queries processed with the standard junction-tree algorithm.
//! Reports the Pearson correlation per dataset (the paper finds ≈ 0.98–0.99
//! on Andes, Hailfinder and PathFinder).
//!
//! Queries whose intermediate tables exceed the dense-materialization cap
//! are skipped (these are the paper's ">1 minute" outliers); the count is
//! reported.

use peanut_bench::harness::{is_quick, pearson, Prepared};
use peanut_junction::QueryEngine;
use std::time::Instant;

fn main() {
    let n_queries = if is_quick() { 40 } else { 150 };
    println!("Figure 3: running time vs operation count (standard JT algorithm)");
    for name in ["Andes", "Hailfinder", "PathFinder"] {
        let p = Prepared::by_name(name);
        let engine = match QueryEngine::numeric(&p.tree, &p.bn) {
            Ok(e) => e,
            Err(e) => {
                println!("{name}: calibration infeasible ({e}); skipped");
                continue;
            }
        };
        let queries = p.skewed(n_queries, 33);
        let mut ops_v = Vec::new();
        let mut time_v = Vec::new();
        let mut skipped = 0usize;
        for q in &queries {
            // best-of-3 wall time per query to suppress scheduler noise on
            // the sub-millisecond ones
            let mut best: Option<(f64, u64)> = None;
            let mut failed = false;
            for _ in 0..3 {
                let t0 = Instant::now();
                match engine.answer(q) {
                    Ok((_, cost)) => {
                        let dt = t0.elapsed().as_secs_f64();
                        if best.is_none_or(|(b, _)| dt < b) {
                            best = Some((dt, cost.ops));
                        }
                    }
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            match (failed, best) {
                (false, Some((dt, ops))) => {
                    ops_v.push(ops as f64);
                    time_v.push(dt);
                }
                _ => skipped += 1,
            }
        }
        let r = pearson(&ops_v, &time_v);
        println!(
            "{name:<12} queries {:>4}  skipped {skipped:>3}  Pearson correlation: {r:.3}",
            ops_v.len()
        );
        // a few sample rows (ops, seconds), like the scatter in the paper
        let mut idx: Vec<usize> = (0..ops_v.len()).collect();
        idx.sort_by(|&a, &b| ops_v[a].partial_cmp(&ops_v[b]).expect("finite"));
        for &i in idx.iter().step_by((idx.len() / 6).max(1)) {
            println!("    ops {:>14.0}   time {:>10.6}s", ops_v[i], time_v[i]);
        }
    }
}
