//! Figure 6 — average cost savings against the Steiner-tree diameter of
//! the query, for INDSEP, PEANUT and PEANUT+ (skewed workload; per query
//! the maximum savings over the considered budgets, as in the paper).

use peanut_bench::harness::{indsep_blocks, run_indsep, run_offline, skewed_counts, Prepared};
use peanut_core::{Materialization, OnlineEngine, Variant};
use peanut_junction::{QueryEngine, RootedTree, SteinerTree};
use std::collections::BTreeMap;

/// Per-diameter average of max savings (absolute operations) over configs.
fn series(
    p: &Prepared,
    mats: &[Materialization],
    test: &[peanut_pgm::Scope],
) -> BTreeMap<usize, f64> {
    let engine = QueryEngine::symbolic(&p.tree);
    let rooted = RootedTree::new(&p.tree);
    let mut acc: BTreeMap<usize, (f64, usize)> = BTreeMap::new();
    for q in test {
        let Ok(st) = SteinerTree::extract(&p.tree, &rooted, q) else {
            continue;
        };
        let diam = st.diameter(&rooted);
        let base = engine.cost(q).expect("cost").ops as f64;
        let mut best_savings = 0.0f64;
        for mat in mats {
            let online = OnlineEngine::new(&engine, mat);
            let with = online.cost(q).expect("cost").ops as f64;
            best_savings = best_savings.max(base - with);
        }
        let e = acc.entry(diam).or_insert((0.0, 0));
        e.0 += best_savings;
        e.1 += 1;
    }
    acc.into_iter()
        .map(|(d, (s, c))| (d, s / c as f64))
        .collect()
}

fn main() {
    let (n_train, n_test) = skewed_counts();
    println!("Figure 6: average cost savings vs Steiner-tree diameter (skewed workload)");
    for p in Prepared::all() {
        let train = p.skewed(n_train, 11);
        let test = p.skewed(n_test, 12);

        let ind_mats: Vec<Materialization> = [
            indsep_blocks()[0],
            indsep_blocks()[indsep_blocks().len() / 2],
            *indsep_blocks().last().expect("non-empty"),
        ]
        .iter()
        .map(|&b| run_indsep(&p, b).0)
        .collect();
        let peanut_mats: Vec<Materialization> = [0.1f64, 10.0, 10_000.0]
            .iter()
            .map(|&m| {
                run_offline(
                    &p,
                    &train,
                    ((p.b_t() as f64) * m).max(1.0) as u64,
                    1.2,
                    Variant::Peanut,
                )
                .0
            })
            .collect();
        let plus_mats: Vec<Materialization> = [0.1f64, 10.0, 10_000.0]
            .iter()
            .map(|&m| {
                run_offline(
                    &p,
                    &train,
                    ((p.b_t() as f64) * m).max(1.0) as u64,
                    1.2,
                    Variant::PeanutPlus,
                )
                .0
            })
            .collect();

        println!("{}:", p.spec.name);
        for (label, mats) in [
            ("INDSEP", &ind_mats),
            ("PEANUT", &peanut_mats),
            ("PEANUT+", &plus_mats),
        ] {
            let s = series(&p, mats, &test);
            let row: Vec<String> = s.iter().map(|(d, avg)| format!("d={d}:{avg:.1}")).collect();
            println!("    {label:<8} {}", row.join("  "));
        }
    }
}
