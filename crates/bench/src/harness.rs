//! Shared experiment plumbing: dataset preparation, workloads with the
//! paper's parameters, method runners and small statistics helpers.

use peanut_core::{
    Materialization, OfflineContext, OnlineEngine, Peanut, PeanutConfig, Variant, Workload,
};
use peanut_datasets::DatasetSpec;
use peanut_indsep::build_index;
use peanut_junction::{build_junction_tree, JunctionTree, QueryEngine, RootedTree};
use peanut_pgm::{BayesianNetwork, Scope, Size};
use peanut_workload::{mix, skewed_queries, uniform_queries, QuerySpec};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// A dataset instantiated and ready for experiments.
pub struct Prepared {
    /// The generator spec (with the paper's reference numbers).
    pub spec: DatasetSpec,
    /// The synthetic network.
    pub bn: BayesianNetwork,
    /// Its junction tree (pivot = clique 0, the paper's "arbitrary node").
    pub tree: JunctionTree,
}

impl Prepared {
    /// Builds a dataset by spec.
    pub fn new(spec: DatasetSpec) -> Self {
        let bn = spec.build().expect("dataset generators are validated");
        let tree = build_junction_tree(&bn).expect("junction tree construction");
        Prepared { spec, bn, tree }
    }

    /// All eight datasets.
    pub fn all() -> Vec<Prepared> {
        peanut_datasets::all_datasets()
            .into_iter()
            .map(Prepared::new)
            .collect()
    }

    /// By name.
    pub fn by_name(name: &str) -> Prepared {
        Prepared::new(peanut_datasets::dataset(name).expect("known dataset"))
    }

    /// The budget unit `b_T`: total separator potential size.
    pub fn b_t(&self) -> Size {
        self.tree.total_separator_size().max(1)
    }

    /// The paper's *skewed* workload: `n` queries, sizes 1–5, variable
    /// probability ∝ distance from the pivot.
    pub fn skewed(&self, n: usize, seed: u64) -> Vec<Scope> {
        let rooted = RootedTree::new(&self.tree);
        skewed_queries(&self.tree, &rooted, n, QuerySpec::default(), seed)
    }

    /// The paper's *uniform* workload.
    pub fn uniform(&self, n: usize, seed: u64) -> Vec<Scope> {
        uniform_queries(self.bn.domain(), n, QuerySpec::default(), seed)
    }
}

/// `--quick` mode (env `PEANUT_QUICK=1` or argv flag): smaller query counts
/// so the whole suite runs in CI time.
pub fn is_quick() -> bool {
    std::env::args().any(|a| a == "--quick")
        || quick_env_enabled(std::env::var("PEANUT_QUICK").ok().as_deref())
}

/// Parses the `PEANUT_QUICK` value: unset, empty, `0`, `false`, `off` and
/// `no` (case-insensitive) mean a full run; anything else enables quick
/// mode. The mere *presence* of the variable must not count —
/// `PEANUT_QUICK=0` is how a caller explicitly asks for the full stream.
pub fn quick_env_enabled(value: Option<&str>) -> bool {
    match value {
        None => false,
        Some(v) => {
            let v = v.trim();
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("no"))
        }
    }
}

/// Query counts for the skewed experiments: (train, test).
pub fn skewed_counts() -> (usize, usize) {
    if is_quick() {
        (300, 150)
    } else {
        (2000, 1000)
    }
}

/// Query count for the uniform experiments (train = test, as in §5.1).
pub fn uniform_count() -> usize {
    if is_quick() {
        100
    } else {
        250
    }
}

/// Worker threads for the LRDP fan-out.
pub fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker-thread counts for the serving scaling sweeps. One flag drives
/// every serving bench (`query_serving`, `drift_serving`): set
/// `PEANUT_WORKERS="1,2,4,8"` (or a single count) to sweep explicit pool
/// sizes; unset (or unparsable) means `[0]` — one worker per available
/// core, the serving default.
pub fn worker_sweep() -> Vec<usize> {
    match std::env::var("PEANUT_WORKERS") {
        Ok(s) => {
            // all-or-nothing: a mistyped token must not silently shrink
            // the sweep to a different study than the one requested
            // (split always yields ≥1 token, and empty tokens fail to
            // parse, so the Ok list is never empty)
            match s
                .split(',')
                .map(|t| t.trim().parse())
                .collect::<Result<Vec<usize>, _>>()
            {
                Ok(v) => v,
                Err(_) => {
                    eprintln!(
                        "PEANUT_WORKERS={s:?} is not a comma-separated list of \
                         counts; using the per-core default"
                    );
                    vec![0]
                }
            }
        }
        Err(_) => vec![0],
    }
}

/// The directory bench artifacts (`.txt` logs, `.json` summaries) land
/// in. Overridable via `PEANUT_RESULTS_DIR`; defaults to the workspace's
/// `results/` regardless of the process working directory (cargo runs
/// benches from the package root, binaries from the caller's cwd).
pub fn results_dir() -> PathBuf {
    if let Ok(d) = std::env::var("PEANUT_RESULTS_DIR") {
        return PathBuf::from(d);
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the workspace root")
        .join("results")
}

/// A machine-readable summary of one bench run: the ratio metrics the
/// bench also asserts on, written as flat JSON
/// (`results/bench_<name>.json`) so the CI regression guard
/// (`bench_check`) can compare them against committed floors without a
/// serde dependency.
pub struct BenchSummary {
    bench: String,
    metrics: Vec<(String, f64)>,
}

impl BenchSummary {
    /// A summary for the bench called `bench` (keys are namespaced as
    /// `<bench>.<metric>`).
    pub fn new(bench: &str) -> Self {
        BenchSummary {
            bench: bench.to_string(),
            metrics: Vec::new(),
        }
    }

    /// Records one metric.
    pub fn push(&mut self, metric: &str, value: f64) {
        self.metrics
            .push((format!("{}.{metric}", self.bench), value));
    }

    /// Writes `results/bench_<name>.json`, creating the directory if
    /// needed, and returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        self.write_to(&results_dir())
    }

    /// Like [`write`](Self::write) into an explicit directory.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("bench_{}.json", self.bench));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{{")?;
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            writeln!(f, "  \"{k}\": {v:.6}{comma}")?;
        }
        writeln!(f, "}}")?;
        Ok(path)
    }
}

/// True when `key` is a metric some *current* bench can emit.
///
/// `bench_check` fails any baseline floor whose key is not in this
/// registry: without it, renaming a metric silently orphans its floor —
/// the old key would simply never be measured again and the guard it
/// encoded would evaporate. Keep this list in sync with the
/// `BenchSummary::push` calls across `crates/bench/benches/`.
pub fn is_known_metric(key: &str) -> bool {
    const EXACT: &[&str] = &[
        "cold_start.rehydrate_speedup",
        "drift_serving.swap_improvement",
        "evidence_sessions.session_speedup",
        "multi_tenant_serving.shared_pool_speedup",
        "multi_tenant_serving.overload_p99_ratio",
        "potential_ops.product_speedup",
        "potential_ops.product_many_speedup",
        "potential_ops.marginalize_speedup",
        "potential_ops.divide_speedup",
    ];
    // per-worker-count families: `<prefix><N>` for any integer N
    const PER_WORKER: &[&str] = &[
        "query_serving.serving_speedup_cold_w",
        "query_serving.pool_vs_scoped_hot_w",
        "query_serving.overload_p99_ratio_w",
    ];
    EXACT.contains(&key)
        || PER_WORKER.iter().any(|p| {
            key.strip_prefix(p)
                .is_some_and(|n| !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()))
        })
}

/// Parses a flat `{"key": number, ...}` JSON file as written by
/// [`BenchSummary::write`] (and by hand for the committed baseline).
/// Deliberately minimal: objects of string→number pairs only.
pub fn read_metrics(path: &Path) -> std::io::Result<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path)?;
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let inner = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| bad(format!("{}: not a JSON object", path.display())))?;
    let mut out = Vec::new();
    for pair in inner.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| bad(format!("{}: malformed pair {pair:?}", path.display())))?;
        let key = k
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| bad(format!("{}: unquoted key {k:?}", path.display())))?;
        let value: f64 = v
            .trim()
            .parse()
            .map_err(|_| bad(format!("{}: non-numeric value {v:?}", path.display())))?;
        out.push((key.to_string(), value));
    }
    Ok(out)
}

/// Builds a PEANUT/PEANUT+ materialization, returning it with the offline
/// wall-clock seconds.
pub fn run_offline(
    prepared: &Prepared,
    train: &[Scope],
    budget: Size,
    epsilon: f64,
    variant: Variant,
) -> (Materialization, f64) {
    let workload = Workload::from_queries(train.iter().cloned());
    let ctx = OfflineContext::new(&prepared.tree, &workload).expect("workload fits tree");
    let cfg = PeanutConfig {
        budget,
        epsilon,
        threads: threads(),
        variant,
    };
    let t0 = Instant::now();
    let mat = Peanut::offline(&ctx, &cfg);
    (mat, t0.elapsed().as_secs_f64())
}

/// Builds the INDSEP materialization for a block size, with build seconds.
pub fn run_indsep(prepared: &Prepared, block: Size) -> (Materialization, f64) {
    let rooted = RootedTree::new(&prepared.tree);
    let t0 = Instant::now();
    let idx = build_index(&prepared.tree, &rooted, block, None).expect("indsep build");
    (idx.materialization, t0.elapsed().as_secs_f64())
}

/// Evaluates a workload symbolically: total ops with the materialization
/// and total ops with the plain junction tree.
pub fn evaluate(prepared: &Prepared, mat: &Materialization, test: &[Scope]) -> (u128, u128) {
    let engine = QueryEngine::symbolic(&prepared.tree);
    let online = OnlineEngine::new(&engine, mat);
    let mut with: u128 = 0;
    let mut base: u128 = 0;
    for q in test {
        with += online.cost(q).expect("cost").ops as u128;
        base += online.baseline_cost(q).expect("cost").ops as u128;
    }
    (with, base)
}

/// Per-query savings percentages (0 when the shortcut set does not help).
pub fn savings_percent(prepared: &Prepared, mat: &Materialization, test: &[Scope]) -> Vec<f64> {
    let engine = QueryEngine::symbolic(&prepared.tree);
    let online = OnlineEngine::new(&engine, mat);
    test.iter()
        .map(|q| {
            let base = online.baseline_cost(q).expect("cost").ops as f64;
            let with = online.cost(q).expect("cost").ops as f64;
            if base > 0.0 {
                100.0 * (base - with) / base
            } else {
                0.0
            }
        })
        .collect()
}

/// Mixes two query pools: λ from `primary`, 1−λ from `secondary` (§5.3).
pub fn drifted(
    primary: &[Scope],
    secondary: &[Scope],
    lambda: f64,
    n: usize,
    seed: u64,
) -> Vec<Scope> {
    mix(primary, secondary, lambda, n, seed)
}

/// The INDSEP block-size candidates of §5.1.
pub fn indsep_blocks() -> Vec<Size> {
    vec![
        10, 20, 50, 100, 150, 500, 1000, 5_000, 50_000, 500_000, 5_000_000,
    ]
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Percentile (nearest-rank) of a sample.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Pearson correlation coefficient.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Formats a large number the way the paper prints its figures (`3.10x10+6`).
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let exp = x.abs().log10().floor() as i32;
    let mant = x / 10f64.powi(exp);
    format!("{mant:.2}x10{exp:+}")
}

/// The `JunctionTree` type re-exported for binaries.
pub type Tree = JunctionTree;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn quick_env_parses_the_value_not_the_presence() {
        // the regression: PEANUT_QUICK=0 (or empty) used to enable quick
        // mode because only presence was checked
        assert!(!quick_env_enabled(None));
        assert!(!quick_env_enabled(Some("0")));
        assert!(!quick_env_enabled(Some("")));
        assert!(!quick_env_enabled(Some("  ")));
        assert!(!quick_env_enabled(Some("false")));
        assert!(!quick_env_enabled(Some("OFF")));
        assert!(!quick_env_enabled(Some("no")));
        assert!(quick_env_enabled(Some("1")));
        assert!(quick_env_enabled(Some("true")));
        assert!(quick_env_enabled(Some("yes")));
    }

    #[test]
    fn known_metric_registry_matches_bench_emissions() {
        for key in [
            "cold_start.rehydrate_speedup",
            "drift_serving.swap_improvement",
            "evidence_sessions.session_speedup",
            "multi_tenant_serving.shared_pool_speedup",
            "potential_ops.product_speedup",
            "potential_ops.product_many_speedup",
            "potential_ops.marginalize_speedup",
            "potential_ops.divide_speedup",
            "query_serving.serving_speedup_cold_w2",
            "query_serving.pool_vs_scoped_hot_w16",
            "query_serving.overload_p99_ratio_w2",
            "multi_tenant_serving.overload_p99_ratio",
        ] {
            assert!(is_known_metric(key), "{key} should be known");
        }
        for key in [
            "query_serving.serving_speedup_cold_w",   // no worker count
            "query_serving.serving_speedup_cold_w2x", // trailing garbage
            "query_serving.renamed_metric",
            "potential_ops.restrict_speedup", // not emitted
            "unknown_bench.anything",
            "",
        ] {
            assert!(!is_known_metric(key), "{key} should be unknown");
        }
    }

    #[test]
    fn worker_sweep_parses_the_flag() {
        // no flag set in the test environment: serving default
        if std::env::var("PEANUT_WORKERS").is_err() {
            assert_eq!(worker_sweep(), vec![0]);
        }
    }

    #[test]
    fn bench_summary_roundtrip() {
        let dir = std::env::temp_dir().join(format!("peanut-summary-{}", std::process::id()));
        let mut s = BenchSummary::new("demo");
        s.push("speedup", 1.5);
        s.push("floor", 0.25);
        let path = s.write_to(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "bench_demo.json");
        let metrics = read_metrics(&path).unwrap();
        assert_eq!(
            metrics,
            vec![
                ("demo.speedup".to_string(), 1.5),
                ("demo.floor".to_string(), 0.25),
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_metrics_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("peanut-badjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(read_metrics(&path).is_err());
        std::fs::write(&path, "{\"k\": \"string\"}").unwrap();
        assert!(read_metrics(&path).is_err());
        std::fs::write(&path, "{}").unwrap();
        assert_eq!(read_metrics(&path).unwrap(), vec![]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sci_format() {
        assert_eq!(sci(3_100_000.0), "3.10x10+6");
        assert_eq!(sci(0.0), "0");
    }

    #[test]
    fn prepared_dataset_smoke() {
        let p = Prepared::by_name("Child");
        assert_eq!(p.bn.n_vars(), 20);
        assert!(p.b_t() > 0);
        let q = p.skewed(20, 1);
        assert_eq!(q.len(), 20);
        let (mat, secs) = run_offline(&p, &q, p.b_t() * 10, 6.0, Variant::PeanutPlus);
        assert!(secs >= 0.0);
        let test = p.skewed(10, 2);
        let (with, base) = evaluate(&p, &mat, &test);
        assert!(with <= base);
    }
}
