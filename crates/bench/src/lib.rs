#![forbid(unsafe_code)]
//! # peanut-bench
//!
//! The reproduction harness: one binary per paper table/figure (see
//! `src/bin/`) plus the shared plumbing in [`harness`]. The `repro` binary
//! runs everything and writes `results/*.txt`.
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table 1 — Bayesian-network summary statistics |
//! | `table2` | Table 2 — junction-tree summary statistics |
//! | `table3` | Table 3 — offline running times (PEANUT / PEANUT+ / INDSEP) |
//! | `table4` | Table 4 — materialization phase: disk space and time |
//! | `fig3`   | Figure 3 — running time vs operation count (Pearson r) |
//! | `fig4`   | Figure 4 — actual vs target budget across ε |
//! | `fig5`   | Figure 5 — cost-savings distribution vs materialized budget |
//! | `fig6`   | Figure 6 — savings vs Steiner-tree diameter |
//! | `fig7`   | Figure 7 — per-method average query cost (uniform workload) |
//! | `fig8`   | Figure 8 — robustness to drift (skewed-trained) |
//! | `fig9`   | Figure 9 — robustness to drift (uniform-trained) |
//! | `fig10`  | Figure 10 — impact of the query-log size |
//!
//! Beyond the paper, `bench_check` is the CI bench-regression guard: it
//! compares the ratio metrics the serving benches write to
//! `results/bench_*.json` against the committed floors in
//! `results/bench_baseline.json` and fails on any regression.

pub mod harness;
