//! Junction-tree construction and calibration benchmarks per dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peanut_junction::{build_junction_tree, NumericState, RootedTree};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("junction_tree_build");
    for name in ["Child", "Hailfinder", "Andes", "Munin"] {
        let bn = peanut_datasets::dataset(name)
            .expect("dataset")
            .build()
            .expect("network");
        g.bench_with_input(BenchmarkId::from_parameter(name), &bn, |b, bn| {
            b.iter(|| black_box(build_junction_tree(bn).expect("tree")))
        });
    }
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("calibration");
    g.sample_size(10);
    for name in ["Child", "Hailfinder"] {
        let bn = peanut_datasets::dataset(name)
            .expect("dataset")
            .build()
            .expect("network");
        let tree = build_junction_tree(&bn).expect("tree");
        let rooted = RootedTree::new(&tree);
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                let mut ns = NumericState::initialize(&tree, &bn).expect("init");
                ns.calibrate(&tree, &rooted).expect("calibrate");
                black_box(ns)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_calibration);
criterion_main!(benches);
