//! Serving-path benchmarks: batched concurrent query serving vs the
//! single-threaded per-query loop, on the same calibrated + materialized
//! tree and the same workload mix.
//!
//! Besides the criterion timings, the bench prints an explicit
//! `serving_speedup` line (batched throughput / single-thread-loop
//! throughput): the batched path must win through in-batch coalescing and
//! scratch reuse even on one core, and additionally through the worker
//! pool on multi-core hosts.
//!
//! A second acceptance study measures the *persistent* worker pool against
//! the scoped spawn-per-batch baseline on small hot batches (100 waves of
//! 8 fresh queries): at 2 workers the parked pool must deliver ≥ 1.2× the
//! scoped throughput — the spawn-latency shave the pool exists for.
//!
//! A third, open-loop, study saturates the engine: a Poisson arrival
//! process offers ~3× the measured closed-loop capacity, and served-query
//! sojourn p99 is compared between the unprotected FIFO baseline (backlog
//! grows without bound, every answer arrives arbitrarily late) and
//! deadline shedding (queries whose queueing wait blew the budget are
//! shed, keeping p99 near the deadline). All ratio metrics land in
//! `results/bench_query_serving.json` for the CI regression guard
//! (`bench_check`).

use criterion::{criterion_group, criterion_main, Criterion};
use peanut_bench::harness::{is_quick, worker_sweep, BenchSummary};
use peanut_core::{OfflineContext, OnlineEngine, Peanut, PeanutConfig, Workload};
use peanut_junction::{build_junction_tree, JunctionTree, QueryEngine, RootedTree};
use peanut_pgm::Scope;
use peanut_pgm::{fixtures, BayesianNetwork, Scratch};
use peanut_serving::{
    poisson_arrivals, replay, replay_open_loop, workload_queries, AdmissionConfig, OpenLoopConfig,
    ReplayClock, ReplayConfig, ServeOutcome, ServeRequest, ServingConfig, ServingEngine, SpawnMode,
    WorkloadMix,
};
use peanut_workload::QuerySpec;
use std::hint::black_box;
use std::time::{Duration, Instant};

const BATCH: usize = 128;
/// The small-hot-batch study: this many waves…
const HOT_WAVES: usize = 100;
/// …of this many fresh queries each (well under `BATCH`: the regime where
/// per-batch thread spawning dominates).
const HOT_BATCH: usize = 8;
/// Dispatch quantum of the open-loop saturation study: small enough that
/// the deadline check runs often, large enough to keep the pool fed.
const OVERLOAD_BATCH: usize = 32;

/// Arrival count for the open-loop saturation study (longer than the
/// closed-loop stream: the FIFO collapse needs time to accumulate).
fn overload_n() -> usize {
    if is_quick() {
        1024
    } else {
        2048
    }
}

/// Stream length (`--quick` / `PEANUT_QUICK=1` shrinks it so the CI
/// bench-smoke job finishes in minutes).
fn n_queries() -> usize {
    if is_quick() {
        256
    } else {
        512
    }
}

fn pool_size() -> usize {
    if is_quick() {
        48
    } else {
        96
    }
}

struct Setup {
    bn: BayesianNetwork,
    tree: JunctionTree,
}

fn setup() -> Setup {
    let bn = fixtures::chain(26, 2, 13);
    let tree = build_junction_tree(&bn).expect("tree");
    Setup { bn, tree }
}

fn queries_for(tree: &JunctionTree) -> Vec<ServeRequest> {
    let rooted = RootedTree::new(tree);
    let mix = WorkloadMix {
        spec: QuerySpec {
            min_vars: 1,
            max_vars: 4,
        },
        pool_size: pool_size(),
        ..WorkloadMix::default()
    };
    workload_queries(tree, &rooted, n_queries(), &mix, 99)
}

fn materialized_engine<'t>(
    setup: &'t Setup,
    queries: &[ServeRequest],
) -> (QueryEngine<'t>, peanut_core::Materialization) {
    let engine = QueryEngine::numeric(&setup.tree, &setup.bn).expect("calibrates");
    let train: Vec<peanut_pgm::Scope> = queries.iter().map(ServeRequest::stat_scope).collect();
    let ctx = OfflineContext::new(&setup.tree, &Workload::from_queries(train)).expect("context");
    let (mat, _) = Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(4096),
        engine.numeric_state().expect("numeric"),
    )
    .expect("materializes");
    (engine, mat)
}

/// The baseline a non-serving caller runs: one query at a time, in order,
/// no coalescing, no scratch carry-over.
fn single_thread_loop(online: &OnlineEngine<'_, '_>, queries: &[ServeRequest]) -> usize {
    let mut answered = 0;
    for q in queries {
        let ok = if q.is_marginal() {
            online.answer(&q.targets).is_ok()
        } else {
            online.conditional(&q.targets, &q.evidence).is_ok()
        };
        answered += usize::from(ok);
    }
    answered
}

fn bench_query_serving(c: &mut Criterion) {
    let setup = setup();
    let queries = queries_for(&setup.tree);
    let (engine, mat) = materialized_engine(&setup, &queries);
    let engine = std::sync::Arc::new(engine);
    let mat = std::sync::Arc::new(mat);
    let online = OnlineEngine::new(&engine, &mat);

    let mut g = c.benchmark_group("query_serving");
    g.bench_function(format!("single_thread_loop_{}q", queries.len()), |b| {
        b.iter(|| black_box(single_thread_loop(&online, &queries)))
    });

    // steady-state serving: the engine (and its answer cache) persists
    // across iterations, as it would across arrival waves in a server.
    // PEANUT_WORKERS=1,2,4 sweeps the pool size (the multi-core scaling
    // study); unset means one worker per core.
    for workers in worker_sweep() {
        let serving = ServingEngine::from_shared(
            engine.clone(),
            mat.clone(),
            ServingConfig {
                workers,
                ..ServingConfig::default()
            },
        );
        g.bench_function(
            format!(
                "batched_serving_{}q_steady_w{}",
                queries.len(),
                serving.workers()
            ),
            |b| {
                b.iter(|| {
                    black_box(replay(
                        &serving,
                        &queries,
                        &ReplayConfig { batch_size: BATCH },
                    ))
                })
            },
        );
    }
    g.finish();

    // explicit acceptance measurement, cache-cold: a fresh engine drains
    // the full stream once vs the same stream through the per-query loop
    let mut summary = BenchSummary::new("query_serving");
    let t = Instant::now();
    let answered = single_thread_loop(&online, &queries);
    let loop_time = t.elapsed();
    assert_eq!(answered, queries.len());
    let loop_qps = queries.len() as f64 / loop_time.as_secs_f64();
    for workers in worker_sweep() {
        let cold = ServingEngine::from_shared(
            engine.clone(),
            mat.clone(),
            ServingConfig {
                workers,
                ..ServingConfig::default()
            },
        );
        let report = replay(&cold, &queries, &ReplayConfig { batch_size: BATCH });
        assert_eq!(report.errors, 0);
        let speedup = report.throughput_qps / loop_qps;
        println!(
            "query_serving/serving_speedup_cold_w{:<2}             {:.2}x  \
             (loop {:.0} q/s vs batched {:.0} q/s, {} workers, {} computed of {} queries, \
             p50 {:?} p99 {:?})",
            cold.workers(),
            speedup,
            loop_qps,
            report.throughput_qps,
            cold.workers(),
            report.computed(),
            report.queries,
            report.latency_p50,
            report.latency_p99,
        );
        summary.push(
            &format!("serving_speedup_cold_w{}", cold.workers()),
            speedup,
        );
    }

    // --- small-hot-batch acceptance: persistent pool vs scoped spawn ---
    // a server draining many small waves pays the per-batch thread spawn
    // in the scoped design on every single wave; the parked pool pays it
    // once. Caching is disabled so every wave carries fresh work, and the
    // queries are cheap adjacent-pair marginals — the regime where spawn
    // latency, not compute, dominates the wall clock.
    let hot_batch: Vec<ServeRequest> = (0..HOT_BATCH as u32)
        .map(|a| ServeRequest::marginal(Scope::from_indices(&[a, a + 1])))
        .collect();
    for workers in worker_sweep() {
        let hot_engine = |spawn: SpawnMode| {
            ServingEngine::from_shared(
                engine.clone(),
                mat.clone(),
                ServingConfig {
                    workers,
                    cache_capacity: 0,
                    spawn,
                    ..ServingConfig::default()
                },
            )
        };
        let drive = |serving: &ServingEngine<'_>| -> Duration {
            serving.warm_pool();
            serving.serve_batch(&hot_batch); // warmup wave for both modes
            let t = Instant::now();
            for _ in 0..HOT_WAVES {
                let (answers, _) = serving.serve_batch(&hot_batch);
                assert!(
                    answers.iter().all(ServeOutcome::is_served),
                    "hot waves must be error-free"
                );
            }
            t.elapsed()
        };
        let persistent = hot_engine(SpawnMode::Persistent);
        if persistent.workers() <= 1 {
            println!(
                "query_serving/pool_vs_scoped_hot_w1              skipped  \
                 (1 worker serves in-thread; nothing to spawn or park)"
            );
            continue;
        }
        let scoped_wall = drive(&hot_engine(SpawnMode::Scoped));
        let pool_wall = drive(&persistent);
        let ratio = scoped_wall.as_secs_f64() / pool_wall.as_secs_f64();
        let n_workers = persistent.workers();
        let stats = persistent.pool_stats().expect("pool spawned");
        println!(
            "query_serving/pool_vs_scoped_hot_w{:<2}              {ratio:.2}x  \
             ({HOT_WAVES} waves of {HOT_BATCH} queries: scoped {scoped_wall:.2?} vs \
             pool {pool_wall:.2?}; {} spawns amortized over {} tasks vs {} scoped spawns)",
            n_workers,
            stats.workers,
            stats.tasks,
            n_workers * (HOT_WAVES + 1),
        );
        summary.push(&format!("pool_vs_scoped_hot_w{n_workers}"), ratio);
        if n_workers == 2 {
            assert!(
                ratio >= 1.2,
                "the persistent pool must beat scoped spawning ≥1.2x on small \
                 hot batches at 2 workers (got {ratio:.2}x)"
            );
        }
    }
    // --- open-loop saturation acceptance: deadline shedding vs FIFO ---
    // closed-loop replay can never overload the engine (the next batch is
    // offered only once the previous one finished), so first measure the
    // engine's drain capacity closed-loop, then offer ~3x that rate as a
    // Poisson arrival process. Under the unprotected FIFO baseline the
    // backlog grows without bound and queueing delay leaks into every
    // served query's sojourn; with a deadline the driver sheds queries
    // whose wait already blew the budget, spending the same capacity only
    // on answers a client is still waiting for. The committed acceptance
    // metric is the ratio fifo_p99 / shed_p99 of *served*-query sojourns.
    let overload_queries = {
        let rooted = RootedTree::new(&setup.tree);
        let mix = WorkloadMix {
            spec: QuerySpec {
                min_vars: 1,
                max_vars: 4,
            },
            pool_size: pool_size(),
            ..WorkloadMix::default()
        };
        workload_queries(&setup.tree, &rooted, overload_n(), &mix, 7)
    };
    for workers in worker_sweep() {
        // caching off: a repeated pool query must cost real compute, both
        // in the capacity measurement and under saturation
        let fresh = || {
            ServingEngine::from_shared(
                engine.clone(),
                mat.clone(),
                ServingConfig {
                    workers,
                    cache_capacity: 0,
                    ..ServingConfig::default()
                },
            )
        };
        let probe = fresh();
        let closed = replay(
            &probe,
            &overload_queries,
            &ReplayConfig {
                batch_size: OVERLOAD_BATCH,
            },
        );
        assert_eq!(closed.errors, 0);
        let capacity_qps = closed.throughput_qps;
        let n_workers = probe.workers();
        drop(probe);
        let schedule = poisson_arrivals(overload_queries.len(), 3.0 * capacity_qps, 0xbeef);
        let deadline = Duration::from_secs_f64(64.0 / capacity_qps);
        let open_cfg = |admission: AdmissionConfig| OpenLoopConfig {
            max_batch: OVERLOAD_BATCH,
            admission,
            clock: ReplayClock::Wall,
        };
        let (_, fifo) = replay_open_loop(
            &fresh(),
            &overload_queries,
            &schedule,
            &open_cfg(AdmissionConfig::fifo()),
        );
        let (_, shed) = replay_open_loop(
            &fresh(),
            &overload_queries,
            &schedule,
            &open_cfg(AdmissionConfig::default().with_deadline(deadline)),
        );
        assert_eq!(fifo.errors + shed.errors, 0, "overload runs are error-free");
        assert_eq!(
            fifo.served,
            overload_queries.len(),
            "the FIFO baseline serves everything, just arbitrarily late"
        );
        let ratio = fifo.sojourn_p99.as_secs_f64() / shed.sojourn_p99.as_secs_f64().max(1e-9);
        println!(
            "query_serving/overload_p99_ratio_w{:<2}              {ratio:.2}x  \
             (capacity {capacity_qps:.0} q/s, offered {:.0} q/s, deadline {deadline:.1?}: \
             fifo p99 {:.1?} all {} served; shed p99 {:.1?}, {} served + {} deadline-shed, \
             peak backlog {})",
            n_workers,
            3.0 * capacity_qps,
            fifo.sojourn_p99,
            fifo.served,
            shed.sojourn_p99,
            shed.served,
            shed.shed_deadline,
            shed.peak_backlog,
        );
        summary.push(&format!("overload_p99_ratio_w{n_workers}"), ratio);
        if n_workers == 2 {
            assert!(
                ratio >= 2.0,
                "deadline shedding must keep served p99 bounded while FIFO \
                 collapses under 3x offered load (got {ratio:.2}x)"
            );
        }
    }
    match summary.write() {
        Ok(path) => println!("query_serving/summary written to {}", path.display()),
        Err(e) => eprintln!("query_serving/summary NOT written: {e}"),
    }
}

fn bench_scratch_reuse(c: &mut Criterion) {
    // isolates the scratch-buffer effect on the hottest single query
    let setup = setup();
    let queries = queries_for(&setup.tree);
    let (engine, mat) = materialized_engine(&setup, &queries);
    let online = OnlineEngine::new(&engine, &mat);
    let heaviest = queries
        .iter()
        .filter_map(|q| q.is_marginal().then_some(&q.targets))
        .max_by_key(|s| s.len())
        .expect("has marginals");

    let mut g = c.benchmark_group("query_serving_scratch");
    g.bench_function("answer_fresh_alloc", |b| {
        b.iter(|| black_box(online.answer(heaviest).expect("answers")))
    });
    let mut scratch = Scratch::new();
    g.bench_function("answer_scratch_reuse", |b| {
        b.iter(|| {
            let (pot, cost) = online.answer_in(heaviest, &mut scratch).expect("answers");
            let ops = cost.ops;
            scratch.recycle(pot);
            black_box(ops)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_query_serving, bench_scratch_reuse);
criterion_main!(benches);
