//! Serving-path benchmarks: batched concurrent query serving vs the
//! single-threaded per-query loop, on the same calibrated + materialized
//! tree and the same workload mix.
//!
//! Besides the criterion timings, the bench prints an explicit
//! `serving_speedup` line (batched throughput / single-thread-loop
//! throughput): the batched path must win through in-batch coalescing and
//! scratch reuse even on one core, and additionally through the worker
//! pool on multi-core hosts.
//!
//! A second acceptance study measures the *persistent* worker pool against
//! the scoped spawn-per-batch baseline on small hot batches (100 waves of
//! 8 fresh queries): at 2 workers the parked pool must deliver ≥ 1.2× the
//! scoped throughput — the spawn-latency shave the pool exists for. The
//! ratio metrics land in `results/bench_query_serving.json` for the CI
//! regression guard (`bench_check`).

use criterion::{criterion_group, criterion_main, Criterion};
use peanut_bench::harness::{is_quick, worker_sweep, BenchSummary};
use peanut_core::{OfflineContext, OnlineEngine, Peanut, PeanutConfig, Workload};
use peanut_junction::{build_junction_tree, JunctionTree, QueryEngine, RootedTree};
use peanut_pgm::Scope;
use peanut_pgm::{fixtures, BayesianNetwork, Scratch};
use peanut_serving::{
    replay, workload_queries, Query, ReplayConfig, ServingConfig, ServingEngine, SpawnMode,
    WorkloadMix,
};
use peanut_workload::QuerySpec;
use std::hint::black_box;
use std::time::{Duration, Instant};

const BATCH: usize = 128;
/// The small-hot-batch study: this many waves…
const HOT_WAVES: usize = 100;
/// …of this many fresh queries each (well under `BATCH`: the regime where
/// per-batch thread spawning dominates).
const HOT_BATCH: usize = 8;

/// Stream length (`--quick` / `PEANUT_QUICK=1` shrinks it so the CI
/// bench-smoke job finishes in minutes).
fn n_queries() -> usize {
    if is_quick() {
        256
    } else {
        512
    }
}

fn pool_size() -> usize {
    if is_quick() {
        48
    } else {
        96
    }
}

struct Setup {
    bn: BayesianNetwork,
    tree: JunctionTree,
}

fn setup() -> Setup {
    let bn = fixtures::chain(26, 2, 13);
    let tree = build_junction_tree(&bn).expect("tree");
    Setup { bn, tree }
}

fn queries_for(tree: &JunctionTree) -> Vec<Query> {
    let rooted = RootedTree::new(tree);
    let mix = WorkloadMix {
        spec: QuerySpec {
            min_vars: 1,
            max_vars: 4,
        },
        pool_size: pool_size(),
        ..WorkloadMix::default()
    };
    workload_queries(tree, &rooted, n_queries(), &mix, 99)
}

fn materialized_engine<'t>(
    setup: &'t Setup,
    queries: &[Query],
) -> (QueryEngine<'t>, peanut_core::Materialization) {
    let engine = QueryEngine::numeric(&setup.tree, &setup.bn).expect("calibrates");
    let train: Vec<peanut_pgm::Scope> = queries
        .iter()
        .map(|q| match q {
            Query::Marginal(s) => s.clone(),
            Query::Conditional { targets, evidence } => {
                let ev = peanut_pgm::Scope::from_iter(evidence.iter().map(|&(v, _)| v));
                targets.union(&ev)
            }
        })
        .collect();
    let ctx = OfflineContext::new(&setup.tree, &Workload::from_queries(train)).expect("context");
    let (mat, _) = Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(4096),
        engine.numeric_state().expect("numeric"),
    )
    .expect("materializes");
    (engine, mat)
}

/// The baseline a non-serving caller runs: one query at a time, in order,
/// no coalescing, no scratch carry-over.
fn single_thread_loop(online: &OnlineEngine<'_, '_>, queries: &[Query]) -> usize {
    let mut answered = 0;
    for q in queries {
        let ok = match q {
            Query::Marginal(s) => online.answer(s).is_ok(),
            Query::Conditional { targets, evidence } => {
                online.conditional(targets, evidence).is_ok()
            }
        };
        answered += usize::from(ok);
    }
    answered
}

fn bench_query_serving(c: &mut Criterion) {
    let setup = setup();
    let queries = queries_for(&setup.tree);
    let (engine, mat) = materialized_engine(&setup, &queries);
    let engine = std::sync::Arc::new(engine);
    let mat = std::sync::Arc::new(mat);
    let online = OnlineEngine::new(&engine, &mat);

    let mut g = c.benchmark_group("query_serving");
    g.bench_function(format!("single_thread_loop_{}q", queries.len()), |b| {
        b.iter(|| black_box(single_thread_loop(&online, &queries)))
    });

    // steady-state serving: the engine (and its answer cache) persists
    // across iterations, as it would across arrival waves in a server.
    // PEANUT_WORKERS=1,2,4 sweeps the pool size (the multi-core scaling
    // study); unset means one worker per core.
    for workers in worker_sweep() {
        let serving = ServingEngine::from_shared(
            engine.clone(),
            mat.clone(),
            ServingConfig {
                workers,
                ..ServingConfig::default()
            },
        );
        g.bench_function(
            format!(
                "batched_serving_{}q_steady_w{}",
                queries.len(),
                serving.workers()
            ),
            |b| {
                b.iter(|| {
                    black_box(replay(
                        &serving,
                        &queries,
                        &ReplayConfig { batch_size: BATCH },
                    ))
                })
            },
        );
    }
    g.finish();

    // explicit acceptance measurement, cache-cold: a fresh engine drains
    // the full stream once vs the same stream through the per-query loop
    let mut summary = BenchSummary::new("query_serving");
    let t = Instant::now();
    let answered = single_thread_loop(&online, &queries);
    let loop_time = t.elapsed();
    assert_eq!(answered, queries.len());
    let loop_qps = queries.len() as f64 / loop_time.as_secs_f64();
    for workers in worker_sweep() {
        let cold = ServingEngine::from_shared(
            engine.clone(),
            mat.clone(),
            ServingConfig {
                workers,
                ..ServingConfig::default()
            },
        );
        let report = replay(&cold, &queries, &ReplayConfig { batch_size: BATCH });
        assert_eq!(report.errors, 0);
        let speedup = report.throughput_qps / loop_qps;
        println!(
            "query_serving/serving_speedup_cold_w{:<2}             {:.2}x  \
             (loop {:.0} q/s vs batched {:.0} q/s, {} workers, {} computed of {} queries, \
             p50 {:?} p99 {:?})",
            cold.workers(),
            speedup,
            loop_qps,
            report.throughput_qps,
            cold.workers(),
            report.computed(),
            report.queries,
            report.latency_p50,
            report.latency_p99,
        );
        summary.push(
            &format!("serving_speedup_cold_w{}", cold.workers()),
            speedup,
        );
    }

    // --- small-hot-batch acceptance: persistent pool vs scoped spawn ---
    // a server draining many small waves pays the per-batch thread spawn
    // in the scoped design on every single wave; the parked pool pays it
    // once. Caching is disabled so every wave carries fresh work, and the
    // queries are cheap adjacent-pair marginals — the regime where spawn
    // latency, not compute, dominates the wall clock.
    let hot_batch: Vec<Query> = (0..HOT_BATCH as u32)
        .map(|a| Query::Marginal(Scope::from_indices(&[a, a + 1])))
        .collect();
    for workers in worker_sweep() {
        let hot_engine = |spawn: SpawnMode| {
            ServingEngine::from_shared(
                engine.clone(),
                mat.clone(),
                ServingConfig {
                    workers,
                    cache_capacity: 0,
                    spawn,
                    ..ServingConfig::default()
                },
            )
        };
        let drive = |serving: &ServingEngine<'_>| -> Duration {
            serving.warm_pool();
            serving.serve_batch(&hot_batch); // warmup wave for both modes
            let t = Instant::now();
            for _ in 0..HOT_WAVES {
                let (answers, _) = serving.serve_batch(&hot_batch);
                assert!(
                    answers.iter().all(Result::is_ok),
                    "hot waves must be error-free"
                );
            }
            t.elapsed()
        };
        let persistent = hot_engine(SpawnMode::Persistent);
        if persistent.workers() <= 1 {
            println!(
                "query_serving/pool_vs_scoped_hot_w1              skipped  \
                 (1 worker serves in-thread; nothing to spawn or park)"
            );
            continue;
        }
        let scoped_wall = drive(&hot_engine(SpawnMode::Scoped));
        let pool_wall = drive(&persistent);
        let ratio = scoped_wall.as_secs_f64() / pool_wall.as_secs_f64();
        let n_workers = persistent.workers();
        let stats = persistent.pool_stats().expect("pool spawned");
        println!(
            "query_serving/pool_vs_scoped_hot_w{:<2}              {ratio:.2}x  \
             ({HOT_WAVES} waves of {HOT_BATCH} queries: scoped {scoped_wall:.2?} vs \
             pool {pool_wall:.2?}; {} spawns amortized over {} tasks vs {} scoped spawns)",
            n_workers,
            stats.workers,
            stats.tasks,
            n_workers * (HOT_WAVES + 1),
        );
        summary.push(&format!("pool_vs_scoped_hot_w{n_workers}"), ratio);
        if n_workers == 2 {
            assert!(
                ratio >= 1.2,
                "the persistent pool must beat scoped spawning ≥1.2x on small \
                 hot batches at 2 workers (got {ratio:.2}x)"
            );
        }
    }
    match summary.write() {
        Ok(path) => println!("query_serving/summary written to {}", path.display()),
        Err(e) => eprintln!("query_serving/summary NOT written: {e}"),
    }
}

fn bench_scratch_reuse(c: &mut Criterion) {
    // isolates the scratch-buffer effect on the hottest single query
    let setup = setup();
    let queries = queries_for(&setup.tree);
    let (engine, mat) = materialized_engine(&setup, &queries);
    let online = OnlineEngine::new(&engine, &mat);
    let heaviest = queries
        .iter()
        .filter_map(|q| match q {
            Query::Marginal(s) => Some(s),
            Query::Conditional { .. } => None,
        })
        .max_by_key(|s| s.len())
        .expect("has marginals");

    let mut g = c.benchmark_group("query_serving_scratch");
    g.bench_function("answer_fresh_alloc", |b| {
        b.iter(|| black_box(online.answer(heaviest).expect("answers")))
    });
    let mut scratch = Scratch::new();
    g.bench_function("answer_scratch_reuse", |b| {
        b.iter(|| {
            let (pot, cost) = online.answer_in(heaviest, &mut scratch).expect("answers");
            let ops = cost.ops;
            scratch.recycle(pot);
            black_box(ops)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_query_serving, bench_scratch_reuse);
criterion_main!(benches);
