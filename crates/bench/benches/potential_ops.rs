//! Micro-benchmarks of the dense factor algebra — the inner loop of every
//! message-passing operation — plus the kernel-generation acceptance study.
//!
//! The criterion groups time the *current* (preallocated, lane-unrolled)
//! kernels. The acceptance study then races each current kernel against its
//! pre-arena original (`peanut_pgm::potential::legacy`: append-based stride
//! walks, `Vec::push`/`extend`) on identical inputs with interleaved
//! `Instant` timing, and records the speedups in
//! `results/bench_potential_ops.json` for the CI regression guard
//! (`bench_check` floors in `results/bench_baseline.json`). The two
//! generations are bitwise-identical (the `difftests` proptest suite), so
//! these ratios are pure layout/lane wins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peanut_bench::harness::{is_quick, BenchSummary};
use peanut_pgm::potential::legacy;
use peanut_pgm::{Domain, Potential, Scope, Scratch};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn domain(n: usize, card: u32) -> Domain {
    Domain::uniform(n, card).expect("domain")
}

fn filled(scope: Scope, d: &Domain) -> Potential {
    let mut p = Potential::zeros(scope, d).expect("fits");
    for (i, v) in p.values_mut().iter_mut().enumerate() {
        // sprinkle exact zeros so divide exercises the Hugin 0/0 branch
        *v = if i % 13 == 7 {
            0.0
        } else {
            1.0 + (i % 7) as f64
        };
    }
    p
}

fn bench_product(c: &mut Criterion) {
    let mut g = c.benchmark_group("potential_product");
    for vars in [8usize, 12, 16] {
        let d = domain(vars + 4, 2);
        let f = filled(Scope::from_iter((0..vars as u32).map(peanut_pgm::Var)), &d);
        let h = filled(
            Scope::from_iter((4..vars as u32 + 4).map(peanut_pgm::Var)),
            &d,
        );
        g.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, _| {
            b.iter(|| black_box(f.product(&h).expect("product")))
        });
    }
    g.finish();
}

fn bench_marginalize(c: &mut Criterion) {
    let mut g = c.benchmark_group("potential_marginalize");
    for vars in [10usize, 14, 18] {
        let d = domain(vars, 2);
        let f = filled(d.full_scope(), &d);
        let keep = Scope::from_iter((0..(vars as u32) / 2).map(peanut_pgm::Var));
        g.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, _| {
            b.iter(|| black_box(f.marginalize(&keep).expect("marginal")))
        });
    }
    g.finish();
}

fn bench_divide(c: &mut Criterion) {
    let d = domain(14, 2);
    let f = filled(d.full_scope(), &d);
    let sep = filled(Scope::from_iter((0..7).map(peanut_pgm::Var)), &d);
    c.bench_function("potential_divide_14vars", |b| {
        b.iter(|| black_box(f.divide(&sep).expect("divide")))
    });
}

/// Interleaved best-of-`rounds` timing: each round times the legacy closure
/// then the new one back to back, so frequency drift on the shared core
/// hits both sides alike. Returns `legacy_time / new_time`.
fn race(rounds: usize, iters: usize, mut legacy_op: impl FnMut(), mut new_op: impl FnMut()) -> f64 {
    let time = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        t0.elapsed()
    };
    // warmup both sides (fills scratch pools, faults pages)
    legacy_op();
    new_op();
    let (mut best_legacy, mut best_new) = (Duration::MAX, Duration::MAX);
    for _ in 0..rounds {
        best_legacy = best_legacy.min(time(&mut legacy_op));
        best_new = best_new.min(time(&mut new_op));
    }
    best_legacy.as_secs_f64() / best_new.as_secs_f64().max(f64::MIN_POSITIVE)
}

/// The acceptance study behind the `potential_ops.*` baseline floors.
fn bench_kernel_generations(_c: &mut Criterion) {
    let (rounds, iters) = if is_quick() { (3, 30) } else { (5, 120) };
    let mut summary = BenchSummary::new("potential_ops");

    let mut s_old = Scratch::default();
    let mut s_new = Scratch::default();

    // pairwise product: 12-var operands overlapping on 8 vars → 16-var result
    let d = domain(16, 2);
    let f = filled(Scope::from_iter((0..12).map(peanut_pgm::Var)), &d);
    let h = filled(Scope::from_iter((4..16).map(peanut_pgm::Var)), &d);
    let product = race(
        rounds,
        iters,
        || {
            black_box(legacy::product_in(&f, &h, &mut s_old).expect("legacy product"));
        },
        || {
            black_box(f.product_in(&h, &mut s_new).expect("product"));
        },
    );
    summary.push("product_speedup", product);

    // multi-factor product: four 10-var factors tiling a 16-var result, the
    // clique-initialization shape (one copy pass + three mul-assign passes
    // vs four append walks)
    let factors: Vec<Potential> = (0..4u32)
        .map(|k| {
            filled(
                Scope::from_iter((2 * k..2 * k + 10).map(peanut_pgm::Var)),
                &d,
            )
        })
        .collect();
    let refs: Vec<&Potential> = factors.iter().collect();
    let product_many = race(
        rounds,
        iters,
        || {
            black_box(legacy::product_many_in(&refs, &mut s_old).expect("legacy many"));
        },
        || {
            black_box(Potential::product_many_in(&refs, &mut s_new).expect("many"));
        },
    );
    summary.push("product_many_speedup", product_many);

    // marginalize: 18-var table down to its low-order half — the inner
    // summed axis has step 0 over a stride-1 target run, the peeled
    // 4-accumulator fast path
    let d18 = domain(18, 2);
    let big = filled(d18.full_scope(), &d18);
    let keep = Scope::from_iter((0..9).map(peanut_pgm::Var));
    let marginalize = race(
        rounds,
        iters,
        || {
            black_box(legacy::marginalize_in(&big, &keep, &mut s_old).expect("legacy marg"));
        },
        || {
            black_box(big.marginalize_in(&keep, &mut s_new).expect("marg"));
        },
    );
    summary.push("marginalize_speedup", marginalize);

    // divide: 14-var table by a 7-var separator (broadcast denominator with
    // zero cells → the Hugin 0/0 guard runs in the hot loop)
    let d14 = domain(14, 2);
    let num = filled(d14.full_scope(), &d14);
    let sep = filled(Scope::from_iter((0..7).map(peanut_pgm::Var)), &d14);
    let divide = race(
        rounds,
        iters,
        || {
            black_box(legacy::divide_in(&num, &sep, &mut s_old).expect("legacy div"));
        },
        || {
            black_box(num.divide_in(&sep, &mut s_new).expect("div"));
        },
    );
    summary.push("divide_speedup", divide);

    println!(
        "potential_ops kernel generations: product {product:.2}x, \
         product_many {product_many:.2}x, marginalize {marginalize:.2}x, \
         divide {divide:.2}x (legacy/new, best of {rounds}x{iters})"
    );
    // the layout wins (one copy + mul-assign passes instead of per-entry
    // append walks; peeled 4-chain sums) must show up as real speedups;
    // product and divide were already single-pass streams in the legacy
    // kernels, so those are parity guards with a noise allowance
    assert!(
        product_many >= 1.5 && marginalize >= 1.5,
        "kernel-generation speedups collapsed: product_many {product_many:.2} \
         marginalize {marginalize:.2} (want >= 1.5x)"
    );
    assert!(
        product >= 0.9 && divide >= 0.9,
        "new kernels regressed vs legacy: product {product:.2} divide {divide:.2} \
         (want >= 0.9x parity)"
    );
    match summary.write() {
        Ok(path) => println!("potential_ops/summary written to {}", path.display()),
        Err(e) => eprintln!("potential_ops/summary NOT written: {e}"),
    }
}

criterion_group!(
    benches,
    bench_product,
    bench_marginalize,
    bench_divide,
    bench_kernel_generations
);
criterion_main!(benches);
