//! Micro-benchmarks of the dense factor algebra — the inner loop of every
//! message-passing operation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peanut_pgm::{Domain, Potential, Scope};
use std::hint::black_box;

fn domain(n: usize, card: u32) -> Domain {
    Domain::uniform(n, card).expect("domain")
}

fn filled(scope: Scope, d: &Domain) -> Potential {
    let mut p = Potential::zeros(scope, d).expect("fits");
    for (i, v) in p.values_mut().iter_mut().enumerate() {
        *v = 1.0 + (i % 7) as f64;
    }
    p
}

fn bench_product(c: &mut Criterion) {
    let mut g = c.benchmark_group("potential_product");
    for vars in [8usize, 12, 16] {
        let d = domain(vars + 4, 2);
        let f = filled(Scope::from_iter((0..vars as u32).map(peanut_pgm::Var)), &d);
        let h = filled(
            Scope::from_iter((4..vars as u32 + 4).map(peanut_pgm::Var)),
            &d,
        );
        g.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, _| {
            b.iter(|| black_box(f.product(&h).expect("product")))
        });
    }
    g.finish();
}

fn bench_marginalize(c: &mut Criterion) {
    let mut g = c.benchmark_group("potential_marginalize");
    for vars in [10usize, 14, 18] {
        let d = domain(vars, 2);
        let f = filled(d.full_scope(), &d);
        let keep = Scope::from_iter((0..(vars as u32) / 2).map(peanut_pgm::Var));
        g.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, _| {
            b.iter(|| black_box(f.marginalize(&keep).expect("marginal")))
        });
    }
    g.finish();
}

fn bench_divide(c: &mut Criterion) {
    let d = domain(14, 2);
    let f = filled(d.full_scope(), &d);
    let sep = filled(Scope::from_iter((0..7).map(peanut_pgm::Var)), &d);
    c.bench_function("potential_divide_14vars", |b| {
        b.iter(|| black_box(f.divide(&sep).expect("divide")))
    });
}

criterion_group!(benches, bench_product, bench_marginalize, bench_divide);
criterion_main!(benches);
