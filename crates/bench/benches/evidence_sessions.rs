//! Evidence-session amortization benchmark: serving a conditioned query
//! stream that shares one evidence context, two ways:
//!
//! * **per-query conditional** — every `P(targets | e)` request re-pays
//!   the evidence: the engine answers a joint over `targets ∪ vars(e)`,
//!   whose Steiner tree spans from the targets all the way to the
//!   evidence variables, then restricts and normalizes;
//! * **evidence session** — [`ServingEngine::open_session`] absorbs the
//!   evidence into a session-local restricted tree and re-calibrates
//!   **once**; every subsequent query is a plain marginal over just its
//!   targets.
//!
//! The evidence sits at one end of a long chain and the targets at the
//! other, so the per-query path drags every answer across the whole
//! model while the session path pays the crossing once at open. The
//! bench asserts the two paths agree to 1e-9, prints the measured
//! amortized speedup (session wall includes the open), and writes
//! `results/bench_evidence_sessions.json` for the CI regression guard
//! (committed floor: ≥ 2×).
//!
//! `--quick` / `PEANUT_QUICK=1` shrinks the stream for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use peanut_bench::harness::{is_quick, BenchSummary};
use peanut_core::{Materialization, ServeRequest};
use peanut_junction::{build_junction_tree, QueryEngine};
use peanut_pgm::{fixtures, Scope, Var};
use peanut_serving::{ServingConfig, ServingEngine};
use std::hint::black_box;
use std::time::Instant;

fn chain_len() -> u32 {
    if is_quick() {
        18
    } else {
        26
    }
}

/// Rounds of the shared-context stream (both paths serve the same total).
fn rounds() -> usize {
    if is_quick() {
        8
    } else {
        20
    }
}

/// The pinned context: three variables at the far end of the chain.
fn evidence(n: u32) -> Vec<(Var, u32)> {
    vec![(Var(n - 1), 1), (Var(n - 2), 0), (Var(n - 3), 1)]
}

/// Distinct small targets near the evidence-free end of the chain.
fn targets(n: u32) -> Vec<Scope> {
    (0..n / 2)
        .map(|a| Scope::from_indices(&[a, a + 1]))
        .collect()
}

fn bench_evidence_sessions(c: &mut Criterion) {
    let n = chain_len();
    let bn = fixtures::chain(n as usize, 2, 13);
    let tree = build_junction_tree(&bn).expect("tree");
    let engine = QueryEngine::numeric(&tree, &bn).expect("calibrates");
    // cache disabled: the stream is repeated rounds of the same targets,
    // and the study is computation amortization, not cache hits
    let serving = ServingEngine::new(
        engine,
        Materialization::default(),
        ServingConfig::default().with_cache_capacity(0),
    );
    let ev = evidence(n);
    let ts = targets(n);
    let requests: Vec<ServeRequest> = ts
        .iter()
        .map(|t| ServeRequest::new(t.clone(), ev.clone()))
        .collect();

    // --- correctness: the two paths agree on every answer ---
    let session = serving.open_session(ev.clone()).expect("opens");
    let (s_ans, _) = session.serve_batch(&ts);
    let (q_ans, _) = serving.serve_batch(&requests);
    for ((t, s), q) in ts.iter().zip(&s_ans).zip(&q_ans) {
        let s = &s.served().expect("session serves").potential;
        let q = &q.served().expect("per-query serves").potential;
        let diff = s.max_abs_diff(q).expect("same scope");
        assert!(diff < 1e-9, "paths disagree on {t}: {diff}");
    }
    drop(session);

    // --- acceptance: the session amortizes the evidence ≥ 2× ---
    let r = rounds();
    let t0 = Instant::now();
    for _ in 0..r {
        black_box(serving.serve_batch(&requests));
    }
    let per_query_wall = t0.elapsed();
    // the session wall includes the open: the speedup is the *amortized*
    // one a session-shaped workload actually sees
    let t0 = Instant::now();
    let session = serving.open_session(ev.clone()).expect("opens");
    for _ in 0..r {
        black_box(session.serve_batch(&ts));
    }
    let session_wall = t0.elapsed();
    drop(session);
    let speedup = per_query_wall.as_secs_f64() / session_wall.as_secs_f64();
    println!(
        "evidence_sessions/session_speedup      {speedup:.1}x  \
         (per-query {:.2?} vs session {:.2?} for {} queries, chain({n}), |e|={})",
        per_query_wall,
        session_wall,
        r * ts.len(),
        ev.len(),
    );
    assert!(
        speedup >= 2.0,
        "the session path must amortize the evidence ≥2x (got {speedup:.1}x)"
    );
    let mut summary = BenchSummary::new("evidence_sessions");
    summary.push("session_speedup", speedup);
    match summary.write() {
        Ok(p) => println!("evidence_sessions/summary written to {}", p.display()),
        Err(e) => eprintln!("evidence_sessions/summary NOT written: {e}"),
    }

    // --- criterion timings for both paths ---
    let mut g = c.benchmark_group("evidence_sessions");
    g.bench_function("per_query_conditional", |b| {
        b.iter(|| black_box(serving.serve_batch(&requests)))
    });
    g.bench_function("session_stream", |b| {
        let session = serving.open_session(ev.clone()).expect("opens");
        b.iter(|| black_box(session.serve_batch(&ts)))
    });
    g.bench_function("session_open", |b| {
        b.iter(|| black_box(serving.open_session(ev.clone()).expect("opens")))
    });
    g.finish();
}

criterion_group!(benches, bench_evidence_sessions);
criterion_main!(benches);
