//! Drift-aware serving benchmark: a long query stream whose distribution
//! drifts away from the training workload (§5.3, Figures 8–9), served by a
//! [`ServingEngine`] with a [`RematerializationController`] running on a
//! background thread.
//!
//! Besides criterion timings, the bench prints and asserts the lifecycle
//! acceptance numbers:
//!
//! * serving is uninterrupted across the hot swap (zero batch errors);
//! * at least one re-materialization is published automatically;
//! * on the drifted regime, the mean per-query cost after the swap beats
//!   continuing with the stale epoch by ≥ 1.5×.
//!
//! `PEANUT_WORKERS=1,2,4` sweeps the worker-pool size, same flag as
//! `query_serving`.

use criterion::{criterion_group, criterion_main, Criterion};
use peanut_bench::harness::{is_quick, worker_sweep, BenchSummary};
use peanut_core::{OfflineContext, Peanut, PeanutConfig, Workload};
use peanut_junction::{build_junction_tree, QueryEngine};
use peanut_pgm::{fixtures, BayesianNetwork, Scope};
use peanut_serving::{
    replay, LifecycleConfig, RematerializationController, ReplayConfig, ServeRequest,
    ServingConfig, ServingEngine,
};
use peanut_workload::{drifting_queries, DriftSchedule};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const BATCH: usize = 128;
const DRIFT_AT: usize = 512;
const BUDGET: u64 = 4096;

/// Stream length (`--quick` / `PEANUT_QUICK=1` shrinks it — together with
/// a smaller observation window — so the CI bench-smoke job stays fast).
fn n_queries() -> usize {
    if is_quick() {
        2048
    } else {
        4096
    }
}
/// Inter-batch arrival pacing of the live run: the drift study models a
/// server draining waves of traffic, not a tight replay loop — the gap is
/// what lets the background controller observe, re-select and publish
/// while the stream is still flowing.
const BATCH_GAP: Duration = Duration::from_millis(2);

/// Long-range pairs over a variable band: a regional workload whose
/// shortcuts are useless for the other region.
fn band_pool(lo: u32, hi: u32) -> Vec<Scope> {
    [6u32, 8]
        .into_iter()
        .flat_map(|span| (lo..hi - span).map(move |a| Scope::from_indices(&[a, a + span])))
        .collect()
}

struct Setup {
    bn: BayesianNetwork,
    tree: peanut_junction::JunctionTree,
    deep: Vec<Scope>,
    shallow: Vec<Scope>,
    stream: Vec<ServeRequest>,
}

fn setup() -> Setup {
    let bn = fixtures::chain(32, 2, 13);
    let mut tree = build_junction_tree(&bn).expect("tree");
    // pivot mid-chain: the two arms are symmetric, both far enough from
    // the pivot for shortcut potentials to pay off equally — the drift
    // swings traffic from one arm to the other
    tree.set_pivot(tree.n_cliques() / 2);
    let deep = band_pool(21, 32);
    let shallow = band_pool(0, 11);
    // serve the training regime, then switch abruptly to the other region
    let schedule = DriftSchedule::Step {
        before: 1.0,
        after: 0.0,
        at: DRIFT_AT,
    };
    let stream: Vec<ServeRequest> = drifting_queries(&deep, &shallow, &schedule, n_queries(), 77)
        .into_iter()
        .map(ServeRequest::marginal)
        .collect();
    Setup {
        bn,
        tree,
        deep,
        shallow,
        stream,
    }
}

fn trained_engine<'t>(
    setup: &'t Setup,
) -> (QueryEngine<'t>, peanut_core::Materialization, Workload) {
    let engine = QueryEngine::numeric(&setup.tree, &setup.bn).expect("calibrates");
    let train_w = Workload::from_queries(setup.deep.iter().cloned());
    let ctx = OfflineContext::new(&setup.tree, &train_w).expect("context");
    let (mat, _) = Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(BUDGET),
        engine.numeric_state().expect("numeric"),
    )
    .expect("materializes");
    (engine, mat, train_w)
}

fn lifecycle_cfg() -> LifecycleConfig {
    LifecycleConfig {
        // the ring (3 windows by default) must fill with drifted windows
        // inside the post-drift tail, so the quick stream uses a smaller
        // observation window
        min_window: if is_quick() { 128 } else { 256 },
        ..LifecycleConfig::new(BUDGET)
    }
}

/// Drives the drifting stream with the controller on a background thread.
/// Returns per-batch (epoch, fresh ops, fresh computations, errors) plus
/// the number of swaps.
fn drive_with_lifecycle(
    serving: &ServingEngine<'_>,
    ctl: &mut RematerializationController<'_, '_>,
    stream: &[ServeRequest],
) -> (Vec<(u64, u64, usize, usize)>, usize) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let ctl_handle = s.spawn(|| {
            ctl.run(&stop, Duration::from_micros(500))
                .expect("controller must not fail")
        });
        let mut per_batch = Vec::new();
        for batch in stream.chunks(BATCH) {
            let (answers, stats) = serving.serve_batch(batch);
            let errors = answers.iter().filter(|a| !a.is_served()).count();
            per_batch.push((
                stats.epoch,
                stats.total_ops,
                stats.unique - stats.cache_hits,
                errors,
            ));
            std::thread::sleep(BATCH_GAP);
        }
        // ordering: advisory stop flag — the join on the next line is the
        // real barrier; the controller only needs to notice it eventually.
        stop.store(true, Ordering::Relaxed);
        let swaps = ctl_handle.join().expect("controller thread");
        (per_batch, swaps)
    })
}

fn bench_drift_serving(c: &mut Criterion) {
    let setup = setup();
    let workers = *worker_sweep().first().expect("non-empty sweep");

    // --- acceptance run: lifecycle on, background controller ---
    let (engine, mat, train_w) = trained_engine(&setup);
    let serving = ServingEngine::new(
        engine,
        mat.clone(),
        ServingConfig {
            workers,
            ..ServingConfig::default()
        },
    );
    let mut ctl = RematerializationController::new(&serving, &train_w, lifecycle_cfg());
    let t0 = Instant::now();
    let (per_batch, swaps) = drive_with_lifecycle(&serving, &mut ctl, &setup.stream);
    let live_wall = t0.elapsed();

    let errors: usize = per_batch.iter().map(|b| b.3).sum();
    assert_eq!(errors, 0, "serving must be uninterrupted across the swap");
    assert!(
        swaps >= 1,
        "drift must trigger an automatic re-materialization"
    );

    // drifted regime only, split by the epoch each batch was served under
    let drift_batches = &per_batch[DRIFT_AT / BATCH..];
    let stale: Vec<_> = drift_batches.iter().filter(|b| b.0 == 0).collect();
    let fresh: Vec<_> = drift_batches.iter().filter(|b| b.0 >= 1).collect();
    assert!(
        !fresh.is_empty(),
        "the swap must land while the drifted regime is still being served"
    );
    let mean = |bs: &[&(u64, u64, usize, usize)]| -> f64 {
        let ops: u64 = bs.iter().map(|b| b.1).sum();
        let computed: usize = bs.iter().map(|b| b.2).sum();
        ops as f64 / computed.max(1) as f64
    };
    let fresh_cost = mean(&fresh);

    // --- control run: same drifted traffic, stale epoch kept forever ---
    let (engine2, mat2, _) = trained_engine(&setup);
    let stale_engine = ServingEngine::new(
        engine2,
        mat2,
        ServingConfig {
            workers,
            ..ServingConfig::default()
        },
    );
    let drift_tail = &setup.stream[DRIFT_AT..];
    let stale_report = replay(
        &stale_engine,
        drift_tail,
        &ReplayConfig { batch_size: BATCH },
    );
    assert_eq!(stale_report.errors, 0);
    let stale_cost = stale_report.mean_ops_per_computed();

    let improvement = stale_cost / fresh_cost.max(1.0);
    println!(
        "drift_serving/swap_improvement                     {improvement:.2}x  \
         (stale {stale_cost:.0} ops/q vs post-swap {fresh_cost:.0} ops/q, \
         {swaps} swap(s), {} stale-epoch and {} fresh-epoch drifted batches, \
         {} workers, live run {live_wall:.2?})",
        stale.len(),
        fresh.len(),
        serving.workers(),
    );
    for ev in ctl.swaps() {
        println!(
            "drift_serving/swap@{:<6} epoch {} observed {:.1}% -> expected {:.1}% \
             ({} shortcuts, {} entries, selection {:.2?})",
            ev.at_arrivals,
            ev.epoch,
            100.0 * ev.observed_savings,
            100.0 * ev.new_reference_savings,
            ev.shortcuts,
            ev.total_size,
            ev.selection,
        );
    }
    assert!(
        improvement >= 1.5,
        "re-materialization must improve drifted-workload cost ≥1.5x \
         (got {improvement:.2}x: stale {stale_cost:.0} vs fresh {fresh_cost:.0})"
    );
    let mut summary = BenchSummary::new("drift_serving");
    summary.push("swap_improvement", improvement);
    match summary.write() {
        Ok(path) => println!("drift_serving/summary written to {}", path.display()),
        Err(e) => eprintln!("drift_serving/summary NOT written: {e}"),
    }

    // --- criterion timings: steady drifted serving per worker count ---
    let mut g = c.benchmark_group("drift_serving");
    for workers in worker_sweep() {
        let (engine, mat, _) = trained_engine(&setup);
        let steady = ServingEngine::new(
            engine,
            mat,
            ServingConfig {
                workers,
                ..ServingConfig::default()
            },
        );
        // pre-drifted steady state: what the server does after convergence
        steady.publish(rematerialized(&setup, &steady));
        g.bench_function(format!("drifted_tail_steady_w{}", steady.workers()), |b| {
            b.iter(|| {
                black_box(replay(
                    &steady,
                    &setup.stream[DRIFT_AT..],
                    &ReplayConfig { batch_size: BATCH },
                ))
            })
        });
    }
    g.finish();
}

/// A materialization selected for the drifted (shallow) region — the
/// artifact the controller converges to.
fn rematerialized(setup: &Setup, serving: &ServingEngine<'_>) -> peanut_core::Materialization {
    let w = Workload::from_queries(setup.shallow.iter().cloned());
    let ctx = OfflineContext::new(&setup.tree, &w).expect("context");
    Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(BUDGET),
        serving.engine().numeric_state().expect("numeric"),
    )
    .expect("materializes")
    .0
}

criterion_group!(benches, bench_drift_serving);
criterion_main!(benches);
