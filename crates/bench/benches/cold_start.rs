//! Cold-start benchmark: bringing a tenant's serving artifact back after
//! a restart (or a page-out), two ways:
//!
//! * **recalibrate** — the pre-store path: run the junction-tree
//!   calibration (initialization + both Hugin passes) and the offline
//!   selection DP again from the Bayesian network;
//! * **rehydrate** — open the persisted `.pnut` epoch and reattach the
//!   calibrated slab + rebuild the materialization structurally
//!   (`peanut-store`), skipping calibration and selection entirely.
//!
//! Both paths start from an in-RAM [`JunctionTree`] (paging keeps the
//! structure; only the numeric artifact is dropped) and end with an
//! engine + materialization ready to serve. The bench asserts the two
//! engines answer **bit-identically**, prints the measured speedup, and
//! writes `results/bench_cold_start.json` for the CI regression guard
//! (committed floor: ≥ 5×).
//!
//! `--quick` / `PEANUT_QUICK=1` shrinks the model for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use peanut_bench::harness::{is_quick, BenchSummary};
use peanut_core::{
    FlatMaterialization, Materialization, OfflineContext, OnlineEngine, Peanut, PeanutConfig,
    Workload,
};
use peanut_junction::{build_junction_tree, JunctionTree, QueryEngine};
use peanut_pgm::{fixtures, BayesianNetwork};
use peanut_store::{rehydrate_engine, StoreConfig, StoredEpoch};
use peanut_workload::{uniform_queries, QuerySpec};
use std::hint::black_box;
use std::time::Instant;

const BUDGET: u64 = 2048;

fn chain_len() -> usize {
    if is_quick() {
        20
    } else {
        32
    }
}

/// Timed cold-start repetitions (both paths measure the same count).
fn rounds() -> usize {
    if is_quick() {
        5
    } else {
        10
    }
}

fn training_workload(bn: &BayesianNetwork) -> Workload {
    let spec = QuerySpec {
        min_vars: 1,
        max_vars: 3,
    };
    Workload::from_queries(uniform_queries(bn.domain(), 64, spec, 17))
}

/// The pre-store cold start: calibrate + select, from the network.
fn recalibrate<'t>(
    tree: &'t JunctionTree,
    bn: &BayesianNetwork,
    train: &Workload,
) -> (QueryEngine<'t>, Materialization) {
    let engine = QueryEngine::numeric(tree, bn).expect("calibrates");
    let ctx = OfflineContext::new(tree, train).expect("context");
    let (mat, _) = Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(BUDGET),
        engine.numeric_state().expect("numeric"),
    )
    .expect("materializes");
    (engine, mat)
}

fn bench_cold_start(c: &mut Criterion) {
    let bn = fixtures::chain(chain_len(), 2, 13);
    let tree = build_junction_tree(&bn).expect("tree");
    let train = training_workload(&bn);

    // persist one epoch the rehydration path cold-starts from
    let store = StoreConfig::new(
        std::env::temp_dir().join(format!("peanut-cold-start-{}", std::process::id())),
    );
    let (engine, mat) = recalibrate(&tree, &bn, &train);
    assert!(
        !mat.is_empty(),
        "bench premise: the budget selects shortcuts"
    );
    let flat = FlatMaterialization::pack(&mat);
    let slab = engine.numeric_state().expect("numeric").arena().slab();
    let path = store
        .save_epoch(0, &mat, &flat, slab)
        .expect("persists the epoch");

    // --- correctness: the rehydrated artifact answers bit-identically ---
    let stored = StoredEpoch::open(&path, true).expect("opens");
    let (rengine, rmat) = rehydrate_engine(&tree, &stored).expect("rehydrates");
    let fresh = OnlineEngine::new(&engine, &mat);
    let rehydrated = OnlineEngine::new(&rengine, &rmat);
    let spec = QuerySpec {
        min_vars: 1,
        max_vars: 3,
    };
    for q in uniform_queries(bn.domain(), 24, spec, 29) {
        let (a, ca) = fresh.answer(&q).expect("fresh answers");
        let (b, cb) = rehydrated.answer(&q).expect("rehydrated answers");
        assert_eq!(ca.ops, cb.ops, "same reduced-tree plan for {q}");
        for (x, y) in a.values().iter().zip(b.values()) {
            assert_eq!(x.to_bits(), y.to_bits(), "query {q}");
        }
    }

    // --- acceptance: rehydration ≥ 5× faster than recalibration ---
    let r = rounds();
    let t0 = Instant::now();
    for _ in 0..r {
        black_box(recalibrate(&tree, &bn, &train));
    }
    let recalibrate_wall = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..r {
        let stored = StoredEpoch::open(&path, true).expect("opens");
        black_box(rehydrate_engine(&tree, &stored).expect("rehydrates"));
    }
    let rehydrate_wall = t0.elapsed();
    let speedup = recalibrate_wall.as_secs_f64() / rehydrate_wall.as_secs_f64();
    println!(
        "cold_start/rehydrate_speedup           {speedup:.1}x  \
         (recalibrate {:.2?} vs rehydrate {:.2?} per cold start, chain({}), budget {BUDGET})",
        recalibrate_wall / r as u32,
        rehydrate_wall / r as u32,
        chain_len(),
    );
    assert!(
        speedup >= 5.0,
        "rehydration must beat recalibration ≥5x (got {speedup:.1}x)"
    );
    let mut summary = BenchSummary::new("cold_start");
    summary.push("rehydrate_speedup", speedup);
    match summary.write() {
        Ok(p) => println!("cold_start/summary written to {}", p.display()),
        Err(e) => eprintln!("cold_start/summary NOT written: {e}"),
    }

    // --- criterion timings for both paths ---
    let mut g = c.benchmark_group("cold_start");
    g.bench_function("recalibrate", |b| {
        b.iter(|| black_box(recalibrate(&tree, &bn, &train)))
    });
    g.bench_function("rehydrate", |b| {
        b.iter(|| {
            let stored = StoredEpoch::open(&path, true).expect("opens");
            black_box(rehydrate_engine(&tree, &stored).expect("rehydrates"))
        })
    });
    g.finish();

    let _ = std::fs::remove_dir_all(&store.dir);
}

criterion_group!(benches, bench_cold_start);
criterion_main!(benches);
