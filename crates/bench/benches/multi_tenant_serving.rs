//! Multi-tenant sharded serving benchmark: N Bayesian networks behind one
//! endpoint, Zipf-skewed per-tenant arrival rates, one shared worker pool.
//!
//! Besides criterion timings, the bench prints and asserts the fleet
//! acceptance numbers:
//!
//! * serving a recurring mixed arrival stream through the
//!   [`ShardedServingEngine`] beats `N` isolated per-tenant engines run
//!   sequentially (each arrival dispatched alone to its tenant's engine)
//!   by ≥ 1.1× throughput. The floor was 1.3× when the isolated baseline
//!   spawned scoped threads per single-query batch; the persistent-pool
//!   engine serves those on the spawn-free in-thread path (~10× faster
//!   baseline), so the margin on a 1-core host is now thin — the sharded
//!   win left is batching + dedup, not spawn amortization;
//! * the [`FleetController`] reallocates the global materialization budget
//!   toward a tenant whose traffic share doubles mid-run, and the total
//!   allocation never exceeds the global budget;
//! * under an open-loop mixed arrival stream offered at ~3× the fleet's
//!   measured capacity, per-tenant admission caps plus deadline shedding
//!   keep served-query sojourn p99 ≥ 1.5× lower than the unprotected FIFO
//!   baseline's (the `overload_p99_ratio` floor);
//! * zero batch errors throughout.
//!
//! `PEANUT_WORKERS=1,2,4` sweeps the shared pool, same flag as the other
//! serving benches; `--quick` / `PEANUT_QUICK=1` shrinks the run for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use peanut_bench::harness::{is_quick, worker_sweep, BenchSummary};
use peanut_core::{Materialization, OfflineContext, Peanut, PeanutConfig, Workload};
use peanut_junction::{build_junction_tree, JunctionTree, QueryEngine};
use peanut_pgm::{fixtures, BayesianNetwork, Scope};
use peanut_serving::{
    poisson_arrivals, replay_mixed, replay_open_loop_mixed, AdmissionConfig, FleetConfig,
    FleetController, FleetRebalance, OpenLoopConfig, ReplayClock, ReplayConfig, ServeRequest,
    ServingConfig, ServingEngine, ShardConfig, ShardedServingEngine, TenantId,
};
use peanut_workload::{tenant_queries, zipf_weights, TenantTraffic};
use std::hint::black_box;
use std::time::{Duration, Instant};

const BATCH: usize = 128;
/// Per-tenant training budget for the throughput study.
const TENANT_BUDGET: u64 = 1024;
/// Global budget the fleet controller splits across tenants. Shortcut
/// tables on these binary chains are small (a few entries each), so a
/// small budget is genuinely contended: the fleet's combined appetite is
/// several times larger, and the knapsack must choose whom to serve.
const GLOBAL_BUDGET: u64 = 64;

fn n_tenants() -> usize {
    if is_quick() {
        4
    } else {
        6
    }
}

fn n_arrivals() -> usize {
    if is_quick() {
        2048
    } else {
        4096
    }
}

/// Passes over the recurring arrival stream (first pass cold, the rest
/// steady-state — a server drains the same hot query pools wave after
/// wave).
const PASSES: usize = 3;

/// Long-range pairs over a band of a tenant's chain: a per-tenant query
/// pool whose shortcuts are useless for every other tenant.
fn band_pool(lo: u32, hi: u32) -> Vec<Scope> {
    [5u32, 7]
        .into_iter()
        .flat_map(|span| (lo..hi - span).map(move |a| Scope::from_indices(&[a, a + span])))
        .collect()
}

struct Setup {
    bns: Vec<BayesianNetwork>,
    trees: Vec<JunctionTree>,
    pools: Vec<Vec<Scope>>,
}

fn setup() -> Setup {
    // distinct models per tenant (different CPT seeds); equal sizes, so
    // the budget study measures traffic shares, not structural advantage
    let bns: Vec<BayesianNetwork> = (0..n_tenants())
        .map(|t| fixtures::chain(24, 2, 13 + 4 * t as u64))
        .collect();
    let trees: Vec<JunctionTree> = bns
        .iter()
        .map(|bn| build_junction_tree(bn).expect("tree"))
        .collect();
    let pools: Vec<Vec<Scope>> = bns
        .iter()
        .map(|bn| band_pool(0, bn.n_vars() as u32))
        .collect();
    Setup { bns, trees, pools }
}

fn trained_mat(tree: &JunctionTree, engine: &QueryEngine<'_>, pool: &[Scope]) -> Materialization {
    let w = Workload::from_queries(pool.iter().cloned());
    let ctx = OfflineContext::new(tree, &w).expect("context");
    Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(TENANT_BUDGET),
        engine.numeric_state().expect("numeric"),
    )
    .expect("materializes")
    .0
}

/// The fleet arrival stream: per-tenant steady pools, Zipf-skewed shares.
fn arrival_stream(
    setup: &Setup,
    weights: &[f64],
    n: usize,
    seed: u64,
) -> Vec<(TenantId, ServeRequest)> {
    let tenants: Vec<TenantTraffic> = setup
        .pools
        .iter()
        .zip(weights)
        .map(|(pool, &w)| TenantTraffic::steady(w, pool.clone()))
        .collect();
    tenant_queries(&tenants, n, seed)
        .into_iter()
        .map(|(t, q)| (TenantId(t as u32), ServeRequest::marginal(q)))
        .collect()
}

fn sharded_engine<'t>(setup: &'t Setup, workers: usize, trained: bool) -> ShardedServingEngine<'t> {
    let mut sharded = ShardedServingEngine::new(ShardConfig {
        workers,
        ..ShardConfig::default()
    });
    for (t, (tree, bn)) in setup.trees.iter().zip(&setup.bns).enumerate() {
        let engine = QueryEngine::numeric(tree, bn).expect("calibrates");
        let mat = if trained {
            trained_mat(tree, &engine, &setup.pools[t])
        } else {
            Materialization::default()
        };
        sharded
            .register(TenantId(t as u32), engine, mat)
            .expect("fresh id");
    }
    sharded
}

/// The baseline deployment: one isolated engine per tenant, every arrival
/// of the mixed stream dispatched alone (an isolated engine never sees a
/// mixed wave, so there is nothing to batch across) — engines persist
/// across passes, caches warm exactly like the sharded engine's.
fn isolated_engines<'t>(setup: &'t Setup, workers: usize) -> Vec<ServingEngine<'t>> {
    setup
        .trees
        .iter()
        .zip(&setup.bns)
        .enumerate()
        .map(|(t, (tree, bn))| {
            let engine = QueryEngine::numeric(tree, bn).expect("calibrates");
            let mat = trained_mat(tree, &engine, &setup.pools[t]);
            ServingEngine::new(
                engine,
                mat,
                ServingConfig {
                    workers,
                    ..ServingConfig::default()
                },
            )
        })
        .collect()
}

fn bench_multi_tenant_serving(c: &mut Criterion) {
    let setup = setup();
    let workers = *worker_sweep().first().expect("non-empty sweep");
    let weights = zipf_weights(n_tenants(), 1.0);
    let stream = arrival_stream(&setup, &weights, n_arrivals(), 99);

    // --- acceptance: shared pool vs N isolated engines, sequentially ---
    let sharded = sharded_engine(&setup, workers, true);
    let t0 = Instant::now();
    let mut mixed_errors = 0;
    for _ in 0..PASSES {
        let report = replay_mixed(&sharded, &stream, &ReplayConfig { batch_size: BATCH });
        mixed_errors += report.errors;
    }
    let mixed_wall = t0.elapsed();
    assert_eq!(mixed_errors, 0, "sharded serving must be error-free");
    let mixed_qps = (PASSES * stream.len()) as f64 / mixed_wall.as_secs_f64();

    let isolated = isolated_engines(&setup, workers);
    let t0 = Instant::now();
    let mut isolated_errors = 0;
    for _ in 0..PASSES {
        for (tid, q) in &stream {
            let (answers, _) = isolated[tid.0 as usize].serve_batch(std::slice::from_ref(q));
            isolated_errors += answers.iter().filter(|a| !a.is_served()).count();
        }
    }
    let isolated_wall = t0.elapsed();
    assert_eq!(isolated_errors, 0);
    let isolated_qps = (PASSES * stream.len()) as f64 / isolated_wall.as_secs_f64();

    let speedup = mixed_qps / isolated_qps;
    println!(
        "multi_tenant_serving/shared_pool_speedup           {speedup:.2}x  \
         (isolated sequential {isolated_qps:.0} q/s vs sharded {mixed_qps:.0} q/s, \
         {} tenants, {} workers, {} arrivals x {PASSES} passes)",
        n_tenants(),
        sharded.workers(),
        stream.len(),
    );
    // 1.1×, not the original 1.3×: the persistent pool removed the
    // per-batch spawns that made the isolated baseline slow (see the
    // module docs) — on a 1-core host ~1.2–1.9× is the observed band
    assert!(
        speedup >= 1.1,
        "shared-pool mixed-batch serving must beat sequential isolated engines ≥1.1x \
         (got {speedup:.2}x: {mixed_qps:.0} vs {isolated_qps:.0} q/s)"
    );
    let mut summary = BenchSummary::new("multi_tenant_serving");
    summary.push("shared_pool_speedup", speedup);

    // --- acceptance: fleet overload — per-tenant admission + deadline ---
    // the single-tenant saturation study lives in query_serving; here the
    // mixed stream (Zipf shares, one shared pool) is offered at ~3x the
    // fleet's measured closed-loop capacity. The FIFO baseline queues
    // every arrival and its served p99 grows with the backlog; the
    // protected run caps each tenant's backlog (so the hot tenant's flood
    // cannot monopolize the queue) and sheds queries whose wait blew the
    // deadline. Caching is off so recurring pool queries cost real
    // compute in both the capacity probe and the saturated runs.
    let overload_n = if is_quick() { 1024 } else { 2048 };
    let overload_stream = arrival_stream(&setup, &weights, overload_n, 0xaa);
    let fresh_uncached = || {
        let mut sharded = ShardedServingEngine::new(ShardConfig {
            workers,
            cache_capacity: 0,
            ..ShardConfig::default()
        });
        for (t, (tree, bn)) in setup.trees.iter().zip(&setup.bns).enumerate() {
            let engine = QueryEngine::numeric(tree, bn).expect("calibrates");
            let mat = trained_mat(tree, &engine, &setup.pools[t]);
            sharded
                .register(TenantId(t as u32), engine, mat)
                .expect("fresh id");
        }
        sharded
    };
    let probe = fresh_uncached();
    let closed = replay_mixed(&probe, &overload_stream, &ReplayConfig { batch_size: 32 });
    assert_eq!(closed.errors, 0);
    let capacity_qps = closed.throughput_qps;
    drop(probe);
    let schedule = poisson_arrivals(overload_stream.len(), 3.0 * capacity_qps, 0xfeed);
    let deadline = Duration::from_secs_f64(64.0 / capacity_qps);
    let open_cfg = |admission: AdmissionConfig| OpenLoopConfig {
        max_batch: 32,
        admission,
        clock: ReplayClock::Wall,
    };
    let (_, fifo) = replay_open_loop_mixed(
        &fresh_uncached(),
        &overload_stream,
        &schedule,
        &open_cfg(AdmissionConfig::fifo()),
    );
    let protected = AdmissionConfig {
        max_tenant_backlog: 64,
        ..AdmissionConfig::default().with_deadline(deadline)
    };
    let (_, shed) = replay_open_loop_mixed(
        &fresh_uncached(),
        &overload_stream,
        &schedule,
        &open_cfg(protected),
    );
    assert_eq!(fifo.errors + shed.errors, 0, "overload runs are error-free");
    assert_eq!(
        fifo.served,
        overload_stream.len(),
        "the FIFO baseline serves everything, just arbitrarily late"
    );
    let p99_ratio = fifo.sojourn_p99.as_secs_f64() / shed.sojourn_p99.as_secs_f64().max(1e-9);
    println!(
        "multi_tenant_serving/overload_p99_ratio            {p99_ratio:.2}x  \
         (fleet capacity {capacity_qps:.0} q/s, offered {:.0} q/s, deadline {deadline:.1?}: \
         fifo p99 {:.1?} all {} served; protected p99 {:.1?}, {} served + {} deadline-shed \
         + {} admission-shed, peak backlog {} vs {})",
        3.0 * capacity_qps,
        fifo.sojourn_p99,
        fifo.served,
        shed.sojourn_p99,
        shed.served,
        shed.shed_deadline,
        shed.shed_admission,
        fifo.peak_backlog,
        shed.peak_backlog,
    );
    assert!(
        p99_ratio >= 1.5,
        "per-tenant admission + deadline shedding must keep fleet served p99 \
         bounded under 3x offered load (got {p99_ratio:.2}x)"
    );
    summary.push("overload_p99_ratio", p99_ratio);
    match summary.write() {
        Ok(path) => println!("multi_tenant_serving/summary written to {}", path.display()),
        Err(e) => eprintln!("multi_tenant_serving/summary NOT written: {e}"),
    }

    // --- acceptance: the global budget follows a traffic spike ---
    let fleet = sharded_engine(&setup, workers, false);
    let mut ctl = FleetController::new(
        &fleet,
        FleetConfig {
            min_window: 512,
            ..FleetConfig::new(GLOBAL_BUDGET)
        },
    );
    let spike_tenant = n_tenants() - 1; // the coldest tenant of the Zipf fleet
    let serve_phase = |weights: &[f64], seed: u64| {
        let phase = arrival_stream(&setup, weights, 1024, seed);
        let report = replay_mixed(&fleet, &phase, &ReplayConfig { batch_size: BATCH });
        assert_eq!(report.errors, 0, "fleet serving must be error-free");
    };
    serve_phase(&weights, 7);
    let r1 = ctl
        .tick()
        .expect("fleet tick")
        .expect("first window must rebalance")
        .clone();

    // the cold tenant's traffic spikes: its share roughly quadruples
    let mut spiked = weights.clone();
    spiked[spike_tenant] *= 8.0;
    serve_phase(&spiked, 8);
    let r2 = ctl
        .tick()
        .expect("fleet tick")
        .expect("share shift must rebalance")
        .clone();

    let alloc = |r: &FleetRebalance, t: usize| {
        r.allocations
            .iter()
            .find(|a| a.tenant == TenantId(t as u32))
            .map(|a| (a.share, a.budget_used))
            .unwrap_or((0.0, 0))
    };
    let (share_before, budget_before) = alloc(&r1, spike_tenant);
    let (share_after, budget_after) = alloc(&r2, spike_tenant);
    println!(
        "multi_tenant_serving/budget_reallocation           tenant#{spike_tenant} share \
         {:.0}% -> {:.0}%, allocation {budget_before} -> {budget_after} entries \
         (fleet total {} -> {} of {GLOBAL_BUDGET} budget)",
        100.0 * share_before,
        100.0 * share_after,
        r1.total_size,
        r2.total_size,
    );
    for r in [&r1, &r2] {
        assert!(
            r.total_size <= GLOBAL_BUDGET,
            "fleet allocation must respect the global budget"
        );
    }
    assert!(
        share_after > 2.0 * share_before,
        "test premise: the spike must double the tenant's share \
         ({share_before:.2} -> {share_after:.2})"
    );
    assert!(
        budget_after > budget_before,
        "the fleet controller must shift budget toward the spiking tenant \
         ({budget_before} -> {budget_after} entries)"
    );

    // --- criterion timings: steady mixed serving per worker count ---
    let mut g = c.benchmark_group("multi_tenant_serving");
    for workers in worker_sweep() {
        let steady = sharded_engine(&setup, workers, true);
        // warm the caches once: steady state is the recurring stream
        replay_mixed(&steady, &stream, &ReplayConfig { batch_size: BATCH });
        g.bench_function(format!("mixed_stream_steady_w{}", steady.workers()), |b| {
            b.iter(|| {
                black_box(replay_mixed(
                    &steady,
                    &stream,
                    &ReplayConfig { batch_size: BATCH },
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_multi_tenant_serving);
criterion_main!(benches);
