//! Online query-processing benchmarks: plain JT vs PEANUT+-reduced message
//! passing, numeric and symbolic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peanut_bench::harness::{run_offline, Prepared};
use peanut_core::{OnlineEngine, Variant};
use peanut_junction::QueryEngine;
use std::hint::black_box;

fn bench_symbolic_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_cost_symbolic");
    for name in ["Child", "TPC-H", "Munin"] {
        let p = Prepared::by_name(name);
        let train = p.skewed(300, 11);
        let queries = p.skewed(50, 12);
        let (mat, _) = run_offline(&p, &train, p.b_t() * 100, 1.2, Variant::PeanutPlus);
        let engine = QueryEngine::symbolic(&p.tree);

        g.bench_with_input(BenchmarkId::new("plain_jt", name), &(), |b, _| {
            b.iter(|| {
                let total: u64 = queries
                    .iter()
                    .map(|q| engine.cost(q).expect("cost").ops)
                    .sum();
                black_box(total)
            })
        });
        let online = OnlineEngine::new(&engine, &mat);
        g.bench_with_input(BenchmarkId::new("peanut_plus", name), &(), |b, _| {
            b.iter(|| {
                let total: u64 = queries
                    .iter()
                    .map(|q| online.cost(q).expect("cost").ops)
                    .sum();
                black_box(total)
            })
        });
    }
    g.finish();
}

fn bench_numeric_answer(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_answer_numeric");
    g.sample_size(20);
    let p = Prepared::by_name("Child");
    let engine = QueryEngine::numeric(&p.tree, &p.bn).expect("calibration");
    let queries = p.skewed(20, 13);
    g.bench_function("child_20_queries", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(engine.answer(q).expect("answer"));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_symbolic_cost, bench_numeric_answer);
criterion_main!(benches);
