//! Offline DP benchmarks: LRDP + BUDP against the approximation level ε,
//! and the serial-vs-parallel root fan-out ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peanut_bench::harness::Prepared;
use peanut_core::lrdp::lrdp_all;
use peanut_core::{budp::budp, BudgetGrid, OfflineContext, Workload};
use std::hint::black_box;

fn bench_epsilon(c: &mut Criterion) {
    let mut g = c.benchmark_group("offline_dp_epsilon");
    g.sample_size(10);
    let p = Prepared::by_name("Hailfinder");
    let train = p.skewed(300, 11);
    let w = Workload::from_queries(train);
    let ctx = OfflineContext::new(&p.tree, &w).expect("context");
    let budget = p.b_t() * 100;
    for eps in [1.2, 6.0, 12.0] {
        g.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| {
                let grid = BudgetGrid::geometric(budget, eps);
                let roots = lrdp_all(&ctx, &grid, 1);
                black_box(budp(&ctx, &grid, &roots))
            })
        });
    }
    g.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("lrdp_fanout");
    g.sample_size(10);
    let p = Prepared::by_name("Munin");
    let train = p.skewed(300, 11);
    let w = Workload::from_queries(train);
    let ctx = OfflineContext::new(&p.tree, &w).expect("context");
    let grid = BudgetGrid::geometric(p.b_t() * 100, 1.2);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(lrdp_all(&ctx, &grid, t)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_epsilon, bench_fanout);
criterion_main!(benches);
