//! Mutation test: prove the checker actually catches ordering bugs.
//!
//! The `mutation-lost-wakeup` feature re-introduces a classic lost-wakeup
//! bug into `WorkerPool::run_wave`: the `work_ready` notification is moved
//! *before* the queue push instead of after it. A parked worker can then
//! wake on the early notify, find the queue still empty, re-park — and the
//! push that follows wakes nobody. Root blocks forever on the wave's
//! completion condvar, the worker forever on `work_ready`: deadlock.
//!
//! Exposing it needs one adversarial preemption — away from the
//! submitter in the window between the early notify and the push, so the
//! worker parks on the still-empty queue and the push wakes nobody. A
//! preemption bound of 1 must find it, and a bound of 0 (pure
//! run-to-block cooperative scheduling, what an unlucky `cargo test` run
//! usually exercises) must NOT: the bug the mutation plants genuinely
//! needs the checker, not a lucky schedule.

#![cfg(feature = "mutation-lost-wakeup")]

use interleave::FailureKind;
use peanut_check::{explore, explore_random, pool_counting_wave, replay_seed, Config, Outcome};

#[test]
fn bounded_exploration_catches_the_lost_wakeup_as_deadlock() {
    let body = || pool_counting_wave(1, 1);

    // cooperative run-to-block scheduling never lines the race up…
    explore(&Config::with_preemption_bound(0), body).assert_pass();

    // …one adversarial preemption does: the checker must find the deadlock
    let caught = explore(&Config::with_preemption_bound(1), body);
    let failure = caught.assert_fail();
    assert_eq!(failure.kind, FailureKind::Deadlock, "{}", failure.message);
    assert!(
        failure.message.contains("Cond"),
        "both threads must be blocked on condvars: {}",
        failure.message
    );
    println!(
        "mutation caught after {} schedules: {}",
        failure.schedules, failure.message
    );

    // the recorded plan replays to the identical failure
    let replayed = interleave::replay_plan(&Config::with_preemption_bound(1), &failure.plan, body);
    let Outcome::Fail(again) = replayed else {
        panic!("recorded plan must reproduce the deadlock");
    };
    assert_eq!(again.kind, FailureKind::Deadlock);
    assert_eq!(
        again.message, failure.message,
        "replay must be bit-identical"
    );
}

#[test]
fn random_exploration_finds_it_and_replays_by_seed() {
    let body = || pool_counting_wave(1, 1);

    let caught = explore_random(&Config::default(), 5_000, 0xfeed_beef, body);
    let failure = caught.assert_fail();
    assert_eq!(failure.kind, FailureKind::Deadlock, "{}", failure.message);
    let seed = failure.seed.expect("random failures carry their sub-seed");
    println!(
        "random mode caught the mutation at seed {seed:#x} after {} schedules",
        failure.schedules
    );

    // the reported seed alone reproduces the identical failure
    let Outcome::Fail(again) = replay_seed(&Config::default(), seed, body) else {
        panic!("seed {seed:#x} must reproduce the deadlock");
    };
    assert_eq!(again.kind, FailureKind::Deadlock);
    assert_eq!(
        again.message, failure.message,
        "seed replay must be bit-identical"
    );
}
