//! Model checking the lane/handle protocol of the non-blocking pool
//! front-end.
//!
//! Every test drives the *production* `WorkerPool` — `submit_batch`,
//! `WaveHandle::wait`/`is_complete`, the three priority lanes, and the
//! graceful drain-then-join shutdown — through the vendored `interleave`
//! scheduler. The properties pinned down here:
//!
//! * a non-blocking submission completes under every interleaving, on its
//!   own lane, whether the handle is waited from the submitter, waited
//!   from another thread, or dropped (detached);
//! * the mid-wave lane yield (workers re-check the advisory occupancy
//!   mask between task claims) is invisible to completion — a yielded
//!   wave is always finished eventually, never lost or double-run;
//! * dropping the pool drains every queued wave — including detached ones
//!   nobody will ever wait on — before joining the workers;
//! * a task panic inside a submitted wave is re-raised through
//!   `WaveHandle::wait`, and the pool survives it.

#![cfg(not(feature = "mutation-lost-wakeup"))]

use peanut_check::{explore, explore_random, Config};
use peanut_core::sync::atomic::{AtomicUsize, Ordering};
use peanut_core::sync::{thread, Arc};
use peanut_serving::{Lane, WorkerPool};
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn background_handle_racing_a_serving_wave_is_exhaustive_at_bound_2() {
    let out = explore(&Config::with_preemption_bound(2), || {
        peanut_check::lane_handle_roundtrip(1, 1, 1);
    });
    let report = out.assert_pass();
    assert!(
        report.complete,
        "the bounded space must be fully enumerated"
    );
    assert!(
        report.schedules > 50,
        "suspiciously small interleaving space: {}",
        report.schedules
    );
    println!(
        "lane 1w serving-vs-background bound=2: {} interleavings, longest trail {} decisions",
        report.schedules, report.max_decisions
    );
}

#[test]
fn two_workers_split_across_lanes_survive_bound_1() {
    // two workers, a two-task background wave and a serving wave racing:
    // the claim cursor, the lane-priority selection, and the mid-wave
    // yield all interleave here
    let out = explore(&Config::with_preemption_bound(1), || {
        peanut_check::lane_handle_roundtrip(2, 1, 2);
    });
    let report = out.assert_pass();
    assert!(report.complete);
    println!(
        "lane 2w/1s+2b bound=1: {} interleavings, longest trail {} decisions",
        report.schedules, report.max_decisions
    );
}

#[test]
fn handle_can_be_waited_from_another_thread() {
    // the submitter hands the handle to a second thread; completion must
    // reach that thread's wait under every interleaving
    let out = explore(&Config::with_preemption_bound(2), || {
        let pool = WorkerPool::new(1);
        // ordering: model-run hit counter; the scheduler is sequentially
        // consistent anyway.
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        let handle = pool.submit_batch(Lane::Remat, 1, move |_i, _scratch| {
            h2.fetch_add(1, Ordering::Relaxed);
        });
        let waiter = thread::spawn(move || {
            handle.wait();
        });
        waiter.join().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(pool.stats().lane_waves[Lane::Remat.index()], 1);
    });
    let report = out.assert_pass();
    assert!(report.complete);
    println!(
        "lane cross-thread wait bound=2: {} interleavings",
        report.schedules
    );
}

#[test]
fn detached_wave_drains_before_drop_joins() {
    // the handle is dropped immediately — nobody will ever wait. The
    // graceful drain must still run the wave to completion before the
    // pool's Drop joins the workers, under every interleaving (including
    // the one where Drop wins the race to the queue lock before the
    // worker has even picked the wave up).
    let out = explore(&Config::with_preemption_bound(2), || {
        let pool = WorkerPool::new(1);
        // ordering: model-run hit counter; sequentially consistent anyway.
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        drop(pool.submit_batch(Lane::Background, 1, move |_i, _scratch| {
            h2.fetch_add(1, Ordering::Relaxed);
        }));
        drop(pool);
        assert_eq!(
            hits.load(Ordering::Relaxed),
            1,
            "a detached wave must be drained by shutdown, not abandoned"
        );
    });
    let report = out.assert_pass();
    assert!(report.complete);
    println!(
        "lane detached-drain bound=2: {} interleavings",
        report.schedules
    );
}

#[test]
fn panic_reraises_through_handle_wait_under_every_interleaving() {
    let out = explore(&Config::with_preemption_bound(2), || {
        let pool = WorkerPool::new(1);
        let handle = pool.submit_batch(Lane::Serving, 1, |_i, _scratch| {
            panic!("injected model panic");
        });
        let blown = catch_unwind(AssertUnwindSafe(|| handle.wait()));
        assert!(blown.is_err(), "the waiter must see the re-raised panic");
        assert_eq!(pool.stats().panics, 1);
        // the worker survived the unwind and still serves
        pool.run_wave(1, &|_i, _scratch| {});
        assert_eq!(pool.stats().waves, 2);
    });
    let report = out.assert_pass();
    assert!(report.complete);
    println!(
        "lane handle panic-reraise bound=2: {} interleavings",
        report.schedules
    );
}

#[test]
fn random_sampling_covers_a_three_lane_mix() {
    // all three lanes in flight at once, too big to enumerate: seeded
    // random sampling; any failure would report a replayable seed
    let out = explore_random(&Config::default(), 200, 0x5eed_1a9e_5eed_1a9e, || {
        let pool = Arc::new(WorkerPool::new(2));
        // ordering: model-run hit counters; sequentially consistent anyway.
        let hits = Arc::new(AtomicUsize::new(0));
        let (h1, h2) = (Arc::clone(&hits), Arc::clone(&hits));
        let bg = pool.submit_batch(Lane::Background, 2, move |_i, _scratch| {
            h1.fetch_add(1, Ordering::Relaxed);
        });
        let remat = pool.submit_batch(Lane::Remat, 1, move |_i, _scratch| {
            h2.fetch_add(1, Ordering::Relaxed);
        });
        pool.run_wave(2, &|_i, _scratch| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        remat.wait();
        bg.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 5, "every lane's tasks ran");
        let stats = pool.stats();
        assert_eq!(stats.tasks, 5);
        assert_eq!(stats.lane_waves, [1, 1, 1]);
    });
    let report = out.assert_pass();
    assert_eq!(report.schedules, 200);
    println!(
        "lane three-lane mix random: {} sampled schedules",
        report.schedules
    );
}
