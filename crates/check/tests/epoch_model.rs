//! Model checking the epoch-swap-during-wave protocol.
//!
//! The serving engines publish a new materialization epoch by taking the
//! epoch `RwLock` for writing while in-flight waves hold read-locked
//! snapshots. The invariant under test, distilled: a snapshot is never
//! *torn* — a reader must observe the epoch counter and the payload
//! published with it as one consistent pair, no matter where the
//! publisher's write is preempted.
//!
//! The state is a `RwLock<(u64, u64)>` where the second field must always
//! equal `epoch * 1000` — the stand-in for "the materialization tables
//! that belong to this epoch". The publisher bumps both under the write
//! lock; pool-wave tasks snapshot under the read lock and assert the
//! pairing.

#![cfg(not(feature = "mutation-lost-wakeup"))]

use peanut_check::{explore, Config};
use peanut_core::sync::{thread, Arc, RwLock};
use peanut_serving::WorkerPool;

#[test]
fn epoch_swap_during_wave_never_tears_a_snapshot() {
    let out = explore(&Config::with_preemption_bound(2), || {
        let epoch: Arc<RwLock<(u64, u64)>> = Arc::new(RwLock::new((0, 0)));
        let pool = WorkerPool::new(1);

        let publisher = {
            let epoch = Arc::clone(&epoch);
            thread::spawn(move || {
                let mut g = epoch.write();
                g.0 += 1;
                // the preemption the bound buys us sits between these two
                // writes — only the write lock makes the pair atomic
                g.1 = g.0 * 1000;
            })
        };

        // a wave of snapshot-taking tasks races the publisher
        pool.run_wave(2, &|_i, _scratch| {
            let g = epoch.read();
            assert_eq!(g.1, g.0 * 1000, "torn epoch snapshot: {:?}", *g);
        });

        publisher.join().unwrap();
        let g = epoch.read();
        assert_eq!(*g, (1, 1000), "exactly one publish must have landed");
        drop(g);
        drop(pool);
    });
    let report = out.assert_pass();
    assert!(report.complete, "bounded space must be fully enumerated");
    println!(
        "epoch swap bound=2: {} interleavings, longest trail {} decisions",
        report.schedules, report.max_decisions
    );
}

#[test]
fn back_to_back_publishes_are_serialized_by_the_write_lock() {
    let out = explore(&Config::with_preemption_bound(1), || {
        let epoch: Arc<RwLock<(u64, u64)>> = Arc::new(RwLock::new((0, 0)));
        let spawn_publisher = |epoch: &Arc<RwLock<(u64, u64)>>| {
            let epoch = Arc::clone(epoch);
            thread::spawn(move || {
                let mut g = epoch.write();
                g.0 += 1;
                g.1 = g.0 * 1000;
            })
        };
        let a = spawn_publisher(&epoch);
        let b = spawn_publisher(&epoch);
        {
            let g = epoch.read();
            assert_eq!(g.1, g.0 * 1000, "torn epoch snapshot: {:?}", *g);
        }
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(*epoch.read(), (2, 2000), "both publishes must land once");
    });
    let report = out.assert_pass();
    assert!(report.complete);
    println!("double publish bound=1: {} interleavings", report.schedules);
}
