//! Model checking the worker pool protocol.
//!
//! Every test here drives the *production* `WorkerPool` — not a model of
//! it — through the vendored `interleave` scheduler, enumerating thread
//! interleavings up to a preemption bound (CHESS-style: context switches
//! away from a blocked thread are always free, so the bound only caps
//! adversarial preemptions; every schedule a correct protocol must
//! survive at that bound is covered, completely).
//!
//! Schedule counts are asserted as floors (the space must not silently
//! collapse) and printed so CI logs report how many interleavings each
//! protocol survived. Determinism of those counts is itself asserted by
//! the `interleave` self-tests.

#![cfg(not(feature = "mutation-lost-wakeup"))]

use peanut_check::{explore, explore_random, Config};
use peanut_core::sync::atomic::{AtomicUsize, Ordering};
use peanut_core::sync::{thread, Arc};
use peanut_serving::WorkerPool;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn single_worker_single_task_protocol_is_exhaustive_at_bound_3() {
    let out = explore(&Config::with_preemption_bound(3), || {
        peanut_check::pool_counting_wave(1, 1);
    });
    let report = out.assert_pass();
    assert!(
        report.complete,
        "the bounded space must be fully enumerated"
    );
    assert!(
        report.schedules > 50,
        "suspiciously small interleaving space: {}",
        report.schedules
    );
    println!(
        "pool 1w/1t bound=3: {} interleavings, longest trail {} decisions",
        report.schedules, report.max_decisions
    );
}

#[test]
fn single_worker_two_tasks_protocol_survives_bound_2() {
    let out = explore(&Config::with_preemption_bound(2), || {
        peanut_check::pool_counting_wave(1, 2);
    });
    let report = out.assert_pass();
    assert!(report.complete);
    println!(
        "pool 1w/2t bound=2: {} interleavings, longest trail {} decisions",
        report.schedules, report.max_decisions
    );
}

#[test]
fn two_workers_two_tasks_protocol_survives_bound_1() {
    // two workers racing to claim two task indices: the atomic-cursor
    // claim, the done-counter completion, and the lazy queue pop all
    // interleave here
    let out = explore(&Config::with_preemption_bound(1), || {
        peanut_check::pool_counting_wave(2, 2);
    });
    let report = out.assert_pass();
    assert!(report.complete);
    println!(
        "pool 2w/2t bound=1: {} interleavings, longest trail {} decisions",
        report.schedules, report.max_decisions
    );
}

#[test]
fn panic_reraise_reaches_the_submitter_under_every_interleaving() {
    let out = explore(&Config::with_preemption_bound(2), || {
        let pool = WorkerPool::new(1);
        let blown = catch_unwind(AssertUnwindSafe(|| {
            pool.run_wave(2, &|i, _scratch| {
                if i == 0 {
                    panic!("injected model panic");
                }
            });
        }));
        assert!(blown.is_err(), "submitter must see the re-raised panic");
        assert_eq!(pool.stats().panics, 1);
        // the worker survived the unwind and still serves
        pool.run_wave(1, &|_i, _scratch| {});
        assert_eq!(pool.stats().waves, 2);
    });
    let report = out.assert_pass();
    assert!(report.complete);
    println!(
        "pool panic-reraise bound=2: {} interleavings",
        report.schedules
    );
}

#[test]
fn concurrent_submitters_drain_every_queued_wave_before_drop() {
    // a second submitting thread races waves into a single-worker queue;
    // both submitters must return (waves drained) before join-on-drop —
    // the model-checked version of drop-while-queue-nonempty
    let out = explore(&Config::with_preemption_bound(1), || {
        let pool = Arc::new(WorkerPool::new(1));
        // ordering: model runs are sequentially consistent — every Relaxed
        // access below is a plain counter the scheduler serializes anyway.
        let ran = Arc::new(AtomicUsize::new(0));
        let (p2, r2) = (Arc::clone(&pool), Arc::clone(&ran));
        let submitter = thread::spawn(move || {
            p2.run_wave(1, &|_i, _scratch| {
                r2.fetch_add(1, Ordering::Relaxed);
            });
        });
        pool.run_wave(1, &|_i, _scratch| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        submitter.join().unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 2, "both waves must drain");
        let stats = pool.stats();
        assert_eq!(stats.waves, 2);
        drop(pool); // last Arc: join-on-drop under every interleaving
    });
    let report = out.assert_pass();
    assert!(report.complete);
    println!(
        "pool 2 submitters bound=1: {} interleavings",
        report.schedules
    );
}

#[test]
fn random_sampling_covers_larger_configurations() {
    // configurations too big to enumerate get seeded random sampling;
    // any failure would report a replayable seed
    let out = explore_random(&Config::default(), 300, 0x9e37_79b9_7f4a_7c15, || {
        peanut_check::pool_counting_wave(3, 5);
    });
    let report = out.assert_pass();
    assert_eq!(report.schedules, 300);
    println!("pool 3w/5t random: {} sampled schedules", report.schedules);
}
