#![forbid(unsafe_code)]
//! Model-check harness for the serving stack's concurrency protocols.
//!
//! This crate compiles `peanut-core` and `peanut-serving` with the
//! `model-check` feature, which swaps the [`peanut_core::sync`] facade
//! from std-backed primitives to the instrumented shims of the vendored
//! [`interleave`] explorer. The real production code — the
//! [`WorkerPool`]'s
//! submit/park/claim/panic-reraise/join-on-drop protocol, and the epoch
//! swap the serving engines perform under an `RwLock` while waves drain —
//! then runs under a deterministic scheduler that enumerates thread
//! interleavings (preemption-bounded, CHESS-style) or samples them from a
//! replayable seed.
//!
//! The tests live in `tests/`:
//!
//! * `pool_model.rs` — exhaustively drives the pool protocol on small
//!   configurations and asserts every interleaving completes with the
//!   right counts (and prints how many interleavings that covered);
//! * `epoch_model.rs` — a distilled epoch-swap-during-wave: concurrent
//!   `publish` (write lock) against pool tasks taking epoch snapshots
//!   (read lock), asserting snapshots are never torn;
//! * `mutation.rs` (feature `mutation-lost-wakeup`) — re-introduces a
//!   seeded lost-wakeup ordering bug in `run_wave` and proves the checker
//!   catches it as a deadlock, deterministically replayable by seed.
//!
//! Everything a model body touches must be constructed *inside* the body
//! closure (fresh pool, fresh locks per schedule) and be deterministic —
//! see the `interleave` crate docs for the full rules.

pub use interleave::{explore, explore_random, replay_plan, replay_seed, Config, Outcome};

use peanut_core::sync::atomic::{AtomicUsize, Ordering};
use peanut_serving::WorkerPool;

/// Builds a pool with `workers` workers inside a model body, runs one
/// wave of `total` counting tasks, asserts each index ran exactly once,
/// and drops the pool (joining every worker). The smallest complete pass
/// through the submit/park/claim/join-on-drop protocol.
pub fn pool_counting_wave(workers: usize, total: usize) {
    let pool = WorkerPool::new(workers);
    let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
    pool.run_wave(total, &|i, _scratch| {
        // ordering: every Relaxed below is a hit counter in a model run —
        // the scheduler is sequentially consistent anyway, and Relaxed
        // mirrors what production counters use.
        hits[i].fetch_add(1, Ordering::Relaxed);
    });
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(
            h.load(Ordering::Relaxed),
            1,
            "task {i} must run exactly once"
        );
    }
    let stats = pool.stats();
    assert_eq!(stats.tasks, total as u64, "claimed-task count");
    assert_eq!(stats.waves, 1);
    drop(pool); // join-on-drop: must complete under every interleaving
}
