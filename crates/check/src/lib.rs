#![forbid(unsafe_code)]
//! Model-check harness for the serving stack's concurrency protocols.
//!
//! This crate compiles `peanut-core` and `peanut-serving` with the
//! `model-check` feature, which swaps the [`peanut_core::sync`] facade
//! from std-backed primitives to the instrumented shims of the vendored
//! [`interleave`] explorer. The real production code — the
//! [`WorkerPool`]'s
//! submit/park/claim/panic-reraise/join-on-drop protocol, and the epoch
//! swap the serving engines perform under an `RwLock` while waves drain —
//! then runs under a deterministic scheduler that enumerates thread
//! interleavings (preemption-bounded, CHESS-style) or samples them from a
//! replayable seed.
//!
//! The tests live in `tests/`:
//!
//! * `pool_model.rs` — exhaustively drives the pool protocol on small
//!   configurations and asserts every interleaving completes with the
//!   right counts (and prints how many interleavings that covered);
//! * `lane_model.rs` — the non-blocking front-end: `submit_batch` handles
//!   (wait, cross-thread wait, panic re-raise through `wait`), priority
//!   lanes racing each other, and the graceful drain that completes
//!   detached waves before drop joins the workers;
//! * `epoch_model.rs` — a distilled epoch-swap-during-wave: concurrent
//!   `publish` (write lock) against pool tasks taking epoch snapshots
//!   (read lock), asserting snapshots are never torn;
//! * `mutation.rs` (feature `mutation-lost-wakeup`) — re-introduces a
//!   seeded lost-wakeup ordering bug in the pool's enqueue and proves the
//!   checker catches it as a deadlock, deterministically replayable by
//!   seed.
//!
//! Everything a model body touches must be constructed *inside* the body
//! closure (fresh pool, fresh locks per schedule) and be deterministic —
//! see the `interleave` crate docs for the full rules.

pub use interleave::{explore, explore_random, replay_plan, replay_seed, Config, Outcome};

use peanut_core::sync::atomic::{AtomicUsize, Ordering};
use peanut_core::sync::Arc;
use peanut_serving::{Lane, WorkerPool};

/// Builds a pool with `workers` workers inside a model body, runs one
/// wave of `total` counting tasks, asserts each index ran exactly once,
/// and drops the pool (joining every worker). The smallest complete pass
/// through the submit/park/claim/join-on-drop protocol.
pub fn pool_counting_wave(workers: usize, total: usize) {
    let pool = WorkerPool::new(workers);
    let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
    pool.run_wave(total, &|i, _scratch| {
        // ordering: every Relaxed below is a hit counter in a model run —
        // the scheduler is sequentially consistent anyway, and Relaxed
        // mirrors what production counters use.
        hits[i].fetch_add(1, Ordering::Relaxed);
    });
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(
            h.load(Ordering::Relaxed),
            1,
            "task {i} must run exactly once"
        );
    }
    let stats = pool.stats();
    assert_eq!(stats.tasks, total as u64, "claimed-task count");
    assert_eq!(stats.waves, 1);
    assert_eq!(
        stats.lane_waves[Lane::Serving.index()],
        1,
        "run_wave rides the serving lane"
    );
    drop(pool); // join-on-drop: must complete under every interleaving
}

/// One full pass through the lane/handle protocol inside a model body:
/// a non-blocking background submission races a blocking serving wave
/// for the same workers, the handle is waited, and the pool is dropped.
/// Asserts both waves complete with exact task counts on their own lanes
/// under every interleaving — the mid-wave lane yield (the advisory
/// occupancy mask) may or may not fire depending on the schedule, and
/// must be invisible to completion either way.
pub fn lane_handle_roundtrip(workers: usize, serving_tasks: usize, background_tasks: usize) {
    let pool = WorkerPool::new(workers);
    // ordering: every Relaxed below is a model-run hit counter; the
    // scheduler is sequentially consistent anyway.
    let bg_hits = Arc::new(AtomicUsize::new(0));
    let b2 = Arc::clone(&bg_hits);
    let handle = pool.submit_batch(Lane::Background, background_tasks, move |_i, _scratch| {
        b2.fetch_add(1, Ordering::Relaxed);
    });
    let sv_hits = AtomicUsize::new(0);
    pool.run_wave(serving_tasks, &|_i, _scratch| {
        sv_hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(
        sv_hits.load(Ordering::Relaxed),
        serving_tasks,
        "the serving wave must fully complete when run_wave returns"
    );
    handle.wait();
    assert_eq!(
        bg_hits.load(Ordering::Relaxed),
        background_tasks,
        "the waited background wave must have fully completed"
    );
    let stats = pool.stats();
    assert_eq!(stats.tasks, (serving_tasks + background_tasks) as u64);
    assert_eq!(
        stats.lane_waves[Lane::Serving.index()],
        u64::from(serving_tasks > 0)
    );
    assert_eq!(
        stats.lane_waves[Lane::Background.index()],
        u64::from(background_tasks > 0)
    );
    drop(pool);
}
