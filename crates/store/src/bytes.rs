//! The store's single audited `unsafe` module.
//!
//! Everything memory-unsafe about the zero-copy read path lives here, in
//! two narrow capabilities:
//!
//! 1. **Mapping**: [`MappedBytes`] opens a store file either via
//!    `mmap(2)` (the `mmap` feature, unix hosts — the zero-copy path) or
//!    via an owned, 8-byte-aligned buffered read (`read_owned`, also the
//!    automatic fallback under miri / non-unix, where the raw syscall is
//!    unavailable). Both backings expose the same `&[u8]`.
//! 2. **Reinterpretation**: [`as_u64s`] / [`as_f64s`] cast a naturally
//!    aligned, multiple-of-8 byte range to a typed slice. The casts
//!    verify alignment and length and return `None` instead of
//!    reinterpreting anything that does not qualify.
//!
//! Every other store module is `unsafe`-free and works purely with the
//! safe slices handed out from here; the crate root denies `unsafe_code`
//! except for this module, and `cargo xtask lint` (rules R1/R2) pins both
//! the allowlist and the `SAFETY:` coverage below.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::slice;

/// Raw bindings to the two syscalls the zero-copy path needs. `std`
/// already links libc on unix targets, so declaring the symbols is
/// enough — no external crate involved. The constants are the
/// POSIX-mandated values shared by Linux and the BSDs for these flags.
#[cfg(all(feature = "mmap", unix))]
mod sys {
    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, length: usize) -> i32;
    }
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
}

/// An immutable byte buffer backing one open store file: either a live
/// read-only mapping or an owned aligned copy. The base address is always
/// at least 8-byte aligned (a page for the mapping, a `Vec<u64>`
/// allocation for the owned copy), which is what makes the typed casts
/// below possible for the store's all-8-byte-word format.
pub struct MappedBytes {
    backing: Backing,
}

enum Backing {
    /// A `PROT_READ`/`MAP_PRIVATE` mapping. The fd is closed right after
    /// mapping (POSIX keeps the mapping alive); `Drop` unmaps.
    #[cfg(all(feature = "mmap", unix))]
    Mapped { ptr: *mut u8, len: usize },
    /// An owned copy inside a `Vec<u64>` so the base stays 8-aligned.
    /// `len` is the byte length (the last word may be zero-padded).
    Owned { words: Vec<u64>, len: usize },
}

// SAFETY: the mapped backing is a private, read-only mapping whose pages
// never change under us (MAP_PRIVATE isolates the mapping from later
// writes to the file) and whose pointer is never handed out mutably;
// the owned backing is a plain Vec. Sharing either across threads is
// sharing immutable memory.
unsafe impl Send for MappedBytes {}
// SAFETY: as above — all access is through `&self` returning `&[u8]`.
unsafe impl Sync for MappedBytes {}

impl MappedBytes {
    /// Opens `path` with the best available backing: a zero-copy mapping
    /// when the `mmap` feature is on and the target is unix, an owned
    /// aligned read otherwise.
    pub fn open(path: &Path) -> io::Result<MappedBytes> {
        #[cfg(all(feature = "mmap", unix))]
        {
            MappedBytes::map(path)
        }
        #[cfg(not(all(feature = "mmap", unix)))]
        {
            MappedBytes::read_owned(path)
        }
    }

    /// Maps `path` read-only. Empty files get the owned (empty) backing —
    /// `mmap` rejects zero-length mappings.
    #[cfg(all(feature = "mmap", unix))]
    fn map(path: &Path) -> io::Result<MappedBytes> {
        use std::os::unix::io::AsRawFd;
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(MappedBytes {
                backing: Backing::Owned {
                    words: Vec::new(),
                    len: 0,
                },
            });
        }
        // SAFETY: plain FFI call with a live fd, a non-zero length that
        // matches the file, and a null addr hint; the kernel picks the
        // address. PROT_READ + MAP_PRIVATE means the resulting pages are
        // immutable to us and isolated from concurrent file writes. The
        // result is checked for MAP_FAILED ((void*)-1) before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(MappedBytes {
            backing: Backing::Mapped { ptr, len },
        })
    }

    /// Reads `path` into an owned 8-byte-aligned buffer — the
    /// non-`unsafe`-syscall backing (miri, non-unix, or explicit callers
    /// that want a mapping-independent copy).
    pub fn read_owned(path: &Path) -> io::Result<MappedBytes> {
        let mut file = File::open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let len = bytes.len();
        let mut words = vec![0u64; len.div_ceil(8)];
        for (w, chunk) in words.iter_mut().zip(bytes.chunks(8)) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            *w = u64::from_ne_bytes(b);
        }
        Ok(MappedBytes {
            backing: Backing::Owned { words, len },
        })
    }

    /// Byte length of the backing.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(all(feature = "mmap", unix))]
            Backing::Mapped { len, .. } => *len,
            Backing::Owned { len, .. } => *len,
        }
    }

    /// True when the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole backing as bytes. The base address is ≥ 8-byte aligned.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(feature = "mmap", unix))]
            Backing::Mapped { ptr, len } => {
                // SAFETY: ptr/len denote a live PROT_READ mapping owned by
                // self (unmapped only in Drop), so the range is valid,
                // initialized, immutable for &self's lifetime, and cannot
                // exceed isize (mmap would have failed).
                unsafe { slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Owned { words, len } => {
                // SAFETY: `len <= words.len() * 8` by construction in
                // `read_owned`, so the byte range lies inside the Vec's
                // initialized allocation; u64 -> u8 only loosens alignment.
                unsafe { slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len) }
            }
        }
    }

    /// Whether this backing is a real mapping (false: owned copy).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(feature = "mmap", unix))]
            Backing::Mapped { .. } => true,
            Backing::Owned { .. } => false,
        }
    }
}

#[cfg(all(feature = "mmap", unix))]
impl Drop for MappedBytes {
    fn drop(&mut self) {
        if let Backing::Mapped { ptr, len } = &self.backing {
            // SAFETY: ptr/len came from the successful mmap in `map` and
            // are unmapped exactly once, here. No slice borrowed from the
            // mapping can outlive self (they all borrow &self).
            let rc = unsafe { sys::munmap(*ptr, *len) };
            debug_assert_eq!(rc, 0, "munmap failed");
        }
    }
}

/// Reinterprets an 8-byte-aligned, multiple-of-8 byte range as `u64`
/// words. Returns `None` (caller treats as corruption) if either
/// precondition fails — this function never casts anything unaligned.
pub fn as_u64s(bytes: &[u8]) -> Option<&[u64]> {
    if bytes.len() % 8 != 0 || bytes.as_ptr().align_offset(std::mem::align_of::<u64>()) != 0 {
        return None;
    }
    // SAFETY: alignment and length were just verified; every bit pattern
    // is a valid u64; the returned slice borrows `bytes` so the source
    // outlives it. Same allocation, same provenance, read-only.
    Some(unsafe { slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) })
}

/// Reinterprets an 8-byte-aligned, multiple-of-8 byte range as `f64`
/// values (every bit pattern is a valid `f64`, NaNs included). Same
/// contract as [`as_u64s`].
pub fn as_f64s(bytes: &[u8]) -> Option<&[f64]> {
    if bytes.len() % 8 != 0 || bytes.as_ptr().align_offset(std::mem::align_of::<f64>()) != 0 {
        return None;
    }
    // SAFETY: as in `as_u64s` — verified alignment/length, valid for all
    // bit patterns, borrowed from the same read-only allocation.
    Some(unsafe { slice::from_raw_parts(bytes.as_ptr().cast::<f64>(), bytes.len() / 8) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn casts_validate_alignment_and_length() {
        let words = [1u64, 2, 3];
        // SAFETY: u64 -> u8 view of a live stack array, length in bounds.
        let bytes = unsafe { slice::from_raw_parts(words.as_ptr().cast::<u8>(), 24) };
        assert_eq!(as_u64s(bytes), Some(&words[..]));
        assert_eq!(as_f64s(bytes).map(<[f64]>::len), Some(3));
        // not a multiple of 8
        assert_eq!(as_u64s(&bytes[..20]), None);
        // misaligned base
        assert_eq!(as_u64s(&bytes[4..20]), None);
        // empty is fine
        assert_eq!(as_u64s(&bytes[..0]), Some(&[][..]));
    }

    #[test]
    fn owned_backing_round_trips_any_length() {
        let dir = std::env::temp_dir().join(format!("peanut-bytes-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for n in [0usize, 1, 7, 8, 9, 80] {
            let payload: Vec<u8> = (0..n).map(|i| i as u8).collect();
            let path = dir.join(format!("f{n}"));
            std::fs::write(&path, &payload).unwrap();
            let owned = MappedBytes::read_owned(&path).unwrap();
            assert_eq!(owned.len(), n);
            assert_eq!(owned.as_bytes(), &payload[..]);
            assert!(!owned.is_mapped());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(all(feature = "mmap", unix))]
    #[test]
    fn mapped_backing_matches_owned() {
        let dir = std::env::temp_dir().join(format!("peanut-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mapped");
        let payload: Vec<u8> = (0..4096u32).flat_map(|i| i.to_ne_bytes()).collect();
        std::fs::write(&path, &payload).unwrap();
        let mapped = MappedBytes::open(&path).unwrap();
        assert!(mapped.is_mapped());
        assert_eq!(mapped.as_bytes(), &payload[..]);
        assert_eq!(
            mapped.as_bytes(),
            MappedBytes::read_owned(&path).unwrap().as_bytes()
        );
        // empty files silently take the owned backing
        let empty = dir.join("empty");
        std::fs::write(&empty, b"").unwrap();
        assert!(!MappedBytes::open(&empty).unwrap().is_mapped());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(MappedBytes::open(Path::new("/nonexistent/peanut.pnut")).is_err());
    }
}
