#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
//! # peanut-store
//!
//! Zero-copy persistence for published serving epochs: one mmap-able
//! file per `(tenant, epoch)` holding everything a tenant needs to serve
//! — the calibrated [`TreeArena`](peanut_junction::TreeArena) slab, the
//! span-packed [`FlatMaterialization`] slab, and the structural shortcut
//! descriptions (clique node lists, ratios, benefits) the selection DP
//! produced. Cold start becomes `open` + a couple of `memcpy`s instead
//! of re-running initialization, two Hugin calibration passes, and the
//! selection DP; the sharded serving layer uses the same files to page
//! cold tenants out of RAM and fault them back in on demand.
//!
//! ## File format (version 1)
//!
//! Everything in the file is an 8-byte word (`u64` or `f64` bits) in
//! host byte order, so every section is naturally aligned once the base
//! is — which lets the read side hand out borrowed slices straight from
//! the mapping ([`bytes::as_u64s`] / [`bytes::as_f64s`]), with `unsafe`
//! confined to the one audited [`bytes`] module.
//!
//! ```text
//! word  0  MAGIC        "PNUTSTOR" as a little-endian u64
//! word  1  VERSION      1
//! word  2  checksum     FNV-1a-64 over every byte after this word
//! word  3  epoch        lifecycle epoch of the artifact
//! word  4  flags        bit 0: overlapping (PEANUT+) selection
//! word  5  arena_len    calibrated tree-arena slab length (f64 count)
//! word  6  n_shortcuts  materialized shortcut count
//! word  7  nodes_len    total clique-node index count
//! word  8  mat_slab_len flat-materialization slab length (f64 count)
//! word  9  reserved     0
//! ---- sections, back to back ----
//! f64[arena_len]       calibrated arena slab
//! u64[n_shortcuts + 1] node_first — CSR index into nodes_flat
//! u64[nodes_len]       nodes_flat — clique ids, shortcut-major
//! f64[n_shortcuts]     ratios   (benefit / size, the selection key)
//! f64[n_shortcuts]     benefits
//! u64[n_shortcuts]     span_off — SYMBOLIC_SPAN marks a table-less slot
//! u64[n_shortcuts]     span_len
//! f64[mat_slab_len]    flat materialization slab
//! ```
//!
//! The header states exactly how long the file must be; `open` rejects
//! any length mismatch, so truncation can never read garbage. The
//! checksum catches bit rot and torn writes (writes go to a temp file
//! that is renamed into place, so a crash mid-write leaves no partial
//! file under the real name). A wrong version is a typed
//! [`PgmError::StoreVersion`], every other validation failure a
//! [`PgmError::CorruptStore`] — loud, never UB, never a silent wrong
//! answer.

#[allow(unsafe_code)]
pub mod bytes;

use peanut_core::{
    FlatMaterialization, FlatView, Materialization, MaterializedShortcut, Shortcut, SYMBOLIC_SPAN,
};
use peanut_junction::{JunctionTree, NumericState, QueryEngine, RootedTree};
use peanut_pgm::{PgmError, Potential};
use std::fs;
use std::io::Write;
use std::ops::Range;
use std::path::{Path, PathBuf};

use bytes::MappedBytes;

/// `"PNUTSTOR"` read as a little-endian word — the first word of every
/// store file.
pub const MAGIC: u64 = u64::from_le_bytes(*b"PNUTSTOR");

/// The one format version this build reads and writes.
pub const VERSION: u64 = 1;

/// Header length in 8-byte words.
const HEADER_WORDS: usize = 10;

/// FNV-1a 64-bit over `bytes` — the store's integrity checksum. Chosen
/// for being dependency-free, endian-agnostic over a byte stream, and
/// plenty for catching torn writes and bit rot (this is not a
/// cryptographic seal).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Where and how a fleet persists epochs: the directory store files live
/// in plus read-side validation knobs. Cloned freely (it is a path and a
/// flag), carried by engines that persist and shards that page.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Directory holding one `.pnut` file per persisted `(tenant, epoch)`.
    pub dir: PathBuf,
    /// Verify the FNV checksum on every open (default). Turning this off
    /// skips one pass over the file on fault-in; truncation and shape
    /// mismatches are still always rejected.
    pub verify_checksum: bool,
}

impl StoreConfig {
    /// A store rooted at `dir`, checksums verified.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            verify_checksum: true,
        }
    }

    /// The file path for `(tenant, epoch)`. Epochs are zero-padded so
    /// lexicographic order is numeric order.
    pub fn epoch_path(&self, tenant: u32, epoch: u64) -> PathBuf {
        self.dir
            .join(format!("tenant{tenant}-epoch{epoch:020}.pnut"))
    }

    /// The newest persisted epoch for `tenant`, scanning the store
    /// directory. `None` when the tenant has no persisted epoch (or the
    /// directory does not exist yet).
    pub fn latest_epoch(&self, tenant: u32) -> Option<(u64, PathBuf)> {
        let prefix = format!("tenant{tenant}-epoch");
        let mut best: Option<(u64, PathBuf)> = None;
        for entry in fs::read_dir(&self.dir).ok()?.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(rest) = name.strip_prefix(&prefix) else {
                continue;
            };
            let Some(digits) = rest.strip_suffix(".pnut") else {
                continue;
            };
            let Ok(epoch) = digits.parse::<u64>() else {
                continue;
            };
            if best.as_ref().is_none_or(|(e, _)| epoch > *e) {
                best = Some((epoch, entry.path()));
            }
        }
        best
    }

    /// Persists one epoch for `tenant`, creating the store directory on
    /// first use. Returns the file path written.
    pub fn save_epoch(
        &self,
        tenant: u32,
        mat: &Materialization,
        flat: &FlatMaterialization,
        arena_slab: &[f64],
    ) -> Result<PathBuf, PgmError> {
        let path = self.epoch_path(tenant, flat.epoch());
        fs::create_dir_all(&self.dir).map_err(|e| store_io(&self.dir, &e))?;
        save(&path, mat, flat, arena_slab)?;
        Ok(path)
    }
}

fn store_io(path: &Path, e: &std::io::Error) -> PgmError {
    PgmError::StoreIo {
        path: path.display().to_string(),
        msg: e.to_string(),
    }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> PgmError {
    PgmError::CorruptStore {
        path: path.display().to_string(),
        detail: detail.into(),
    }
}

/// Serializes one epoch — the materialization's structure, its flat
/// table pack, and the calibrated arena slab — to `path`, atomically
/// (temp file + rename). The three artifacts must describe the same
/// epoch: `flat` must be the pack of `mat`, `arena_slab` the calibrated
/// slab of the tree `mat` was selected on.
pub fn save(
    path: &Path,
    mat: &Materialization,
    flat: &FlatMaterialization,
    arena_slab: &[f64],
) -> Result<(), PgmError> {
    if flat.len() != mat.shortcuts.len() || flat.epoch() != mat.epoch {
        return Err(corrupt(
            path,
            format!(
                "refusing to persist mismatched artifacts: pack has {} spans at epoch {}, \
                 materialization {} shortcuts at epoch {}",
                flat.len(),
                flat.epoch(),
                mat.shortcuts.len(),
                mat.epoch
            ),
        ));
    }
    let n = mat.shortcuts.len();
    let nodes_len: usize = mat.shortcuts.iter().map(|s| s.shortcut.nodes().len()).sum();
    let total_words = HEADER_WORDS
        + arena_slab.len()
        + (n + 1)
        + nodes_len
        + n // ratios
        + n // benefits
        + n // span_off
        + n // span_len
        + flat.slab().len();
    let mut words: Vec<u64> = Vec::with_capacity(total_words);
    let flags = u64::from(mat.overlapping);
    words.extend_from_slice(&[
        MAGIC,
        VERSION,
        0, // checksum, patched below
        mat.epoch,
        flags,
        arena_slab.len() as u64,
        n as u64,
        nodes_len as u64,
        flat.slab().len() as u64,
        0, // reserved
    ]);
    words.extend(arena_slab.iter().map(|v| v.to_bits()));
    // node_first: CSR prefix over the per-shortcut node lists
    let mut acc = 0u64;
    words.push(0);
    for s in &mat.shortcuts {
        acc += s.shortcut.nodes().len() as u64;
        words.push(acc);
    }
    for s in &mat.shortcuts {
        words.extend(s.shortcut.nodes().iter().map(|&u| u as u64));
    }
    words.extend(mat.shortcuts.iter().map(|s| s.ratio.to_bits()));
    words.extend(mat.shortcuts.iter().map(|s| s.benefit.to_bits()));
    for i in 0..n {
        words.push(match flat.span(i) {
            Some((off, _)) => off as u64,
            None => SYMBOLIC_SPAN,
        });
    }
    for i in 0..n {
        words.push(match flat.span(i) {
            Some((_, len)) => len as u64,
            None => 0,
        });
    }
    words.extend(flat.slab().iter().map(|v| v.to_bits()));
    debug_assert_eq!(words.len(), total_words);

    let mut buf: Vec<u8> = Vec::with_capacity(words.len() * 8);
    for w in &words {
        buf.extend_from_slice(&w.to_ne_bytes());
    }
    let checksum = fnv1a64(&buf[3 * 8..]);
    buf[2 * 8..3 * 8].copy_from_slice(&checksum.to_ne_bytes());

    let file_name = path
        .file_name()
        .ok_or_else(|| corrupt(path, "store path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    let mut f = fs::File::create(&tmp).map_err(|e| store_io(&tmp, &e))?;
    f.write_all(&buf).map_err(|e| store_io(&tmp, &e))?;
    f.sync_all().map_err(|e| store_io(&tmp, &e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| store_io(path, &e))?;
    Ok(())
}

/// One open store file, fully validated at open time: magic, version,
/// exact length against the header, checksum (unless disabled), and CSR
/// monotonicity. All accessors after a successful open hand out slices
/// borrowed straight from the backing — zero copies until something is
/// actually rebuilt.
pub struct StoredEpoch {
    bytes: MappedBytes,
    path: PathBuf,
    epoch: u64,
    overlapping: bool,
    n_shortcuts: usize,
    // Section extents, in bytes into the backing. All 8-byte multiples.
    arena: Range<usize>,
    node_first: Range<usize>,
    nodes_flat: Range<usize>,
    ratios: Range<usize>,
    benefits: Range<usize>,
    span_off: Range<usize>,
    span_len: Range<usize>,
    mat_slab: Range<usize>,
}

impl StoredEpoch {
    /// Opens and validates `path`. Zero-copy (mmap) when available,
    /// owned-read otherwise; behavior is identical either way.
    pub fn open(path: &Path, verify_checksum: bool) -> Result<StoredEpoch, PgmError> {
        let bytes = MappedBytes::open(path).map_err(|e| store_io(path, &e))?;
        Self::validate(bytes, path.to_path_buf(), verify_checksum)
    }

    /// [`open`](Self::open) forced onto the owned (non-mmap) backing.
    pub fn open_owned(path: &Path, verify_checksum: bool) -> Result<StoredEpoch, PgmError> {
        let bytes = MappedBytes::read_owned(path).map_err(|e| store_io(path, &e))?;
        Self::validate(bytes, path.to_path_buf(), verify_checksum)
    }

    fn validate(
        bytes: MappedBytes,
        path: PathBuf,
        verify_checksum: bool,
    ) -> Result<StoredEpoch, PgmError> {
        let buf = bytes.as_bytes();
        if buf.len() < HEADER_WORDS * 8 {
            return Err(corrupt(
                &path,
                format!(
                    "{} bytes is shorter than the {}-byte header",
                    buf.len(),
                    HEADER_WORDS * 8
                ),
            ));
        }
        if buf.len() % 8 != 0 {
            return Err(corrupt(
                &path,
                format!("length {} is not a multiple of 8", buf.len()),
            ));
        }
        let header = bytes::as_u64s(&buf[..HEADER_WORDS * 8])
            .ok_or_else(|| corrupt(&path, "misaligned backing"))?;
        if header[0] != MAGIC {
            return Err(corrupt(&path, format!("bad magic {:#018x}", header[0])));
        }
        if header[1] != VERSION {
            return Err(PgmError::StoreVersion {
                found: header[1],
                expected: VERSION,
            });
        }
        let [epoch, flags, arena_len, n_shortcuts, nodes_len, mat_slab_len] = [
            header[3], header[4], header[5], header[6], header[7], header[8],
        ];
        if flags & !1 != 0 {
            return Err(corrupt(&path, format!("unknown flags {flags:#x}")));
        }
        // Exact expected length, in checked u64 arithmetic so corrupt
        // headers cannot overflow their way past the comparison.
        let words = [
            Some(HEADER_WORDS as u64),
            Some(arena_len),
            n_shortcuts.checked_add(1),
            Some(nodes_len),
            n_shortcuts.checked_mul(4), // ratios + benefits + span_off + span_len
            Some(mat_slab_len),
        ]
        .into_iter()
        .try_fold(0u64, |a, w| a.checked_add(w?));
        let expected = words.and_then(|w| w.checked_mul(8));
        if expected != Some(buf.len() as u64) {
            return Err(corrupt(
                &path,
                format!(
                    "file is {} bytes but the header describes {} (truncated or oversized)",
                    buf.len(),
                    expected.map_or_else(|| "an overflowing size".into(), |e| e.to_string()),
                ),
            ));
        }
        if verify_checksum {
            let want = header[2];
            let got = fnv1a64(&buf[3 * 8..]);
            if got != want {
                return Err(corrupt(
                    &path,
                    format!("checksum mismatch: stored {want:#018x}, computed {got:#018x}"),
                ));
            }
        }
        // Section extents; every count fits usize on this host because it
        // summed into the (usize) file length above.
        let n = n_shortcuts as usize;
        let mut at = HEADER_WORDS * 8;
        let mut take = |words: usize| {
            let r = at..at + words * 8;
            at += words * 8;
            r
        };
        let arena = take(arena_len as usize);
        let node_first = take(n + 1);
        let nodes_flat = take(nodes_len as usize);
        let ratios = take(n);
        let benefits = take(n);
        let span_off = take(n);
        let span_len = take(n);
        let mat_slab = take(mat_slab_len as usize);
        debug_assert_eq!(at, buf.len());

        let stored = StoredEpoch {
            epoch,
            overlapping: flags & 1 != 0,
            n_shortcuts: n,
            arena,
            node_first,
            nodes_flat,
            ratios,
            benefits,
            span_off,
            span_len,
            mat_slab,
            path,
            bytes,
        };
        // CSR must be monotone and end exactly at nodes_len, or
        // shortcut_nodes would hand out overlapping / out-of-range slices.
        let first = stored.node_first_words();
        if first[0] != 0 || first.windows(2).any(|w| w[0] > w[1]) || first[n] != nodes_len {
            return Err(corrupt(
                &stored.path,
                "shortcut node index (node_first) is not a monotone CSR over nodes_flat",
            ));
        }
        Ok(stored)
    }

    fn u64s(&self, r: &Range<usize>) -> &[u64] {
        bytes::as_u64s(&self.bytes.as_bytes()[r.clone()]).expect("sections validated at open")
    }

    fn f64s(&self, r: &Range<usize>) -> &[f64] {
        bytes::as_f64s(&self.bytes.as_bytes()[r.clone()]).expect("sections validated at open")
    }

    fn node_first_words(&self) -> &[u64] {
        self.u64s(&self.node_first)
    }

    /// The file this epoch was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lifecycle epoch stamped in the header.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the persisted selection allowed overlapping shortcuts
    /// (PEANUT+).
    pub fn overlapping(&self) -> bool {
        self.overlapping
    }

    /// Number of persisted shortcuts.
    pub fn n_shortcuts(&self) -> usize {
        self.n_shortcuts
    }

    /// Whether the backing is a live mapping (false: owned copy).
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// The calibrated tree-arena slab, borrowed from the backing.
    pub fn arena_slab(&self) -> &[f64] {
        self.f64s(&self.arena)
    }

    /// Clique ids of shortcut `i`'s subtree, borrowed from the backing.
    pub fn shortcut_nodes(&self, i: usize) -> &[u64] {
        let first = self.node_first_words();
        let (a, b) = (first[i] as usize, first[i + 1] as usize);
        &self.u64s(&self.nodes_flat)[a..b]
    }

    /// Selection ratio of shortcut `i`.
    pub fn ratio(&self, i: usize) -> f64 {
        self.f64s(&self.ratios)[i]
    }

    /// Workload benefit of shortcut `i`.
    pub fn benefit(&self, i: usize) -> f64 {
        self.f64s(&self.benefits)[i]
    }

    /// Raw span offset of shortcut `i` ([`SYMBOLIC_SPAN`] for a
    /// table-less slot).
    pub fn span_off_raw(&self, i: usize) -> u64 {
        self.u64s(&self.span_off)[i]
    }

    /// The zero-copy [`FlatView`] over the persisted table pack: span
    /// arrays and value slab borrowed straight from the backing.
    pub fn flat_view(&self) -> FlatView<'_> {
        FlatView::new(
            self.epoch,
            self.u64s(&self.span_off),
            self.u64s(&self.span_len),
            self.f64s(&self.mat_slab),
        )
        .expect("span sections have equal length by construction")
    }

    /// Rebuilds the owned [`Materialization`] this file was saved from:
    /// structural shortcuts re-derived from the persisted node lists
    /// (validated against `tree`), dense tables copied out of the pack.
    /// Everything numeric is bit-identical to what was saved.
    pub fn rebuild_materialization(
        &self,
        tree: &JunctionTree,
        rooted: &RootedTree,
    ) -> Result<Materialization, PgmError> {
        let view = self.flat_view();
        let mut shortcuts = Vec::with_capacity(self.n_shortcuts);
        for i in 0..self.n_shortcuts {
            let mut nodes = Vec::with_capacity(self.shortcut_nodes(i).len());
            for &u in self.shortcut_nodes(i) {
                let u = usize::try_from(u)
                    .ok()
                    .filter(|&u| u < tree.n_cliques())
                    .ok_or_else(|| {
                        corrupt(
                            &self.path,
                            format!(
                                "shortcut {i} references clique {u}, tree has {}",
                                tree.n_cliques()
                            ),
                        )
                    })?;
                nodes.push(u);
            }
            let shortcut = Shortcut::from_nodes(tree, rooted, nodes)?;
            let potential = match view.table(i) {
                Some(values) => {
                    let scope = shortcut.scope().clone();
                    let cards = tree.domain().cards_of(&scope);
                    Some(Potential::new(scope, cards, values.to_vec())?)
                }
                None if self.span_off_raw(i) == SYMBOLIC_SPAN => None,
                None => {
                    return Err(corrupt(
                        &self.path,
                        format!("shortcut {i} has a dense span outside the table slab"),
                    ))
                }
            };
            shortcuts.push(MaterializedShortcut {
                shortcut,
                potential,
                benefit: self.benefit(i),
                ratio: self.ratio(i),
            });
        }
        Ok(Materialization {
            shortcuts,
            overlapping: self.overlapping,
            epoch: self.epoch,
        })
    }
}

/// Rehydrates a full serving artifact from a stored epoch in O(mmap +
/// memcpy): reattach the calibrated arena slab (skipping initialization
/// and both Hugin passes), rebuild the materialization structurally
/// (skipping the selection DP), and return an engine answering
/// bit-identically to the one that was persisted.
pub fn rehydrate_engine<'t>(
    tree: &'t JunctionTree,
    stored: &StoredEpoch,
) -> Result<(QueryEngine<'t>, Materialization), PgmError> {
    let ns = NumericState::from_calibrated_slab(tree, stored.arena_slab())?;
    let engine = QueryEngine::from_calibrated(tree, ns);
    let mat = stored.rebuild_materialization(tree, engine.rooted())?;
    Ok((engine, mat))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_spells_pnutstor() {
        assert_eq!(&MAGIC.to_le_bytes(), b"PNUTSTOR");
    }

    #[test]
    fn fnv_vectors() {
        // standard FNV-1a 64 test vectors
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn epoch_paths_sort_numerically() {
        let cfg = StoreConfig::new("/tmp/peanut-store");
        let p9 = cfg.epoch_path(3, 9);
        let p10 = cfg.epoch_path(3, 10);
        assert!(p9 < p10, "zero-padding must keep lexicographic = numeric");
        assert!(p9.to_string_lossy().ends_with(".pnut"));
        assert!(cfg.verify_checksum);
    }
}
