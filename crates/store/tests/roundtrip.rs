//! Persistence round-trip guarantees:
//!
//! * publish → persist → rehydrate reproduces the serving artifact
//!   **bit-identically** — arena slab, table pack, shortcut structure,
//!   and every answer (marginal and evidence-conditioned), on fixtures
//!   and on random networks;
//! * rehydrated answers also agree with a single-threaded VE oracle;
//! * corrupted, truncated, or wrong-version files fail loudly with the
//!   typed [`PgmError`] variants — never UB, never a silent wrong answer;
//! * the owned (non-mmap) backing behaves identically to the mapping.

use peanut_core::{
    FlatMaterialization, Materialization, OfflineContext, OnlineEngine, Peanut, PeanutConfig,
    Workload,
};
use peanut_junction::{build_junction_tree, JunctionTree, QueryEngine};
use peanut_pgm::generate::{generate_network, DagConfig};
use peanut_pgm::{fixtures, BayesianNetwork, PgmError, Potential, Scope, Var};
use peanut_store::{rehydrate_engine, save, StoreConfig, StoredEpoch, VERSION};
use peanut_ve::ve_answer;
use peanut_workload::{uniform_queries, with_evidence, QuerySpec};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("peanut-roundtrip-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Opens `path` expecting a failure; returns the typed error.
fn open_err(path: &Path, verify: bool) -> PgmError {
    match StoredEpoch::open(path, verify) {
        Ok(_) => panic!("expected {} to fail validation", path.display()),
        Err(e) => e,
    }
}

/// Oracle: `P(targets | evidence)` via single-threaded VE.
fn ve_conditional(bn: &BayesianNetwork, targets: &Scope, evidence: &[(Var, u32)]) -> Potential {
    let ev_scope = Scope::from_iter(evidence.iter().map(|&(v, _)| v));
    let q = targets.union(&ev_scope);
    let (mut joint, _) = ve_answer(bn, &q).unwrap();
    for &(v, val) in evidence {
        joint = joint.restrict(v, val).unwrap();
    }
    joint.normalize();
    joint
}

/// Selects a PEANUT+ materialization for a uniform workload over `bn`.
fn select_mat(
    bn: &BayesianNetwork,
    tree: &JunctionTree,
    engine: &QueryEngine<'_>,
    budget: u64,
    seed: u64,
) -> Materialization {
    let spec = QuerySpec {
        min_vars: 1,
        max_vars: 3,
    };
    let scopes = uniform_queries(bn.domain(), 24, spec, seed);
    let ctx = OfflineContext::new(tree, &Workload::from_queries(scopes)).unwrap();
    Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(budget).with_epsilon(1.0),
        engine.numeric_state().unwrap(),
    )
    .unwrap()
    .0
}

/// Saves `(mat, pack, slab)` and asserts the reopened file reproduces the
/// artifact and its answers bit for bit. Returns the stored path.
fn assert_round_trip(
    bn: &BayesianNetwork,
    tree: &JunctionTree,
    engine: &QueryEngine<'_>,
    mat: &Materialization,
    path: &Path,
    seed: u64,
) {
    let flat = FlatMaterialization::pack(mat);
    let slab = engine.numeric_state().unwrap().arena().slab();
    save(path, mat, &flat, slab).unwrap();

    let stored = StoredEpoch::open(path, true).unwrap();
    assert_eq!(stored.epoch(), mat.epoch);
    assert_eq!(stored.overlapping(), mat.overlapping);
    assert_eq!(stored.n_shortcuts(), mat.shortcuts.len());
    // arena slab and table slab are bitwise identical to what was saved
    assert_eq!(stored.arena_slab().len(), slab.len());
    for (a, b) in stored.arena_slab().iter().zip(slab) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let view = stored.flat_view();
    assert_eq!(view.len(), flat.len());
    for i in 0..flat.len() {
        assert_eq!(view.span(i), flat.span(i));
        assert_eq!(stored.ratio(i).to_bits(), mat.shortcuts[i].ratio.to_bits());
        assert_eq!(
            stored.benefit(i).to_bits(),
            mat.shortcuts[i].benefit.to_bits()
        );
        assert_eq!(
            stored.shortcut_nodes(i),
            mat.shortcuts[i]
                .shortcut
                .nodes()
                .iter()
                .map(|&u| u as u64)
                .collect::<Vec<_>>()
        );
    }

    // rehydrate and compare answers: bit-identical to the in-RAM engine,
    // within 1e-9 of the VE oracle
    let (rengine, rmat) = rehydrate_engine(tree, &stored).unwrap();
    assert_eq!(rmat.epoch, mat.epoch);
    assert_eq!(rmat.len(), mat.len());
    let fresh = OnlineEngine::new(engine, mat);
    let rehydrated = OnlineEngine::new(&rengine, &rmat);
    let spec = QuerySpec {
        min_vars: 1,
        max_vars: 3,
    };
    let scopes = uniform_queries(bn.domain(), 12, spec, seed ^ 0x5eed);
    for q in with_evidence(bn.domain(), &scopes, 0.4, seed ^ 0xf00d) {
        let (targets, evidence) = (q.targets, q.evidence);
        let (a, ca) = fresh.conditional(&targets, &evidence).unwrap();
        let (b, cb) = rehydrated.conditional(&targets, &evidence).unwrap();
        assert_eq!(ca.ops, cb.ops, "rehydrated plan must match");
        assert_eq!(a.values().len(), b.values().len());
        for (x, y) in a.values().iter().zip(b.values()) {
            assert_eq!(x.to_bits(), y.to_bits(), "query {targets}");
        }
        let oracle = ve_conditional(bn, &targets, &evidence);
        assert!(b.max_abs_diff(&oracle).unwrap() < 1e-9, "query {targets}");
    }
}

#[test]
fn fixture_epochs_round_trip_bit_identically() {
    let dir = temp_dir("fixtures");
    for (i, bn) in [fixtures::figure1(), fixtures::asia(), fixtures::sprinkler()]
        .into_iter()
        .enumerate()
    {
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let mat = select_mat(&bn, &tree, &engine, 512, 7 + i as u64).with_epoch(3 + i as u64);
        let path = dir.join(format!("fixture{i}.pnut"));
        assert_round_trip(&bn, &tree, &engine, &mat, &path, 11 * i as u64);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_materialization_round_trips() {
    let dir = temp_dir("empty");
    let bn = fixtures::sprinkler();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let mat = Materialization::default().with_epoch(1);
    let path = dir.join("empty.pnut");
    assert_round_trip(&bn, &tree, &engine, &mat, &path, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn owned_backing_matches_mapping() {
    let dir = temp_dir("owned");
    let bn = fixtures::asia();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let mat = select_mat(&bn, &tree, &engine, 256, 3).with_epoch(9);
    let flat = FlatMaterialization::pack(&mat);
    let slab = engine.numeric_state().unwrap().arena().slab();
    let path = dir.join("epoch.pnut");
    save(&path, &mat, &flat, slab).unwrap();

    let mapped = StoredEpoch::open(&path, true).unwrap();
    let owned = StoredEpoch::open_owned(&path, true).unwrap();
    assert!(!owned.is_mapped());
    assert_eq!(mapped.epoch(), owned.epoch());
    assert_eq!(mapped.arena_slab().len(), owned.arena_slab().len());
    for (a, b) in mapped.arena_slab().iter().zip(owned.arena_slab()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for i in 0..mapped.n_shortcuts() {
        assert_eq!(mapped.flat_view().span(i), owned.flat_view().span(i));
        assert_eq!(mapped.shortcut_nodes(i), owned.shortcut_nodes(i));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_config_tracks_the_latest_epoch() {
    let dir = temp_dir("latest");
    let cfg = StoreConfig::new(&dir);
    assert!(cfg.latest_epoch(4).is_none());
    let bn = fixtures::sprinkler();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let slab = engine.numeric_state().unwrap().arena().slab();
    for epoch in [1u64, 5, 3] {
        let mat = Materialization::default().with_epoch(epoch);
        let flat = FlatMaterialization::pack(&mat);
        cfg.save_epoch(4, &mat, &flat, slab).unwrap();
    }
    let (epoch, path) = cfg.latest_epoch(4).unwrap();
    assert_eq!(epoch, 5);
    assert_eq!(path, cfg.epoch_path(4, 5));
    // other tenants are untouched
    assert!(cfg.latest_epoch(5).is_none());
    std::fs::remove_dir_all(&dir).ok();
}

/// Writes a valid store file for a small fixture and returns its path
/// together with its raw bytes (for corruption tests).
fn valid_file(dir: &Path) -> (PathBuf, Vec<u8>) {
    let bn = fixtures::sprinkler();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let mat = select_mat(&bn, &tree, &engine, 128, 1).with_epoch(2);
    let flat = FlatMaterialization::pack(&mat);
    let path = dir.join("valid.pnut");
    save(
        &path,
        &mat,
        &flat,
        engine.numeric_state().unwrap().arena().slab(),
    )
    .unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

#[test]
fn corrupted_files_fail_loudly() {
    let dir = temp_dir("corrupt");
    let (path, bytes) = valid_file(&dir);
    let write = |name: &str, content: &[u8]| {
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    };

    // truncation: cut anywhere — header comparison rejects it, with or
    // without checksum verification
    for cut in [0, 8, 79, 80, bytes.len() / 2, bytes.len() - 8] {
        let p = write("trunc.pnut", &bytes[..cut]);
        for verify in [true, false] {
            let err = open_err(&p, verify);
            assert!(
                matches!(err, PgmError::CorruptStore { .. }),
                "cut at {cut}: {err}"
            );
        }
    }
    // ragged length (not a multiple of 8)
    let p = write("ragged.pnut", &bytes[..bytes.len() - 3]);
    assert!(matches!(open_err(&p, false), PgmError::CorruptStore { .. }));

    // bad magic
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    let p = write("magic.pnut", &bad);
    assert!(matches!(open_err(&p, true), PgmError::CorruptStore { .. }));

    // unsupported version is its own typed error
    let mut bad = bytes.clone();
    bad[8..16].copy_from_slice(&(VERSION + 1).to_ne_bytes());
    let p = write("version.pnut", &bad);
    assert_eq!(
        open_err(&p, true),
        PgmError::StoreVersion {
            found: VERSION + 1,
            expected: VERSION
        }
    );

    // a flipped payload byte fails the checksum
    let mut bad = bytes.clone();
    let mid = 80 + (bad.len() - 80) / 2;
    bad[mid] ^= 0x10;
    let p = write("bitrot.pnut", &bad);
    let err = open_err(&p, true);
    assert!(matches!(err, PgmError::CorruptStore { .. }), "{err}");
    assert!(err.to_string().contains("checksum"));

    // oversized: extra trailing bytes are rejected too
    let mut bad = bytes.clone();
    bad.extend_from_slice(&[0u8; 16]);
    let p = write("oversized.pnut", &bad);
    assert!(matches!(open_err(&p, false), PgmError::CorruptStore { .. }));

    // a corrupt CSR (node_first not monotone) is rejected at open; patch
    // the first two node_first words and re-checksum so only the CSR check
    // can object
    let bn = fixtures::sprinkler();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let mat = select_mat(&bn, &tree, &engine, 128, 1).with_epoch(2);
    if !mat.shortcuts.is_empty() {
        let mut bad = bytes.clone();
        let arena_len = engine.numeric_state().unwrap().arena().slab().len();
        let node_first_at = (10 + arena_len) * 8;
        bad[node_first_at..node_first_at + 8].copy_from_slice(&u64::MAX.to_ne_bytes());
        let checksum = peanut_store::fnv1a64(&bad[24..]);
        bad[16..24].copy_from_slice(&checksum.to_ne_bytes());
        let p = write("csr.pnut", &bad);
        let err = open_err(&p, true);
        assert!(matches!(err, PgmError::CorruptStore { .. }), "{err}");
    }

    // the intact original still opens fine after all of the above
    assert!(StoredEpoch::open(&path, true).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rehydration_validates_against_the_tree() {
    let dir = temp_dir("wrong-tree");
    let (path, _) = valid_file(&dir);
    let stored = StoredEpoch::open(&path, true).unwrap();
    // a different network: the arena slab length cannot match
    let other_bn = fixtures::figure1();
    let other_tree = build_junction_tree(&other_bn).unwrap();
    let Err(err) = rehydrate_engine(&other_tree, &stored) else {
        panic!("rehydration against the wrong tree must fail");
    };
    assert!(matches!(err, PgmError::CorruptStore { .. }), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random networks, random budgets: persist → rehydrate → serve is
    /// bit-identical to the in-RAM epoch and matches the VE oracle.
    #[test]
    fn random_epochs_round_trip(seed in 0u64..500, n in 5usize..9, budget in 64u64..2048) {
        let cfg = DagConfig {
            n_nodes: n,
            n_edges: n - 1 + n / 3,
            max_in_degree: 3,
            window: 3,
            cardinalities: vec![2, 3],
        };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let mat = select_mat(&bn, &tree, &engine, budget, seed).with_epoch(seed + 1);
        let dir = temp_dir(&format!("prop-{seed}-{n}-{budget}"));
        let path = dir.join("epoch.pnut");
        assert_round_trip(&bn, &tree, &engine, &mat, &path, seed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
