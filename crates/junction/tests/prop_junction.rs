//! Property tests: junction-tree invariants on random networks.

use peanut_junction::{build_junction_tree, QueryEngine, RootedTree, SteinerTree};
use peanut_pgm::generate::{generate_network, DagConfig};
use peanut_pgm::{joint, Scope, Var};
use proptest::prelude::*;

fn small_network_strategy() -> impl Strategy<Value = (u64, usize, usize)> {
    // (seed, n_nodes, extra_edges)
    (0u64..10_000, 4usize..11, 0usize..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Junction trees of random networks satisfy the running-intersection
    /// property and family preservation.
    #[test]
    fn rip_and_family_preservation((seed, n, extra) in small_network_strategy()) {
        let cfg = DagConfig {
            n_nodes: n,
            n_edges: (n - 1 + extra).min((1..n).map(|i| i.min(3).min(2)).sum::<usize>() + n),
            max_in_degree: 2,
            window: 3,
            cardinalities: vec![2, 3],
        };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let tree = build_junction_tree(&bn).unwrap();
        tree.check_running_intersection().unwrap();
        for v in bn.domain().all_vars() {
            let fam = bn.family(v);
            prop_assert!(tree.cliques().iter().any(|c| fam.is_subset_of(c)));
        }
    }

    /// Junction-tree answers equal brute force on random networks and
    /// random 1–3 variable queries.
    #[test]
    fn answers_equal_brute_force((seed, n, extra) in small_network_strategy(), qsel in prop::collection::vec(0usize..100, 1..4)) {
        let cfg = DagConfig {
            n_nodes: n,
            n_edges: n - 1 + extra.min(n / 2),
            max_in_degree: 2,
            window: 3,
            cardinalities: vec![2],
        };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let tree = build_junction_tree(&bn).unwrap();
        let eng = QueryEngine::numeric(&tree, &bn).unwrap();
        let q = Scope::from_iter(qsel.iter().map(|&i| Var((i % n) as u32)));
        let (got, _) = eng.answer(&q).unwrap();
        let want = joint::marginal(&bn, &q).unwrap();
        prop_assert!(got.max_abs_diff(&want).unwrap() < 1e-9);
    }

    /// The Steiner tree is minimal-ish: removing any leaf would drop a
    /// covering clique for some query variable.
    #[test]
    fn steiner_leaves_are_necessary((seed, n, extra) in small_network_strategy(), qsel in prop::collection::vec(0usize..100, 2..4)) {
        let cfg = DagConfig {
            n_nodes: n,
            n_edges: n - 1 + extra.min(n / 2),
            max_in_degree: 2,
            window: 3,
            cardinalities: vec![2],
        };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let q = Scope::from_iter(qsel.iter().map(|&i| Var((i % n) as u32)));
        let st = SteinerTree::extract(&tree, &rooted, &q).unwrap();
        if st.len() <= 1 { return Ok(()); }
        for leaf in st.leaves(&rooted) {
            // the leaf must hold at least one query variable that the tree
            // was built to cover (it terminated a path)
            let holds_query_var = !tree.clique(leaf).intersect(&q).is_empty();
            prop_assert!(holds_query_var, "leaf {leaf} holds no query var");
        }
    }
}
