//! Moralization: the undirected graph obtained by "marrying" the parents of
//! every variable and dropping edge directions.

use peanut_pgm::{BayesianNetwork, Var};
use std::collections::BTreeSet;

/// Undirected graph over the variables of a network, stored as sorted
/// adjacency sets (the triangulation step inserts fill-in edges, so cheap
/// ordered insertion matters more than raw lookup speed).
#[derive(Clone, Debug)]
pub struct MoralGraph {
    adj: Vec<BTreeSet<Var>>,
}

impl MoralGraph {
    /// Moralizes a Bayesian network: for every family `{v} ∪ parents(v)`,
    /// all pairs become adjacent.
    pub fn from_network(bn: &BayesianNetwork) -> Self {
        let mut g = MoralGraph {
            adj: vec![BTreeSet::new(); bn.n_vars()],
        };
        for v in bn.domain().all_vars() {
            let fam: Vec<Var> = bn.family(v).iter().collect();
            for (i, &a) in fam.iter().enumerate() {
                for &b in &fam[i + 1..] {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }

    /// An empty graph over `n` variables (for tests).
    pub fn empty(n: usize) -> Self {
        MoralGraph {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Inserts an undirected edge.
    pub fn add_edge(&mut self, a: Var, b: Var) {
        if a != b {
            self.adj[a.index()].insert(b);
            self.adj[b.index()].insert(a);
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Neighbors of a variable.
    pub fn neighbors(&self, v: Var) -> &BTreeSet<Var> {
        &self.adj[v.index()]
    }

    /// Adjacency test.
    pub fn has_edge(&self, a: Var, b: Var) -> bool {
        self.adj[a.index()].contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_pgm::fixtures;

    #[test]
    fn sprinkler_moralization_marries_parents() {
        let bn = fixtures::sprinkler();
        let g = MoralGraph::from_network(&bn);
        let d = bn.domain();
        let s = d.var("sprinkler").unwrap();
        let r = d.var("rain").unwrap();
        let w = d.var("wet").unwrap();
        let c = d.var("cloudy").unwrap();
        // original edges kept
        assert!(g.has_edge(c, s));
        assert!(g.has_edge(c, r));
        assert!(g.has_edge(s, w));
        assert!(g.has_edge(r, w));
        // parents of `wet` married
        assert!(g.has_edge(s, r));
        assert_eq!(g.n_edges(), 5);
    }

    #[test]
    fn figure1_moral_edges() {
        let bn = fixtures::figure1();
        let g = MoralGraph::from_network(&bn);
        let d = bn.domain();
        // h's parents {e, g} married; l's parents {g, i} married;
        // d's parents {a, b} married.
        assert!(g.has_edge(d.var("e").unwrap(), d.var("g").unwrap()));
        assert!(g.has_edge(d.var("g").unwrap(), d.var("i").unwrap()));
        assert!(g.has_edge(d.var("a").unwrap(), d.var("b").unwrap()));
        // 11 directed edges; marriages a–b (new), e–g and g–i (already
        // present as directed edges) ⇒ 12 undirected edges.
        assert_eq!(g.n_edges(), 12);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = MoralGraph::empty(2);
        g.add_edge(Var(0), Var(0));
        assert_eq!(g.n_edges(), 0);
    }
}
