//! Flat storage arena for a junction tree's numeric tables.
//!
//! A [`TreeArena`] owns every clique and separator potential of one tree as
//! spans of a **single contiguous `f64` slab**, replacing the per-node
//! `Vec<f64>` layout. Table metadata (scopes, cardinalities, spans) lives in
//! CSR-style index arrays, the same `first`/`flat` idiom the tree itself
//! uses for adjacency:
//!
//! ```text
//! tables:      [ clique 0 | clique 1 | ... | sep 0 | sep 1 | ... ]
//! card_first:  [ 0, 3, 5, ... ]          offsets into cards_flat
//! cards_flat:  [ 2,3,2, 3,4, ... ]       per-table cardinalities
//! span_off/len:[ (0,12), (12,12), ... ]  per-table slab spans
//! slab:        [ ............................................. ]  one Vec<f64>
//! ```
//!
//! Calibration reads and writes the slab in place through
//! [`TableRef`] views and the span-writing kernels
//! ([`peanut_pgm::product_onto`], [`peanut_pgm::mul_assign_bcast`]), so a
//! calibrated tree is one relocatable buffer: the slab can be copied, or
//! later mapped from disk, and reattached with [`TreeArena::replace_slab`]
//! without touching any index structure. That relocatability is the seam
//! the planned zero-copy mmap materialization store plugs into.

use crate::tree::{CliqueId, EdgeId, JunctionTree};
use peanut_pgm::potential::MAX_DENSE_ENTRIES;
use peanut_pgm::{PgmError, Scope, TableRef};

/// Contiguous flat storage for all clique and separator tables of one
/// junction tree. Cliques occupy table slots `0..n_cliques`, separators the
/// `n_cliques..n_cliques + n_separators` that follow.
#[derive(Clone, Debug)]
pub struct TreeArena {
    /// Per-table scopes, cliques first, then separators.
    scopes: Vec<Scope>,
    /// CSR offsets into `cards_flat`; `card_first.len() == n_tables + 1`.
    card_first: Vec<u32>,
    cards_flat: Vec<u32>,
    /// Per-table `(offset, len)` spans into `slab`.
    span_off: Vec<usize>,
    span_len: Vec<usize>,
    n_cliques: usize,
    /// One contiguous value buffer holding every table back to back.
    slab: Vec<f64>,
}

impl TreeArena {
    /// Lays out an arena for `tree`: clique spans first, separator spans
    /// after, every span zero-filled. Fails with
    /// [`PgmError::TableTooLarge`] when any single table exceeds the dense
    /// materialization limit (the symbolic-pipeline fallback, as for
    /// TPC-H/Munin/Barley in the paper).
    pub fn layout(tree: &JunctionTree) -> Result<Self, PgmError> {
        let n_cliques = tree.n_cliques();
        let n_seps = tree.edges().len();
        let n_tables = n_cliques + n_seps;
        let mut scopes = Vec::with_capacity(n_tables);
        scopes.extend(tree.cliques().iter().cloned());
        scopes.extend((0..n_seps).map(|e| tree.separator(e).clone()));

        let mut card_first = Vec::with_capacity(n_tables + 1);
        let mut cards_flat = Vec::new();
        let mut span_off = Vec::with_capacity(n_tables);
        let mut span_len = Vec::with_capacity(n_tables);
        let mut off = 0usize;
        card_first.push(0);
        for scope in &scopes {
            let cards = tree.domain().cards_of(scope);
            let entries = cards.iter().fold(1u64, |n, &c| n.saturating_mul(c as u64));
            if entries > MAX_DENSE_ENTRIES {
                return Err(PgmError::TableTooLarge {
                    entries,
                    limit: MAX_DENSE_ENTRIES,
                });
            }
            cards_flat.extend_from_slice(&cards);
            card_first.push(cards_flat.len() as u32);
            span_off.push(off);
            span_len.push(entries as usize);
            off += entries as usize;
        }
        Ok(TreeArena {
            scopes,
            card_first,
            cards_flat,
            span_off,
            span_len,
            n_cliques,
            slab: vec![0.0; off],
        })
    }

    /// Number of clique tables.
    #[inline]
    pub fn n_cliques(&self) -> usize {
        self.n_cliques
    }

    /// Number of separator tables.
    #[inline]
    pub fn n_separators(&self) -> usize {
        self.scopes.len() - self.n_cliques
    }

    #[inline]
    fn cards_of(&self, i: usize) -> &[u32] {
        &self.cards_flat[self.card_first[i] as usize..self.card_first[i + 1] as usize]
    }

    /// Borrowed view of table slot `i` (clique order, then separator order).
    #[inline]
    fn table(&self, i: usize) -> TableRef<'_> {
        let off = self.span_off[i];
        TableRef::new(
            &self.scopes[i],
            self.cards_of(i),
            &self.slab[off..off + self.span_len[i]],
        )
    }

    /// Scope, cardinalities and mutable values of table slot `i`. The
    /// metadata borrows and the value borrow come from disjoint fields, so
    /// kernels can read the layout while writing the span — no `unsafe`,
    /// no slab splitting.
    #[inline]
    fn table_mut(&mut self, i: usize) -> (&Scope, &[u32], &mut [f64]) {
        let off = self.span_off[i];
        let len = self.span_len[i];
        (
            &self.scopes[i],
            &self.cards_flat[self.card_first[i] as usize..self.card_first[i + 1] as usize],
            &mut self.slab[off..off + len],
        )
    }

    /// Borrowed view of a clique table.
    #[inline]
    pub fn clique(&self, u: CliqueId) -> TableRef<'_> {
        debug_assert!(u < self.n_cliques);
        self.table(u)
    }

    /// Borrowed view of a separator table.
    #[inline]
    pub fn separator(&self, e: EdgeId) -> TableRef<'_> {
        self.table(self.n_cliques + e)
    }

    /// Scope, cardinalities and mutable values of a clique table.
    #[inline]
    pub fn clique_mut(&mut self, u: CliqueId) -> (&Scope, &[u32], &mut [f64]) {
        debug_assert!(u < self.n_cliques);
        self.table_mut(u)
    }

    /// Mutable values of a separator table.
    #[inline]
    pub fn separator_values_mut(&mut self, e: EdgeId) -> &mut [f64] {
        let i = self.n_cliques + e;
        let off = self.span_off[i];
        &mut self.slab[off..off + self.span_len[i]]
    }

    /// The whole value slab (cliques first, separators after) — one
    /// relocatable buffer.
    #[inline]
    pub fn slab(&self) -> &[f64] {
        &self.slab
    }

    /// `(offset, len)` span of a clique table within the slab.
    #[inline]
    pub fn clique_span(&self, u: CliqueId) -> (usize, usize) {
        (self.span_off[u], self.span_len[u])
    }

    /// `(offset, len)` span of a separator table within the slab.
    #[inline]
    pub fn separator_span(&self, e: EdgeId) -> (usize, usize) {
        let i = self.n_cliques + e;
        (self.span_off[i], self.span_len[i])
    }

    /// Swaps in a new value slab (same length), returning the old one.
    ///
    /// This is the relocation seam: the index structure never references
    /// slab addresses, only offsets, so values produced elsewhere — a copy,
    /// a snapshot, eventually an mmap'd file — attach without rebuilding
    /// anything. Panics if the lengths differ.
    pub fn replace_slab(&mut self, slab: Vec<f64>) -> Vec<f64> {
        assert_eq!(slab.len(), self.slab.len(), "slab length must match layout");
        std::mem::replace(&mut self.slab, slab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_junction_tree;
    use peanut_pgm::fixtures;

    #[test]
    fn layout_is_contiguous_and_ordered() {
        let bn = fixtures::asia();
        let tree = build_junction_tree(&bn).unwrap();
        let arena = TreeArena::layout(&tree).unwrap();
        assert_eq!(arena.n_cliques(), tree.n_cliques());
        assert_eq!(arena.n_separators(), tree.edges().len());
        // spans tile the slab back to back: cliques first, then separators
        let mut expect_off = 0;
        for u in 0..arena.n_cliques() {
            let (off, len) = arena.clique_span(u);
            assert_eq!(off, expect_off);
            assert_eq!(len, arena.clique(u).len());
            expect_off += len;
        }
        for e in 0..arena.n_separators() {
            let (off, len) = arena.separator_span(e);
            assert_eq!(off, expect_off);
            assert_eq!(len, arena.separator(e).len());
            expect_off += len;
        }
        assert_eq!(expect_off, arena.slab().len());
        // views carry the tree's scopes and domain cardinalities
        for u in 0..arena.n_cliques() {
            assert_eq!(arena.clique(u).scope(), tree.clique(u));
        }
        for e in 0..arena.n_separators() {
            assert_eq!(arena.separator(e).scope(), tree.separator(e));
        }
    }

    #[test]
    fn replace_slab_relocates_values() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let mut arena = TreeArena::layout(&tree).unwrap();
        let (_, _, vals) = arena.clique_mut(0);
        vals.fill(3.25);
        // copy the slab elsewhere (stand-in for a snapshot or mmap'd file),
        // reattach, and read the same bytes through the same views
        let copy = arena.slab().to_vec();
        let mut other = TreeArena::layout(&tree).unwrap();
        assert!(other.clique(0).values().iter().all(|&v| v == 0.0));
        let old = other.replace_slab(copy);
        assert!(old.iter().all(|&v| v == 0.0));
        assert!(other.clique(0).values().iter().all(|&v| v == 3.25));
    }

    #[test]
    fn oversized_clique_rejected() {
        use peanut_pgm::{Domain, PgmError, Scope};
        let mut dm = Domain::new();
        for i in 0..8 {
            dm.add(&format!("v{i}"), 1000).unwrap();
        }
        let full: Scope = dm.full_scope();
        let tree = crate::tree::JunctionTree::from_cliques(dm, vec![full]).unwrap();
        assert!(matches!(
            TreeArena::layout(&tree),
            Err(PgmError::TableTooLarge { .. })
        ));
    }
}
