//! The reduced tree: the structure message passing actually runs on.
//!
//! A [`ReducedTree`] starts as a copy of a query's Steiner tree and can have
//! connected regions of nodes replaced by a single *shortcut* node (the
//! materialization layer performs the replacement). Message passing — both
//! numeric and size-only — is implemented once, here, for all methods
//! (plain JT, PEANUT, PEANUT+, INDSEP), which keeps the cost accounting
//! strictly comparable across them.

use crate::calibrate::NumericState;
use crate::cost::{node_ops, QueryCost};
use crate::rooted::RootedTree;
use crate::steiner::SteinerTree;
use crate::tree::{CliqueId, JunctionTree};
use peanut_pgm::{PgmError, Potential, Scope, Scratch};

/// Provenance of a reduced-tree node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeLabel {
    /// An original junction-tree clique.
    Clique(CliqueId),
    /// A materialized shortcut potential (caller-assigned id).
    Shortcut(usize),
}

/// One node of a reduced tree.
#[derive(Clone, Debug)]
pub struct RNode {
    /// Variable scope of the node's potential.
    pub scope: Scope,
    /// Provenance.
    pub label: NodeLabel,
    /// Dense potential (numeric mode only).
    pub potential: Option<Potential>,
    /// Separator potential on the edge toward the parent (numeric mode
    /// only; `None` for the root).
    pub sep_to_parent: Option<Potential>,
    parent: Option<usize>,
    children: Vec<usize>,
}

/// A rooted tree of potentials over which one query is answered.
#[derive(Clone, Debug)]
pub struct ReducedTree {
    nodes: Vec<RNode>,
    root: usize,
    shortcuts_used: usize,
}

impl ReducedTree {
    /// Builds the reduced tree of a Steiner tree. When `numeric` is given it
    /// must be calibrated; clique and separator potentials are cloned in.
    pub fn from_steiner(
        tree: &JunctionTree,
        rooted: &RootedTree,
        st: &SteinerTree,
        numeric: Option<&NumericState>,
    ) -> Self {
        let ids = st.nodes();
        let index_of = |u: CliqueId| ids.binary_search(&u).expect("steiner member");
        let mut nodes: Vec<RNode> = ids
            .iter()
            .map(|&u| {
                let is_root = u == st.root();
                let parent = (!is_root).then(|| index_of(rooted.parent(u).expect("non-root")));
                let sep_to_parent = match (numeric, is_root) {
                    (Some(ns), false) => {
                        let e = rooted.parent_edge(u).expect("non-root");
                        Some(ns.separator_table(e).to_potential())
                    }
                    _ => None,
                };
                RNode {
                    scope: tree.clique(u).clone(),
                    label: NodeLabel::Clique(u),
                    potential: numeric.map(|ns| ns.clique_table(u).to_potential()),
                    sep_to_parent,
                    parent,
                    children: Vec::new(),
                }
            })
            .collect();
        for i in 0..nodes.len() {
            if let Some(p) = nodes[i].parent {
                nodes[p].children.push(i);
            }
        }
        ReducedTree {
            nodes,
            root: index_of(st.root()),
            shortcuts_used: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes (never constructed that way).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Root node index.
    #[inline]
    pub fn root(&self) -> usize {
        self.root
    }

    /// Node access.
    #[inline]
    pub fn node(&self, i: usize) -> &RNode {
        &self.nodes[i]
    }

    /// All nodes.
    #[inline]
    pub fn nodes(&self) -> &[RNode] {
        &self.nodes
    }

    /// Children of node `i`.
    #[inline]
    pub fn children(&self, i: usize) -> &[usize] {
        &self.nodes[i].children
    }

    /// Parent of node `i`.
    #[inline]
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.nodes[i].parent
    }

    /// Number of shortcut replacements applied so far.
    #[inline]
    pub fn shortcuts_used(&self) -> usize {
        self.shortcuts_used
    }

    /// Reduced-tree node indices whose label is the given clique.
    pub fn index_of_clique(&self, u: CliqueId) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.label == NodeLabel::Clique(u))
    }

    /// Replaces the connected region `region` (node indices) with a single
    /// shortcut node of scope `scope`.
    ///
    /// * `potential` — the materialized shortcut table (numeric mode);
    /// * neighbors of the region are re-attached to the new node and keep
    ///   their original edge separators (they are cut separators of the
    ///   shortcut);
    /// * if the region contains the root, the new node becomes the root and
    ///   the tree's answer is computed from the shortcut's joint.
    ///
    /// Returns the rebuilt tree (the original is consumed to make the
    /// borrow-flow of repeated replacements explicit).
    pub fn replace_region(
        mut self,
        region: &[usize],
        scope: Scope,
        potential: Option<Potential>,
        shortcut_id: usize,
    ) -> Result<ReducedTree, PgmError> {
        if region.is_empty() {
            return Err(PgmError::UnknownName("empty replacement region".into()));
        }
        let in_region = |i: usize| region.contains(&i);
        // topmost region node: the one whose parent is outside (or absent)
        let mut tops: Vec<usize> = region
            .iter()
            .copied()
            .filter(|&i| self.nodes[i].parent.is_none_or(|p| !in_region(p)))
            .collect();
        if tops.len() != 1 {
            return Err(PgmError::UnknownName(format!(
                "replacement region is not connected: {} tops",
                tops.len()
            )));
        }
        let top = tops.pop().expect("exactly one top");
        let new_parent = self.nodes[top].parent;
        let sep_to_parent = self.nodes[top].sep_to_parent.take();

        let mut keep_map = vec![usize::MAX; self.nodes.len()];
        let mut new_nodes: Vec<RNode> = Vec::with_capacity(self.nodes.len() - region.len() + 1);
        for (i, n) in self.nodes.iter().enumerate() {
            if !in_region(i) {
                keep_map[i] = new_nodes.len();
                new_nodes.push(n.clone());
            }
        }
        let shortcut_idx = new_nodes.len();
        new_nodes.push(RNode {
            scope,
            label: NodeLabel::Shortcut(shortcut_id),
            potential,
            sep_to_parent,
            parent: new_parent.map(|p| keep_map[p]),
            children: Vec::new(),
        });
        // remap parents, then rebuild children lists
        for (i, n) in new_nodes.iter_mut().enumerate() {
            if i == shortcut_idx {
                continue;
            }
            n.parent = n.parent.map(|old| {
                if keep_map[old] == usize::MAX {
                    shortcut_idx
                } else {
                    keep_map[old]
                }
            });
            n.children.clear();
        }
        new_nodes[shortcut_idx].children.clear();
        for i in 0..new_nodes.len() {
            if let Some(p) = new_nodes[i].parent {
                new_nodes[p].children.push(i);
            }
        }
        let root = if in_region(self.root) {
            shortcut_idx
        } else {
            keep_map[self.root]
        };
        Ok(ReducedTree {
            nodes: new_nodes,
            root,
            shortcuts_used: self.shortcuts_used + 1,
        })
    }

    /// Post-order of the node indices (children before parents).
    fn post_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, false)];
        while let Some((u, expanded)) = stack.pop() {
            if expanded {
                order.push(u);
            } else {
                stack.push((u, true));
                for &c in &self.nodes[u].children {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// Scope of the message sent from `u` to its parent:
    /// `(scope(u) ∩ scope(parent)) ∪ (query vars available in u's subtree)`.
    fn message_scope(&self, u: usize, query: &Scope, carried: &Scope) -> Scope {
        let p = self.nodes[u].parent.expect("non-root");
        let sep = self.nodes[u].scope.intersect(&self.nodes[p].scope);
        sep.union(&carried.intersect(query))
    }

    /// Size-only message passing: the operation count of answering `query`
    /// on this tree under the cost model of [`crate::cost`].
    pub fn cost(&self, query: &Scope, domain: &peanut_pgm::Domain) -> QueryCost {
        let mut cost = QueryCost {
            shortcuts_used: self.shortcuts_used,
            ..QueryCost::default()
        };
        let mut msg_scope: Vec<Option<Scope>> = vec![None; self.nodes.len()];
        let mut carried: Vec<Scope> = vec![Scope::empty(); self.nodes.len()];
        for u in self.post_order() {
            let n = &self.nodes[u];
            let mut product_scope = n.scope.clone();
            let mut n_in = 0usize;
            let mut carry = n.scope.intersect(query);
            for &c in &n.children {
                let m = msg_scope[c].as_ref().expect("child processed");
                product_scope = product_scope.union(m);
                carry = carry.union(&carried[c].intersect(query));
                n_in += 1;
            }
            carried[u] = carry.clone();
            if u == self.root {
                cost.add_node(node_ops(&product_scope, n_in, domain));
            } else {
                // +1 incoming factor for the separator division
                cost.add_node(node_ops(&product_scope, n_in + 1, domain));
                cost.messages += 1;
                msg_scope[u] = Some(self.message_scope(u, query, &carry));
            }
        }
        cost
    }

    /// Numeric message passing: the joint `P(query)` plus the identical
    /// operation count, on a calibrated tree.
    pub fn answer(
        &self,
        query: &Scope,
        domain: &peanut_pgm::Domain,
    ) -> Result<(Potential, QueryCost), PgmError> {
        self.answer_in(query, domain, &mut Scratch::new())
    }

    /// [`answer`](Self::answer) with caller-provided kernel scratch: all
    /// intermediate products and consumed messages are recycled into
    /// `scratch`, so a worker answering a stream of queries stops allocating
    /// after warm-up.
    pub fn answer_in(
        &self,
        query: &Scope,
        domain: &peanut_pgm::Domain,
        scratch: &mut Scratch,
    ) -> Result<(Potential, QueryCost), PgmError> {
        let mut cost = QueryCost {
            shortcuts_used: self.shortcuts_used,
            ..QueryCost::default()
        };
        let mut messages: Vec<Option<Potential>> = vec![None; self.nodes.len()];
        let mut carried: Vec<Scope> = vec![Scope::empty(); self.nodes.len()];
        let mut answer = None;
        for u in self.post_order() {
            let n = &self.nodes[u];
            let pot = n
                .potential
                .as_ref()
                .ok_or_else(|| PgmError::UnknownName("numeric mode requires potentials".into()))?;
            let mut factors: Vec<&Potential> = vec![pot];
            let mut carry = n.scope.intersect(query);
            for &c in &n.children {
                factors.push(messages[c].as_ref().expect("child processed"));
                carry = carry.union(&carried[c].intersect(query));
            }
            let n_in = factors.len() - 1;
            let product = Potential::product_many_in(&factors, scratch)?;
            for &c in &n.children {
                let spent = messages[c].take().expect("child processed");
                scratch.recycle(spent);
            }
            carried[u] = carry.clone();
            if u == self.root {
                cost.add_node(node_ops(product.scope(), n_in, domain));
                answer = Some(product.marginalize_in(query, scratch)?);
                scratch.recycle(product);
            } else {
                cost.add_node(node_ops(product.scope(), n_in + 1, domain));
                cost.messages += 1;
                let divided = match &n.sep_to_parent {
                    Some(sep) => {
                        let d = product.divide_in(sep, scratch)?;
                        scratch.recycle(product);
                        d
                    }
                    None => product,
                };
                let target = self.message_scope(u, query, &carry);
                messages[u] = Some(divided.marginalize_in(&target, scratch)?);
                scratch.recycle(divided);
            }
        }
        Ok((answer.expect("root visited"), cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_junction_tree;
    use peanut_pgm::{fixtures, joint};

    fn setup(
        bn: &peanut_pgm::BayesianNetwork,
        pivot: Option<usize>,
    ) -> (JunctionTree, RootedTree, NumericState) {
        let mut tree = build_junction_tree(bn).unwrap();
        if let Some(p) = pivot {
            tree.set_pivot(p);
        }
        let rooted = RootedTree::new(&tree);
        let mut ns = NumericState::initialize(&tree, bn).unwrap();
        ns.calibrate(&tree, &rooted).unwrap();
        (tree, rooted, ns)
    }

    #[test]
    fn answers_match_brute_force() {
        let bn = fixtures::figure1();
        let (tree, rooted, ns) = setup(&bn, None);
        let d = bn.domain();
        let queries = [
            vec!["b", "i", "f"],
            vec!["a", "l"],
            vec!["d", "h"],
            vec!["a", "e", "l"],
            vec!["f", "g"],
        ];
        for names in queries {
            let q = Scope::from_iter(names.iter().map(|n| d.var(n).unwrap()));
            let st = SteinerTree::extract(&tree, &rooted, &q).unwrap();
            let rt = ReducedTree::from_steiner(&tree, &rooted, &st, Some(&ns));
            let (got, cost) = rt.answer(&q, d).unwrap();
            let want = joint::marginal(&bn, &q).unwrap();
            assert!(
                got.max_abs_diff(&want).unwrap() < 1e-9,
                "query {names:?} mismatch"
            );
            assert!(cost.ops > 0);
            assert_eq!(cost.messages, rt.len() - 1);
        }
    }

    #[test]
    fn cost_matches_between_numeric_and_symbolic() {
        let bn = fixtures::asia();
        let (tree, rooted, ns) = setup(&bn, None);
        let d = bn.domain();
        for pair in [[0u32, 7], [1, 6], [0, 5]] {
            let q = Scope::from_indices(&pair);
            let st = SteinerTree::extract(&tree, &rooted, &q).unwrap();
            let rt_num = ReducedTree::from_steiner(&tree, &rooted, &st, Some(&ns));
            let rt_sym = ReducedTree::from_steiner(&tree, &rooted, &st, None);
            let (_, c_num) = rt_num.answer(&q, d).unwrap();
            let c_sym = rt_sym.cost(&q, d);
            assert_eq!(c_num.ops, c_sym.ops);
            assert_eq!(c_num.messages, c_sym.messages);
        }
    }

    #[test]
    fn replace_region_with_its_own_marginal_preserves_answer() {
        // Simulate a shortcut: replace a connected region by the joint of
        // its cut separators, computed by brute force from the network.
        let bn = fixtures::figure1();
        let (tree, rooted, ns) = setup(&bn, None);
        let d = bn.domain();
        let q = Scope::from_iter([d.var("b").unwrap(), d.var("l").unwrap()]);
        let st = SteinerTree::extract(&tree, &rooted, &q).unwrap();
        let rt = ReducedTree::from_steiner(&tree, &rooted, &st, Some(&ns));
        assert!(rt.len() >= 4, "need an interior region; got {}", rt.len());

        // pick an interior region: a non-root, non-leaf node
        let interior = (0..rt.len())
            .find(|&i| i != rt.root() && !rt.children(i).is_empty())
            .expect("interior node exists");
        // cut scope: union of separators to parent and to children
        let p = rt.parent(interior).unwrap();
        let mut cut_scope = rt.node(interior).scope.intersect(&rt.node(p).scope);
        for &c in rt.children(interior) {
            cut_scope = cut_scope.union(&rt.node(c).scope.intersect(&rt.node(interior).scope));
        }
        let shortcut_pot = joint::marginal(&bn, &cut_scope).unwrap();
        let (want, base_cost) = rt.clone().answer(&q, d).unwrap();
        let rt2 = rt
            .replace_region(&[interior], cut_scope, Some(shortcut_pot), 0)
            .unwrap();
        let (got, red_cost) = rt2.answer(&q, d).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-9);
        assert_eq!(red_cost.shortcuts_used, 1);
        // same number of nodes here (single node swapped), so messages equal
        assert_eq!(red_cost.messages, base_cost.messages);
    }

    #[test]
    fn replace_multi_node_region_containing_root() {
        let bn = fixtures::figure1();
        let (tree, rooted, ns) = setup(&bn, None);
        let d = bn.domain();
        let q = Scope::from_iter([d.var("a").unwrap(), d.var("l").unwrap()]);
        let st = SteinerTree::extract(&tree, &rooted, &q).unwrap();
        let rt = ReducedTree::from_steiner(&tree, &rooted, &st, Some(&ns));
        let (want, _) = rt.clone().answer(&q, d).unwrap();

        // region = root + its first child (connected, contains r_q)
        let root = rt.root();
        let child = rt.children(root).first().copied().expect("root has child");
        let region = vec![root, child];
        // cut scope: separators from the region to the outside, plus any
        // query variables inside the region (they must survive)
        let mut cut_scope = Scope::empty();
        for &i in &region {
            for &c in rt.children(i) {
                if !region.contains(&c) {
                    cut_scope = cut_scope.union(&rt.node(c).scope.intersect(&rt.node(i).scope));
                }
            }
        }
        for &i in &region {
            cut_scope = cut_scope.union(&rt.node(i).scope.intersect(&q));
        }
        let pot = joint::marginal(&bn, &cut_scope).unwrap();
        let rt2 = rt.replace_region(&region, cut_scope, Some(pot), 3).unwrap();
        let (got, cost) = rt2.answer(&q, d).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-9);
        assert_eq!(cost.shortcuts_used, 1);
    }

    #[test]
    fn disconnected_region_rejected() {
        let bn = fixtures::chain(7, 2, 0);
        let (tree, rooted, ns) = setup(&bn, None);
        let q = Scope::from_indices(&[0, 6]);
        let st = SteinerTree::extract(&tree, &rooted, &q).unwrap();
        let rt = ReducedTree::from_steiner(&tree, &rooted, &st, Some(&ns));
        assert!(rt.len() >= 5);
        // two nodes that are not adjacent
        let a = rt.root();
        let grandchild = rt.children(rt.children(a)[0])[0];
        let err = rt.replace_region(&[a, grandchild], Scope::empty(), None, 0);
        assert!(err.is_err());
    }
}
