//! Hugin calibration: after a collect and a distribute pass, every clique
//! potential equals the joint marginal of its scope and every separator
//! potential equals the joint marginal of the separator.

use crate::rooted::RootedTree;
use crate::tree::{CliqueId, EdgeId, JunctionTree};
use peanut_pgm::{BayesianNetwork, PgmError, Potential, Scratch};

/// Dense clique and separator potentials attached to a junction tree.
///
/// Creation fails with [`PgmError::TableTooLarge`] when any clique exceeds
/// the dense-materialization limit; callers then fall back to the symbolic
/// (size-only) pipeline, exactly as the paper runs TPC-H, Munin and Barley
/// uncalibrated.
#[derive(Clone, Debug)]
pub struct NumericState {
    clique_pots: Vec<Potential>,
    sep_pots: Vec<Potential>,
    calibrated: bool,
}

impl NumericState {
    /// Initializes clique potentials as the product of their assigned CPTs
    /// (expanded onto the full clique scope) and separator potentials as
    /// all-ones.
    pub fn initialize(tree: &JunctionTree, bn: &BayesianNetwork) -> Result<Self, PgmError> {
        let mut scratch = Scratch::new();
        let mut clique_pots = Vec::with_capacity(tree.n_cliques());
        for u in 0..tree.n_cliques() {
            let mut factors: Vec<&Potential> = Vec::new();
            let ones = Potential::ones(tree.clique(u).clone(), tree.domain())?;
            factors.push(&ones);
            for &v in tree.assigned_factors(u) {
                factors.push(bn.cpt(v));
            }
            clique_pots.push(Potential::product_many_in(&factors, &mut scratch)?);
            scratch.recycle(ones);
        }
        let sep_pots = (0..tree.edges().len())
            .map(|e| Potential::ones(tree.separator(e).clone(), tree.domain()))
            .collect::<Result<_, _>>()?;
        Ok(NumericState {
            clique_pots,
            sep_pots,
            calibrated: false,
        })
    }

    /// Runs the two Hugin passes (collect toward the pivot, then distribute
    /// back). Idempotent once calibrated.
    pub fn calibrate(&mut self, tree: &JunctionTree, rooted: &RootedTree) -> Result<(), PgmError> {
        let mut scratch = Scratch::new();
        // collect: children before parents
        let order: Vec<CliqueId> = rooted.dfs_order().to_vec();
        for &u in order.iter().rev() {
            let Some(p) = rooted.parent(u) else { continue };
            let e = rooted.parent_edge(u).expect("non-root has parent edge");
            self.pass_message(tree, u, p, e, &mut scratch)?;
        }
        // distribute: parents before children
        for &u in &order {
            for &c in rooted.children(u) {
                let e = rooted.parent_edge(c).expect("child has parent edge");
                self.pass_message(tree, u, c, e, &mut scratch)?;
            }
        }
        self.calibrated = true;
        Ok(())
    }

    /// Hugin absorption `from → to` over edge `e`:
    /// `m = marginalize(ψ_from, sep)`, `ψ_to *= m / φ_e`, `φ_e = m`.
    fn pass_message(
        &mut self,
        tree: &JunctionTree,
        from: CliqueId,
        to: CliqueId,
        e: EdgeId,
        scratch: &mut Scratch,
    ) -> Result<(), PgmError> {
        let m = self.clique_pots[from].marginalize_in(tree.separator(e), scratch)?;
        let update = m.divide_in(&self.sep_pots[e], scratch)?;
        let new_to = self.clique_pots[to].product_in(&update, scratch)?;
        scratch.recycle(std::mem::replace(&mut self.clique_pots[to], new_to));
        scratch.recycle(update);
        scratch.recycle(std::mem::replace(&mut self.sep_pots[e], m));
        Ok(())
    }

    /// True once [`calibrate`](Self::calibrate) has run.
    #[inline]
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Calibrated clique potential (the joint marginal `P(X_u)`).
    #[inline]
    pub fn clique_potential(&self, u: CliqueId) -> &Potential {
        &self.clique_pots[u]
    }

    /// Calibrated separator potential (the joint marginal of the separator).
    #[inline]
    pub fn separator_potential(&self, e: EdgeId) -> &Potential {
        &self.sep_pots[e]
    }

    /// Maximum disagreement between adjacent cliques on their separator
    /// marginal — zero (up to float error) iff calibrated.
    pub fn local_consistency_error(&self, tree: &JunctionTree) -> Result<f64, PgmError> {
        let mut worst = 0.0f64;
        for (e, &(u, v)) in tree.edges().iter().enumerate() {
            let sep = tree.separator(e);
            let mu = self.clique_pots[u].marginalize(sep)?;
            let mv = self.clique_pots[v].marginalize(sep)?;
            worst = worst.max(mu.max_abs_diff(&mv)?);
            worst = worst.max(mu.max_abs_diff(&self.sep_pots[e])?);
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_junction_tree;
    use peanut_pgm::{fixtures, joint};

    fn calibrated(bn: &peanut_pgm::BayesianNetwork) -> (JunctionTree, RootedTree, NumericState) {
        let tree = build_junction_tree(bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let mut st = NumericState::initialize(&tree, bn).unwrap();
        st.calibrate(&tree, &rooted).unwrap();
        (tree, rooted, st)
    }

    #[test]
    fn calibration_reaches_local_consistency() {
        for bn in [
            fixtures::sprinkler(),
            fixtures::asia(),
            fixtures::figure1(),
            fixtures::chain(8, 3, 4),
            fixtures::binary_tree(15, 9),
        ] {
            let (tree, _, st) = calibrated(&bn);
            assert!(st.local_consistency_error(&tree).unwrap() < 1e-9);
        }
    }

    #[test]
    fn clique_potentials_equal_joint_marginals() {
        for bn in [fixtures::sprinkler(), fixtures::asia(), fixtures::figure1()] {
            let (tree, _, st) = calibrated(&bn);
            for u in 0..tree.n_cliques() {
                let oracle = joint::marginal(&bn, tree.clique(u)).unwrap();
                let got = st.clique_potential(u);
                assert!(
                    got.max_abs_diff(&oracle).unwrap() < 1e-9,
                    "clique {u} mismatch"
                );
            }
        }
    }

    #[test]
    fn separator_potentials_equal_joint_marginals() {
        let bn = fixtures::figure1();
        let (tree, _, st) = calibrated(&bn);
        for e in 0..tree.edges().len() {
            let oracle = joint::marginal(&bn, tree.separator(e)).unwrap();
            assert!(st.separator_potential(e).max_abs_diff(&oracle).unwrap() < 1e-9);
        }
    }

    #[test]
    fn calibration_independent_of_pivot() {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        for pivot in [0, tree.n_cliques() - 1] {
            let rooted = RootedTree::rooted_at(&tree, pivot);
            let mut st = NumericState::initialize(&tree, &bn).unwrap();
            st.calibrate(&tree, &rooted).unwrap();
            let oracle = joint::marginal(&bn, tree.clique(0)).unwrap();
            assert!(st.clique_potential(0).max_abs_diff(&oracle).unwrap() < 1e-9);
        }
    }

    #[test]
    fn uninitialized_state_not_calibrated() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let st = NumericState::initialize(&tree, &bn).unwrap();
        assert!(!st.is_calibrated());
    }
}
