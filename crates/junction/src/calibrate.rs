//! Hugin calibration: after a collect and a distribute pass, every clique
//! potential equals the joint marginal of its scope and every separator
//! potential equals the joint marginal of the separator.
//!
//! Numeric tables live in a [`TreeArena`]: one contiguous `f64` slab with
//! per-table spans, written in place by the span kernels. Calibrating
//! therefore produces a single relocatable buffer — see [`crate::arena`].

use crate::arena::TreeArena;
use crate::rooted::RootedTree;
use crate::tree::{CliqueId, EdgeId, JunctionTree};
use peanut_pgm::{
    divide_views, mul_assign_bcast, product_onto, BayesianNetwork, PgmError, Scratch, TableRef, Var,
};

/// Dense clique and separator potentials attached to a junction tree,
/// stored as spans of one flat arena slab.
///
/// Creation fails with [`PgmError::TableTooLarge`] when any clique exceeds
/// the dense-materialization limit; callers then fall back to the symbolic
/// (size-only) pipeline, exactly as the paper runs TPC-H, Munin and Barley
/// uncalibrated.
#[derive(Clone, Debug)]
pub struct NumericState {
    arena: TreeArena,
    calibrated: bool,
}

impl NumericState {
    /// Initializes clique tables as the product of their assigned CPTs
    /// (expanded onto the full clique scope) and separator tables as
    /// all-ones, multiplying CPTs directly into the arena spans.
    pub fn initialize(tree: &JunctionTree, bn: &BayesianNetwork) -> Result<Self, PgmError> {
        let mut scratch = Scratch::new();
        let mut arena = TreeArena::layout(tree)?;
        for u in 0..tree.n_cliques() {
            let factors: Vec<TableRef<'_>> = tree
                .assigned_factors(u)
                .iter()
                .map(|&v| bn.cpt(v).view())
                .collect();
            let (scope, cards, values) = arena.clique_mut(u);
            product_onto(scope, cards, values, &factors, &mut scratch)?;
        }
        for e in 0..tree.edges().len() {
            arena.separator_values_mut(e).fill(1.0);
        }
        Ok(NumericState {
            arena,
            calibrated: false,
        })
    }

    /// Runs the two Hugin passes (collect toward the pivot, then distribute
    /// back). Idempotent once calibrated.
    pub fn calibrate(&mut self, tree: &JunctionTree, rooted: &RootedTree) -> Result<(), PgmError> {
        let mut scratch = Scratch::new();
        // collect: children before parents
        let order: Vec<CliqueId> = rooted.dfs_order().to_vec();
        for &u in order.iter().rev() {
            let Some(p) = rooted.parent(u) else { continue };
            let e = rooted.parent_edge(u).expect("non-root has parent edge");
            self.pass_message(tree, u, p, e, &mut scratch)?;
        }
        // distribute: parents before children
        for &u in &order {
            for &c in rooted.children(u) {
                let e = rooted.parent_edge(c).expect("child has parent edge");
                self.pass_message(tree, u, c, e, &mut scratch)?;
            }
        }
        self.calibrated = true;
        Ok(())
    }

    /// Hugin absorption `from → to` over edge `e`:
    /// `m = marginalize(ψ_from, sep)`, `ψ_to *= m / φ_e`, `φ_e = m`.
    ///
    /// `ψ_to` is updated in place in its slab span; only the message and the
    /// update quotient are transient tables (recycled through the scratch
    /// pool).
    fn pass_message(
        &mut self,
        tree: &JunctionTree,
        from: CliqueId,
        to: CliqueId,
        e: EdgeId,
        scratch: &mut Scratch,
    ) -> Result<(), PgmError> {
        let m = self
            .arena
            .clique(from)
            .marginalize_in(tree.separator(e), scratch)?;
        let update = divide_views(m.view(), self.arena.separator(e), scratch)?;
        let (scope, cards, values) = self.arena.clique_mut(to);
        mul_assign_bcast(scope, cards, values, update.view(), scratch)?;
        self.arena
            .separator_values_mut(e)
            .copy_from_slice(m.values());
        scratch.recycle(update);
        scratch.recycle(m);
        Ok(())
    }

    /// Absorbs an evidence assignment into a **copy** of this state and
    /// returns it re-calibrated: every clique table of the result holds the
    /// restricted joint `P(X_u, e)` (and every separator `P(sep, e)`).
    ///
    /// This is the Hugin evidence-entry step: for each `(var, value)` pair
    /// the entries inconsistent with `value` are zeroed in *one* clique
    /// containing `var`, then the two calibration passes propagate the
    /// restriction through the whole tree. The caller pays two full passes
    /// **once** per evidence context — the seam the serving layer's
    /// evidence sessions amortize a pinned-evidence query stream over —
    /// after which marginals of the restricted state are plain
    /// single-table or Steiner-tree work, never a joint over
    /// `targets ∪ vars(evidence)`.
    ///
    /// Impossible evidence (probability zero under the model, or two pairs
    /// contradicting each other on one variable) is not an error: the
    /// result's tables are all zero, matching the per-query conditional
    /// path, and downstream normalization is a no-op on zero tables.
    /// Unknown variables and out-of-range values fail with
    /// [`PgmError::UnknownVar`] / [`PgmError::ValueOutOfRange`].
    pub fn with_evidence(
        &self,
        tree: &JunctionTree,
        rooted: &RootedTree,
        evidence: &[(Var, u32)],
    ) -> Result<NumericState, PgmError> {
        let domain = tree.domain();
        for &(v, value) in evidence {
            if (v.0 as usize) >= domain.len() {
                return Err(PgmError::UnknownVar(v));
            }
            let card = domain.card(v);
            if value >= card {
                return Err(PgmError::ValueOutOfRange {
                    var: v,
                    value,
                    card,
                });
            }
        }
        let mut restricted = self.clone();
        for &(v, value) in evidence {
            // the running-intersection property guarantees some clique
            // contains every domain variable the factor assignment touched;
            // zeroing in exactly one clique is the standard likelihood entry
            let u = (0..tree.n_cliques())
                .find(|&u| tree.clique(u).contains(v))
                .ok_or(PgmError::UnknownVar(v))?;
            let (scope, cards, values) = restricted.arena.clique_mut(u);
            let axis = scope.position(v).expect("clique contains evidence var");
            // row-major, last variable fastest: the kept entries for
            // `v = value` form one `inner`-wide slice per `block`
            let inner: usize = cards[axis + 1..].iter().map(|&c| c as usize).product();
            let keep = value as usize * inner;
            let block = inner * cards[axis] as usize;
            for chunk in values.chunks_mut(block) {
                chunk[..keep].fill(0.0);
                chunk[keep + inner..].fill(0.0);
            }
        }
        restricted.calibrate(tree, rooted)?;
        Ok(restricted)
    }

    /// Reattaches an already-calibrated value slab to a freshly laid-out
    /// arena — the store rehydration path: no CPT products, no Hugin
    /// passes, one `memcpy` of the persisted slab. The slab must come from
    /// a tree with the identical layout (same cliques, same domain); a
    /// length mismatch fails with [`PgmError::CorruptStore`] rather than
    /// attaching values to the wrong spans.
    pub fn from_calibrated_slab(tree: &JunctionTree, slab: &[f64]) -> Result<Self, PgmError> {
        let mut arena = TreeArena::layout(tree)?;
        if slab.len() != arena.slab().len() {
            return Err(PgmError::CorruptStore {
                path: "<calibrated slab>".into(),
                detail: format!(
                    "arena slab length {} does not match the tree's layout ({} entries)",
                    slab.len(),
                    arena.slab().len()
                ),
            });
        }
        arena.replace_slab(slab.to_vec());
        Ok(NumericState {
            arena,
            calibrated: true,
        })
    }

    /// True once [`calibrate`](Self::calibrate) has run.
    #[inline]
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// The flat storage arena holding every table.
    #[inline]
    pub fn arena(&self) -> &TreeArena {
        &self.arena
    }

    /// Calibrated clique table (the joint marginal `P(X_u)`) as a borrowed
    /// view into the arena slab.
    #[inline]
    pub fn clique_table(&self, u: CliqueId) -> TableRef<'_> {
        self.arena.clique(u)
    }

    /// Calibrated separator table (the joint marginal of the separator) as
    /// a borrowed view into the arena slab.
    #[inline]
    pub fn separator_table(&self, e: EdgeId) -> TableRef<'_> {
        self.arena.separator(e)
    }

    /// Maximum disagreement between adjacent cliques on their separator
    /// marginal — zero (up to float error) iff calibrated.
    pub fn local_consistency_error(&self, tree: &JunctionTree) -> Result<f64, PgmError> {
        let mut scratch = Scratch::new();
        let mut worst = 0.0f64;
        for (e, &(u, v)) in tree.edges().iter().enumerate() {
            let sep = tree.separator(e);
            let mu = self.arena.clique(u).marginalize_in(sep, &mut scratch)?;
            let mv = self.arena.clique(v).marginalize_in(sep, &mut scratch)?;
            worst = worst.max(mu.max_abs_diff(&mv)?);
            worst = worst.max(mu.max_abs_diff(&self.arena.separator(e).to_potential())?);
        }
        Ok(worst)
    }
}

/// The pre-arena numeric state — per-node `Vec<f64>` tables driven by the
/// legacy append-based kernels — kept as the differential baseline. The
/// calibration differential suite runs both implementations over the same
/// tree and asserts every table is byte-identical.
#[cfg(any(test, feature = "legacy-kernels"))]
pub mod legacy_state {
    use super::*;
    use peanut_pgm::potential::legacy as lk;
    use peanut_pgm::Potential;

    /// Per-node owned potentials, original layout and kernels.
    #[derive(Clone, Debug)]
    pub struct LegacyNumericState {
        clique_pots: Vec<Potential>,
        sep_pots: Vec<Potential>,
    }

    impl LegacyNumericState {
        /// Original initialization: ones potential times assigned CPTs.
        pub fn initialize(tree: &JunctionTree, bn: &BayesianNetwork) -> Result<Self, PgmError> {
            let mut scratch = Scratch::new();
            let mut clique_pots = Vec::with_capacity(tree.n_cliques());
            for u in 0..tree.n_cliques() {
                let mut factors: Vec<&Potential> = Vec::new();
                let ones = Potential::ones(tree.clique(u).clone(), tree.domain())?;
                factors.push(&ones);
                for &v in tree.assigned_factors(u) {
                    factors.push(bn.cpt(v));
                }
                clique_pots.push(lk::product_many_in(&factors, &mut scratch)?);
                scratch.recycle(ones);
            }
            let sep_pots = (0..tree.edges().len())
                .map(|e| Potential::ones(tree.separator(e).clone(), tree.domain()))
                .collect::<Result<_, _>>()?;
            Ok(LegacyNumericState {
                clique_pots,
                sep_pots,
            })
        }

        /// Original Hugin passes over the owned tables.
        pub fn calibrate(
            &mut self,
            tree: &JunctionTree,
            rooted: &RootedTree,
        ) -> Result<(), PgmError> {
            let mut scratch = Scratch::new();
            let order: Vec<CliqueId> = rooted.dfs_order().to_vec();
            for &u in order.iter().rev() {
                let Some(p) = rooted.parent(u) else { continue };
                let e = rooted.parent_edge(u).expect("non-root has parent edge");
                self.pass_message(tree, u, p, e, &mut scratch)?;
            }
            for &u in &order {
                for &c in rooted.children(u) {
                    let e = rooted.parent_edge(c).expect("child has parent edge");
                    self.pass_message(tree, u, c, e, &mut scratch)?;
                }
            }
            Ok(())
        }

        fn pass_message(
            &mut self,
            tree: &JunctionTree,
            from: CliqueId,
            to: CliqueId,
            e: EdgeId,
            scratch: &mut Scratch,
        ) -> Result<(), PgmError> {
            let m = lk::marginalize_in(&self.clique_pots[from], tree.separator(e), scratch)?;
            let update = lk::divide_in(&m, &self.sep_pots[e], scratch)?;
            let new_to = lk::product_in(&self.clique_pots[to], &update, scratch)?;
            scratch.recycle(std::mem::replace(&mut self.clique_pots[to], new_to));
            scratch.recycle(update);
            scratch.recycle(std::mem::replace(&mut self.sep_pots[e], m));
            Ok(())
        }

        /// Calibrated clique potential.
        #[inline]
        pub fn clique_potential(&self, u: CliqueId) -> &Potential {
            &self.clique_pots[u]
        }

        /// Calibrated separator potential.
        #[inline]
        pub fn separator_potential(&self, e: EdgeId) -> &Potential {
            &self.sep_pots[e]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_junction_tree;
    use peanut_pgm::{fixtures, joint};

    fn calibrated(bn: &peanut_pgm::BayesianNetwork) -> (JunctionTree, RootedTree, NumericState) {
        let tree = build_junction_tree(bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let mut st = NumericState::initialize(&tree, bn).unwrap();
        st.calibrate(&tree, &rooted).unwrap();
        (tree, rooted, st)
    }

    #[test]
    fn calibration_reaches_local_consistency() {
        for bn in [
            fixtures::sprinkler(),
            fixtures::asia(),
            fixtures::figure1(),
            fixtures::chain(8, 3, 4),
            fixtures::binary_tree(15, 9),
        ] {
            let (tree, _, st) = calibrated(&bn);
            assert!(st.local_consistency_error(&tree).unwrap() < 1e-9);
        }
    }

    #[test]
    fn clique_potentials_equal_joint_marginals() {
        for bn in [fixtures::sprinkler(), fixtures::asia(), fixtures::figure1()] {
            let (tree, _, st) = calibrated(&bn);
            for u in 0..tree.n_cliques() {
                let oracle = joint::marginal(&bn, tree.clique(u)).unwrap();
                let got = st.clique_table(u).to_potential();
                assert!(
                    got.max_abs_diff(&oracle).unwrap() < 1e-9,
                    "clique {u} mismatch"
                );
            }
        }
    }

    #[test]
    fn separator_potentials_equal_joint_marginals() {
        let bn = fixtures::figure1();
        let (tree, _, st) = calibrated(&bn);
        for e in 0..tree.edges().len() {
            let oracle = joint::marginal(&bn, tree.separator(e)).unwrap();
            let got = st.separator_table(e).to_potential();
            assert!(got.max_abs_diff(&oracle).unwrap() < 1e-9);
        }
    }

    #[test]
    fn calibration_independent_of_pivot() {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        for pivot in [0, tree.n_cliques() - 1] {
            let rooted = RootedTree::rooted_at(&tree, pivot);
            let mut st = NumericState::initialize(&tree, &bn).unwrap();
            st.calibrate(&tree, &rooted).unwrap();
            let oracle = joint::marginal(&bn, tree.clique(0)).unwrap();
            let got = st.clique_table(0).to_potential();
            assert!(got.max_abs_diff(&oracle).unwrap() < 1e-9);
        }
    }

    #[test]
    fn calibrated_slab_reattaches_bit_identically() {
        let bn = fixtures::figure1();
        let (tree, _, st) = calibrated(&bn);
        let re = NumericState::from_calibrated_slab(&tree, st.arena().slab()).unwrap();
        assert!(re.is_calibrated());
        for (a, b) in re.arena().slab().iter().zip(st.arena().slab()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(re.local_consistency_error(&tree).unwrap() < 1e-9);
        // a slab from a different tree (wrong length) fails loudly
        let other = build_junction_tree(&fixtures::sprinkler()).unwrap();
        assert!(matches!(
            NumericState::from_calibrated_slab(&other, st.arena().slab()),
            Err(PgmError::CorruptStore { .. })
        ));
    }

    #[test]
    fn evidence_absorption_matches_restricted_joints() {
        use peanut_pgm::Var;
        let bn = fixtures::figure1();
        let (tree, rooted, st) = calibrated(&bn);
        let d = bn.domain();
        let evidence = vec![(d.var("a").unwrap(), 1u32), (d.var("l").unwrap(), 0u32)];
        let re = st.with_evidence(&tree, &rooted, &evidence).unwrap();
        assert!(re.is_calibrated());
        // every clique table must equal the joint over clique ∪ evidence,
        // restricted to the evidence values (i.e. P(X_u, e))
        for u in 0..tree.n_cliques() {
            let clique = tree.clique(u);
            let ev_scope = peanut_pgm::Scope::from_iter(evidence.iter().map(|&(v, _)| v));
            let mut oracle = joint::marginal(&bn, &clique.union(&ev_scope)).unwrap();
            let mut got = re.clique_table(u).to_potential();
            let mass = got.sum();
            for &(v, val) in &evidence {
                if oracle.scope().contains(v) {
                    oracle = oracle.restrict(v, val).unwrap();
                }
                if got.scope().contains(v) {
                    got = got.restrict(v, val).unwrap();
                }
            }
            assert!(
                got.max_abs_diff(&oracle).unwrap() < 1e-9,
                "clique {u} restricted mismatch"
            );
            // all mass sits on the evidence-consistent entries
            assert!((got.sum() - mass).abs() < 1e-12, "clique {u} stray mass");
        }
        // contradictory evidence on one variable zeroes the whole tree
        let zero = st
            .with_evidence(
                &tree,
                &rooted,
                &[(d.var("a").unwrap(), 0), (d.var("a").unwrap(), 1)],
            )
            .unwrap();
        assert!(zero.arena().slab().iter().all(|&v| v == 0.0));
        // validation failures are typed
        assert!(matches!(
            st.with_evidence(&tree, &rooted, &[(Var(9999), 0)]),
            Err(PgmError::UnknownVar(_))
        ));
        let a = d.var("a").unwrap();
        assert!(matches!(
            st.with_evidence(&tree, &rooted, &[(a, d.card(a))]),
            Err(PgmError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn evidence_absorption_is_deterministic_bitwise() {
        let bn = fixtures::chain(10, 2, 7);
        let (tree, rooted, st) = calibrated(&bn);
        let d = bn.domain();
        let evidence: Vec<_> = d.all_vars().take(2).map(|v| (v, 1u32)).collect();
        let x = st.with_evidence(&tree, &rooted, &evidence).unwrap();
        let y = st.with_evidence(&tree, &rooted, &evidence).unwrap();
        for (a, b) in x.arena().slab().iter().zip(y.arena().slab()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // the source state is untouched (the absorption copies)
        assert!(st.local_consistency_error(&tree).unwrap() < 1e-9);
        let total: f64 = st.clique_table(0).to_potential().sum();
        assert!((total - 1.0).abs() < 1e-9, "prior tables still normalized");
    }

    #[test]
    fn uninitialized_state_not_calibrated() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let st = NumericState::initialize(&tree, &bn).unwrap();
        assert!(!st.is_calibrated());
    }

    /// The tentpole differential: arena calibration must be **byte
    /// identical** to the pre-arena per-node layout, end to end — after
    /// initialization and after full calibration, on every clique and
    /// separator table.
    #[test]
    fn arena_calibration_bit_identical_to_legacy() {
        use super::legacy_state::LegacyNumericState;
        for bn in [
            fixtures::sprinkler(),
            fixtures::asia(),
            fixtures::figure1(),
            fixtures::chain(8, 3, 4),
            fixtures::binary_tree(15, 9),
        ] {
            let tree = build_junction_tree(&bn).unwrap();
            let rooted = RootedTree::new(&tree);
            let mut st = NumericState::initialize(&tree, &bn).unwrap();
            let mut old = LegacyNumericState::initialize(&tree, &bn).unwrap();
            let check = |st: &NumericState, old: &LegacyNumericState, phase: &str| {
                for u in 0..tree.n_cliques() {
                    let new_vals = st.clique_table(u).values();
                    let old_vals = old.clique_potential(u).values();
                    assert_eq!(new_vals.len(), old_vals.len());
                    for (i, (a, b)) in new_vals.iter().zip(old_vals).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{phase}: clique {u} entry {i}: arena {a:?} vs legacy {b:?}"
                        );
                    }
                }
                for e in 0..tree.edges().len() {
                    let new_vals = st.separator_table(e).values();
                    let old_vals = old.separator_potential(e).values();
                    for (a, b) in new_vals.iter().zip(old_vals) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{phase}: separator {e}");
                    }
                }
            };
            check(&st, &old, "post-init");
            st.calibrate(&tree, &rooted).unwrap();
            old.calibrate(&tree, &rooted).unwrap();
            check(&st, &old, "post-calibration");
        }
    }
}
