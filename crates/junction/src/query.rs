//! High-level query API over a junction tree: the plain **JT** method of the
//! paper's evaluation (no extra materialization).

use crate::calibrate::NumericState;
use crate::cost::{marginalization_ops, QueryCost};
use crate::reduced::ReducedTree;
use crate::rooted::RootedTree;
use crate::steiner::SteinerTree;
use crate::tree::{CliqueId, JunctionTree};
use peanut_pgm::{BayesianNetwork, PgmError, Potential, Scope, Scratch, Var};

/// How a query will be processed.
#[derive(Clone, Debug)]
pub enum QueryPlan {
    /// All query variables lie in one clique: direct marginalization.
    InClique(CliqueId),
    /// Out-of-clique: message passing over a Steiner tree.
    OutOfClique(SteinerTree),
}

/// A junction tree prepared for query answering.
///
/// Owns the rooted view and (optionally) the calibrated dense potentials.
/// Without potentials the engine runs in *symbolic* mode: it computes exact
/// operation counts but cannot produce numeric answers (this is how the
/// paper evaluates the datasets whose calibration is infeasible).
pub struct QueryEngine<'t> {
    tree: &'t JunctionTree,
    rooted: RootedTree,
    numeric: Option<NumericState>,
}

impl<'t> QueryEngine<'t> {
    /// Symbolic engine (size-only).
    pub fn symbolic(tree: &'t JunctionTree) -> Self {
        QueryEngine {
            rooted: RootedTree::new(tree),
            tree,
            numeric: None,
        }
    }

    /// Numeric engine: initializes and calibrates dense potentials.
    pub fn numeric(tree: &'t JunctionTree, bn: &BayesianNetwork) -> Result<Self, PgmError> {
        let rooted = RootedTree::new(tree);
        let mut ns = NumericState::initialize(tree, bn)?;
        ns.calibrate(tree, &rooted)?;
        Ok(QueryEngine {
            tree,
            rooted,
            numeric: Some(ns),
        })
    }

    /// Numeric engine over an **already calibrated** state — the store
    /// rehydration path. Skips initialization and the two Hugin passes
    /// entirely; the caller vouches that `ns` holds this tree's calibrated
    /// tables (e.g. a persisted arena slab reattached via
    /// [`NumericState::from_calibrated_slab`]).
    pub fn from_calibrated(tree: &'t JunctionTree, ns: NumericState) -> Self {
        debug_assert!(ns.is_calibrated(), "rehydration requires calibrated state");
        QueryEngine {
            rooted: RootedTree::new(tree),
            tree,
            numeric: Some(ns),
        }
    }

    /// The underlying tree (the full `'t` borrow, so callers can retain it
    /// past this engine — e.g. to rebuild the engine after a page-out).
    #[inline]
    pub fn tree(&self) -> &'t JunctionTree {
        self.tree
    }

    /// The rooted view (at the tree's pivot).
    #[inline]
    pub fn rooted(&self) -> &RootedTree {
        &self.rooted
    }

    /// Calibrated potentials, when running numerically.
    #[inline]
    pub fn numeric_state(&self) -> Option<&NumericState> {
        self.numeric.as_ref()
    }

    /// Classifies a query (paper §3.1): in-clique vs out-of-clique.
    pub fn plan(&self, query: &Scope) -> Result<QueryPlan, PgmError> {
        let st = SteinerTree::extract(self.tree, &self.rooted, query)?;
        if st.len() == 1 {
            Ok(QueryPlan::InClique(st.root()))
        } else {
            Ok(QueryPlan::OutOfClique(st))
        }
    }

    /// The reduced tree a query would be processed on (`None` for in-clique
    /// queries). The materialization layer takes this and shrinks it with
    /// shortcut potentials before running it.
    pub fn reduced_for(&self, query: &Scope) -> Result<Option<ReducedTree>, PgmError> {
        match self.plan(query)? {
            QueryPlan::InClique(_) => Ok(None),
            QueryPlan::OutOfClique(st) => Ok(Some(ReducedTree::from_steiner(
                self.tree,
                &self.rooted,
                &st,
                self.numeric.as_ref(),
            ))),
        }
    }

    /// Operation count of answering `query` with the plain junction-tree
    /// algorithm (no shortcut potentials).
    pub fn cost(&self, query: &Scope) -> Result<QueryCost, PgmError> {
        match self.plan(query)? {
            QueryPlan::InClique(u) => Ok(QueryCost {
                ops: marginalization_ops(self.tree.clique(u), self.tree.domain()),
                messages: 0,
                shortcuts_used: 0,
            }),
            QueryPlan::OutOfClique(st) => {
                let rt = ReducedTree::from_steiner(self.tree, &self.rooted, &st, None);
                Ok(rt.cost(query, self.tree.domain()))
            }
        }
    }

    /// Numeric answer `P(query)` plus its cost. Requires numeric mode.
    pub fn answer(&self, query: &Scope) -> Result<(Potential, QueryCost), PgmError> {
        self.answer_in(query, &mut Scratch::new())
    }

    /// [`answer`](Self::answer) with caller-provided kernel scratch (the
    /// buffer-reuse path serving workers run on).
    pub fn answer_in(
        &self,
        query: &Scope,
        scratch: &mut Scratch,
    ) -> Result<(Potential, QueryCost), PgmError> {
        let ns = self
            .numeric
            .as_ref()
            .ok_or_else(|| PgmError::UnknownName("engine is symbolic".into()))?;
        match self.plan(query)? {
            QueryPlan::InClique(u) => {
                let pot = ns.clique_table(u).marginalize_in(query, scratch)?;
                Ok((
                    pot,
                    QueryCost {
                        ops: marginalization_ops(self.tree.clique(u), self.tree.domain()),
                        messages: 0,
                        shortcuts_used: 0,
                    },
                ))
            }
            QueryPlan::OutOfClique(st) => {
                let rt = ReducedTree::from_steiner(self.tree, &self.rooted, &st, Some(ns));
                rt.answer_in(query, self.tree.domain(), scratch)
            }
        }
    }

    /// An evidence-restricted engine over the same tree: clique tables of
    /// the result hold `P(X_u, e)` ([`NumericState::with_evidence`]), so a
    /// marginal answered on it and normalized is `P(targets | e)` — without
    /// ever forming the joint over `targets ∪ vars(evidence)`. The two
    /// recalibration passes are paid here, once; a stream of queries under
    /// the same pinned evidence then runs at plain-marginal cost. Requires
    /// numeric mode.
    pub fn restricted_to_evidence(
        &self,
        evidence: &[(Var, u32)],
    ) -> Result<QueryEngine<'t>, PgmError> {
        let ns = self
            .numeric
            .as_ref()
            .ok_or_else(|| PgmError::UnknownName("engine is symbolic".into()))?;
        let restricted = ns.with_evidence(self.tree, &self.rooted, evidence)?;
        Ok(QueryEngine {
            tree: self.tree,
            rooted: self.rooted.clone(),
            numeric: Some(restricted),
        })
    }

    /// Conditional distribution `P(targets | evidence)` via the paper's
    /// §3.1 reduction: answer the joint over `targets ∪ vars(evidence)`,
    /// restrict it to the evidence values and renormalize.
    pub fn conditional(
        &self,
        targets: &Scope,
        evidence: &[(Var, u32)],
    ) -> Result<(Potential, QueryCost), PgmError> {
        conditional_from_joint(targets, evidence, &mut Scratch::new(), |q, s| {
            self.answer_in(q, s)
        })
    }
}

/// Shared implementation of the joint→conditional reduction, reused by the
/// materialization-aware online engine. The scratch is threaded through the
/// joint computation and the evidence restrictions, and every intermediate
/// (the joint, each partial restriction) is recycled into it.
pub fn conditional_from_joint<F>(
    targets: &Scope,
    evidence: &[(Var, u32)],
    scratch: &mut Scratch,
    answer_joint: F,
) -> Result<(Potential, QueryCost), PgmError>
where
    F: FnOnce(&Scope, &mut Scratch) -> Result<(Potential, QueryCost), PgmError>,
{
    let ev_scope = Scope::from_iter(evidence.iter().map(|&(v, _)| v));
    if !ev_scope.is_disjoint_from(targets) {
        return Err(PgmError::ScopeNotContained {
            sub: ev_scope.to_string(),
            sup: format!("targets {targets} must not overlap evidence"),
        });
    }
    let q = targets.union(&ev_scope);
    let (joint, cost) = answer_joint(&q, scratch)?;
    let mut restricted = joint;
    for &(v, value) in evidence {
        let next = restricted.restrict_in(v, value, scratch)?;
        scratch.recycle(restricted);
        restricted = next;
    }
    restricted.normalize();
    Ok((restricted, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_junction_tree;
    use peanut_pgm::{fixtures, joint};

    #[test]
    fn in_clique_and_out_of_clique_plans() {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let eng = QueryEngine::symbolic(&tree);
        let d = bn.domain();
        let q_in = Scope::from_iter([d.var("g").unwrap(), d.var("h").unwrap()]);
        let q_out = Scope::from_iter([d.var("a").unwrap(), d.var("l").unwrap()]);
        assert!(matches!(eng.plan(&q_in).unwrap(), QueryPlan::InClique(_)));
        assert!(matches!(
            eng.plan(&q_out).unwrap(),
            QueryPlan::OutOfClique(_)
        ));
        assert!(eng.reduced_for(&q_in).unwrap().is_none());
        assert!(eng.reduced_for(&q_out).unwrap().is_some());
    }

    #[test]
    fn every_pairwise_marginal_matches_brute_force() {
        for bn in [fixtures::figure1(), fixtures::asia(), fixtures::sprinkler()] {
            let tree = build_junction_tree(&bn).unwrap();
            let eng = QueryEngine::numeric(&tree, &bn).unwrap();
            let d = bn.domain();
            let n = d.len() as u32;
            for a in 0..n {
                for b in (a + 1)..n {
                    let q = Scope::from_indices(&[a, b]);
                    let (got, _) = eng.answer(&q).unwrap();
                    let want = joint::marginal(&bn, &q).unwrap();
                    assert!(
                        got.max_abs_diff(&want).unwrap() < 1e-9,
                        "query {{x{a},x{b}}}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_variable_queries_are_in_clique() {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let eng = QueryEngine::numeric(&tree, &bn).unwrap();
        for v in bn.domain().all_vars() {
            let q = Scope::singleton(v);
            assert!(matches!(eng.plan(&q).unwrap(), QueryPlan::InClique(_)));
            let (got, cost) = eng.answer(&q).unwrap();
            let want = joint::marginal(&bn, &q).unwrap();
            assert!(got.max_abs_diff(&want).unwrap() < 1e-9);
            assert_eq!(cost.messages, 0);
        }
    }

    #[test]
    fn symbolic_cost_agrees_with_numeric_cost() {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let sym = QueryEngine::symbolic(&tree);
        let num = QueryEngine::numeric(&tree, &bn).unwrap();
        let d = bn.domain();
        for pair in [["a", "l"], ["d", "f"], ["b", "h"], ["f", "l"]] {
            let q = Scope::from_iter(pair.iter().map(|n| d.var(n).unwrap()));
            let c_sym = sym.cost(&q).unwrap();
            let (_, c_num) = num.answer(&q).unwrap();
            assert_eq!(c_sym.ops, c_num.ops);
        }
    }

    #[test]
    fn rehydrated_engine_answers_bit_identically() {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let fresh = QueryEngine::numeric(&tree, &bn).unwrap();
        let slab = fresh.numeric_state().unwrap().arena().slab().to_vec();
        let rehydrated = QueryEngine::from_calibrated(
            &tree,
            NumericState::from_calibrated_slab(&tree, &slab).unwrap(),
        );
        let d = bn.domain();
        let n = d.len() as u32;
        for a in 0..n {
            for b in (a + 1)..n {
                let q = Scope::from_indices(&[a, b]);
                let (x, cx) = fresh.answer(&q).unwrap();
                let (y, cy) = rehydrated.answer(&q).unwrap();
                assert_eq!(cx.ops, cy.ops);
                for (xa, ya) in x.values().iter().zip(y.values()) {
                    assert_eq!(xa.to_bits(), ya.to_bits(), "query {{x{a},x{b}}}");
                }
            }
        }
    }

    #[test]
    fn restricted_engine_agrees_with_per_query_conditionals() {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let eng = QueryEngine::numeric(&tree, &bn).unwrap();
        let d = bn.domain();
        let evidence = vec![(d.var("a").unwrap(), 1u32), (d.var("i").unwrap(), 0u32)];
        let restricted = eng.restricted_to_evidence(&evidence).unwrap();
        for pair in [["b", "f"], ["d", "l"], ["g", "h"], ["c", "e"]] {
            let targets = Scope::from_iter(pair.iter().map(|n| d.var(n).unwrap()));
            let (mut got, _) = restricted.answer(&targets).unwrap();
            got.normalize();
            let (want, _) = eng.conditional(&targets, &evidence).unwrap();
            assert!(
                got.max_abs_diff(&want).unwrap() < 1e-9,
                "P({pair:?} | e) via restricted tree"
            );
            assert!((got.sum() - 1.0).abs() < 1e-9);
        }
        // symbolic engines cannot restrict
        assert!(QueryEngine::symbolic(&tree)
            .restricted_to_evidence(&evidence)
            .is_err());
    }

    #[test]
    fn symbolic_engine_cannot_answer() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let eng = QueryEngine::symbolic(&tree);
        let q = Scope::from_indices(&[0]);
        assert!(eng.answer(&q).is_err());
    }
}
