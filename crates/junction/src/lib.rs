#![forbid(unsafe_code)]
//! # peanut-junction
//!
//! Junction-tree substrate for the PEANUT reproduction: everything between a
//! [`BayesianNetwork`](peanut_pgm::BayesianNetwork) and an answered
//! inference query.
//!
//! Pipeline (paper §3.1):
//!
//! 1. [`moral`] — moralization (marry parents, drop directions);
//! 2. [`triangulate`] — min-fill elimination, fill-in edges, maximal cliques;
//! 3. [`tree`] — clique-graph formation and maximum-spanning-tree extraction
//!    (Kruskal), separators, running-intersection validation;
//! 4. [`build`] — factor assignment and end-to-end construction;
//! 5. [`calibrate`] — Hugin two-phase calibration so that clique potentials
//!    coincide with joint marginals;
//! 6. [`steiner`] / [`reduced`] / [`query`] — Steiner-tree extraction for
//!    out-of-clique queries and message passing toward the pivot, in both
//!    *numeric* (dense tables) and *symbolic* (operation counts only) modes.
//!
//! The symbolic mode mirrors how the paper evaluates TPC-H, Munin and Barley,
//! whose calibration is infeasible: all comparison metrics are operation
//! counts, which depend only on scopes and cardinalities.

pub mod arena;
pub mod build;
pub mod calibrate;
pub mod cost;
pub mod moral;
pub mod query;
pub mod reduced;
pub mod rooted;
pub mod steiner;
pub mod tree;
pub mod triangulate;

pub use arena::TreeArena;
pub use build::build_junction_tree;
pub use calibrate::NumericState;
pub use query::{QueryEngine, QueryPlan};
pub use reduced::{NodeLabel, ReducedTree};
pub use rooted::RootedTree;
pub use steiner::SteinerTree;
pub use tree::JunctionTree;
