//! The operation-count cost model shared by all methods (paper §5.1).
//!
//! Processing a node `v` of a (possibly shortcut-reduced) Steiner tree
//! materializes the product table over
//! `U_v = scope(v) ∪ ⋃ scope(incoming messages)` and then marginalizes it
//! onto the outgoing target. We charge
//!
//! ```text
//! ops(v) = |table(U_v)| · (1 + #incoming)   // multiplications
//!        + |table(U_v)|                      // marginalization pass
//! ```
//!
//! The paper validates exactly this style of counting against wall-clock
//! time (Figure 3, Pearson ≈ 0.99); our `fig3` binary reproduces the
//! correlation on this engine.

use peanut_pgm::{table_size, Domain, Scope, Size};

/// Operations charged for computing one message (or the final answer) at a
/// node whose product table spans `product_scope`, with `n_incoming`
/// incoming messages.
pub fn node_ops(product_scope: &Scope, n_incoming: usize, domain: &Domain) -> Size {
    let t = table_size(product_scope, domain);
    t.saturating_mul(1 + n_incoming as u64).saturating_add(t)
}

/// Operations charged for answering an in-clique query by marginalizing a
/// clique (or shortcut) potential of scope `scope`.
pub fn marginalization_ops(scope: &Scope, domain: &Domain) -> Size {
    table_size(scope, domain)
}

/// Probability-weighted mean operation count of a workload distribution
/// under a per-query cost function.
///
/// This is the quantity the offline phase optimizes (the expectation in
/// Def. 3.3) recomputed on an arbitrary distribution — in particular on the
/// *observed* serving distribution, where comparing it between the current
/// materialization and the plain tree gives the epoch's expected benefit
/// after drift. Queries the cost function cannot price (`None`) are skipped
/// and the remaining weights renormalized; returns 0 when nothing is
/// priceable.
pub fn expected_ops<F>(queries: &[(Scope, f64)], mut cost: F) -> f64
where
    F: FnMut(&Scope) -> Option<Size>,
{
    let mut total = 0.0f64;
    let mut mass = 0.0f64;
    for (q, w) in queries {
        if *w <= 0.0 {
            continue;
        }
        if let Some(ops) = cost(q) {
            total += *w * ops as f64;
            mass += *w;
        }
    }
    if mass > 0.0 {
        total / mass
    } else {
        0.0
    }
}

/// Accumulated cost of processing one query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Total operation count.
    pub ops: Size,
    /// Number of messages sent (tree edges traversed).
    pub messages: usize,
    /// Number of shortcut potentials exploited.
    pub shortcuts_used: usize,
}

impl QueryCost {
    /// Adds the cost of one processed node.
    pub fn add_node(&mut self, ops: Size) {
        self.ops = self.ops.saturating_add(ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_pgm::Domain;

    #[test]
    fn node_ops_formula() {
        let d = Domain::uniform(3, 2).unwrap();
        let s = d.full_scope(); // table of 8
        assert_eq!(node_ops(&s, 0, &d), 8 + 8);
        assert_eq!(node_ops(&s, 2, &d), 8 * 3 + 8);
    }

    #[test]
    fn marginalization_is_table_size() {
        let d = Domain::uniform(4, 3).unwrap();
        assert_eq!(marginalization_ops(&d.full_scope(), &d), 81);
    }

    #[test]
    fn expected_ops_weights_and_renormalizes() {
        let a = Scope::from_indices(&[0]);
        let b = Scope::from_indices(&[1]);
        let c = Scope::from_indices(&[2]);
        let entries = vec![(a, 0.5), (b, 0.25), (c, 0.25)];
        // all priceable: plain expectation
        let e = expected_ops(&entries, |q| Some(100 * (q.vars()[0].0 as u64 + 1)));
        assert!((e - (0.5 * 100.0 + 0.25 * 200.0 + 0.25 * 300.0)).abs() < 1e-9);
        // one unpriceable query: weights renormalize over the rest
        let e = expected_ops(&entries, |q| {
            (q.vars()[0].0 != 2).then(|| 100 * (q.vars()[0].0 as u64 + 1))
        });
        assert!((e - (0.5 * 100.0 + 0.25 * 200.0) / 0.75).abs() < 1e-9);
        // nothing priceable
        assert_eq!(expected_ops(&entries, |_| None), 0.0);
        assert_eq!(expected_ops(&[], |_| Some(1)), 0.0);
    }

    #[test]
    fn query_cost_saturates() {
        let mut c = QueryCost::default();
        c.add_node(u64::MAX - 1);
        c.add_node(100);
        assert_eq!(c.ops, u64::MAX);
    }
}
