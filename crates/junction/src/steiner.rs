//! Steiner-tree extraction for out-of-clique queries.

use crate::rooted::RootedTree;
use crate::tree::{CliqueId, JunctionTree};
use peanut_pgm::{PgmError, Scope, Var};

/// The minimal subtree of the junction tree connecting a covering clique for
/// every query variable, rooted at the node closest to the global pivot
/// (`r_q` in the paper).
///
/// Covering-clique choice: for each query variable we pick the containing
/// clique closest to the pivot (ties broken by clique id) — a deterministic
/// heuristic that favors small trees (documented in `DESIGN.md` §5.4).
#[derive(Clone, Debug)]
pub struct SteinerTree {
    /// Member cliques, ascending id.
    nodes: Vec<CliqueId>,
    /// The Steiner root `r_q`: the member closest to the pivot.
    root: CliqueId,
}

impl SteinerTree {
    /// Extracts the Steiner tree for `query` (assumed out-of-clique or not —
    /// a single covering clique simply yields a one-node tree).
    pub fn extract(
        tree: &JunctionTree,
        rooted: &RootedTree,
        query: &Scope,
    ) -> Result<Self, PgmError> {
        if query.is_empty() {
            return Err(PgmError::UnknownName("empty query".into()));
        }
        // single covering clique? (in-clique query)
        if let Some(u) = (0..tree.n_cliques())
            .filter(|&u| query.is_subset_of(tree.clique(u)))
            .min_by_key(|&u| (tree.clique_size(u), u))
        {
            return Ok(SteinerTree {
                nodes: vec![u],
                root: u,
            });
        }
        // per-variable covering cliques, nearest the pivot
        let mut terminals: Vec<CliqueId> = Vec::with_capacity(query.len());
        for v in query.iter() {
            let u = tree
                .cliques_with(v)
                .min_by_key(|&u| (rooted.depth(u), u))
                .ok_or(PgmError::UnknownVar(v))?;
            terminals.push(u);
        }
        terminals.sort_unstable();
        terminals.dedup();

        // r_q = LCA of all terminals; Steiner nodes = union of paths to it
        let mut root = terminals[0];
        for &t in &terminals[1..] {
            root = rooted.lca(root, t);
        }
        let mut marked = vec![false; tree.n_cliques()];
        for &t in &terminals {
            let mut u = t;
            loop {
                if marked[u] {
                    break;
                }
                marked[u] = true;
                if u == root {
                    break;
                }
                u = rooted.parent(u).expect("root is an ancestor");
            }
        }
        let nodes: Vec<CliqueId> = (0..tree.n_cliques()).filter(|&u| marked[u]).collect();
        Ok(SteinerTree { nodes, root })
    }

    /// Assembles a Steiner-tree value from parts. The caller must guarantee
    /// that `nodes` is a connected subtree (w.r.t. the rooted junction tree)
    /// and `root` its member closest to the pivot; the materialization layer
    /// uses this to run message passing inside a shortcut's subtree.
    pub fn from_parts(mut nodes: Vec<CliqueId>, root: CliqueId) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        debug_assert!(nodes.binary_search(&root).is_ok());
        SteinerTree { nodes, root }
    }

    /// Member cliques, ascending id.
    #[inline]
    pub fn nodes(&self) -> &[CliqueId] {
        &self.nodes
    }

    /// The Steiner root `r_q`.
    #[inline]
    pub fn root(&self) -> CliqueId {
        self.root
    }

    /// Number of member cliques.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a single-clique (in-clique) tree.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, u: CliqueId) -> bool {
        self.nodes.binary_search(&u).is_ok()
    }

    /// Leaves of the Steiner tree (members none of whose Steiner children
    /// exist).
    pub fn leaves(&self, rooted: &RootedTree) -> Vec<CliqueId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&u| u != self.root && rooted.children(u).iter().all(|&c| !self.contains(c)))
            .collect()
    }

    /// Diameter (in edges) of the Steiner tree — the x-axis of the paper's
    /// Figure 6.
    pub fn diameter(&self, rooted: &RootedTree) -> usize {
        // longest downward chain within the Steiner tree from each node,
        // combined pairwise at every internal node
        if self.nodes.len() <= 1 {
            return 0;
        }
        let mut height: std::collections::HashMap<CliqueId, usize> =
            std::collections::HashMap::new();
        let mut best = 0usize;
        // process nodes deepest-first so children are done before parents
        let mut by_depth = self.nodes.clone();
        by_depth.sort_by_key(|&u| std::cmp::Reverse(rooted.depth(u)));
        for &u in &by_depth {
            let mut child_heights: Vec<usize> = rooted
                .children(u)
                .iter()
                .filter(|&&c| self.contains(c))
                .map(|&c| height[&c] + 1)
                .collect();
            child_heights.sort_unstable_by(|a, b| b.cmp(a));
            let h = child_heights.first().copied().unwrap_or(0);
            let through = match child_heights.len() {
                0 => 0,
                1 => child_heights[0],
                _ => child_heights[0] + child_heights[1],
            };
            best = best.max(through);
            height.insert(u, h);
        }
        best
    }
}

/// Depth of a variable: the depth of its shallowest containing clique.
/// Drives the paper's *skewed* workload (probability ∝ distance from pivot).
pub fn var_depth(tree: &JunctionTree, rooted: &RootedTree, v: Var) -> Option<usize> {
    tree.cliques_with(v).map(|u| rooted.depth(u)).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_junction_tree;
    use peanut_pgm::fixtures;

    fn fig1() -> (peanut_pgm::BayesianNetwork, JunctionTree, RootedTree) {
        let bn = fixtures::figure1();
        let mut tree = build_junction_tree(&bn).unwrap();
        // pick the clique {b,c} as pivot, matching the paper's Figure 2
        let d = bn.domain().clone();
        let bc = Scope::from_iter([d.var("b").unwrap(), d.var("c").unwrap()]);
        let pivot = tree.cliques().iter().position(|c| *c == bc).unwrap();
        tree.set_pivot(pivot);
        let rooted = RootedTree::new(&tree);
        (bn, tree, rooted)
    }

    fn clique_named(tree: &JunctionTree, d: &peanut_pgm::Domain, names: &[&str]) -> CliqueId {
        let sc = Scope::from_iter(names.iter().map(|n| d.var(n).unwrap()));
        tree.cliques().iter().position(|c| *c == sc).unwrap()
    }

    #[test]
    fn in_clique_query_single_node() {
        let (bn, tree, rooted) = fig1();
        let d = bn.domain();
        let q = Scope::from_iter([d.var("g").unwrap(), d.var("h").unwrap()]);
        let st = SteinerTree::extract(&tree, &rooted, &q).unwrap();
        assert_eq!(st.len(), 1);
        assert_eq!(st.root(), st.nodes()[0]);
        assert_eq!(st.nodes()[0], clique_named(&tree, d, &["e", "g", "h"]));
    }

    #[test]
    fn paper_example_query_bif() {
        // q = {b, i, f} from Figure 2: Steiner tree spans bc, ce, ef, egh, gil
        let (bn, tree, rooted) = fig1();
        let d = bn.domain();
        let q = Scope::from_iter([
            d.var("b").unwrap(),
            d.var("i").unwrap(),
            d.var("f").unwrap(),
        ]);
        let st = SteinerTree::extract(&tree, &rooted, &q).unwrap();
        let expect: Vec<CliqueId> = [
            clique_named(&tree, d, &["b", "c"]),
            clique_named(&tree, d, &["c", "e"]),
            clique_named(&tree, d, &["e", "f"]),
            clique_named(&tree, d, &["e", "g", "h"]),
            clique_named(&tree, d, &["g", "i", "l"]),
        ]
        .into_iter()
        .collect();
        let mut expect_sorted = expect.clone();
        expect_sorted.sort_unstable();
        assert_eq!(st.nodes(), expect_sorted.as_slice());
        // pivot bc is in the tree ⇒ r_q = bc
        assert_eq!(st.root(), clique_named(&tree, d, &["b", "c"]));
        // In our tree egh hangs off ef (valid MST tie-break), so the Steiner
        // tree is the path bc–ce–ef–egh–gil and gil is its only leaf.
        assert_eq!(
            st.leaves(&rooted),
            vec![clique_named(&tree, d, &["g", "i", "l"])]
        );
    }

    #[test]
    fn diameter_of_example() {
        let (bn, tree, rooted) = fig1();
        let d = bn.domain();
        let q = Scope::from_iter([
            d.var("b").unwrap(),
            d.var("i").unwrap(),
            d.var("f").unwrap(),
        ]);
        let st = SteinerTree::extract(&tree, &rooted, &q).unwrap();
        // path tree bc–ce–ef–egh–gil ⇒ diameter 4
        assert_eq!(st.diameter(&rooted), 4);
    }

    #[test]
    fn empty_query_rejected() {
        let (_, tree, rooted) = fig1();
        assert!(SteinerTree::extract(&tree, &rooted, &Scope::empty()).is_err());
    }

    #[test]
    fn var_depths_increase_down_the_tree() {
        let (bn, tree, rooted) = fig1();
        let d = bn.domain();
        let depth_b = var_depth(&tree, &rooted, d.var("b").unwrap()).unwrap();
        let depth_l = var_depth(&tree, &rooted, d.var("l").unwrap()).unwrap();
        assert_eq!(depth_b, 0);
        assert!(depth_l >= 2);
    }

    #[test]
    fn steiner_nodes_connected() {
        let bn = fixtures::asia();
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        for q_vars in [[0u32, 7], [1, 6], [2, 5]] {
            let q = Scope::from_indices(&q_vars);
            let st = SteinerTree::extract(&tree, &rooted, &q).unwrap();
            // every non-root member's parent is a member
            for &u in st.nodes() {
                if u != st.root() {
                    assert!(st.contains(rooted.parent(u).unwrap()));
                }
            }
        }
    }
}
