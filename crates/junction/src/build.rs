//! End-to-end junction-tree construction from a Bayesian network.

use crate::moral::MoralGraph;
use crate::tree::JunctionTree;
use crate::triangulate::triangulate;
use peanut_pgm::{BayesianNetwork, PgmError};

/// Builds the junction tree of a network: moralization → min-fill
/// triangulation → maximal cliques → maximum-spanning clique tree → CPT
/// factor assignment (each family to the smallest covering clique).
///
/// The pivot defaults to clique `0`; callers may re-root with
/// [`JunctionTree::set_pivot`]. The paper treats the pivot as arbitrary
/// (§3.1).
pub fn build_junction_tree(bn: &BayesianNetwork) -> Result<JunctionTree, PgmError> {
    let moral = MoralGraph::from_network(bn);
    let tri = triangulate(&moral, bn.domain());
    let mut tree = JunctionTree::from_cliques(bn.domain().clone(), tri.cliques)?;

    // family preservation: assign each CPT to the smallest covering clique
    for v in bn.domain().all_vars() {
        let fam = bn.family(v);
        let target = (0..tree.n_cliques())
            .filter(|&u| fam.is_subset_of(tree.clique(u)))
            .min_by_key(|&u| (tree.clique_size(u), u))
            .ok_or(PgmError::BadCptScope { var: v })?;
        tree.assign_factor(target, v);
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_pgm::fixtures;

    #[test]
    fn figure1_tree_matches_paper() {
        let bn = fixtures::figure1();
        let t = build_junction_tree(&bn).unwrap();
        assert_eq!(t.n_cliques(), 6);
        assert_eq!(t.edges().len(), 5);
        let d = bn.domain();
        // The separator multiset of Figure 1(b) is {b}, {c}, {e}, {e}, {g}.
        // (The exact tree topology may differ from the figure by maximum-
        // spanning-tree tie-breaking; any such tree is a valid junction tree
        // with the same separators.)
        let mut seps: Vec<String> = (0..t.edges().len())
            .map(|e| {
                let sc = t.separator(e);
                sc.iter()
                    .map(|v| d.name(v).to_string())
                    .collect::<Vec<_>>()
                    .join("")
            })
            .collect();
        seps.sort();
        assert_eq!(seps, vec!["b", "c", "e", "e", "g"]);
        assert_eq!(t.treewidth(), 2);
        t.check_running_intersection().unwrap();
    }

    #[test]
    fn every_factor_assigned_exactly_once() {
        for bn in [
            fixtures::figure1(),
            fixtures::sprinkler(),
            fixtures::asia(),
            fixtures::chain(9, 3, 2),
            fixtures::binary_tree(15, 1),
        ] {
            let t = build_junction_tree(&bn).unwrap();
            let mut seen = vec![0usize; bn.n_vars()];
            for u in 0..t.n_cliques() {
                for &v in t.assigned_factors(u) {
                    // family must fit the clique
                    assert!(bn.family(v).is_subset_of(t.clique(u)));
                    seen[v.index()] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "assignment counts {seen:?}");
        }
    }

    #[test]
    fn running_intersection_on_random_networks() {
        use peanut_pgm::generate::{generate_network, DagConfig};
        for seed in 0..10 {
            let cfg = DagConfig {
                n_nodes: 25,
                n_edges: 35,
                max_in_degree: 3,
                window: 5,
                cardinalities: vec![2, 3],
            };
            let bn = generate_network(&cfg, seed).unwrap();
            let t = build_junction_tree(&bn).unwrap();
            t.check_running_intersection().unwrap();
        }
    }

    #[test]
    fn chain_tree_is_path_with_unit_separators() {
        let bn = fixtures::chain(7, 2, 0);
        let t = build_junction_tree(&bn).unwrap();
        assert_eq!(t.n_cliques(), 6);
        assert_eq!(t.diameter(), 5);
        for e in 0..t.edges().len() {
            assert_eq!(t.separator(e).len(), 1);
        }
    }
}
