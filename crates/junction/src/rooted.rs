//! Rooted view of a junction tree: parents, depths, DFS order, subtree
//! scopes — the coordinate system for Steiner trees and both DP algorithms.

use crate::tree::{CliqueId, EdgeId, JunctionTree};
use peanut_pgm::Scope;

/// A junction tree rooted at a pivot clique.
///
/// Precomputes everything the query engine and the offline DPs consult per
/// node: parent, connecting edge, depth, children, a left-to-right DFS
/// numbering (the order LRDP visits nodes), and the subtree variable scope
/// `X_{T_v}` used by the benefit definition (Def. 3.2).
#[derive(Clone, Debug)]
pub struct RootedTree {
    root: CliqueId,
    parent: Vec<Option<CliqueId>>,
    parent_edge: Vec<Option<EdgeId>>,
    children: Vec<Vec<CliqueId>>,
    depth: Vec<usize>,
    /// Nodes in DFS (pre-order, children in ascending id) order.
    dfs_order: Vec<CliqueId>,
    /// Position of each node in `dfs_order`.
    dfs_pos: Vec<usize>,
    /// Union of clique scopes in the subtree rooted at each node.
    subtree_scope: Vec<Scope>,
    /// Nodes of each subtree, contiguous in `dfs_order` starting at the node.
    subtree_size: Vec<usize>,
}

impl RootedTree {
    /// Roots `tree` at its pivot.
    pub fn new(tree: &JunctionTree) -> Self {
        Self::rooted_at(tree, tree.pivot())
    }

    /// Roots `tree` at an arbitrary clique.
    pub fn rooted_at(tree: &JunctionTree, root: CliqueId) -> Self {
        let n = tree.n_cliques();
        let mut parent = vec![None; n];
        let mut parent_edge = vec![None; n];
        let mut children: Vec<Vec<CliqueId>> = vec![Vec::new(); n];
        let mut depth = vec![0usize; n];
        let mut dfs_order = Vec::with_capacity(n);
        let mut visited = vec![false; n];

        // iterative DFS, visiting children in ascending clique id for
        // deterministic left-to-right semantics
        let mut stack = vec![root];
        visited[root] = true;
        while let Some(u) = stack.pop() {
            dfs_order.push(u);
            let mut nbrs: Vec<(CliqueId, EdgeId)> = tree
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&(v, _)| !visited[v])
                .collect();
            nbrs.sort_unstable();
            for &(v, e) in &nbrs {
                visited[v] = true;
                parent[v] = Some(u);
                parent_edge[v] = Some(e);
                depth[v] = depth[u] + 1;
                children[u].push(v);
            }
            // push in reverse so the smallest id is popped (visited) first
            for &(v, _) in nbrs.iter().rev() {
                stack.push(v);
            }
        }
        debug_assert_eq!(dfs_order.len(), n, "tree must be connected");

        let mut dfs_pos = vec![0usize; n];
        for (i, &u) in dfs_order.iter().enumerate() {
            dfs_pos[u] = i;
        }

        // post-order accumulation of subtree scopes and sizes
        let mut subtree_scope: Vec<Scope> = (0..n).map(|u| tree.clique(u).clone()).collect();
        let mut subtree_size = vec![1usize; n];
        for &u in dfs_order.iter().rev() {
            if let Some(p) = parent[u] {
                let s = subtree_scope[u].clone();
                subtree_scope[p] = subtree_scope[p].union(&s);
                subtree_size[p] += subtree_size[u];
            }
        }

        RootedTree {
            root,
            parent,
            parent_edge,
            children,
            depth,
            dfs_order,
            dfs_pos,
            subtree_scope,
            subtree_size,
        }
    }

    /// The root (pivot) clique.
    #[inline]
    pub fn root(&self) -> CliqueId {
        self.root
    }

    /// Parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, u: CliqueId) -> Option<CliqueId> {
        self.parent[u]
    }

    /// Edge id connecting a node to its parent.
    #[inline]
    pub fn parent_edge(&self, u: CliqueId) -> Option<EdgeId> {
        self.parent_edge[u]
    }

    /// Children of a node, ascending id.
    #[inline]
    pub fn children(&self, u: CliqueId) -> &[CliqueId] {
        &self.children[u]
    }

    /// Depth of a node (root has depth 0).
    #[inline]
    pub fn depth(&self, u: CliqueId) -> usize {
        self.depth[u]
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Always false (a rooted tree has at least its root).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// True when `u` is a leaf.
    #[inline]
    pub fn is_leaf(&self, u: CliqueId) -> bool {
        self.children[u].is_empty()
    }

    /// Nodes in DFS pre-order (the "left-to-right" order of LRDP).
    #[inline]
    pub fn dfs_order(&self) -> &[CliqueId] {
        &self.dfs_order
    }

    /// Position of a node in the DFS order.
    #[inline]
    pub fn dfs_pos(&self, u: CliqueId) -> usize {
        self.dfs_pos[u]
    }

    /// Union of clique scopes in the subtree rooted at `u` (`X_{T_u}`).
    #[inline]
    pub fn subtree_scope(&self, u: CliqueId) -> &Scope {
        &self.subtree_scope[u]
    }

    /// Number of nodes in the subtree rooted at `u`.
    #[inline]
    pub fn subtree_size(&self, u: CliqueId) -> usize {
        self.subtree_size[u]
    }

    /// Nodes of the subtree rooted at `u` (contiguous slice of the DFS
    /// order).
    pub fn subtree_nodes(&self, u: CliqueId) -> &[CliqueId] {
        let start = self.dfs_pos[u];
        &self.dfs_order[start..start + self.subtree_size[u]]
    }

    /// True when `anc` is an ancestor of (or equal to) `node`.
    pub fn is_ancestor(&self, anc: CliqueId, node: CliqueId) -> bool {
        let pos = self.dfs_pos[node];
        let start = self.dfs_pos[anc];
        pos >= start && pos < start + self.subtree_size[anc]
    }

    /// Lowest common ancestor by depth walking (trees here are small; no
    /// need for binary lifting).
    pub fn lca(&self, mut a: CliqueId, mut b: CliqueId) -> CliqueId {
        while self.depth[a] > self.depth[b] {
            a = self.parent[a].expect("deeper node has parent");
        }
        while self.depth[b] > self.depth[a] {
            b = self.parent[b].expect("deeper node has parent");
        }
        while a != b {
            a = self.parent[a].expect("non-root");
            b = self.parent[b].expect("non-root");
        }
        a
    }

    /// Path from `u` up to (and including) `anc`; panics if `anc` is not an
    /// ancestor of `u`.
    pub fn path_to_ancestor(&self, mut u: CliqueId, anc: CliqueId) -> Vec<CliqueId> {
        let mut path = vec![u];
        while u != anc {
            u = self.parent[u].expect("anc must be an ancestor");
            path.push(u);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_pgm::Domain;

    /// Path tree 0-1-2-3 plus branch 1-4.
    fn tree() -> JunctionTree {
        let domain = Domain::uniform(6, 2).unwrap();
        let cliques = vec![
            Scope::from_indices(&[0, 1]),
            Scope::from_indices(&[1, 2]),
            Scope::from_indices(&[2, 3]),
            Scope::from_indices(&[3, 4]),
            Scope::from_indices(&[2, 5]),
        ];
        JunctionTree::from_cliques(domain, cliques).unwrap()
    }

    #[test]
    fn parents_and_depths() {
        let t = tree();
        let r = RootedTree::rooted_at(&t, 0);
        assert_eq!(r.root(), 0);
        assert_eq!(r.parent(0), None);
        assert_eq!(r.parent(1), Some(0));
        assert_eq!(r.parent(2), Some(1));
        assert_eq!(r.parent(3), Some(2));
        assert_eq!(r.parent(4), Some(1));
        assert_eq!(r.depth(3), 3);
        assert_eq!(r.depth(4), 2);
        assert!(r.is_leaf(3));
        assert!(r.is_leaf(4));
        assert!(!r.is_leaf(1));
    }

    #[test]
    fn dfs_order_left_to_right() {
        let t = tree();
        let r = RootedTree::rooted_at(&t, 0);
        assert_eq!(r.dfs_order(), &[0, 1, 2, 3, 4]);
        for (i, &u) in r.dfs_order().iter().enumerate() {
            assert_eq!(r.dfs_pos(u), i);
        }
    }

    #[test]
    fn subtree_scopes_accumulate() {
        let t = tree();
        let r = RootedTree::rooted_at(&t, 0);
        assert_eq!(r.subtree_scope(2), &Scope::from_indices(&[2, 3, 4]));
        assert_eq!(r.subtree_scope(1), &Scope::from_indices(&[1, 2, 3, 4, 5]));
        assert_eq!(r.subtree_scope(0).len(), 6);
        assert_eq!(r.subtree_size(1), 4);
        assert_eq!(r.subtree_nodes(1), &[1, 2, 3, 4]);
    }

    #[test]
    fn lca_and_paths() {
        let t = tree();
        let r = RootedTree::rooted_at(&t, 0);
        assert_eq!(r.lca(3, 4), 1);
        assert_eq!(r.lca(3, 2), 2);
        assert_eq!(r.lca(0, 4), 0);
        assert_eq!(r.path_to_ancestor(3, 1), vec![3, 2, 1]);
        assert!(r.is_ancestor(1, 3));
        assert!(!r.is_ancestor(2, 4));
        assert!(r.is_ancestor(2, 2));
    }

    #[test]
    fn rerooting_changes_structure() {
        let t = tree();
        let r = RootedTree::rooted_at(&t, 3);
        assert_eq!(r.parent(3), None);
        assert_eq!(r.parent(2), Some(3));
        assert_eq!(r.parent(0), Some(1));
        assert_eq!(r.depth(4), 3);
    }
}
