//! Min-fill triangulation and maximal-clique extraction.

use crate::moral::MoralGraph;
use peanut_pgm::{Domain, Scope, Var};
use std::collections::BTreeSet;

/// Result of triangulating a moral graph.
#[derive(Clone, Debug)]
pub struct Triangulation {
    /// Elimination order used.
    pub order: Vec<Var>,
    /// Fill-in edges added by the elimination.
    pub fill_ins: Vec<(Var, Var)>,
    /// Maximal cliques of the triangulated graph.
    pub cliques: Vec<Scope>,
}

/// Triangulates `g` with the classic **min-fill** greedy heuristic
/// (ties broken by smaller resulting table size, then variable index) and
/// returns the maximal cliques.
///
/// Min-fill repeatedly eliminates the vertex whose elimination adds the
/// fewest fill-in edges; each elimination's `{v} ∪ neighbors(v)` is a clique
/// candidate. Candidates contained in other candidates are dropped, yielding
/// exactly the maximal cliques of the triangulated graph.
pub fn triangulate(g: &MoralGraph, domain: &Domain) -> Triangulation {
    let n = g.n_vars();
    let mut adj: Vec<BTreeSet<Var>> = (0..n).map(|i| g.neighbors(Var(i as u32)).clone()).collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut order = Vec::with_capacity(n);
    let mut fill_ins = Vec::new();
    let mut candidates: Vec<Scope> = Vec::with_capacity(n);

    for _ in 0..n {
        // pick the alive vertex with minimum fill-in count
        let mut best: Option<(usize, u64, u32)> = None; // (fill, table, idx)
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            let v = Var(i as u32);
            let nbrs: Vec<Var> = adj[i].iter().copied().collect();
            let mut fill = 0usize;
            for (a_i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[a_i + 1..] {
                    if !adj[a.index()].contains(&b) {
                        fill += 1;
                    }
                }
            }
            let mut table: u64 = domain.card(v) as u64;
            for &u in &nbrs {
                table = table.saturating_mul(domain.card(u) as u64);
            }
            let key = (fill, table, i as u32);
            if best.is_none_or(|b| key < (b.0, b.1, b.2)) {
                best = Some(key);
            }
        }
        let (_, _, vi) = best.expect("an alive vertex exists");
        let v = Var(vi);
        let nbrs: Vec<Var> = adj[v.index()].iter().copied().collect();

        // record clique candidate
        let mut clique = Scope::from_iter(nbrs.iter().copied());
        clique.insert(v);
        candidates.push(clique);

        // connect the neighborhood (fill-ins)
        for (a_i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[a_i + 1..] {
                if adj[a.index()].insert(b) {
                    adj[b.index()].insert(a);
                    fill_ins.push((a, b));
                }
            }
        }
        // remove v
        for &u in &nbrs {
            adj[u.index()].remove(&v);
        }
        adj[v.index()].clear();
        alive[v.index()] = false;
        order.push(v);
    }

    // keep only maximal candidates (first occurrence wins for duplicates)
    let mut cliques: Vec<Scope> = Vec::with_capacity(candidates.len());
    'outer: for (i, c) in candidates.iter().enumerate() {
        for (j, other) in candidates.iter().enumerate() {
            if i == j || !c.is_subset_of(other) {
                continue;
            }
            if c != other || i > j {
                continue 'outer; // strict subset, or later duplicate
            }
        }
        cliques.push(c.clone());
    }

    Triangulation {
        order,
        fill_ins,
        cliques,
    }
}

/// True when `order` is a *perfect elimination order* for the graph obtained
/// from `g` plus `fill_ins` — i.e. the filled graph is chordal. Used by
/// tests.
pub fn is_chordal_completion(g: &MoralGraph, t: &Triangulation) -> bool {
    let n = g.n_vars();
    let mut adj: Vec<BTreeSet<Var>> = (0..n).map(|i| g.neighbors(Var(i as u32)).clone()).collect();
    for &(a, b) in &t.fill_ins {
        adj[a.index()].insert(b);
        adj[b.index()].insert(a);
    }
    let mut eliminated = vec![false; n];
    for &v in &t.order {
        let later: Vec<Var> = adj[v.index()]
            .iter()
            .copied()
            .filter(|u| !eliminated[u.index()])
            .collect();
        for (i, &a) in later.iter().enumerate() {
            for &b in &later[i + 1..] {
                if !adj[a.index()].contains(&b) {
                    return false;
                }
            }
        }
        eliminated[v.index()] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_pgm::fixtures;
    use peanut_pgm::BayesianNetwork;

    fn tri_of(bn: &BayesianNetwork) -> (MoralGraph, Triangulation) {
        let g = MoralGraph::from_network(bn);
        let t = triangulate(&g, bn.domain());
        (g, t)
    }

    #[test]
    fn figure1_cliques_match_paper() {
        let bn = fixtures::figure1();
        let (_, t) = tri_of(&bn);
        let d = bn.domain();
        let expect = [
            vec!["a", "b", "d"],
            vec!["b", "c"],
            vec!["c", "e"],
            vec!["e", "f"],
            vec!["e", "g", "h"],
            vec!["g", "i", "l"],
        ];
        assert_eq!(t.cliques.len(), expect.len());
        for names in expect {
            let sc = Scope::from_iter(names.iter().map(|n| d.var(n).unwrap()));
            assert!(
                t.cliques.contains(&sc),
                "missing clique {names:?}; got {:?}",
                t.cliques
            );
        }
    }

    #[test]
    fn elimination_is_chordal_completion() {
        for bn in [
            fixtures::figure1(),
            fixtures::sprinkler(),
            fixtures::asia(),
            fixtures::binary_tree(15, 4),
        ] {
            let (g, t) = tri_of(&bn);
            assert!(is_chordal_completion(&g, &t));
            assert_eq!(t.order.len(), bn.n_vars());
        }
    }

    #[test]
    fn families_covered_by_some_clique() {
        for bn in [
            fixtures::figure1(),
            fixtures::asia(),
            fixtures::chain(8, 2, 5),
        ] {
            let (_, t) = tri_of(&bn);
            for v in bn.domain().all_vars() {
                let fam = bn.family(v);
                assert!(
                    t.cliques.iter().any(|c| fam.is_subset_of(c)),
                    "family of {v} not covered"
                );
            }
        }
    }

    #[test]
    fn cliques_are_maximal() {
        for bn in [fixtures::figure1(), fixtures::asia()] {
            let (_, t) = tri_of(&bn);
            for (i, a) in t.cliques.iter().enumerate() {
                for (j, b) in t.cliques.iter().enumerate() {
                    if i != j {
                        assert!(!a.is_subset_of(b), "{a} ⊆ {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn chain_cliques_are_adjacent_pairs() {
        let bn = fixtures::chain(6, 2, 0);
        let (_, t) = tri_of(&bn);
        assert_eq!(t.cliques.len(), 5);
        assert!(t.fill_ins.is_empty());
        for c in &t.cliques {
            assert_eq!(c.len(), 2);
        }
    }
}
