//! The junction-tree data structure: cliques, separators, tree adjacency.

use peanut_pgm::{table_size, Domain, PgmError, Scope, Size, Var};

/// Identifier of a clique node within a [`JunctionTree`].
pub type CliqueId = usize;

/// Identifier of a tree edge (separator) within a [`JunctionTree`].
pub type EdgeId = usize;

/// A junction tree: clique nodes connected by separator edges, satisfying
/// the running-intersection property.
///
/// The tree owns a copy of the [`Domain`] so that all size computations
/// (`μ(v)`, separator sizes, message-table sizes) are self-contained.
#[derive(Clone, Debug)]
pub struct JunctionTree {
    domain: Domain,
    cliques: Vec<Scope>,
    /// `edges[e] = (u, v)` with `u < v`; the separator scope is their
    /// intersection.
    edges: Vec<(CliqueId, CliqueId)>,
    separators: Vec<Scope>,
    /// CSR adjacency: neighbors of `u` are
    /// `adj_flat[adj_first[u]..adj_first[u + 1]]` — one flat `(neighbor,
    /// edge id)` array plus offsets, instead of a `Vec` per node.
    adj_first: Vec<u32>,
    adj_flat: Vec<(CliqueId, EdgeId)>,
    /// Factors (variables, since each variable owns one CPT) assigned to each
    /// clique.
    assigned: Vec<Vec<Var>>,
    pivot: CliqueId,
}

impl JunctionTree {
    /// Assembles a junction tree from maximal cliques via the classic
    /// maximum-spanning-tree construction (Kruskal on separator size).
    ///
    /// If the clique graph is disconnected (the moral graph had several
    /// components), components are linked by empty separators — message
    /// passing across them degenerates to scalar messages, which is sound.
    pub fn from_cliques(domain: Domain, cliques: Vec<Scope>) -> Result<Self, PgmError> {
        if cliques.is_empty() {
            return Err(PgmError::EmptyNetwork);
        }
        let n = cliques.len();
        // candidate edges with weight = |intersection|
        let mut cands: Vec<(usize, CliqueId, CliqueId)> = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let w = cliques[i].intersect(&cliques[j]).len();
                if w > 0 {
                    cands.push((w, i, j));
                }
            }
        }
        // maximum spanning tree: sort descending by weight (stable ⇒
        // deterministic)
        cands.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut dsu = Dsu::new(n);
        let mut edges = Vec::with_capacity(n.saturating_sub(1));
        for (_, i, j) in cands {
            if dsu.union(i, j) {
                edges.push((i, j));
            }
        }
        // link remaining components with empty separators
        for j in 1..n {
            if dsu.union(0, j) {
                edges.push((0, j));
            }
        }
        let separators: Vec<Scope> = edges
            .iter()
            .map(|&(i, j)| cliques[i].intersect(&cliques[j]))
            .collect();
        // CSR adjacency: degree count, prefix sum, then placement
        let mut adj_first = vec![0u32; n + 1];
        for &(i, j) in &edges {
            adj_first[i + 1] += 1;
            adj_first[j + 1] += 1;
        }
        for u in 0..n {
            adj_first[u + 1] += adj_first[u];
        }
        let mut adj_flat = vec![(0, 0); 2 * edges.len()];
        let mut cursor: Vec<u32> = adj_first[..n].to_vec();
        for (e, &(i, j)) in edges.iter().enumerate() {
            adj_flat[cursor[i] as usize] = (j, e);
            cursor[i] += 1;
            adj_flat[cursor[j] as usize] = (i, e);
            cursor[j] += 1;
        }
        let tree = JunctionTree {
            domain,
            assigned: vec![Vec::new(); n],
            cliques,
            edges,
            separators,
            adj_first,
            adj_flat,
            pivot: 0,
        };
        tree.check_running_intersection()?;
        Ok(tree)
    }

    /// The variable domain.
    #[inline]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of clique nodes.
    #[inline]
    pub fn n_cliques(&self) -> usize {
        self.cliques.len()
    }

    /// Scope of a clique node.
    #[inline]
    pub fn clique(&self, u: CliqueId) -> &Scope {
        &self.cliques[u]
    }

    /// All clique scopes.
    #[inline]
    pub fn cliques(&self) -> &[Scope] {
        &self.cliques
    }

    /// Tree edges `(u, v)` with `u < v`.
    #[inline]
    pub fn edges(&self) -> &[(CliqueId, CliqueId)] {
        &self.edges
    }

    /// Separator scope of an edge.
    #[inline]
    pub fn separator(&self, e: EdgeId) -> &Scope {
        &self.separators[e]
    }

    /// Neighbors of a clique with the connecting edge ids (a slice of the
    /// flat CSR adjacency array).
    #[inline]
    pub fn neighbors(&self, u: CliqueId) -> &[(CliqueId, EdgeId)] {
        &self.adj_flat[self.adj_first[u] as usize..self.adj_first[u + 1] as usize]
    }

    /// The edge id connecting `u` and `v`, if adjacent.
    pub fn edge_between(&self, u: CliqueId, v: CliqueId) -> Option<EdgeId> {
        self.neighbors(u)
            .iter()
            .find(|&&(w, _)| w == v)
            .map(|&(_, e)| e)
    }

    /// Table size `μ(u)` of a clique potential.
    pub fn clique_size(&self, u: CliqueId) -> Size {
        table_size(&self.cliques[u], &self.domain)
    }

    /// Table size of a separator potential.
    pub fn separator_size(&self, e: EdgeId) -> Size {
        table_size(&self.separators[e], &self.domain)
    }

    /// Total separator potential size `b_T` — the budget unit used throughout
    /// the paper's experiments (`K` is expressed as multiples of `b_T`).
    pub fn total_separator_size(&self) -> Size {
        (0..self.edges.len())
            .map(|e| self.separator_size(e))
            .fold(0u64, u64::saturating_add)
    }

    /// The pivot (root) clique toward which all messages flow.
    #[inline]
    pub fn pivot(&self) -> CliqueId {
        self.pivot
    }

    /// Re-roots the tree at a different pivot.
    pub fn set_pivot(&mut self, pivot: CliqueId) {
        assert!(pivot < self.n_cliques());
        self.pivot = pivot;
    }

    /// Variables assigned (CPT factors) to a clique.
    #[inline]
    pub fn assigned_factors(&self, u: CliqueId) -> &[Var] {
        &self.assigned[u]
    }

    /// Records that variable `v`'s CPT is multiplied into clique `u`
    /// (performed by [`build`](crate::build)).
    pub(crate) fn assign_factor(&mut self, u: CliqueId, v: Var) {
        self.assigned[u].push(v);
    }

    /// Treewidth of this tree: max clique size − 1.
    pub fn treewidth(&self) -> usize {
        self.cliques.iter().map(Scope::len).max().unwrap_or(1) - 1
    }

    /// Diameter of the tree in edges (longest path), via double BFS.
    pub fn diameter(&self) -> usize {
        if self.n_cliques() <= 1 {
            return 0;
        }
        let (far, _) = self.bfs_farthest(0);
        let (_, d) = self.bfs_farthest(far);
        d
    }

    fn bfs_farthest(&self, start: CliqueId) -> (CliqueId, usize) {
        let mut dist = vec![usize::MAX; self.n_cliques()];
        dist[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        let mut best = (start, 0);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in self.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    if dist[v] > best.1 {
                        best = (v, dist[v]);
                    }
                    queue.push_back(v);
                }
            }
        }
        best
    }

    /// Cliques containing a variable.
    pub fn cliques_with(&self, v: Var) -> impl Iterator<Item = CliqueId> + '_ {
        (0..self.n_cliques()).filter(move |&u| self.cliques[u].contains(v))
    }

    /// Validates the running-intersection property: for every variable, the
    /// cliques containing it induce a connected subtree.
    pub fn check_running_intersection(&self) -> Result<(), PgmError> {
        for v in self.domain.all_vars() {
            let members: Vec<CliqueId> = self.cliques_with(v).collect();
            if members.len() <= 1 {
                continue;
            }
            // BFS within the induced subgraph
            let in_set = |u: CliqueId| self.cliques[u].contains(v);
            let mut seen = vec![false; self.n_cliques()];
            let mut queue = std::collections::VecDeque::from([members[0]]);
            seen[members[0]] = true;
            let mut count = 1;
            while let Some(u) = queue.pop_front() {
                for &(w, _) in self.neighbors(u) {
                    if !seen[w] && in_set(w) {
                        seen[w] = true;
                        count += 1;
                        queue.push_back(w);
                    }
                }
            }
            if count != members.len() {
                return Err(PgmError::InfeasibleGenerator(format!(
                    "running-intersection violated for {v}"
                )));
            }
        }
        Ok(())
    }
}

/// Disjoint-set union for Kruskal.
struct Dsu {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            self.parent[x] = self.find(self.parent[x]);
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond_tree() -> JunctionTree {
        // cliques {0,1}, {1,2}, {2,3}, {1,4}
        let domain = Domain::uniform(5, 2).unwrap();
        let cliques = vec![
            Scope::from_indices(&[0, 1]),
            Scope::from_indices(&[1, 2]),
            Scope::from_indices(&[2, 3]),
            Scope::from_indices(&[1, 4]),
        ];
        JunctionTree::from_cliques(domain, cliques).unwrap()
    }

    #[test]
    fn builds_spanning_tree() {
        let t = diamond_tree();
        assert_eq!(t.n_cliques(), 4);
        assert_eq!(t.edges().len(), 3);
        t.check_running_intersection().unwrap();
    }

    #[test]
    fn separators_are_intersections() {
        let t = diamond_tree();
        for (e, &(u, v)) in t.edges().iter().enumerate() {
            assert_eq!(t.separator(e), &t.clique(u).intersect(t.clique(v)));
        }
    }

    #[test]
    fn sizes() {
        let t = diamond_tree();
        assert_eq!(t.clique_size(0), 4);
        assert_eq!(t.treewidth(), 1);
        // every separator has one binary variable
        assert_eq!(t.total_separator_size(), 6);
    }

    #[test]
    fn diameter_of_path() {
        let domain = Domain::uniform(5, 2).unwrap();
        let cliques = vec![
            Scope::from_indices(&[0, 1]),
            Scope::from_indices(&[1, 2]),
            Scope::from_indices(&[2, 3]),
            Scope::from_indices(&[3, 4]),
        ];
        let t = JunctionTree::from_cliques(domain, cliques).unwrap();
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn disconnected_components_get_linked() {
        let domain = Domain::uniform(4, 2).unwrap();
        let cliques = vec![Scope::from_indices(&[0, 1]), Scope::from_indices(&[2, 3])];
        let t = JunctionTree::from_cliques(domain, cliques).unwrap();
        assert_eq!(t.edges().len(), 1);
        assert!(t.separator(0).is_empty());
        t.check_running_intersection().unwrap();
    }

    #[test]
    fn empty_rejected() {
        let domain = Domain::uniform(1, 2).unwrap();
        assert!(JunctionTree::from_cliques(domain, vec![]).is_err());
    }

    #[test]
    fn pivot_settable() {
        let mut t = diamond_tree();
        assert_eq!(t.pivot(), 0);
        t.set_pivot(2);
        assert_eq!(t.pivot(), 2);
    }
}
