//! Deterministic attachment of evidence to sampled query scopes.
//!
//! The paper's workloads are pure marginal queries; a serving system also
//! sees evidence-conditioned traffic (`P(targets | evidence)`). This module
//! turns a fraction of sampled scopes into conditional queries by splitting
//! off some variables as evidence with uniformly drawn values — seeded and
//! reproducible, like every other generator in this crate. Queries come out
//! as typed [`ServeRequest`]s, the unified form every serving surface
//! accepts.

use peanut_core::ServeRequest;
use peanut_pgm::{Domain, Scope, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pre-[`ServeRequest`] tuple form of a conditional query. Kept only
/// so downstream code migrating to the typed request compiles with a
/// warning instead of breaking silently.
#[deprecated(
    since = "0.1.0",
    note = "use `peanut_core::ServeRequest` — the typed request every serving surface accepts"
)]
pub type ConditionedQuery = (Scope, Vec<(Var, u32)>);

/// Converts `fraction` of the given scopes into conditional queries.
///
/// A selected scope with at least two variables is split: between one
/// variable and all-but-one become evidence (values drawn uniformly from the
/// variable's domain), the rest stay targets. Scopes left unselected — and
/// all single-variable scopes — pass through as plain marginal requests.
pub fn with_evidence(
    domain: &Domain,
    scopes: &[Scope],
    fraction: f64,
    seed: u64,
) -> Vec<ServeRequest> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    scopes
        .iter()
        .map(|q| {
            if q.len() < 2 || rng.gen_range(0.0..1.0) >= fraction {
                return ServeRequest::marginal(q.clone());
            }
            let n_evidence = rng.gen_range(1..q.len());
            // Fisher–Yates with the seeded stream, then split the shuffle
            let mut vars: Vec<Var> = q.iter().collect();
            for i in (1..vars.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                vars.swap(i, j);
            }
            let evidence: Vec<(Var, u32)> = vars[..n_evidence]
                .iter()
                .map(|&v| (v, rng.gen_range(0..domain.card(v))))
                .collect();
            let targets = Scope::from_iter(vars[n_evidence..].iter().copied());
            ServeRequest::new(targets, evidence)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_pgm::fixtures;

    fn scopes() -> Vec<Scope> {
        (0..8u32)
            .map(|i| Scope::from_indices(&[i % 4, (i + 1) % 4 + 4, (i + 2) % 3 + 8]))
            .collect()
    }

    #[test]
    fn deterministic_in_seed() {
        let bn = fixtures::chain(12, 3, 5);
        let a = with_evidence(bn.domain(), &scopes(), 0.5, 1);
        let b = with_evidence(bn.domain(), &scopes(), 0.5, 1);
        let c = with_evidence(bn.domain(), &scopes(), 0.5, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn split_preserves_variables_and_values_in_range() {
        let bn = fixtures::chain(12, 3, 5);
        let d = bn.domain();
        let qs = scopes();
        for (orig, req) in qs.iter().zip(with_evidence(d, &qs, 1.0, 9)) {
            let ev_scope = req.evidence_scope();
            assert!(req.targets.is_disjoint_from(&ev_scope));
            assert_eq!(&req.stat_scope(), orig);
            assert!(!req.targets.is_empty());
            assert!(!req.is_marginal());
            for &(v, val) in &req.evidence {
                assert!(val < d.card(v));
            }
        }
    }

    #[test]
    fn zero_fraction_passes_through() {
        let bn = fixtures::chain(12, 3, 5);
        for (orig, req) in scopes()
            .iter()
            .zip(with_evidence(bn.domain(), &scopes(), 0.0, 3))
        {
            assert_eq!(&req.targets, orig);
            assert!(req.is_marginal());
        }
    }
}
