//! Workload drift: the λ-mixtures of the robustness experiments
//! (paper §5.3, Figures 8–9), both as a fixed mix ([`mix`]) and as a
//! *streaming* schedule where λ changes over the lifetime of a served
//! query stream ([`DriftSchedule`] / [`DriftStream`]) — the traffic shape
//! the epoch-versioned re-materialization lifecycle reacts to.

use peanut_pgm::Scope;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws `n` queries where each comes from `primary` with probability `λ`
/// and from `secondary` otherwise (sampling the pools with replacement).
///
/// `λ = 1` reproduces the training distribution; `λ = 0` is a full drift to
/// the other workload.
pub fn mix(primary: &[Scope], secondary: &[Scope], lambda: f64, n: usize, seed: u64) -> Vec<Scope> {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
    assert!(
        !primary.is_empty() && !secondary.is_empty(),
        "both pools must be non-empty"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let pool = if rng.gen_range(0.0..1.0) < lambda {
                primary
            } else {
                secondary
            };
            pool[rng.gen_range(0..pool.len())].clone()
        })
        .collect()
}

/// How the mixing coefficient λ evolves over a query stream: λ(i) is the
/// probability that arrival `i` comes from the *primary* (training) pool.
///
/// All variants clamp sensibly outside their defined range, so a stream can
/// be drawn past the end of the schedule (λ holds its final value).
#[derive(Clone, Debug, PartialEq)]
pub enum DriftSchedule {
    /// A fixed mix: λ never changes (the paper's static λ-mix).
    Constant(f64),
    /// λ interpolates linearly from `from` (arrival 0) to `to` (arrival
    /// `over`), then holds `to`.
    Linear {
        /// λ at the first arrival.
        from: f64,
        /// λ from arrival `over` on.
        to: f64,
        /// Number of arrivals the ramp spans (0 jumps straight to `to`).
        over: usize,
    },
    /// An abrupt regime change: λ is `before` until arrival `at`, then
    /// `after`.
    Step {
        /// λ for arrivals `0..at`.
        before: f64,
        /// λ from arrival `at` on.
        after: f64,
        /// First arrival of the new regime.
        at: usize,
    },
    /// Piecewise-linear: `(arrival, λ)` knots in increasing arrival order;
    /// λ interpolates linearly between consecutive knots, holds the first
    /// knot's value before it and the last knot's value after it.
    Piecewise(Vec<(usize, f64)>),
}

impl DriftSchedule {
    /// Checks every configured λ lies in `[0, 1]` and piecewise knots are
    /// non-empty and strictly increasing; panics otherwise.
    /// [`DriftStream::new`] calls this up front, so a malformed schedule
    /// fails at construction rather than at some later draw.
    pub fn validate(&self) {
        let check = |l: f64| {
            assert!((0.0..=1.0).contains(&l), "lambda must be in [0, 1]");
        };
        match self {
            DriftSchedule::Constant(l) => check(*l),
            DriftSchedule::Linear { from, to, .. } => {
                check(*from);
                check(*to);
            }
            DriftSchedule::Step { before, after, .. } => {
                check(*before);
                check(*after);
            }
            DriftSchedule::Piecewise(knots) => {
                assert!(!knots.is_empty(), "piecewise schedule needs knots");
                assert!(
                    knots.windows(2).all(|w| w[0].0 < w[1].0),
                    "piecewise knots must be strictly increasing"
                );
                for &(_, l) in knots {
                    check(l);
                }
            }
        }
    }

    /// λ at arrival `i`. Evaluation is pure interpolation; call
    /// [`validate`](Self::validate) (or construct a [`DriftStream`]) to
    /// check the schedule itself.
    pub fn lambda_at(&self, i: usize) -> f64 {
        match self {
            DriftSchedule::Constant(l) => *l,
            DriftSchedule::Linear { from, to, over } => {
                if i >= *over || *over == 0 {
                    *to
                } else {
                    let t = i as f64 / *over as f64;
                    from + (to - from) * t
                }
            }
            DriftSchedule::Step { before, after, at } => {
                if i < *at {
                    *before
                } else {
                    *after
                }
            }
            DriftSchedule::Piecewise(knots) => {
                assert!(!knots.is_empty(), "piecewise schedule needs knots");
                if i <= knots[0].0 {
                    return knots[0].1;
                }
                for w in knots.windows(2) {
                    let ((x0, l0), (x1, l1)) = (w[0], w[1]);
                    if i <= x1 {
                        let t = (i - x0) as f64 / (x1 - x0) as f64;
                        return l0 + (l1 - l0) * t;
                    }
                }
                knots.last().expect("non-empty").1
            }
        }
    }
}

/// A lazily drawn drifting query stream: arrival `i` comes from `primary`
/// with probability `schedule.lambda_at(i)` and from `secondary` otherwise
/// (pools sampled with replacement). Deterministic in `seed`; the stream is
/// unbounded, so callers `take(n)` what they need.
pub struct DriftStream<'a> {
    primary: &'a [Scope],
    secondary: &'a [Scope],
    schedule: DriftSchedule,
    rng: StdRng,
    next_arrival: usize,
}

impl<'a> DriftStream<'a> {
    /// Builds a stream; both pools must be non-empty and the schedule
    /// must pass [`DriftSchedule::validate`] (checked here, so malformed
    /// schedules fail at construction).
    pub fn new(
        primary: &'a [Scope],
        secondary: &'a [Scope],
        schedule: DriftSchedule,
        seed: u64,
    ) -> Self {
        assert!(
            !primary.is_empty() && !secondary.is_empty(),
            "both pools must be non-empty"
        );
        schedule.validate();
        DriftStream {
            primary,
            secondary,
            schedule,
            rng: StdRng::seed_from_u64(seed),
            next_arrival: 0,
        }
    }

    /// Index of the next arrival the stream will draw.
    pub fn position(&self) -> usize {
        self.next_arrival
    }

    /// λ the next arrival will be drawn with.
    pub fn current_lambda(&self) -> f64 {
        self.schedule.lambda_at(self.next_arrival)
    }
}

impl Iterator for DriftStream<'_> {
    type Item = Scope;

    fn next(&mut self) -> Option<Scope> {
        let lambda = self.schedule.lambda_at(self.next_arrival);
        self.next_arrival += 1;
        let pool = if self.rng.gen_range(0.0..1.0) < lambda {
            self.primary
        } else {
            self.secondary
        };
        Some(pool[self.rng.gen_range(0..pool.len())].clone())
    }
}

/// Draws the first `n` arrivals of a [`DriftStream`].
pub fn drifting_queries(
    primary: &[Scope],
    secondary: &[Scope],
    schedule: &DriftSchedule,
    n: usize,
    seed: u64,
) -> Vec<Scope> {
    DriftStream::new(primary, secondary, schedule.clone(), seed)
        .take(n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> (Vec<Scope>, Vec<Scope>) {
        let a: Vec<Scope> = (0..5u32).map(|i| Scope::from_indices(&[i])).collect();
        let b: Vec<Scope> = (10..15u32).map(|i| Scope::from_indices(&[i])).collect();
        (a, b)
    }

    #[test]
    fn extremes_use_single_pool() {
        let (a, b) = pools();
        for q in mix(&a, &b, 1.0, 100, 3) {
            assert!(q.vars()[0].0 < 5);
        }
        for q in mix(&a, &b, 0.0, 100, 3) {
            assert!(q.vars()[0].0 >= 10);
        }
    }

    #[test]
    fn half_mix_draws_from_both() {
        let (a, b) = pools();
        let m = mix(&a, &b, 0.5, 400, 7);
        let from_a = m.iter().filter(|q| q.vars()[0].0 < 5).count();
        assert!(from_a > 100 && from_a < 300, "from_a = {from_a}");
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn invalid_lambda_panics() {
        let (a, b) = pools();
        mix(&a, &b, 1.5, 10, 0);
    }

    fn from_primary(q: &Scope) -> bool {
        q.vars()[0].0 < 5
    }

    #[test]
    fn schedule_shapes() {
        let lin = DriftSchedule::Linear {
            from: 1.0,
            to: 0.0,
            over: 100,
        };
        assert_eq!(lin.lambda_at(0), 1.0);
        assert!((lin.lambda_at(50) - 0.5).abs() < 1e-12);
        assert_eq!(lin.lambda_at(100), 0.0);
        assert_eq!(lin.lambda_at(10_000), 0.0);

        let step = DriftSchedule::Step {
            before: 0.9,
            after: 0.1,
            at: 10,
        };
        assert_eq!(step.lambda_at(9), 0.9);
        assert_eq!(step.lambda_at(10), 0.1);

        let pw = DriftSchedule::Piecewise(vec![(10, 1.0), (20, 0.5), (40, 0.5), (60, 0.0)]);
        assert_eq!(pw.lambda_at(0), 1.0);
        assert!((pw.lambda_at(15) - 0.75).abs() < 1e-12);
        assert_eq!(pw.lambda_at(30), 0.5);
        assert!((pw.lambda_at(50) - 0.25).abs() < 1e-12);
        assert_eq!(pw.lambda_at(100), 0.0);

        assert_eq!(DriftSchedule::Constant(0.3).lambda_at(7), 0.3);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn piecewise_rejects_unordered_knots() {
        DriftSchedule::Piecewise(vec![(20, 0.5), (10, 1.0)]).validate();
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn stream_rejects_invalid_schedule_at_construction() {
        let (a, b) = pools();
        DriftStream::new(&a, &b, DriftSchedule::Constant(1.5), 0);
    }

    #[test]
    fn stream_follows_the_schedule() {
        let (a, b) = pools();
        let schedule = DriftSchedule::Step {
            before: 1.0,
            after: 0.0,
            at: 200,
        };
        let qs = drifting_queries(&a, &b, &schedule, 400, 11);
        assert_eq!(qs.len(), 400);
        assert!(qs[..200].iter().all(from_primary), "pre-step all primary");
        assert!(
            !qs[200..].iter().any(from_primary),
            "post-step all secondary"
        );
    }

    #[test]
    fn linear_drift_shifts_the_mix_gradually() {
        let (a, b) = pools();
        let schedule = DriftSchedule::Linear {
            from: 1.0,
            to: 0.0,
            over: 900,
        };
        let qs = drifting_queries(&a, &b, &schedule, 900, 23);
        let head = qs[..300].iter().filter(|q| from_primary(q)).count();
        let tail = qs[600..].iter().filter(|q| from_primary(q)).count();
        assert!(
            head > 220 && tail < 80,
            "head {head} should be mostly primary, tail {tail} mostly secondary"
        );
    }

    #[test]
    fn stream_is_deterministic_and_resumable() {
        let (a, b) = pools();
        let schedule = DriftSchedule::Linear {
            from: 0.8,
            to: 0.2,
            over: 50,
        };
        let all = drifting_queries(&a, &b, &schedule, 80, 7);
        let mut stream = DriftStream::new(&a, &b, schedule.clone(), 7);
        assert_eq!(stream.position(), 0);
        assert!((stream.current_lambda() - 0.8).abs() < 1e-12);
        let first: Vec<Scope> = stream.by_ref().take(30).collect();
        assert_eq!(stream.position(), 30);
        let rest: Vec<Scope> = stream.take(50).collect();
        assert_eq!(all[..30], first[..]);
        assert_eq!(all[30..], rest[..]);
    }
}
