//! Workload drift: the λ-mixtures of the robustness experiments
//! (paper §5.3, Figures 8–9).

use peanut_pgm::Scope;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws `n` queries where each comes from `primary` with probability `λ`
/// and from `secondary` otherwise (sampling the pools with replacement).
///
/// `λ = 1` reproduces the training distribution; `λ = 0` is a full drift to
/// the other workload.
pub fn mix(primary: &[Scope], secondary: &[Scope], lambda: f64, n: usize, seed: u64) -> Vec<Scope> {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
    assert!(
        !primary.is_empty() && !secondary.is_empty(),
        "both pools must be non-empty"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let pool = if rng.gen_range(0.0..1.0) < lambda {
                primary
            } else {
                secondary
            };
            pool[rng.gen_range(0..pool.len())].clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> (Vec<Scope>, Vec<Scope>) {
        let a: Vec<Scope> = (0..5u32).map(|i| Scope::from_indices(&[i])).collect();
        let b: Vec<Scope> = (10..15u32).map(|i| Scope::from_indices(&[i])).collect();
        (a, b)
    }

    #[test]
    fn extremes_use_single_pool() {
        let (a, b) = pools();
        for q in mix(&a, &b, 1.0, 100, 3) {
            assert!(q.vars()[0].0 < 5);
        }
        for q in mix(&a, &b, 0.0, 100, 3) {
            assert!(q.vars()[0].0 >= 10);
        }
    }

    #[test]
    fn half_mix_draws_from_both() {
        let (a, b) = pools();
        let m = mix(&a, &b, 0.5, 400, 7);
        let from_a = m.iter().filter(|q| q.vars()[0].0 < 5).count();
        assert!(from_a > 100 && from_a < 300, "from_a = {from_a}");
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn invalid_lambda_panics() {
        let (a, b) = pools();
        mix(&a, &b, 1.5, 10, 0);
    }
}
