//! Skewed and uniform query samplers.

use peanut_junction::steiner::var_depth;
use peanut_junction::{JunctionTree, RootedTree};
use peanut_pgm::{Domain, Scope, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shared sampling parameters: query sizes are drawn uniformly from
/// `min_vars..=max_vars` (the paper uses 1–5 variables).
#[derive(Clone, Copy, Debug)]
pub struct QuerySpec {
    /// Minimum number of variables per query.
    pub min_vars: usize,
    /// Maximum number of variables per query.
    pub max_vars: usize,
}

impl Default for QuerySpec {
    fn default() -> Self {
        QuerySpec {
            min_vars: 1,
            max_vars: 5,
        }
    }
}

/// Samples one query by drawing distinct variables from a categorical
/// distribution given by `weights`.
fn sample_query<R: Rng>(weights: &[f64], spec: QuerySpec, rng: &mut R) -> Scope {
    let n = weights.len();
    let total: f64 = weights.iter().sum();
    let size = rng
        .gen_range(spec.min_vars..=spec.max_vars.min(n).max(spec.min_vars))
        .min(n);
    let mut chosen: Vec<Var> = Vec::with_capacity(size);
    let mut guard = 0usize;
    while chosen.len() < size && guard < 10_000 {
        guard += 1;
        let mut t = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        let mut pick = n - 1;
        for (i, &w) in weights.iter().enumerate() {
            if t < w {
                pick = i;
                break;
            }
            t -= w;
        }
        let v = Var(pick as u32);
        if !chosen.contains(&v) {
            chosen.push(v);
        }
    }
    Scope::from_iter(chosen)
}

/// The paper's **skewed** workload: variables weighted by their distance
/// from the pivot (depth of the shallowest containing clique). Falls back
/// to uniform weights when every variable sits at the pivot.
pub fn skewed_queries(
    tree: &JunctionTree,
    rooted: &RootedTree,
    n_queries: usize,
    spec: QuerySpec,
    seed: u64,
) -> Vec<Scope> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weights: Vec<f64> = tree
        .domain()
        .all_vars()
        .map(|v| var_depth(tree, rooted, v).unwrap_or(0) as f64)
        .collect();
    if weights.iter().all(|&w| w == 0.0) {
        weights.fill(1.0);
    }
    (0..n_queries)
        .map(|_| sample_query(&weights, spec, &mut rng))
        .collect()
}

/// The paper's **uniform** workload: variables sampled uniformly.
pub fn uniform_queries(
    domain: &Domain,
    n_queries: usize,
    spec: QuerySpec,
    seed: u64,
) -> Vec<Scope> {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = vec![1.0; domain.len()];
    (0..n_queries)
        .map(|_| sample_query(&weights, spec, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_junction::build_junction_tree;
    use peanut_pgm::fixtures;

    #[test]
    fn sizes_within_spec() {
        let bn = fixtures::chain(20, 2, 3);
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let spec = QuerySpec {
            min_vars: 2,
            max_vars: 4,
        };
        for q in skewed_queries(&tree, &rooted, 200, spec, 1) {
            assert!(q.len() >= 2 && q.len() <= 4);
        }
        for q in uniform_queries(bn.domain(), 200, spec, 2) {
            assert!(q.len() >= 2 && q.len() <= 4);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let bn = fixtures::chain(10, 2, 3);
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let a = skewed_queries(&tree, &rooted, 50, QuerySpec::default(), 9);
        let b = skewed_queries(&tree, &rooted, 50, QuerySpec::default(), 9);
        let c = skewed_queries(&tree, &rooted, 50, QuerySpec::default(), 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn skew_prefers_deep_variables() {
        // on a long chain rooted at one end, deep (high-index) variables
        // must be sampled far more often than shallow ones
        let bn = fixtures::chain(30, 2, 5);
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let queries = skewed_queries(&tree, &rooted, 2000, QuerySpec::default(), 11);
        let mut counts = vec![0usize; 30];
        for q in &queries {
            for v in q.iter() {
                counts[v.index()] += 1;
            }
        }
        let shallow: usize = counts[..10].iter().sum();
        let deep: usize = counts[20..].iter().sum();
        assert!(
            deep > shallow * 2,
            "deep {deep} should dominate shallow {shallow}"
        );
    }

    #[test]
    fn uniform_covers_all_variables() {
        let bn = fixtures::chain(12, 2, 1);
        let queries = uniform_queries(bn.domain(), 600, QuerySpec::default(), 4);
        let mut seen = [false; 12];
        for q in &queries {
            for v in q.iter() {
                seen[v.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_variable_domain() {
        let bn = fixtures::chain(1, 3, 0);
        let queries = uniform_queries(bn.domain(), 10, QuerySpec::default(), 0);
        for q in queries {
            assert_eq!(q.len(), 1);
        }
    }
}
