//! Multi-tenant traffic: interleaved per-tenant query streams with
//! skewed arrival rates and independent drift schedules.
//!
//! A fleet endpoint serves many models at once; the traffic it drains is a
//! single arrival stream where each arrival belongs to one tenant. This
//! module models that stream: every tenant has a relative arrival
//! **weight** (Zipf-skewed fleets are the interesting case — a few hot
//! tenants, a long cold tail) and its own [`DriftSchedule`] evolving over
//! *its own* arrivals, so one tenant's regime change never moves another
//! tenant's distribution.

use crate::drift::{DriftSchedule, DriftStream};
use peanut_pgm::Scope;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One tenant's traffic model inside a fleet stream.
#[derive(Clone, Debug)]
pub struct TenantTraffic {
    /// Relative arrival rate (any positive number; normalized fleet-wide).
    pub weight: f64,
    /// Primary query pool (the tenant's training distribution).
    pub primary: Vec<Scope>,
    /// Secondary pool the tenant drifts toward.
    pub secondary: Vec<Scope>,
    /// How the tenant's λ evolves over **its own** arrival count.
    pub schedule: DriftSchedule,
}

impl TenantTraffic {
    /// A tenant that never drifts: all arrivals from one pool.
    pub fn steady(weight: f64, pool: Vec<Scope>) -> Self {
        TenantTraffic {
            weight,
            secondary: pool.clone(),
            primary: pool,
            schedule: DriftSchedule::Constant(1.0),
        }
    }

    /// A tenant whose traffic drifts from `primary` to `secondary` on its
    /// own schedule.
    pub fn drifting(
        weight: f64,
        primary: Vec<Scope>,
        secondary: Vec<Scope>,
        schedule: DriftSchedule,
    ) -> Self {
        TenantTraffic {
            weight,
            primary,
            secondary,
            schedule,
        }
    }
}

/// Zipf-like arrival weights for `n` tenants: tenant `i` gets weight
/// `1 / (i + 1)^exponent`, normalized to sum to one. `exponent = 0` is a
/// uniform fleet; the paper-style skew of real fleets sits around 1.
pub fn zipf_weights(n: usize, exponent: f64) -> Vec<f64> {
    assert!(n > 0, "a fleet needs at least one tenant");
    assert!(exponent >= 0.0, "exponent must be non-negative");
    let raw: Vec<f64> = (0..n)
        .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// A lazily drawn fleet arrival stream: each arrival picks a tenant with
/// probability proportional to its weight, then draws the next query of
/// that tenant's own [`DriftStream`] (so per-tenant drift progresses with
/// the tenant's arrivals, independently of fleet interleaving).
/// Deterministic in `seed`; unbounded, so callers `take(n)`.
pub struct TenantStream<'a> {
    streams: Vec<DriftStream<'a>>,
    cumulative: Vec<f64>,
    rng: StdRng,
}

impl<'a> TenantStream<'a> {
    /// Builds a stream over a fleet. Panics when the fleet is empty, a
    /// weight is non-positive, or a tenant's pools/schedule are invalid
    /// (see [`DriftStream::new`]).
    pub fn new(tenants: &'a [TenantTraffic], seed: u64) -> Self {
        assert!(!tenants.is_empty(), "a fleet needs at least one tenant");
        let mut cumulative = Vec::with_capacity(tenants.len());
        let mut acc = 0.0;
        for t in tenants {
            assert!(t.weight > 0.0, "tenant weights must be positive");
            acc += t.weight;
            cumulative.push(acc);
        }
        // independent per-tenant randomness: tenant i's query draws are a
        // function of (seed, i), not of how the fleet interleaves
        let streams = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                DriftStream::new(
                    &t.primary,
                    &t.secondary,
                    t.schedule.clone(),
                    seed ^ splitmix(i as u64),
                )
            })
            .collect();
        TenantStream {
            streams,
            cumulative,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Arrivals drawn so far for tenant `i` (its drift position).
    pub fn position(&self, i: usize) -> usize {
        self.streams[i].position()
    }
}

/// A tiny splitmix-style scramble so per-tenant seeds differ in more than
/// one bit.
fn splitmix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Iterator for TenantStream<'_> {
    type Item = (usize, Scope);

    fn next(&mut self) -> Option<(usize, Scope)> {
        let total = *self.cumulative.last().expect("non-empty fleet");
        let x = self.rng.gen_range(0.0..total);
        let i = self.cumulative.partition_point(|&c| c <= x);
        let i = i.min(self.streams.len() - 1);
        let q = self.streams[i].next().expect("drift streams are unbounded");
        Some((i, q))
    }
}

/// Draws the first `n` arrivals of a [`TenantStream`] as
/// `(tenant index, query)` pairs.
pub fn tenant_queries(tenants: &[TenantTraffic], n: usize, seed: u64) -> Vec<(usize, Scope)> {
    TenantStream::new(tenants, seed).take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(lo: u32, hi: u32) -> Vec<Scope> {
        (lo..hi).map(|i| Scope::from_indices(&[i])).collect()
    }

    #[test]
    fn zipf_weights_normalize_and_skew() {
        let w = zipf_weights(4, 1.0);
        assert_eq!(w.len(), 4);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1] && w[1] > w[2] && w[2] > w[3]);
        let flat = zipf_weights(3, 0.0);
        assert!((flat[0] - flat[2]).abs() < 1e-12, "exponent 0 is uniform");
    }

    #[test]
    fn arrivals_follow_the_weights() {
        let tenants = vec![
            TenantTraffic::steady(3.0, pool(0, 4)),
            TenantTraffic::steady(1.0, pool(10, 14)),
        ];
        let arrivals = tenant_queries(&tenants, 4000, 11);
        let hot = arrivals.iter().filter(|(t, _)| *t == 0).count();
        assert!(
            (2700..3300).contains(&hot),
            "hot tenant should get ~75% of arrivals, got {hot}"
        );
        // queries route to the owning tenant's pool
        for (t, q) in &arrivals {
            let v = q.vars()[0].0;
            if *t == 0 {
                assert!(v < 4);
            } else {
                assert!((10..14).contains(&v));
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let tenants = vec![
            TenantTraffic::steady(1.0, pool(0, 3)),
            TenantTraffic::steady(2.0, pool(5, 9)),
        ];
        assert_eq!(
            tenant_queries(&tenants, 200, 7),
            tenant_queries(&tenants, 200, 7)
        );
        assert_ne!(
            tenant_queries(&tenants, 200, 7),
            tenant_queries(&tenants, 200, 8)
        );
    }

    #[test]
    fn per_tenant_drift_is_independent_of_interleaving() {
        // tenant 0 steps to its secondary pool after 50 of *its own*
        // arrivals, regardless of how many tenant-1 arrivals interleave
        let tenants = vec![
            TenantTraffic::drifting(
                1.0,
                pool(0, 3),
                pool(20, 23),
                DriftSchedule::Step {
                    before: 1.0,
                    after: 0.0,
                    at: 50,
                },
            ),
            TenantTraffic::steady(4.0, pool(10, 13)),
        ];
        let arrivals = tenant_queries(&tenants, 2000, 3);
        let t0: Vec<&Scope> = arrivals
            .iter()
            .filter(|(t, _)| *t == 0)
            .map(|(_, q)| q)
            .collect();
        assert!(t0.len() > 100, "tenant 0 must appear: {}", t0.len());
        assert!(t0[..50].iter().all(|q| q.vars()[0].0 < 3));
        assert!(t0[50..].iter().all(|q| q.vars()[0].0 >= 20));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        let tenants = vec![TenantTraffic::steady(0.0, pool(0, 2))];
        TenantStream::new(&tenants, 0);
    }
}
