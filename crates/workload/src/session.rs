//! Evidence-session traffic: streams of *correlated* queries served under
//! one pinned evidence assignment.
//!
//! Real evidence-conditioned traffic is not i.i.d. per query: a client
//! observes some variables once (a patient's symptoms, a configuration),
//! then asks a stream of marginals under that fixed context — the pattern
//! Darwiche's *Dynamic Jointrees* exploits and the serving layer's
//! evidence sessions amortize. A [`SessionStream`] generates exactly that
//! shape: session `i` pins an evidence assignment drawn from a primary
//! context pool with probability `λ(i)` (secondary otherwise — the same
//! [`DriftSchedule`] machinery the marginal drift streams use, so evidence
//! regimes can drift over a served stream), then draws a fixed number of
//! target scopes from a query pool, skipping targets that overlap the
//! pinned evidence. Deterministic in the seed, like every generator here.

use crate::drift::DriftSchedule;
use peanut_core::ServeRequest;
use peanut_pgm::{Domain, Scope, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated session: a pinned evidence assignment plus the target
/// scopes queried under it, in arrival order.
#[derive(Clone, Debug, PartialEq)]
pub struct Session {
    /// The evidence assignment every query of the session is conditioned
    /// on (sorted by variable).
    pub evidence: Vec<(Var, u32)>,
    /// Target scopes, in arrival order; each is disjoint from the
    /// evidence scope.
    pub targets: Vec<Scope>,
}

impl Session {
    /// The session flattened to per-query [`ServeRequest`]s — what the
    /// *shared-engine* baseline serves (re-attaching the evidence per
    /// query), and what the session path amortizes.
    pub fn requests(&self) -> Vec<ServeRequest> {
        self.targets
            .iter()
            .map(|t| ServeRequest::new(t.clone(), self.evidence.clone()))
            .collect()
    }
}

/// Draws `n` pinned evidence assignments of `n_vars` distinct variables
/// each (values uniform over the variable's domain) — the context pools a
/// [`SessionStream`] mixes between. Deterministic in `seed`.
pub fn evidence_contexts(
    domain: &Domain,
    n: usize,
    n_vars: usize,
    seed: u64,
) -> Vec<Vec<(Var, u32)>> {
    assert!(n_vars >= 1, "a context pins at least one variable");
    assert!(
        n_vars <= domain.len(),
        "cannot pin more variables than the domain has"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let vars: Vec<Var> = domain.all_vars().collect();
    (0..n)
        .map(|_| {
            // partial Fisher–Yates: the first n_vars entries are a
            // uniform sample of distinct variables
            let mut pool = vars.clone();
            for i in 0..n_vars {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            let mut ev: Vec<(Var, u32)> = pool[..n_vars]
                .iter()
                .map(|&v| (v, rng.gen_range(0..domain.card(v))))
                .collect();
            ev.sort_unstable();
            ev
        })
        .collect()
}

/// A lazily drawn stream of evidence sessions: session `i` pins a context
/// from the `primary` pool with probability `schedule.lambda_at(i)` and
/// from `secondary` otherwise, then draws `length` targets from the target
/// pool with replacement (skipping targets that overlap the pinned
/// evidence). Unbounded; callers `take(n)`.
pub struct SessionStream<'a> {
    primary: &'a [Vec<(Var, u32)>],
    secondary: &'a [Vec<(Var, u32)>],
    targets: &'a [Scope],
    length: usize,
    schedule: DriftSchedule,
    rng: StdRng,
    next_session: usize,
}

impl<'a> SessionStream<'a> {
    /// Builds a stream. Both context pools and the target pool must be
    /// non-empty, the session length positive, and the schedule valid;
    /// every context must leave at least one non-overlapping target in the
    /// pool (checked up front so a degenerate configuration fails at
    /// construction, not mid-stream).
    pub fn new(
        primary: &'a [Vec<(Var, u32)>],
        secondary: &'a [Vec<(Var, u32)>],
        targets: &'a [Scope],
        length: usize,
        schedule: DriftSchedule,
        seed: u64,
    ) -> Self {
        assert!(
            !primary.is_empty() && !secondary.is_empty(),
            "both context pools must be non-empty"
        );
        assert!(!targets.is_empty(), "target pool must be non-empty");
        assert!(length > 0, "sessions must contain at least one query");
        schedule.validate();
        for ev in primary.iter().chain(secondary) {
            let ev_scope = Scope::from_iter(ev.iter().map(|&(v, _)| v));
            assert!(
                targets.iter().any(|t| t.is_disjoint_from(&ev_scope)),
                "every evidence context needs a disjoint target in the pool"
            );
        }
        SessionStream {
            primary,
            secondary,
            targets,
            length,
            schedule,
            rng: StdRng::seed_from_u64(seed),
            next_session: 0,
        }
    }

    /// Index of the next session the stream will draw.
    pub fn position(&self) -> usize {
        self.next_session
    }

    /// λ the next session's context will be drawn with.
    pub fn current_lambda(&self) -> f64 {
        self.schedule.lambda_at(self.next_session)
    }
}

impl Iterator for SessionStream<'_> {
    type Item = Session;

    fn next(&mut self) -> Option<Session> {
        let lambda = self.schedule.lambda_at(self.next_session);
        self.next_session += 1;
        let pool = if self.rng.gen_range(0.0..1.0) < lambda {
            self.primary
        } else {
            self.secondary
        };
        let evidence = pool[self.rng.gen_range(0..pool.len())].clone();
        let ev_scope = Scope::from_iter(evidence.iter().map(|&(v, _)| v));
        // rejection-sample disjoint targets; construction guaranteed at
        // least one exists per context, so this terminates
        let mut targets = Vec::with_capacity(self.length);
        while targets.len() < self.length {
            let t = &self.targets[self.rng.gen_range(0..self.targets.len())];
            if t.is_disjoint_from(&ev_scope) {
                targets.push(t.clone());
            }
        }
        Some(Session { evidence, targets })
    }
}

/// Draws the first `n` sessions of a [`SessionStream`].
pub fn session_queries(
    primary: &[Vec<(Var, u32)>],
    secondary: &[Vec<(Var, u32)>],
    targets: &[Scope],
    length: usize,
    schedule: &DriftSchedule,
    n: usize,
    seed: u64,
) -> Vec<Session> {
    SessionStream::new(primary, secondary, targets, length, schedule.clone(), seed)
        .take(n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_pgm::fixtures;

    fn target_pool() -> Vec<Scope> {
        (0..6u32)
            .map(|i| Scope::from_indices(&[i, i + 1]))
            .collect()
    }

    #[test]
    fn contexts_are_deterministic_distinct_vars_in_range() {
        let bn = fixtures::chain(12, 3, 5);
        let d = bn.domain();
        let a = evidence_contexts(d, 8, 3, 7);
        let b = evidence_contexts(d, 8, 3, 7);
        assert_eq!(a, b);
        for ctx in &a {
            assert_eq!(ctx.len(), 3);
            let scope = Scope::from_iter(ctx.iter().map(|&(v, _)| v));
            assert_eq!(scope.len(), 3, "pinned variables must be distinct");
            for &(v, val) in ctx {
                assert!(val < d.card(v));
            }
            assert!(ctx.windows(2).all(|w| w[0] <= w[1]), "sorted by variable");
        }
    }

    #[test]
    fn sessions_pin_one_context_and_disjoint_targets() {
        let bn = fixtures::chain(12, 3, 5);
        let d = bn.domain();
        let primary = evidence_contexts(d, 4, 2, 1);
        let secondary = evidence_contexts(d, 4, 2, 2);
        let pool = target_pool();
        let sessions = session_queries(
            &primary,
            &secondary,
            &pool,
            5,
            &DriftSchedule::Constant(1.0),
            10,
            42,
        );
        assert_eq!(sessions.len(), 10);
        for s in &sessions {
            assert!(primary.contains(&s.evidence), "λ=1 draws primary contexts");
            assert_eq!(s.targets.len(), 5);
            let ev_scope = Scope::from_iter(s.evidence.iter().map(|&(v, _)| v));
            for t in &s.targets {
                assert!(t.is_disjoint_from(&ev_scope));
            }
            let reqs = s.requests();
            assert_eq!(reqs.len(), 5);
            assert!(reqs.iter().all(|r| r.evidence == s.evidence));
        }
    }

    #[test]
    fn stream_is_deterministic_and_drift_schedulable() {
        let bn = fixtures::chain(12, 3, 5);
        let d = bn.domain();
        let primary = evidence_contexts(d, 3, 2, 1);
        let secondary = evidence_contexts(d, 3, 2, 99);
        let pool = target_pool();
        let schedule = DriftSchedule::Step {
            before: 1.0,
            after: 0.0,
            at: 20,
        };
        let a = session_queries(&primary, &secondary, &pool, 3, &schedule, 40, 5);
        let b = session_queries(&primary, &secondary, &pool, 3, &schedule, 40, 5);
        assert_eq!(a, b);
        assert!(a[..20].iter().all(|s| primary.contains(&s.evidence)));
        assert!(a[20..].iter().all(|s| secondary.contains(&s.evidence)));
        let mut stream = SessionStream::new(&primary, &secondary, &pool, 3, schedule.clone(), 5);
        assert_eq!(stream.position(), 0);
        assert!((stream.current_lambda() - 1.0).abs() < 1e-12);
        let first: Vec<Session> = stream.by_ref().take(15).collect();
        assert_eq!(stream.position(), 15);
        let rest: Vec<Session> = stream.take(25).collect();
        assert_eq!(a[..15], first[..]);
        assert_eq!(a[15..], rest[..]);
    }

    #[test]
    #[should_panic(expected = "disjoint target")]
    fn overlapping_pools_fail_at_construction() {
        let bn = fixtures::chain(3, 2, 5);
        let d = bn.domain();
        let ctx = evidence_contexts(d, 1, 3, 0); // pins the whole domain
        let pool = vec![Scope::from_indices(&[0])];
        SessionStream::new(&ctx, &ctx, &pool, 2, DriftSchedule::Constant(0.5), 0);
    }
}
