#![forbid(unsafe_code)]
//! # peanut-workload
//!
//! Query-workload generation following the paper's §5.1:
//!
//! * **skewed** — variables sampled with probability proportional to their
//!   distance from the junction-tree pivot (deep variables queried more,
//!   producing long Steiner trees);
//! * **uniform** — variables sampled uniformly at random;
//! * **drift** — the λ-mixtures used by the robustness experiments
//!   (Figures 8–9), plus streaming λ-schedules (piecewise/linear drift over
//!   a served query stream) for the re-materialization lifecycle;
//! * **tenants** — multi-tenant fleet traffic: interleaved per-tenant
//!   streams with Zipf-skewed arrival rates and independent per-tenant
//!   drift schedules, the input of the sharded serving layer;
//! * **sessions** — evidence-session traffic: streams of correlated queries
//!   served under one pinned evidence assignment, with drift-schedulable
//!   context mixtures, the input of the stateful evidence-session path.
//!
//! Marginal queries are plain [`peanut_pgm::Scope`]s; evidence-conditioned
//! traffic comes out as typed `peanut_core::ServeRequest`s. Consumers
//! aggregate them into a `peanut_core::Workload` with empirical frequencies.

pub mod drift;
pub mod evidence;
pub mod gen;
pub mod session;
pub mod tenants;

pub use drift::{drifting_queries, mix, DriftSchedule, DriftStream};
pub use evidence::with_evidence;
pub use gen::{skewed_queries, uniform_queries, QuerySpec};
pub use session::{evidence_contexts, session_queries, Session, SessionStream};
pub use tenants::{tenant_queries, zipf_weights, TenantStream, TenantTraffic};
