//! VE-n: workload-aware materialization of `n` marginal tables for the
//! variable-elimination engine.
//!
//! Candidates are the distinct query scopes of the workload (the marginals
//! the ICDE'21 method caches are exactly the tables that let covered queries
//! skip elimination). Selection is greedy by marginal expected savings,
//! re-evaluated after each pick — a documented substitution for \[4\]'s DP
//! (see `DESIGN.md` §4).

use crate::elimination::{ve_answer, ve_cost};
use peanut_pgm::{table_size, BayesianNetwork, PgmError, Potential, Scope, Size};

/// A materialized marginal for VE-n.
#[derive(Clone, Debug)]
pub struct VeMaterialization {
    /// Scope `A` of the cached marginal `P(A)`.
    pub scope: Scope,
    /// Table size `μ(A)`.
    pub size: Size,
    /// Dense table (numeric mode only).
    pub potential: Option<Potential>,
}

/// The VE-n method: `n` cached marginals plus the plain VE fallback.
#[derive(Clone, Debug)]
pub struct VeN {
    materialized: Vec<VeMaterialization>,
}

impl VeN {
    /// Chooses `n` marginals for the given weighted workload
    /// (`(query, weight)` pairs, weights need not be normalized).
    pub fn select(bn: &BayesianNetwork, workload: &[(Scope, f64)], n: usize) -> Self {
        let domain = bn.domain();
        // distinct candidate scopes
        let mut candidates: Vec<Scope> = Vec::new();
        for (q, _) in workload {
            if !candidates.contains(q) {
                candidates.push(q.clone());
            }
        }
        // baseline cost per distinct query
        let mut current: Vec<(Scope, f64, Size)> = Vec::new();
        for (q, w) in workload {
            match current.iter_mut().find(|(s, _, _)| s == q) {
                Some((_, weight, _)) => *weight += w,
                None => current.push((q.clone(), *w, ve_cost(bn, q).ops)),
            }
        }
        let mut chosen: Vec<VeMaterialization> = Vec::new();
        for _ in 0..n {
            let mut best: Option<(f64, usize)> = None;
            for (ci, cand) in candidates.iter().enumerate() {
                if chosen.iter().any(|m| &m.scope == cand) {
                    continue;
                }
                let size = table_size(cand, domain);
                let gain: f64 = current
                    .iter()
                    .filter(|(q, _, _)| q.is_subset_of(cand))
                    .map(|(_, w, cost)| w * (cost.saturating_sub(size)) as f64)
                    .sum();
                if gain > 0.0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, ci));
                }
            }
            let Some((_, ci)) = best else { break };
            let scope = candidates[ci].clone();
            let size = table_size(&scope, domain);
            // update residual costs of covered queries
            for (q, _, cost) in &mut current {
                if q.is_subset_of(&scope) {
                    *cost = (*cost).min(size);
                }
            }
            chosen.push(VeMaterialization {
                scope,
                size,
                potential: None,
            });
        }
        VeN {
            materialized: chosen,
        }
    }

    /// Fills in the dense tables for the chosen marginals.
    pub fn materialize_numeric(&mut self, bn: &BayesianNetwork) -> Result<Size, PgmError> {
        let mut ops = 0u64;
        for m in &mut self.materialized {
            let (pot, c) = ve_answer(bn, &m.scope)?;
            m.potential = Some(pot);
            ops = ops.saturating_add(c);
        }
        Ok(ops)
    }

    /// The chosen marginals.
    pub fn materialized(&self) -> &[VeMaterialization] {
        &self.materialized
    }

    /// Total cached table entries (the method's disk space).
    pub fn total_size(&self) -> Size {
        self.materialized
            .iter()
            .fold(0u64, |a, m| a.saturating_add(m.size))
    }

    /// Operation count of answering `query` with VE-n: marginalization from
    /// the smallest covering cached table, or a full elimination.
    pub fn cost(&self, bn: &BayesianNetwork, query: &Scope) -> Size {
        match self.best_cover(query) {
            Some(m) => m.size,
            None => ve_cost(bn, query).ops,
        }
    }

    /// Numeric answer plus cost.
    pub fn answer(
        &self,
        bn: &BayesianNetwork,
        query: &Scope,
    ) -> Result<(Potential, Size), PgmError> {
        match self.best_cover(query) {
            Some(m) => {
                let pot = m
                    .potential
                    .as_ref()
                    .ok_or_else(|| PgmError::UnknownName("VE-n tables not materialized".into()))?;
                Ok((pot.marginalize(query)?, m.size))
            }
            None => ve_answer(bn, query),
        }
    }

    fn best_cover(&self, query: &Scope) -> Option<&VeMaterialization> {
        self.materialized
            .iter()
            .filter(|m| query.is_subset_of(&m.scope))
            .min_by_key(|m| m.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_pgm::{fixtures, joint};

    fn workload(bn: &BayesianNetwork) -> Vec<(Scope, f64)> {
        let n = bn.n_vars() as u32;
        (0..n - 1)
            .map(|a| (Scope::from_indices(&[a, a + 1]), 1.0))
            .collect()
    }

    #[test]
    fn selects_at_most_n() {
        let bn = fixtures::figure1();
        let w = workload(&bn);
        for n in [0usize, 1, 3, 5, 100] {
            let ven = VeN::select(&bn, &w, n);
            assert!(ven.materialized().len() <= n);
        }
    }

    #[test]
    fn covered_queries_get_cheap() {
        let bn = fixtures::figure1();
        let w = workload(&bn);
        let ven = VeN::select(&bn, &w, 5);
        assert!(!ven.materialized().is_empty());
        let mut improved = 0;
        for (q, _) in &w {
            let with = ven.cost(&bn, q);
            let without = ve_cost(&bn, q).ops;
            assert!(with <= without);
            if with < without {
                improved += 1;
            }
        }
        assert!(improved >= 5, "only {improved} queries improved");
    }

    #[test]
    fn answers_exact_with_and_without_cover() {
        let bn = fixtures::asia();
        let w = workload(&bn);
        let mut ven = VeN::select(&bn, &w, 3);
        ven.materialize_numeric(&bn).unwrap();
        // covered query
        let q = ven.materialized()[0].scope.clone();
        let (got, _) = ven.answer(&bn, &q).unwrap();
        let want = joint::marginal(&bn, &q).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-9);
        // uncovered query falls back to plain VE
        let q2 = Scope::from_indices(&[0, 4, 7]);
        let (got2, _) = ven.answer(&bn, &q2).unwrap();
        let want2 = joint::marginal(&bn, &q2).unwrap();
        assert!(got2.max_abs_diff(&want2).unwrap() < 1e-9);
    }

    #[test]
    fn zero_n_is_plain_ve() {
        let bn = fixtures::sprinkler();
        let w = workload(&bn);
        let ven = VeN::select(&bn, &w, 0);
        assert!(ven.materialized().is_empty());
        let q = Scope::from_indices(&[0, 3]);
        assert_eq!(ven.cost(&bn, &q), ve_cost(&bn, &q).ops);
    }

    #[test]
    fn greedy_prefers_heavier_queries() {
        let bn = fixtures::figure1();
        // one very frequent query, several rare ones
        let heavy = Scope::from_indices(&[0, 9]);
        let mut w = vec![(heavy.clone(), 100.0)];
        w.extend((1..6u32).map(|a| (Scope::from_indices(&[a, a + 2]), 0.01)));
        let ven = VeN::select(&bn, &w, 1);
        assert_eq!(ven.materialized().len(), 1);
        assert!(heavy.is_subset_of(&ven.materialized()[0].scope));
    }
}
