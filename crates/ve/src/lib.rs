#![forbid(unsafe_code)]
//! # peanut-ve
//!
//! Variable elimination and the **VE-n** baseline: workload-aware
//! materialization for the variable-elimination inference method (Aslay et
//! al., ICDE 2021 — reference \[4\] of the paper).
//!
//! The engine ([`elimination`]) answers joint-probability queries by
//! eliminating non-query variables in min-fill order, with the same
//! operation-count model as the junction-tree engine so that Figure 7's
//! cross-method comparison is apples-to-apples.
//!
//! The baseline ([`materialize`]) selects `n` marginal tables to cache,
//! greedily maximizing expected workload savings. This is a documented
//! simplification of \[4\]'s dynamic program (see `DESIGN.md` §4): the
//! candidate space (query-covering marginals) and the cost model are the
//! same; only the selection rule is greedy.

pub mod elimination;
pub mod materialize;

pub use elimination::{ve_answer, ve_cost, EliminationRun};
pub use materialize::{VeMaterialization, VeN};
