//! The variable-elimination engine, in symbolic (size-only) and numeric
//! modes.
//!
//! Eliminating a variable `x` gathers all factors mentioning `x`,
//! materializes their product table over the scope union `U`, and sums `x`
//! out. Following the workspace-wide cost model, this charges
//! `|table(U)| · k + |table(U)|` operations for `k` gathered factors; the
//! final combination onto the query scope is charged the same way.

use peanut_pgm::{table_size, BayesianNetwork, Domain, PgmError, Potential, Scope, Size, Var};

/// Result of planning a VE run symbolically.
#[derive(Clone, Debug)]
pub struct EliminationRun {
    /// Elimination order used (non-query variables only).
    pub order: Vec<Var>,
    /// Total operation count.
    pub ops: Size,
    /// Size of the largest intermediate table.
    pub peak_table: Size,
}

fn ops_of(scope: &Scope, k: usize, domain: &Domain) -> Size {
    let t = table_size(scope, domain);
    t.saturating_mul(k as u64).saturating_add(t)
}

/// Picks the next variable to eliminate: min-fill over the interaction
/// graph induced by the current factor scopes (ties: smaller product table,
/// then variable index).
fn next_to_eliminate(scopes: &[Scope], candidates: &[Var], domain: &Domain) -> Var {
    let mut best: Option<(usize, Size, Var)> = None;
    for &x in candidates {
        // neighborhood of x = union of scopes containing x, minus x
        let mut nbrs = Scope::empty();
        let mut k = 0usize;
        for s in scopes.iter().filter(|s| s.contains(x)) {
            nbrs = nbrs.union(s);
            k += 1;
        }
        if k == 0 {
            return x; // free elimination
        }
        let table = table_size(&nbrs, domain);
        // fill proxy: resulting scope size (cheap and monotone with fill)
        let fill = nbrs.len();
        let key = (fill, table, x);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best.expect("non-empty candidates").2
}

/// Symbolic VE: the operation count of answering `P(query)` without
/// materialized marginals.
pub fn ve_cost(bn: &BayesianNetwork, query: &Scope) -> EliminationRun {
    let domain = bn.domain();
    let mut scopes: Vec<Scope> = bn.cpts().map(|c| c.scope().clone()).collect();
    let mut remaining: Vec<Var> = domain.all_vars().filter(|v| !query.contains(*v)).collect();
    let mut ops: Size = 0;
    let mut peak: Size = 0;
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let x = next_to_eliminate(&scopes, &remaining, domain);
        remaining.retain(|&v| v != x);
        order.push(x);
        let (with_x, rest): (Vec<Scope>, Vec<Scope>) =
            scopes.into_iter().partition(|s| s.contains(x));
        scopes = rest;
        if with_x.is_empty() {
            continue;
        }
        let mut u = Scope::empty();
        for s in &with_x {
            u = u.union(s);
        }
        ops = ops.saturating_add(ops_of(&u, with_x.len(), domain));
        peak = peak.max(table_size(&u, domain));
        u.remove(x);
        scopes.push(u);
    }
    // final combination onto the query
    if !scopes.is_empty() {
        let mut u = Scope::empty();
        for s in &scopes {
            u = u.union(s);
        }
        ops = ops.saturating_add(ops_of(&u, scopes.len(), domain));
        peak = peak.max(table_size(&u, domain));
    }
    EliminationRun {
        order,
        ops,
        peak_table: peak,
    }
}

/// Numeric VE: the joint `P(query)` plus the identical operation count.
pub fn ve_answer(bn: &BayesianNetwork, query: &Scope) -> Result<(Potential, Size), PgmError> {
    let domain = bn.domain();
    let mut scratch = peanut_pgm::Scratch::new();
    let mut factors: Vec<Potential> = bn.cpts().cloned().collect();
    let mut remaining: Vec<Var> = domain.all_vars().filter(|v| !query.contains(*v)).collect();
    let mut ops: Size = 0;
    while !remaining.is_empty() {
        let scopes: Vec<Scope> = factors.iter().map(|f| f.scope().clone()).collect();
        let x = next_to_eliminate(&scopes, &remaining, domain);
        remaining.retain(|&v| v != x);
        let (with_x, rest): (Vec<Potential>, Vec<Potential>) =
            factors.into_iter().partition(|f| f.scope().contains(x));
        factors = rest;
        if with_x.is_empty() {
            continue;
        }
        let refs: Vec<&Potential> = with_x.iter().collect();
        let product = Potential::product_many_in(&refs, &mut scratch)?;
        ops = ops.saturating_add(ops_of(product.scope(), refs.len(), domain));
        factors.push(
            product.marginalize_in(&product.scope().minus(&Scope::singleton(x)), &mut scratch)?,
        );
        scratch.recycle(product);
        for spent in with_x {
            scratch.recycle(spent);
        }
    }
    let refs: Vec<&Potential> = factors.iter().collect();
    let product = Potential::product_many_in(&refs, &mut scratch)?;
    ops = ops.saturating_add(ops_of(product.scope(), refs.len(), domain));
    Ok((product.marginalize_in(query, &mut scratch)?, ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_pgm::{fixtures, joint};

    #[test]
    fn ve_matches_brute_force() {
        for bn in [fixtures::sprinkler(), fixtures::asia(), fixtures::figure1()] {
            let n = bn.n_vars() as u32;
            for a in 0..n {
                for b in (a + 1)..n.min(a + 4) {
                    let q = Scope::from_indices(&[a, b]);
                    let (got, ops) = ve_answer(&bn, &q).unwrap();
                    let want = joint::marginal(&bn, &q).unwrap();
                    assert!(got.max_abs_diff(&want).unwrap() < 1e-9);
                    assert!(ops > 0);
                }
            }
        }
    }

    #[test]
    fn symbolic_cost_equals_numeric_ops() {
        let bn = fixtures::figure1();
        for pair in [[0u32, 9], [2, 5], [1, 7], [3, 8]] {
            let q = Scope::from_indices(&pair);
            let run = ve_cost(&bn, &q);
            let (_, ops) = ve_answer(&bn, &q).unwrap();
            assert_eq!(run.ops, ops, "query {pair:?}");
        }
    }

    #[test]
    fn elimination_order_covers_non_query_vars() {
        let bn = fixtures::asia();
        let q = Scope::from_indices(&[0, 7]);
        let run = ve_cost(&bn, &q);
        assert_eq!(run.order.len(), bn.n_vars() - 2);
        assert!(run.order.iter().all(|v| !q.contains(*v)));
        assert!(run.peak_table >= 2);
    }

    #[test]
    fn full_joint_query_eliminates_nothing() {
        let bn = fixtures::sprinkler();
        let q = bn.domain().full_scope();
        let run = ve_cost(&bn, &q);
        assert!(run.order.is_empty());
        let (got, _) = ve_answer(&bn, &q).unwrap();
        let want = joint::joint_table(&bn).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-9);
    }
}
