//! Property tests for the variable-elimination engine and VE-n.

use peanut_pgm::generate::{generate_network, DagConfig};
use peanut_pgm::{joint, Scope, Var};
use peanut_ve::{ve_answer, ve_cost, VeN};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// VE answers equal brute force on random small networks.
    #[test]
    fn ve_equals_brute_force(seed in 0u64..3_000, n in 4usize..10, qa in 0usize..50, qb in 0usize..50) {
        let cfg = DagConfig {
            n_nodes: n,
            n_edges: n - 1 + n / 3,
            max_in_degree: 3,
            window: 3,
            cardinalities: vec![2, 3],
        };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let q = Scope::from_iter([Var((qa % n) as u32), Var((qb % n) as u32)]);
        let (got, ops) = ve_answer(&bn, &q).unwrap();
        let want = joint::marginal(&bn, &q).unwrap();
        prop_assert!(got.max_abs_diff(&want).unwrap() < 1e-9);
        prop_assert_eq!(ops, ve_cost(&bn, &q).ops);
    }

    /// VE-n never makes a query more expensive and covered queries pay
    /// exactly the cached-table size.
    #[test]
    fn ven_cost_dominance(seed in 0u64..3_000, n in 5usize..10, picks in prop::collection::vec(0usize..50, 3..8)) {
        let cfg = DagConfig {
            n_nodes: n,
            n_edges: n - 1,
            max_in_degree: 2,
            window: 3,
            cardinalities: vec![2],
        };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let queries: Vec<(Scope, f64)> = picks
            .iter()
            .map(|&i| {
                let a = (i % n) as u32;
                let b = ((i / 2 + 1) % n) as u32;
                (Scope::from_iter([Var(a), Var(b)]), 1.0)
            })
            .collect();
        let ven = VeN::select(&bn, &queries, 3);
        for (q, _) in &queries {
            let with = ven.cost(&bn, q);
            let without = ve_cost(&bn, q).ops;
            prop_assert!(with <= without);
        }
        prop_assert!(ven.materialized().len() <= 3);
    }
}
