//! Per-dataset generator specifications and the paper's reference
//! statistics (Tables 1 and 2).

use peanut_pgm::generate::{generate_network, DagConfig};
use peanut_pgm::{BayesianNetwork, PgmError};

/// The statistics the paper reports for the original dataset.
#[derive(Clone, Copy, Debug)]
pub struct PaperStats {
    /// Table 1: nodes, edges, independent parameters, max in-degree.
    pub nodes: usize,
    /// Directed edges.
    pub edges: usize,
    /// Independent CPT parameters (approximate target).
    pub parameters: u64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Table 2: junction-tree cliques.
    pub cliques: usize,
    /// Junction-tree diameter.
    pub diameter: usize,
    /// Junction-tree treewidth.
    pub treewidth: usize,
    /// Whether the paper could calibrate the tree (TPC-H, Munin and Barley
    /// ran uncalibrated; our pipeline mirrors that with symbolic mode).
    pub calibratable: bool,
}

/// A reproducible synthetic dataset specification.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name as in the paper.
    pub name: &'static str,
    /// Generator configuration (locality-window DAG).
    pub config: DagConfig,
    /// Generator seed.
    pub seed: u64,
    /// The paper's reference statistics.
    pub paper: PaperStats,
}

impl DatasetSpec {
    /// Generates the network (deterministic).
    pub fn build(&self) -> Result<BayesianNetwork, PgmError> {
        generate_network(&self.config, self.seed)
    }
}

/// Builds the spec for a dataset by (case-insensitive) name.
pub fn dataset(name: &str) -> Option<DatasetSpec> {
    all_datasets()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

/// All eight datasets in the paper's presentation order.
pub fn all_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "Child",
            config: DagConfig {
                n_nodes: 20,
                n_edges: 25,
                max_in_degree: 2,
                window: 3,
                cardinalities: vec![2, 2, 3, 3, 4, 6],
            },
            seed: 0xC41D,
            paper: PaperStats {
                nodes: 20,
                edges: 25,
                parameters: 230,
                max_in_degree: 2,
                cliques: 17,
                diameter: 10,
                treewidth: 3,
                calibratable: true,
            },
        },
        DatasetSpec {
            name: "HeparII",
            config: DagConfig {
                n_nodes: 70,
                n_edges: 123,
                max_in_degree: 6,
                window: 14,
                cardinalities: vec![2, 2, 2, 3, 3, 4],
            },
            seed: 0x4E9A,
            paper: PaperStats {
                nodes: 70,
                edges: 123,
                parameters: 1_400,
                max_in_degree: 6,
                cliques: 58,
                diameter: 14,
                treewidth: 6,
                calibratable: true,
            },
        },
        DatasetSpec {
            name: "Andes",
            config: DagConfig {
                n_nodes: 223,
                n_edges: 338,
                max_in_degree: 6,
                window: 34,
                cardinalities: vec![2],
            },
            seed: 0xA11D,
            paper: PaperStats {
                nodes: 223,
                edges: 338,
                parameters: 1_100,
                max_in_degree: 6,
                cliques: 175,
                diameter: 25,
                treewidth: 17,
                calibratable: true,
            },
        },
        DatasetSpec {
            name: "Hailfinder",
            config: DagConfig {
                n_nodes: 56,
                n_edges: 66,
                max_in_degree: 4,
                window: 9,
                cardinalities: vec![2, 3, 4, 5, 8, 11],
            },
            seed: 0x4A11,
            paper: PaperStats {
                nodes: 56,
                edges: 66,
                parameters: 2_600,
                max_in_degree: 4,
                cliques: 43,
                diameter: 14,
                treewidth: 4,
                calibratable: true,
            },
        },
        DatasetSpec {
            name: "TPC-H",
            config: DagConfig {
                n_nodes: 38,
                n_edges: 39,
                max_in_degree: 2,
                window: 6,
                cardinalities: vec![3, 10, 40, 110],
            },
            seed: 0x79C4,
            paper: PaperStats {
                nodes: 38,
                edges: 39,
                parameters: 355_500,
                max_in_degree: 2,
                cliques: 33,
                diameter: 16,
                treewidth: 2,
                calibratable: false,
            },
        },
        DatasetSpec {
            name: "Munin",
            config: DagConfig {
                n_nodes: 186,
                n_edges: 273,
                max_in_degree: 3,
                window: 24,
                cardinalities: vec![2, 3, 3, 4, 5, 10],
            },
            seed: 0x8814,
            paper: PaperStats {
                nodes: 186,
                edges: 273,
                parameters: 15_600,
                max_in_degree: 3,
                cliques: 158,
                diameter: 23,
                treewidth: 11,
                calibratable: false,
            },
        },
        DatasetSpec {
            name: "PathFinder",
            config: DagConfig {
                n_nodes: 109,
                n_edges: 195,
                max_in_degree: 5,
                window: 12,
                cardinalities: vec![2, 3, 3, 4, 4, 14],
            },
            seed: 0xBA7F,
            paper: PaperStats {
                nodes: 109,
                edges: 195,
                parameters: 72_100,
                max_in_degree: 5,
                cliques: 91,
                diameter: 17,
                treewidth: 6,
                calibratable: true,
            },
        },
        DatasetSpec {
            name: "Barley",
            config: DagConfig {
                n_nodes: 48,
                n_edges: 84,
                max_in_degree: 4,
                window: 10,
                cardinalities: vec![2, 4, 7, 10, 48],
            },
            // Retuned for the vendored RNG stream (see vendor/rand): the
            // original seed landed ~900k parameters, 8x the paper's 114k.
            seed: 0xE,
            paper: PaperStats {
                nodes: 48,
                edges: 84,
                parameters: 114_000,
                max_in_degree: 4,
                cliques: 36,
                diameter: 14,
                treewidth: 7,
                calibratable: false,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_junction::build_junction_tree;

    #[test]
    fn all_build_and_match_structural_stats() {
        for spec in all_datasets() {
            let bn = spec
                .build()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(bn.n_vars(), spec.paper.nodes, "{} nodes", spec.name);
            assert_eq!(bn.n_edges(), spec.paper.edges, "{} edges", spec.name);
            assert!(
                bn.max_in_degree() <= spec.paper.max_in_degree,
                "{} in-degree",
                spec.name
            );
        }
    }

    #[test]
    fn parameter_counts_in_paper_ballpark() {
        // The synthetic networks must land within a factor of 4 of the
        // paper's parameter counts (exact matching is impossible without the
        // original CPT structures; the factor keeps the cost regime).
        for spec in all_datasets() {
            let bn = spec.build().unwrap();
            let params = bn.n_parameters();
            let target = spec.paper.parameters;
            let lo = target / 4;
            let hi = target.saturating_mul(4);
            assert!(
                params >= lo && params <= hi,
                "{}: {params} params, target {target}",
                spec.name
            );
        }
    }

    #[test]
    fn junction_trees_land_near_table2() {
        for spec in all_datasets() {
            let bn = spec.build().unwrap();
            let tree = build_junction_tree(&bn).unwrap();
            // clique count within ±50% of the paper's
            let cl = tree.n_cliques();
            assert!(
                cl * 2 >= spec.paper.cliques && cl <= spec.paper.cliques * 2,
                "{}: {cl} cliques vs paper {}",
                spec.name,
                spec.paper.cliques
            );
            // treewidth within a factor of ~2 (+2 slack for the small ones)
            let tw = tree.treewidth();
            assert!(
                tw <= spec.paper.treewidth * 2 + 2,
                "{}: treewidth {tw} vs paper {}",
                spec.name,
                spec.paper.treewidth
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = dataset("child").unwrap().build().unwrap();
        let b = dataset("Child").unwrap().build().unwrap();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
