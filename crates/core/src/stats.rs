//! Runtime workload statistics: the observation side of the
//! epoch-versioned materialization lifecycle.
//!
//! A [`WorkloadStats`] accumulator rides along with one materialization
//! epoch and records, for every answered query, the scope that was asked,
//! the operation count actually charged (with the epoch's shortcuts), the
//! operation count the plain junction tree would have charged, and whether
//! any shortcut fired. From those the lifecycle layer derives the
//! *observed benefit* of the epoch — directly comparable to the training
//! benefit the offline phase optimized (Def. 3.3) — and an empirical
//! [`Workload`] over the *served* distribution to retrain against when the
//! observed benefit decays (the λ-drift of §5.3, Figures 8–9).
//!
//! All counters are lock-free except the per-scope histogram, which takes a
//! short mutex per recorded query; the accumulator is shared across serving
//! workers behind an `Arc`.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;
use crate::workload::Workload;
use peanut_junction::cost::QueryCost;
use peanut_pgm::{Scope, Size};
use std::collections::HashMap;

// ordering: every atomic below is an independent monotone counter; readers
// only need window-scale accuracy (see `StatsSnapshot`), and the per-scope
// histogram is separately mutex-protected, so all accesses are Relaxed.

/// Concurrent accumulator of per-epoch serving observations.
#[derive(Debug, Default)]
pub struct WorkloadStats {
    queries: AtomicU64,
    shortcut_queries: AtomicU64,
    shortcuts_used: AtomicU64,
    observed_ops: AtomicU64,
    baseline_ops: AtomicU64,
    evidence_queries: AtomicU64,
    scopes: Mutex<HashMap<Scope, u64>>,
    evidence_scopes: Mutex<HashMap<Scope, u64>>,
}

/// A consistent-enough point-in-time copy of the counters (individual loads
/// are relaxed; the lifecycle layer only needs window-scale accuracy).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Queries recorded (arrival-weighted, not distinct).
    pub queries: u64,
    /// Recorded queries answered using at least one shortcut potential.
    pub shortcut_queries: u64,
    /// Total shortcut potentials exploited across recorded queries.
    pub shortcuts_used: u64,
    /// Total operation count charged with the epoch's materialization.
    pub observed_ops: u64,
    /// Total operation count the plain junction tree would have charged.
    pub baseline_ops: u64,
    /// Recorded queries that carried pinned evidence (per-query
    /// conditionals and evidence-session arrivals alike).
    pub evidence_queries: u64,
}

impl StatsSnapshot {
    /// Observed benefit of the epoch: the fraction of baseline operations
    /// the materialization saved on the recorded traffic
    /// (`1 − observed/baseline`). Zero when nothing was recorded.
    pub fn observed_savings(&self) -> f64 {
        if self.baseline_ops == 0 {
            return 0.0;
        }
        1.0 - self.observed_ops as f64 / self.baseline_ops as f64
    }

    /// Fraction of recorded queries that exploited at least one shortcut.
    pub fn shortcut_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.shortcut_queries as f64 / self.queries as f64
    }

    /// Fraction of recorded queries that carried pinned evidence — the
    /// signal the lifecycle layer uses to decide whether re-selection
    /// should price shortcuts under the restricted distributions actually
    /// served rather than the prior.
    pub fn evidence_fraction(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.evidence_queries as f64 / self.queries as f64
    }
}

impl WorkloadStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        WorkloadStats::default()
    }

    /// Records one answered query: its scope, the cost actually charged,
    /// and the plain-junction-tree cost of the same query.
    pub fn record(&self, scope: &Scope, cost: &QueryCost, baseline_ops: Size) {
        self.record_n(scope, cost, baseline_ops, 1);
    }

    /// [`record`](Self::record) with an arrival multiplicity: `n` identical
    /// arrivals that shared one computation (in-batch duplicates, answer
    /// cache hits) weigh the observed distribution like `n` separate
    /// arrivals would.
    pub fn record_n(&self, scope: &Scope, cost: &QueryCost, baseline_ops: Size, n: u64) {
        if n == 0 {
            return;
        }
        self.queries.fetch_add(n, Ordering::Relaxed);
        if cost.shortcuts_used > 0 {
            self.shortcut_queries.fetch_add(n, Ordering::Relaxed);
            self.shortcuts_used.fetch_add(
                (cost.shortcuts_used as u64).saturating_mul(n),
                Ordering::Relaxed,
            );
        }
        self.observed_ops
            .fetch_add(cost.ops.saturating_mul(n), Ordering::Relaxed);
        self.baseline_ops
            .fetch_add(baseline_ops.saturating_mul(n), Ordering::Relaxed);
        let mut scopes = self.scopes.lock();
        *scopes.entry(scope.clone()).or_insert(0) += n;
    }

    /// Records the evidence context of `n` arrivals: the assignment's
    /// variable scope enters the per-evidence-scope histogram and the
    /// evidence-query counter. Serving calls this once per
    /// evidence-conditioned arrival (sessions: once per query served under
    /// the pinned assignment), so the histogram weighs evidence contexts
    /// by the traffic actually served under them.
    pub fn record_evidence(&self, evidence_scope: &Scope, n: u64) {
        if n == 0 || evidence_scope.is_empty() {
            return;
        }
        self.evidence_queries.fetch_add(n, Ordering::Relaxed);
        let mut scopes = self.evidence_scopes.lock();
        *scopes.entry(evidence_scope.clone()).or_insert(0) += n;
    }

    /// Point-in-time copy of the aggregate counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            shortcut_queries: self.shortcut_queries.load(Ordering::Relaxed),
            shortcuts_used: self.shortcuts_used.load(Ordering::Relaxed),
            observed_ops: self.observed_ops.load(Ordering::Relaxed),
            baseline_ops: self.baseline_ops.load(Ordering::Relaxed),
            evidence_queries: self.evidence_queries.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct scopes recorded so far.
    pub fn distinct_scopes(&self) -> usize {
        self.scopes.lock().len()
    }

    /// The *observed* workload: the recorded scope frequencies as an
    /// empirical distribution (Def. 3.3), ready to retrain the offline
    /// selection against. Deterministic: entries come out sorted by scope.
    pub fn observed_workload(&self) -> Workload {
        let scopes = self.scopes.lock();
        Workload::from_weighted(scopes.iter().map(|(s, &c)| (s.clone(), c as f64)))
    }

    /// The raw `(scope, arrivals)` histogram, sorted by scope.
    pub fn scope_counts(&self) -> Vec<(Scope, u64)> {
        let scopes = self.scopes.lock();
        let mut v: Vec<(Scope, u64)> = scopes.iter().map(|(s, &c)| (s.clone(), c)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// The `(evidence scope, arrivals)` histogram, sorted by scope: which
    /// evidence contexts the epoch actually served, weighted by query
    /// volume. Empty when traffic was pure marginals.
    pub fn evidence_scope_counts(&self) -> Vec<(Scope, u64)> {
        let scopes = self.evidence_scopes.lock();
        let mut v: Vec<(Scope, u64)> = scopes.iter().map(|(s, &c)| (s.clone(), c)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(ops: u64, shortcuts: usize) -> QueryCost {
        QueryCost {
            ops,
            messages: 0,
            shortcuts_used: shortcuts,
        }
    }

    #[test]
    fn savings_and_hit_rate() {
        let stats = WorkloadStats::new();
        let a = Scope::from_indices(&[0, 1]);
        let b = Scope::from_indices(&[2]);
        stats.record(&a, &cost(25, 1), 100);
        stats.record(&b, &cost(50, 0), 50);
        let s = stats.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.observed_ops, 75);
        assert_eq!(s.baseline_ops, 150);
        assert!((s.observed_savings() - 0.5).abs() < 1e-12);
        assert!((s.shortcut_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multiplicity_weighs_the_distribution() {
        let stats = WorkloadStats::new();
        let a = Scope::from_indices(&[0]);
        let b = Scope::from_indices(&[1]);
        stats.record_n(&a, &cost(10, 0), 20, 3);
        stats.record(&b, &cost(10, 0), 20);
        let w = stats.observed_workload();
        assert_eq!(w.len(), 2);
        let wa = w.entries().iter().find(|e| e.query == a).unwrap().weight;
        assert!((wa - 0.75).abs() < 1e-12);
        assert_eq!(stats.snapshot().observed_ops, 40);
    }

    #[test]
    fn evidence_contexts_are_weighed_by_arrivals() {
        let stats = WorkloadStats::new();
        let t = Scope::from_indices(&[0]);
        let e1 = Scope::from_indices(&[5]);
        let e2 = Scope::from_indices(&[5, 6]);
        stats.record_n(&t, &cost(10, 0), 20, 4);
        stats.record_evidence(&e1, 3);
        stats.record_evidence(&e2, 1);
        stats.record_evidence(&e1, 0); // no-op
        stats.record_evidence(&Scope::from_indices(&[]), 5); // marginals don't count
        let s = stats.snapshot();
        assert_eq!(s.evidence_queries, 4);
        assert!((s.evidence_fraction() - 1.0).abs() < 1e-12);
        let counts = stats.evidence_scope_counts();
        assert_eq!(counts, vec![(e1, 3), (e2, 1)]);
    }

    #[test]
    fn empty_stats_are_benign() {
        let stats = WorkloadStats::new();
        let s = stats.snapshot();
        assert_eq!(s.observed_savings(), 0.0);
        assert_eq!(s.shortcut_hit_rate(), 0.0);
        assert!(stats.observed_workload().is_empty());
        assert_eq!(stats.distinct_scopes(), 0);
    }

    #[test]
    fn concurrent_recording_totals_add_up() {
        let stats = WorkloadStats::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let stats = &stats;
                s.spawn(move || {
                    let scope = Scope::from_indices(&[t]);
                    for _ in 0..100 {
                        stats.record(&scope, &cost(7, 1), 10);
                    }
                });
            }
        });
        let s = stats.snapshot();
        assert_eq!(s.queries, 400);
        assert_eq!(s.observed_ops, 2800);
        assert_eq!(stats.distinct_scopes(), 4);
    }
}
