//! Synchronization facade: the one place the PEANUT crates get their
//! concurrency primitives from.
//!
//! Everything concurrent in `peanut-core` and `peanut-serving` — the worker
//! pool, the epoch-versioned engine state, the stats accumulators, the
//! scoped executors — imports `Mutex`, `Condvar`, `RwLock`, atomics and
//! thread spawn/join from here instead of `std::sync` / `std::thread`.
//! Normally these are thin std-backed wrappers (zero-cost: the only change
//! from raw `std` is the non-poisoning API below). Under the `model-check`
//! feature they swap to the instrumented shims of the vendored
//! `interleave` model checker (`vendor/interleave`, only compiled into
//! the dependency graph when the feature is on), which turn every lock,
//! wait, notify,
//! atomic access and spawn into a scheduling decision point so the
//! `peanut-check` crate can exhaustively enumerate interleavings of the
//! pool and epoch-swap protocols. The feature is enabled only by
//! `peanut-check`; tier-1 builds never compile the instrumentation.
//!
//! ## Non-poisoning API
//!
//! `Mutex::lock` returns the guard directly, `Condvar::wait` takes and
//! returns a guard, `RwLock::read`/`write` return guards — no `LockResult`.
//! The serving protocols confine panics at the task boundary
//! (`catch_unwind` in the pool) and never rely on lock poisoning to detect
//! them; a poisoned std lock is recovered via `PoisonError::into_inner`.
//! This keeps `unwrap`/`expect` off the serving hot paths, which the
//! `cargo xtask lint` pass forbids.
//!
//! `Arc`, `Weak` and `OnceLock` are re-exported from `std` unconditionally:
//! they are not blocking primitives, and the model checker does not need to
//! instrument them (an `OnceLock::set` race is still *observed* by the
//! checker through the surrounding lock/atomic decision points).

pub use std::sync::{Arc, OnceLock, Weak};

#[cfg(feature = "model-check")]
pub use interleave::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(feature = "model-check"))]
pub use std_impl::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomic types. Std-backed normally; every access is a model decision
/// point under `model-check`. The `Ordering` re-export is the std enum in
/// both configurations.
pub mod atomic {
    #[cfg(feature = "model-check")]
    pub use interleave::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(not(feature = "model-check"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawn/join. Std-backed normally; spawns become scheduler-
/// controlled threads under `model-check`. `scope` is always the std
/// scoped-thread API (uninstrumented — see `interleave::thread`).
pub mod thread {
    #[cfg(feature = "model-check")]
    pub use interleave::thread::{
        available_parallelism, scope, sleep, spawn, yield_now, Builder, JoinHandle, Result, Scope,
        ScopedJoinHandle,
    };

    #[cfg(not(feature = "model-check"))]
    pub use std::thread::{
        available_parallelism, scope, sleep, spawn, yield_now, Builder, JoinHandle, Result, Scope,
        ScopedJoinHandle,
    };
}

/// The std-backed side of the facade: `std::sync` primitives behind the
/// same non-poisoning API the `interleave` shims expose.
#[cfg(not(feature = "model-check"))]
mod std_impl {
    use std::ops::{Deref, DerefMut};
    use std::sync::PoisonError;

    /// Mutual-exclusion lock (std-backed, non-poisoning API).
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    /// Guard for [`Mutex`]; releases on drop.
    pub struct MutexGuard<'a, T> {
        inner: std::sync::MutexGuard<'a, T>,
    }

    impl<T> Mutex<T> {
        /// Creates a new unlocked mutex.
        pub const fn new(value: T) -> Self {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Acquires the lock, blocking until it is free.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            }
        }

        /// Consumes the mutex, returning the protected value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// Condition variable (std-backed).
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// Creates a new condition variable.
        pub const fn new() -> Self {
            Condvar {
                inner: std::sync::Condvar::new(),
            }
        }

        /// Atomically releases the guard's mutex and waits for a
        /// notification, re-acquiring the mutex before returning. Like the
        /// std primitive it wraps, this may wake spuriously — callers loop
        /// on their predicate.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            MutexGuard {
                inner: self
                    .inner
                    .wait(guard.inner)
                    .unwrap_or_else(PoisonError::into_inner),
            }
        }

        /// Wakes all current waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }
    }

    /// Reader-writer lock (std-backed, non-poisoning API).
    #[derive(Debug, Default)]
    pub struct RwLock<T> {
        inner: std::sync::RwLock<T>,
    }

    /// Shared-read guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T> {
        inner: std::sync::RwLockReadGuard<'a, T>,
    }

    /// Exclusive-write guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T> {
        inner: std::sync::RwLockWriteGuard<'a, T>,
    }

    impl<T> RwLock<T> {
        /// Creates a new unlocked lock.
        pub const fn new(value: T) -> Self {
            RwLock {
                inner: std::sync::RwLock::new(value),
            }
        }

        /// Acquires shared read access.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            RwLockReadGuard {
                inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            }
        }

        /// Acquires exclusive write access.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            RwLockWriteGuard {
                inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            }
        }

        /// Consumes the lock, returning the protected value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicUsize, Ordering};
    use super::{Arc, Condvar, Mutex, RwLock};

    #[test]
    fn mutex_round_trips_without_lockresult() {
        let m = Mutex::new(1usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = super::thread::spawn(move || {
            let (flag, cv) = &*p2;
            *flag.lock() = true;
            cv.notify_one();
        });
        let (flag, cv) = &*pair;
        let mut g = flag.lock();
        while !*g {
            g = cv.wait(g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_and_atomics() {
        let rw = RwLock::new(7usize);
        assert_eq!(*rw.read(), 7);
        *rw.write() = 8;
        assert_eq!(rw.into_inner(), 8);
        let a = AtomicUsize::new(0);
        // ordering: test-only counter, no ordering requirement.
        a.fetch_add(3, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 3);
    }
}
