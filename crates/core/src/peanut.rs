//! The assembled PEANUT / PEANUT+ methods (§4.5–4.6): offline
//! materialization selection (plus optional numeric materialization of the
//! chosen tables) producing a [`Materialization`] for the online engine.

use crate::budp::budp;
use crate::context::OfflineContext;
use crate::exec::{Executor, ScopedExecutor};
use crate::grid::BudgetGrid;
use crate::lrdp::{lrdp_all_on, ShortcutSolution};
use crate::online::{Materialization, MaterializedShortcut};
use crate::plus::greedy_pack;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::OnceLock;
use peanut_junction::NumericState;
use peanut_pgm::{PgmError, Size};

/// Which packing strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Node-disjoint optimal packing (LRDP + BUDP).
    Peanut,
    /// Ratio-greedy packing with overlaps (LRDP + greedy), the paper's
    /// best-performing method.
    PeanutPlus,
}

/// Offline configuration.
#[derive(Clone, Debug)]
pub struct PeanutConfig {
    /// Space budget `K` (table entries).
    pub budget: Size,
    /// Grid parameter `ε` of §4.4; values `≤ 1` select the exact
    /// pseudo-polynomial grid `{0..K}` (only sensible for tiny budgets).
    pub epsilon: f64,
    /// Worker threads for the per-root LRDP fan-out.
    pub threads: usize,
    /// PEANUT or PEANUT+.
    pub variant: Variant,
}

impl PeanutConfig {
    /// PEANUT+ at the paper's default approximation (`ε = 1.2`).
    pub fn plus(budget: Size) -> Self {
        PeanutConfig {
            budget,
            epsilon: 1.2,
            threads: 1,
            variant: Variant::PeanutPlus,
        }
    }

    /// PEANUT (disjoint packing) at `ε = 1.2`.
    pub fn disjoint(budget: Size) -> Self {
        PeanutConfig {
            budget,
            epsilon: 1.2,
            threads: 1,
            variant: Variant::Peanut,
        }
    }

    /// Sets the approximation level.
    pub fn with_epsilon(mut self, eps: f64) -> Self {
        self.epsilon = eps;
        self
    }

    /// Sets the thread count for the root fan-out.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn grid(&self) -> BudgetGrid {
        if self.epsilon > 1.0 {
            BudgetGrid::geometric(self.budget, self.epsilon)
        } else {
            BudgetGrid::exact(self.budget)
        }
    }
}

/// The PEANUT method: offline selection (and optional numeric
/// materialization) of shortcut potentials.
pub struct Peanut;

impl Peanut {
    /// Runs the offline phase in symbolic mode: selects the shortcut
    /// potentials but materializes no numeric tables (the mode used for
    /// datasets whose calibration is infeasible, and for all cost-only
    /// experiments).
    pub fn offline(ctx: &OfflineContext, cfg: &PeanutConfig) -> Materialization {
        Self::offline_with(ctx, cfg, &ScopedExecutor::new(cfg.threads))
    }

    /// Like [`offline`](Self::offline), but fans the per-root LRDP out on
    /// the given [`Executor`] instead of spawning `cfg.threads` scoped
    /// threads — the serving tier passes its persistent worker pool here so
    /// a lifecycle re-selection reuses already-parked workers.
    pub fn offline_with(
        ctx: &OfflineContext,
        cfg: &PeanutConfig,
        exec: &dyn Executor,
    ) -> Materialization {
        let grid = cfg.grid();
        let roots = lrdp_all_on(ctx, &grid, exec);
        let chosen: Vec<ShortcutSolution> = match cfg.variant {
            Variant::PeanutPlus => greedy_pack(ctx, &roots, cfg.budget),
            Variant::Peanut => {
                let packing = budp(ctx, &grid, &roots).shortcuts;
                repair_to_budget(packing, cfg.budget)
            }
        };
        let mut shortcuts: Vec<MaterializedShortcut> = chosen
            .into_iter()
            .map(|sol| MaterializedShortcut {
                ratio: sol.true_benefit / sol.shortcut.size().max(1) as f64,
                benefit: sol.true_benefit,
                potential: None,
                shortcut: sol.shortcut,
            })
            .collect();
        shortcuts.sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("finite"));
        Materialization {
            shortcuts,
            overlapping: cfg.variant == Variant::PeanutPlus,
            epoch: 0,
        }
    }

    /// Runs the offline phase and materializes the chosen tables from a
    /// calibrated tree. Returns the materialization and the total operation
    /// count spent building the tables.
    pub fn offline_numeric(
        ctx: &OfflineContext,
        cfg: &PeanutConfig,
        numeric: &NumericState,
    ) -> Result<(Materialization, Size), PgmError> {
        Self::offline_numeric_with(ctx, cfg, numeric, &ScopedExecutor::new(cfg.threads))
    }

    /// Like [`offline_numeric`](Self::offline_numeric), but both the
    /// per-root LRDP fan-out *and* the numeric materialization of the
    /// chosen tables (independent per shortcut) run on the given
    /// [`Executor`].
    pub fn offline_numeric_with(
        ctx: &OfflineContext,
        cfg: &PeanutConfig,
        numeric: &NumericState,
        exec: &dyn Executor,
    ) -> Result<(Materialization, Size), PgmError> {
        let mut mat = Self::offline_with(ctx, cfg, exec);
        type Built = Result<(peanut_pgm::Potential, Size), PgmError>;
        // each task owns slot `i` (no result lock, no reassembly sort);
        // after the first failure remaining tasks skip their builds, so a
        // sequential executor short-circuits like the pre-executor code
        // and a parallel one wastes at most the in-flight tables
        let slots: Vec<OnceLock<Built>> =
            (0..mat.shortcuts.len()).map(|_| OnceLock::new()).collect();
        let failed = AtomicBool::new(false);
        {
            let shortcuts = &mat.shortcuts;
            exec.run_tasks(shortcuts.len(), &|i| {
                // ordering: advisory short-circuit, both flag accesses below —
                // a stale read just builds one more table; correctness never
                // depends on seeing the flag, so Relaxed is enough.
                if failed.load(Ordering::Relaxed) {
                    return;
                }
                let r = shortcuts[i]
                    .shortcut
                    .materialize(ctx.tree(), ctx.rooted(), numeric);
                if r.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                assert!(slots[i].set(r).is_ok(), "executor runs each build once");
            });
        }
        let mut built: Vec<Option<Built>> = slots.into_iter().map(OnceLock::into_inner).collect();
        if let Some(err_at) = built.iter().position(|r| matches!(r, Some(Err(_)))) {
            let Some(Err(e)) = built.swap_remove(err_at) else {
                unreachable!("position matched an Err")
            };
            return Err(e);
        }
        let mut ops: Size = 0;
        for (i, r) in built.into_iter().enumerate() {
            let (pot, cost) = r.expect("no failure ⇒ every build ran")?;
            mat.shortcuts[i].potential = Some(pot);
            ops = ops.saturating_add(cost);
        }
        Ok((mat, ops))
    }
}

/// BUDP packs against DP-estimated (additive, grid-rounded) costs; the true
/// `μ(S)` of merged-branch shortcuts can differ. Enforce the budget on true
/// sizes by keeping shortcuts in decreasing benefit/size order (documented
/// deviation in `DESIGN.md` §5: the paper does not address the estimate/true
/// gap; dropping lowest-ratio items is the conservative repair).
fn repair_to_budget(mut packing: Vec<ShortcutSolution>, budget: Size) -> Vec<ShortcutSolution> {
    packing.sort_by(|a, b| {
        let ra = a.true_benefit / a.shortcut.size().max(1) as f64;
        let rb = b.true_benefit / b.shortcut.size().max(1) as f64;
        rb.partial_cmp(&ra).expect("finite ratios")
    });
    let mut used: Size = 0;
    let mut kept = Vec::with_capacity(packing.len());
    for sol in packing {
        let sz = sol.shortcut.size();
        if sol.true_benefit <= 0.0 {
            continue;
        }
        if used.saturating_add(sz) <= budget {
            used += sz;
            kept.push(sol);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineEngine;
    use crate::workload::Workload;
    use peanut_junction::{build_junction_tree, QueryEngine};
    use peanut_pgm::{fixtures, joint, Scope};

    fn chain_workload(n: usize) -> (peanut_pgm::BayesianNetwork, Vec<Scope>) {
        let bn = fixtures::chain(n, 2, 13);
        let queries: Vec<Scope> = (0..(n as u32 - 4))
            .map(|a| Scope::from_indices(&[a, a + 4]))
            .collect();
        (bn, queries)
    }

    #[test]
    fn peanut_plus_reduces_workload_cost() {
        let (bn, queries) = chain_workload(14);
        let tree = build_junction_tree(&bn).unwrap();
        let w = Workload::from_queries(queries.clone());
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let cfg = PeanutConfig::plus(200).with_epsilon(1.0);
        let mat = Peanut::offline(&ctx, &cfg);
        assert!(!mat.is_empty());
        assert!(mat.total_size() <= 200);

        let engine = QueryEngine::symbolic(&tree);
        let online = OnlineEngine::new(&engine, &mat);
        let mut base_total = 0u64;
        let mut mat_total = 0u64;
        for q in &queries {
            base_total += online.baseline_cost(q).unwrap().ops;
            mat_total += online.cost(q).unwrap().ops;
        }
        assert!(
            mat_total < base_total,
            "materialization should cut workload cost: {mat_total} vs {base_total}"
        );
    }

    #[test]
    fn peanut_disjoint_within_budget_and_disjoint() {
        let (bn, queries) = chain_workload(12);
        let tree = build_junction_tree(&bn).unwrap();
        let w = Workload::from_queries(queries);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let cfg = PeanutConfig::disjoint(64).with_epsilon(1.0);
        let mat = Peanut::offline(&ctx, &cfg);
        assert!(mat.total_size() <= 64);
        for (i, a) in mat.shortcuts.iter().enumerate() {
            for b in &mat.shortcuts[i + 1..] {
                assert!(!a.shortcut.overlaps(&b.shortcut));
            }
        }
    }

    #[test]
    fn numeric_materialization_preserves_answers() {
        let (bn, queries) = chain_workload(10);
        let tree = build_junction_tree(&bn).unwrap();
        let w = Workload::from_queries(queries.clone());
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let ns = engine.numeric_state().unwrap();
        let cfg = PeanutConfig::plus(128).with_epsilon(1.0);
        let (mat, build_ops) = Peanut::offline_numeric(&ctx, &cfg, ns).unwrap();
        assert!(build_ops > 0 || mat.is_empty());
        let online = OnlineEngine::new(&engine, &mat);
        for q in queries.iter().take(6) {
            let (got, cost) = online.answer(q).unwrap();
            let want = joint::marginal(&bn, q).unwrap();
            assert!(got.max_abs_diff(&want).unwrap() < 1e-9, "answer drift");
            let base = online.baseline_cost(q).unwrap();
            assert!(cost.ops <= base.ops);
        }
    }

    #[test]
    fn zero_budget_gives_empty_materialization() {
        let (bn, queries) = chain_workload(10);
        let tree = build_junction_tree(&bn).unwrap();
        let w = Workload::from_queries(queries);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        for variant in [Variant::Peanut, Variant::PeanutPlus] {
            let cfg = PeanutConfig {
                budget: 0,
                epsilon: 1.0,
                threads: 1,
                variant,
            };
            let mat = Peanut::offline(&ctx, &cfg);
            assert!(mat.is_empty());
        }
    }

    #[test]
    fn epsilon_trades_quality() {
        let (bn, queries) = chain_workload(16);
        let tree = build_junction_tree(&bn).unwrap();
        let w = Workload::from_queries(queries.clone());
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let engine = QueryEngine::symbolic(&tree);
        let mut costs = Vec::new();
        for eps in [1.0, 6.0] {
            let cfg = PeanutConfig::plus(512).with_epsilon(eps);
            let mat = Peanut::offline(&ctx, &cfg);
            let online = OnlineEngine::new(&engine, &mat);
            let total: u64 = queries.iter().map(|q| online.cost(q).unwrap().ops).sum();
            costs.push(total);
        }
        // finer grid should never be (meaningfully) worse
        assert!(
            costs[0] <= costs[1] + costs[1] / 10,
            "eps=1 cost {} vs eps=6 cost {}",
            costs[0],
            costs[1]
        );
    }

    #[test]
    fn parallel_fanout_matches_serial() {
        let (bn, queries) = chain_workload(12);
        let tree = build_junction_tree(&bn).unwrap();
        let w = Workload::from_queries(queries);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let cfg1 = PeanutConfig::plus(100).with_epsilon(1.0).with_threads(1);
        let cfg4 = PeanutConfig::plus(100).with_epsilon(1.0).with_threads(4);
        let m1 = Peanut::offline(&ctx, &cfg1);
        let m4 = Peanut::offline(&ctx, &cfg4);
        assert_eq!(m1.len(), m4.len());
        for (a, b) in m1.shortcuts.iter().zip(&m4.shortcuts) {
            assert_eq!(a.shortcut.nodes(), b.shortcut.nodes());
        }
    }
}
