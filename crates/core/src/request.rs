//! The unified serving request: one typed `(targets, evidence)` pair for
//! every serving surface.
//!
//! Before this type, evidence-conditioned traffic rode along as ad-hoc
//! `(Scope, Vec<(Var, u32)>)` tuples from the workload generators while
//! batch inputs were a separate query enum — invisible to each other, to
//! the answer cache, and to workload observation. A [`ServeRequest`] is
//! the single canonical form: hashable (so in-batch dedup and the
//! cross-batch answer cache key on the *evidence context* as well as the
//! targets), and canonicalized at construction (evidence sorted by
//! variable) so order-insensitive duplicates coalesce.

use peanut_pgm::{Scope, Var};

/// One query as submitted to a serving engine: target variables plus a
/// (possibly empty) pinned evidence assignment. Empty evidence means a
/// plain marginal query `P(targets)`; otherwise `P(targets | evidence)`.
///
/// Construct via [`ServeRequest::marginal`] or [`ServeRequest::new`] —
/// the latter sorts the evidence by variable so structurally equal
/// requests compare, hash and cache identically regardless of the order
/// the client listed the evidence in.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ServeRequest {
    /// Target variables of the distribution being asked for.
    pub targets: Scope,
    /// Evidence assignments, sorted by variable and disjoint from the
    /// targets (overlap is rejected per-request at serve time, not here).
    pub evidence: Vec<(Var, u32)>,
}

impl ServeRequest {
    /// A plain marginal request `P(targets)`.
    pub fn marginal(targets: Scope) -> Self {
        ServeRequest {
            targets,
            evidence: Vec::new(),
        }
    }

    /// A request with evidence, canonicalized: the evidence list is sorted
    /// by variable so equal requests coalesce under dedup and cache keys.
    pub fn new(targets: Scope, mut evidence: Vec<(Var, u32)>) -> Self {
        evidence.sort_unstable();
        ServeRequest { targets, evidence }
    }

    /// Whether this is a plain marginal (no evidence).
    pub fn is_marginal(&self) -> bool {
        self.evidence.is_empty()
    }

    /// The evidence variables as a scope (empty for marginals).
    pub fn evidence_scope(&self) -> Scope {
        Scope::from_iter(self.evidence.iter().map(|&(v, _)| v))
    }

    /// The scope the workload model reasons about: the targets themselves
    /// for marginals, the joint `targets ∪ vars(evidence)` scope for
    /// conditional requests — that is the scope the per-query engine
    /// answers, and the one materialization selection optimizes for.
    pub fn stat_scope(&self) -> Scope {
        if self.evidence.is_empty() {
            self.targets.clone()
        } else {
            self.targets.union(&self.evidence_scope())
        }
    }
}

impl From<Scope> for ServeRequest {
    fn from(targets: Scope) -> Self {
        ServeRequest::marginal(targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn construction_canonicalizes_evidence_order() {
        let t = Scope::from_indices(&[0, 1]);
        let a = ServeRequest::new(t.clone(), vec![(Var(5), 1), (Var(2), 0)]);
        let b = ServeRequest::new(t.clone(), vec![(Var(2), 0), (Var(5), 1)]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b), "hash must see through evidence order");
        assert!(!a.is_marginal());
        assert_eq!(a.evidence_scope(), Scope::from_indices(&[2, 5]));
        assert_eq!(a.stat_scope(), Scope::from_indices(&[0, 1, 2, 5]));
    }

    #[test]
    fn marginal_requests_pass_targets_through() {
        let t = Scope::from_indices(&[3, 7]);
        let m = ServeRequest::marginal(t.clone());
        assert!(m.is_marginal());
        assert_eq!(m.stat_scope(), t);
        assert!(m.evidence_scope().is_empty());
        let via_from: ServeRequest = t.clone().into();
        assert_eq!(via_from, m);
    }
}
