//! Offline precomputation shared by LRDP, BUDP and PEANUT+: per-query
//! Steiner information, per-node benefit contributions, usefulness
//! (Def. 3.1) and benefit (Defs. 3.2–3.3).

use crate::shortcut::Shortcut;
use crate::util::BitSet;
use crate::workload::Workload;
use peanut_junction::{JunctionTree, RootedTree, SteinerTree};
use peanut_pgm::{PgmError, Scope, Size, Var};

/// Precomputed Steiner data for one distinct workload query.
#[derive(Clone, Debug)]
pub struct QueryInfo {
    /// The query variables.
    pub scope: Scope,
    /// `Pr_Q(q)`.
    pub weight: f64,
    /// Steiner-tree membership over clique ids.
    pub steiner: BitSet,
    /// `r_q`: Steiner node closest to the pivot.
    pub root: usize,
    /// Steiner members, ascending (for iteration).
    pub members: Vec<usize>,
    /// Per query variable: how many Steiner cliques contain it.
    pub var_cover: Vec<(Var, u32)>,
    /// True when the query is in-clique (single Steiner node).
    pub single_node: bool,
    /// Per clique: number of Steiner children (0 for non-members).
    q_children: Vec<u8>,
}

impl QueryInfo {
    /// Number of Steiner-tree children of clique `u` within this query's
    /// Steiner tree.
    #[inline]
    pub fn steiner_children(&self, u: usize) -> u32 {
        self.q_children[u] as u32
    }
}

/// Everything the offline algorithms need, computed once per
/// (tree, workload) pair.
pub struct OfflineContext<'t> {
    tree: &'t JunctionTree,
    rooted: RootedTree,
    queries: Vec<QueryInfo>,
    /// `μ(u)` per clique.
    mu: Vec<Size>,
}

/// Builds the per-query Steiner information used by the usefulness and
/// benefit computations — both offline (workload queries) and online
/// (fresh queries at answering time).
pub fn build_query_info(
    tree: &JunctionTree,
    rooted: &RootedTree,
    query: &Scope,
    weight: f64,
) -> Result<QueryInfo, PgmError> {
    let st = SteinerTree::extract(tree, rooted, query)?;
    let steiner = BitSet::from_members(tree.n_cliques(), st.nodes().iter().copied());
    let var_cover = query
        .iter()
        .map(|x| {
            let cnt = st
                .nodes()
                .iter()
                .filter(|&&u| tree.clique(u).contains(x))
                .count() as u32;
            (x, cnt)
        })
        .collect();
    let mut q_children = vec![0u8; tree.n_cliques()];
    for &w in st.nodes() {
        if w != st.root() {
            let p = rooted.parent(w).expect("steiner non-root has parent");
            q_children[p] = q_children[p].saturating_add(1);
        }
    }
    Ok(QueryInfo {
        scope: query.clone(),
        weight,
        members: st.nodes().to_vec(),
        root: st.root(),
        single_node: st.len() == 1,
        steiner,
        var_cover,
        q_children,
    })
}

/// Usefulness `δ_S(q)` (Def. 3.1) as a free function so the online engine
/// can evaluate it for fresh queries; see
/// [`OfflineContext::delta`] for the condition derivation.
pub fn delta(tree: &JunctionTree, rooted: &RootedTree, s: &Shortcut, qi: &QueryInfo) -> bool {
    if qi.single_node {
        return false;
    }
    if !s.node_set().intersects(&qi.steiner) {
        return false;
    }
    let below_edge = qi.members.iter().any(|&w| {
        !s.node_set().contains(w)
            && rooted
                .parent(w)
                .is_some_and(|p| s.node_set().contains(p) && qi.steiner.contains(p))
    });
    if !below_edge {
        return false;
    }
    for &(x, cnt_q) in &qi.var_cover {
        if s.scope().contains(x) {
            continue;
        }
        let cnt_in_i = qi
            .members
            .iter()
            .filter(|&&u| s.node_set().contains(u) && tree.clique(u).contains(x))
            .count() as u32;
        if cnt_q == cnt_in_i {
            return false;
        }
    }
    true
}

impl<'t> OfflineContext<'t> {
    /// Builds the context: extracts one Steiner tree per distinct query.
    pub fn new(tree: &'t JunctionTree, workload: &Workload) -> Result<Self, PgmError> {
        let rooted = RootedTree::new(tree);
        let queries = workload
            .entries()
            .iter()
            .map(|entry| build_query_info(tree, &rooted, &entry.query, entry.weight))
            .collect::<Result<Vec<_>, _>>()?;
        let mu = (0..tree.n_cliques()).map(|u| tree.clique_size(u)).collect();
        Ok(OfflineContext {
            tree,
            rooted,
            queries,
            mu,
        })
    }

    /// The junction tree.
    #[inline]
    pub fn tree(&self) -> &'t JunctionTree {
        self.tree
    }

    /// The pivot-rooted view.
    #[inline]
    pub fn rooted(&self) -> &RootedTree {
        &self.rooted
    }

    /// The distinct queries.
    #[inline]
    pub fn queries(&self) -> &[QueryInfo] {
        &self.queries
    }

    /// `μ(u)`.
    #[inline]
    pub fn mu(&self, u: usize) -> Size {
        self.mu[u]
    }

    /// The per-node benefit contribution of Def. 3.2:
    /// `μ(u) · Π_{w ∈ X_{T_u} ∩ q} α(w)`.
    pub fn contrib(&self, u: usize, qi: &QueryInfo) -> f64 {
        let sub = self.rooted.subtree_scope(u);
        let mut f = self.mu[u] as f64;
        for x in qi.scope.iter() {
            if sub.contains(x) {
                f *= self.tree.domain().card(x) as f64;
            }
        }
        f
    }

    /// Usefulness `δ_S(q)` (Def. 3.1), in the operational form derived in
    /// `DESIGN.md`:
    ///
    /// 1. `I = V(S) ∩ V(T_q)` is non-empty;
    /// 2. some Steiner node outside `I` has its (Steiner-)parent inside `I`
    ///    — equivalently, conditions (i)/(ii) of the paper: at least two cut
    ///    separators lie on some leaf→`r_q` path when `r_q ∉ V(S)`, at least
    ///    one when `r_q ∈ V(S)`;
    /// 3. no query variable is lost: each query variable is either in the
    ///    shortcut scope `X_S` or covered by a Steiner clique outside `I`.
    pub fn delta(&self, s: &Shortcut, qi: &QueryInfo) -> bool {
        delta(self.tree, &self.rooted, s, qi)
    }

    /// `B(S, q)` (Def. 3.2).
    pub fn benefit_for_query(&self, s: &Shortcut, qi: &QueryInfo) -> f64 {
        if !self.delta(s, qi) {
            return 0.0;
        }
        s.nodes().iter().map(|&u| self.contrib(u, qi)).sum()
    }

    /// `B(S, Q)` (Def. 3.3): the workload-weighted benefit.
    pub fn benefit(&self, s: &Shortcut) -> f64 {
        self.queries
            .iter()
            .map(|qi| qi.weight * self.benefit_for_query(s, qi))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_junction::build_junction_tree;
    use peanut_pgm::fixtures;

    fn fig1_ctx() -> (
        peanut_pgm::BayesianNetwork,
        JunctionTree,
        Vec<(String, usize)>,
    ) {
        let bn = fixtures::figure1();
        let mut tree = build_junction_tree(&bn).unwrap();
        let d = bn.domain().clone();
        let bc = Scope::from_iter([d.var("b").unwrap(), d.var("c").unwrap()]);
        let pivot = tree.cliques().iter().position(|c| *c == bc).unwrap();
        tree.set_pivot(pivot);
        let names = tree
            .cliques()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let n: String = c.iter().map(|v| d.name(v).to_string()).collect();
                (n, i)
            })
            .collect();
        (bn, tree, names)
    }

    fn id(names: &[(String, usize)], n: &str) -> usize {
        names.iter().find(|(s, _)| s == n).unwrap().1
    }

    #[test]
    fn paper_example_usefulness() {
        // Figure 2: query q = {b, i, f}; shortcut over the region between
        // bc and gil. In our tree the connected analogue of the paper's
        // shaded subtree is {ce, ef, egh} (scope {c, e, g}).
        let (bn, tree, names) = fig1_ctx();
        let d = bn.domain();
        let q = Scope::from_iter([
            d.var("b").unwrap(),
            d.var("i").unwrap(),
            d.var("f").unwrap(),
        ]);
        let w = Workload::from_queries([q]);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let region = vec![id(&names, "ce"), id(&names, "ef"), id(&names, "egh")];
        let s = Shortcut::from_nodes(&tree, ctx.rooted(), region).unwrap();
        let qi = &ctx.queries()[0];
        // f ∈ {e,f} is inside the region and NOT in X_S = {c,e,g} ⇒ not
        // useful for this query (f would be lost)!
        assert!(!ctx.delta(&s, qi));

        // The region {ce, egh} is not connected in our tree (egh hangs off
        // ef), but {egh} alone is: scope {e, g}; f is outside it, b outside,
        // i covered by gil outside ⇒ useful.
        let s2 = Shortcut::from_nodes(&tree, ctx.rooted(), vec![id(&names, "egh")]).unwrap();
        assert!(ctx.delta(&s2, qi));
        assert!(ctx.benefit(&s2) > 0.0);
    }

    #[test]
    fn in_clique_queries_have_no_useful_shortcut() {
        let (bn, tree, names) = fig1_ctx();
        let d = bn.domain();
        let q = Scope::from_iter([d.var("g").unwrap(), d.var("h").unwrap()]);
        let w = Workload::from_queries([q]);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let s = Shortcut::from_nodes(&tree, ctx.rooted(), vec![id(&names, "egh")]).unwrap();
        assert!(!ctx.delta(&s, &ctx.queries()[0]));
        assert_eq!(ctx.benefit(&s), 0.0);
    }

    #[test]
    fn region_not_touching_steiner_tree_useless() {
        let (bn, tree, names) = fig1_ctx();
        let d = bn.domain();
        // query within the bc–abd side
        let q = Scope::from_iter([d.var("a").unwrap(), d.var("c").unwrap()]);
        let w = Workload::from_queries([q]);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let s = Shortcut::from_nodes(&tree, ctx.rooted(), vec![id(&names, "egh")]).unwrap();
        assert!(!ctx.delta(&s, &ctx.queries()[0]));
    }

    #[test]
    fn benefit_weights_by_query_probability() {
        let (bn, tree, names) = fig1_ctx();
        let d = bn.domain();
        let q1 = Scope::from_iter([d.var("b").unwrap(), d.var("l").unwrap()]);
        // q1 three times, q2 once
        let q2 = Scope::from_iter([d.var("c").unwrap(), d.var("l").unwrap()]);
        let w_skew = Workload::from_queries([q1.clone(), q1.clone(), q1.clone(), q2.clone()]);
        let w_flat = Workload::from_queries([q1.clone(), q2.clone()]);
        let ctx_skew = OfflineContext::new(&tree, &w_skew).unwrap();
        let ctx_flat = OfflineContext::new(&tree, &w_flat).unwrap();
        let s = Shortcut::from_nodes(&tree, ctx_skew.rooted(), vec![id(&names, "egh")]).unwrap();
        // both queries benefit identically per-query; weighting shouldn't
        // change the total when each query's B(S, q) is equal
        let b_skew = ctx_skew.benefit(&s);
        let b_flat = ctx_flat.benefit(&s);
        let qi1 = ctx_flat.queries().iter().find(|qi| qi.scope == q1).unwrap();
        let qi2 = ctx_flat.queries().iter().find(|qi| qi.scope == q2).unwrap();
        let b1 = ctx_flat.benefit_for_query(&s, qi1);
        let b2 = ctx_flat.benefit_for_query(&s, qi2);
        assert!((b_flat - (0.5 * b1 + 0.5 * b2)).abs() < 1e-9);
        assert!((b_skew - (0.75 * b1 + 0.25 * b2)).abs() < 1e-9);
    }

    #[test]
    fn contrib_multiplies_query_cardinalities_below() {
        let (bn, tree, names) = fig1_ctx();
        let d = bn.domain();
        // query {i, l}: in-clique in gil ⇒ contrib of egh counts α(i)·α(l)
        // because both are in the subtree scope of egh? gil is below egh.
        let q = Scope::from_iter([d.var("i").unwrap(), d.var("l").unwrap()]);
        let w = Workload::from_queries([q]);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let egh = id(&names, "egh");
        let qi = &ctx.queries()[0];
        let c = ctx.contrib(egh, qi);
        // μ(egh) = 8, α(i) = α(l) = 2 ⇒ 32
        assert_eq!(c, 32.0);
        // a clique with no query vars below contributes just μ
        let abd = id(&names, "abd");
        assert_eq!(ctx.contrib(abd, qi), 8.0);
    }
}
