#![forbid(unsafe_code)]
//! # peanut-core
//!
//! The paper's contribution: **workload-aware materialization of junction
//! trees** (PEANUT and PEANUT+, Ciaperoni et al., EDBT 2022).
//!
//! * [`workload`] — query logs with empirical probabilities (Def. 3.3);
//! * [`shortcut`] — shortcut potentials: subtree, cut separators, scope
//!   `X_S`, size `μ(S)`, numeric materialization;
//! * [`context`] — the offline precomputation shared by both DPs: per-query
//!   Steiner information, per-node benefit contributions, usefulness
//!   (Def. 3.1) and benefit (Defs. 3.2–3.3);
//! * [`grid`] — budget grids: the exact pseudo-polynomial range and the
//!   strongly-polynomial geometric grid `{0, ⌊ε⌋, ⌊ε²⌋, …, K}` (§4.4);
//! * [`lrdp`] — the left-to-right DP for the single-optimal-shortcut problem
//!   SOSP (Algorithms 1–2);
//! * [`budp`] — the bottom-up DP for the multiple-optimal-shortcuts problem
//!   MOSP (Algorithms 3–4);
//! * [`plus`] — PEANUT+: ratio-greedy packing with overlaps (§4.6);
//! * [`gwmin`] — the GWMIN greedy maximum-weight-independent-set routine
//!   used by the PEANUT+ online phase;
//! * [`online`] — the online engine shared by every method: detect useful
//!   shortcuts, shrink the Steiner tree, run (or cost) the reduced tree;
//! * [`peanut`] — the assembled PEANUT / PEANUT+ methods;
//! * [`request`] — [`ServeRequest`], the unified typed serving request
//!   (targets plus pinned evidence) every serving surface converges on;
//! * [`stats`] — runtime workload observation (per-scope arrivals, shortcut
//!   hit rates, observed vs training benefit) feeding the epoch-versioned
//!   serving lifecycle;
//! * [`sync`] — the synchronization facade every concurrent component
//!   imports its primitives from: std-backed normally, swapped for the
//!   vendored `interleave` model-checking shims under the `model-check`
//!   feature.

pub mod budp;
pub mod context;
pub mod exec;
pub mod flat;
pub mod grid;
pub mod gwmin;
pub mod lrdp;
pub mod online;
pub mod peanut;
pub mod plus;
pub mod request;
pub mod shortcut;
pub mod stats;
pub mod sync;
pub mod util;
pub mod workload;

pub use context::OfflineContext;
pub use exec::{Executor, ScopedExecutor, SequentialExecutor};
pub use flat::{FlatMaterialization, FlatView, SYMBOLIC_SPAN};
pub use grid::BudgetGrid;
pub use online::{Materialization, MaterializedShortcut, OnlineEngine, TracedAnswer};
pub use peanut::{Peanut, PeanutConfig, Variant};
pub use request::ServeRequest;
pub use shortcut::Shortcut;
pub use stats::{StatsSnapshot, WorkloadStats};
pub use workload::Workload;
