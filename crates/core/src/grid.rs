//! Budget grids: the admissible-budget sets both DPs run over.
//!
//! The exact pseudo-polynomial algorithms iterate over every budget in
//! `{0, …, K}`; since the paper's budgets reach `10⁴·b_T ≈ 10⁸`, the
//! experiments (theirs and ours) use the strongly-polynomial variant of
//! §4.4: a geometric grid `{0, ⌊ε⌋, ⌊ε²⌋, …, K}`. The DPs here are written
//! against an arbitrary sorted grid, so `ε → 1` with a small `K` recovers
//! the exact algorithm (used by the tests that compare against exhaustive
//! enumeration).
//!
//! Rounding discipline: *costs round up* to the next grid point when states
//! are combined, so a DP state at grid value `g` never under-reports its
//! true (additively-estimated) cost — the returned materialization can only
//! under-fill the budget, never exceed it. This conservatism is what
//! produces the actual-vs-target budget gap of the paper's Figure 4.

use peanut_pgm::Size;

/// A sorted set of admissible budget values, always containing `0` and `K`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetGrid {
    values: Vec<Size>,
}

impl BudgetGrid {
    /// The exact grid `{0, 1, …, k}` — pseudo-polynomial; use only for small
    /// `k` (tests, tiny trees).
    pub fn exact(k: Size) -> Self {
        BudgetGrid {
            values: (0..=k).collect(),
        }
    }

    /// The geometric grid `{0, 1, ⌊ε⌋, ⌊ε²⌋, …, k}` of §4.4. Requires
    /// `eps > 1`; duplicate floors are deduplicated.
    pub fn geometric(k: Size, eps: f64) -> Self {
        assert!(eps > 1.0, "geometric grid needs eps > 1");
        let mut values = vec![0u64];
        if k >= 1 {
            let mut x = 1.0f64;
            loop {
                let v = x.floor() as Size;
                if v >= k {
                    break;
                }
                if v > *values.last().expect("non-empty") {
                    values.push(v);
                }
                x *= eps;
                if !x.is_finite() {
                    break;
                }
            }
            values.push(k);
        }
        BudgetGrid { values }
    }

    /// Grid points, ascending.
    #[inline]
    pub fn values(&self) -> &[Size] {
        &self.values
    }

    /// Number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Grids always contain 0.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The budget value at a grid index.
    #[inline]
    pub fn value(&self, i: usize) -> Size {
        self.values[i]
    }

    /// The maximum budget `K`.
    #[inline]
    pub fn max(&self) -> Size {
        *self.values.last().expect("grid non-empty")
    }

    /// Largest index whose value is `≤ c` (round down).
    pub fn round_down(&self, c: Size) -> Option<usize> {
        match self.values.binary_search(&c) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        }
    }

    /// Smallest index whose value is `≥ c` (round up); `None` when `c > K`.
    pub fn round_up(&self, c: Size) -> Option<usize> {
        match self.values.binary_search(&c) {
            Ok(i) => Some(i),
            Err(i) if i < self.values.len() => Some(i),
            Err(_) => None,
        }
    }

    /// Index for the combined cost of two grid points (round up), `None`
    /// when the sum exceeds `K`. Used for packing *separate* shortcut
    /// potentials, whose storage adds.
    pub fn combine(&self, i: usize, j: usize) -> Option<usize> {
        self.round_up(self.values[i].saturating_add(self.values[j]))
    }

    /// Index for the *multiplicative* combination of two grid points (round
    /// up), `None` when the product exceeds `K`. Used when merging branches
    /// of a single shortcut: table sizes are products over scope unions, so
    /// `μ(S₁∪S₂) ≤ μ(S₁)·μ(S₂)` — multiplying is the conservative
    /// composition (this is also why the paper's NP-hardness reduction maps
    /// tree-knapsack weights through `e^w`, and why the §4.4 geometric grid
    /// is the natural one: it is uniform in log space, where this
    /// combination is index addition). Zero-valued points are treated as
    /// cost 1 (no table is smaller than one entry).
    pub fn combine_mul(&self, i: usize, j: usize) -> Option<usize> {
        self.round_up(self.values[i].max(1).saturating_mul(self.values[j].max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_grid() {
        let g = BudgetGrid::exact(5);
        assert_eq!(g.values(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(g.max(), 5);
    }

    #[test]
    fn geometric_grid_shape() {
        let g = BudgetGrid::geometric(1000, 2.0);
        // {0, 1, 2, 4, 8, ..., 512, 1000}
        assert_eq!(g.values()[0], 0);
        assert_eq!(g.max(), 1000);
        for w in g.values().windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(g.len() < 15);
    }

    #[test]
    fn geometric_eps_close_to_one_is_dense_for_small_k() {
        let g = BudgetGrid::geometric(10, 1.0001);
        assert_eq!(g.values(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn rounding() {
        let g = BudgetGrid::geometric(100, 2.0); // 0,1,2,4,...,64,100
        assert_eq!(g.round_down(3), Some(g.round_up(2).unwrap()));
        assert_eq!(g.value(g.round_down(3).unwrap()), 2);
        assert_eq!(g.value(g.round_up(3).unwrap()), 4);
        assert_eq!(g.round_up(101), None);
        assert_eq!(g.round_down(0), Some(0));
        assert_eq!(g.round_up(0), Some(0));
    }

    #[test]
    fn combine_rounds_up_and_respects_k() {
        let g = BudgetGrid::geometric(100, 2.0);
        let i2 = g.round_up(2).unwrap();
        let i4 = g.round_up(4).unwrap();
        // 2 + 4 = 6 → rounds up to 8
        assert_eq!(g.value(g.combine(i2, i4).unwrap()), 8);
        let i64 = g.round_up(64).unwrap();
        assert_eq!(g.combine(i64, i64), None); // 128 > 100
                                               // 64 + 2 = 66 → 100
        assert_eq!(g.value(g.combine(i64, i2).unwrap()), 100);
    }

    #[test]
    fn combine_mul_rounds_up_and_respects_k() {
        let g = BudgetGrid::geometric(1000, 2.0); // 0,1,2,4,...,512,1000
        let i4 = g.round_up(4).unwrap();
        let i8 = g.round_up(8).unwrap();
        assert_eq!(g.value(g.combine_mul(i4, i8).unwrap()), 32);
        // zero treated as one
        assert_eq!(g.value(g.combine_mul(0, i8).unwrap()), 8);
        let i512 = g.round_up(512).unwrap();
        assert_eq!(g.combine_mul(i512, i4), None); // 2048 > 1000
                                                   // 512 * 1 = 512 fine
        let i1 = g.round_up(1).unwrap();
        assert_eq!(g.value(g.combine_mul(i512, i1).unwrap()), 512);
    }

    #[test]
    fn zero_budget_grid() {
        let g = BudgetGrid::geometric(0, 1.5);
        assert_eq!(g.values(), &[0]);
        let g = BudgetGrid::exact(0);
        assert_eq!(g.values(), &[0]);
    }
}
