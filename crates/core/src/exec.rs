//! Pluggable fan-out for the offline phase.
//!
//! The LRDP roots (and the numeric materialization of the chosen tables)
//! are embarrassingly parallel; *where* those tasks run is a deployment
//! decision, not an algorithmic one. An [`Executor`] abstracts it:
//!
//! * [`SequentialExecutor`] — every task on the calling thread;
//! * [`ScopedExecutor`] — spawn-per-call scoped threads, the historical
//!   design driven by [`PeanutConfig::threads`](crate::PeanutConfig);
//! * the serving tier's persistent `WorkerPool` implements the same trait,
//!   so a lifecycle re-materialization reuses the already-parked serving
//!   workers instead of spawning a fresh set per re-selection. The pool
//!   routes `run_tasks` waves onto its *re-materialization* priority lane
//!   (and its `LaneExecutor` lets callers pick another lane explicitly),
//!   so offline fan-out riding this seam can never head-of-line block the
//!   pool's serving-lane query waves — the barrier contract below is
//!   unchanged, only the queueing discipline behind it differs.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::thread;

/// Runs a batch of independent, index-identified tasks.
pub trait Executor: Sync {
    /// Runs `task(i)` for every `i in 0..total`, potentially in parallel.
    /// Must not return before every task has completed — callers rely on
    /// that barrier to keep borrows inside `task` alive exactly long
    /// enough.
    fn run_tasks(&self, total: usize, task: &(dyn Fn(usize) + Sync));
}

impl<E: Executor + ?Sized> Executor for &E {
    fn run_tasks(&self, total: usize, task: &(dyn Fn(usize) + Sync)) {
        (**self).run_tasks(total, task)
    }
}

/// Runs every task on the calling thread, in index order.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialExecutor;

impl Executor for SequentialExecutor {
    fn run_tasks(&self, total: usize, task: &(dyn Fn(usize) + Sync)) {
        for i in 0..total {
            task(i);
        }
    }
}

/// Spawns up to `threads` scoped threads *per call* which claim task
/// indices work-stealing-style. One thread (or one task) degenerates to
/// the sequential path.
#[derive(Clone, Copy, Debug)]
pub struct ScopedExecutor {
    /// Scoped threads spawned per `run_tasks` call (clamped to ≥ 1).
    pub threads: usize,
}

impl ScopedExecutor {
    /// An executor spawning `threads` scoped threads per call.
    pub fn new(threads: usize) -> Self {
        ScopedExecutor {
            threads: threads.max(1),
        }
    }
}

impl Executor for ScopedExecutor {
    fn run_tasks(&self, total: usize, task: &(dyn Fn(usize) + Sync)) {
        let n = self.threads.min(total);
        if n <= 1 {
            return SequentialExecutor.run_tasks(total, task);
        }
        let next = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| loop {
                    // ordering: pure work-claiming counter — each index must
                    // be handed out once, but no other memory is published
                    // through it (the scope join is the barrier), so Relaxed
                    // suffices.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    task(i);
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;

    fn collect(exec: &dyn Executor, total: usize) -> Vec<usize> {
        let out = Mutex::new(Vec::new());
        exec.run_tasks(total, &|i| out.lock().push(i));
        let mut v = out.into_inner();
        v.sort_unstable();
        v
    }

    #[test]
    fn executors_cover_every_task_exactly_once() {
        let want: Vec<usize> = (0..37).collect();
        assert_eq!(collect(&SequentialExecutor, 37), want);
        assert_eq!(collect(&ScopedExecutor::new(1), 37), want);
        assert_eq!(collect(&ScopedExecutor::new(4), 37), want);
        // blanket &E impl
        assert_eq!(collect(&&ScopedExecutor::new(2), 37), want);
    }

    #[test]
    fn zero_tasks_are_fine() {
        assert!(collect(&SequentialExecutor, 0).is_empty());
        assert!(collect(&ScopedExecutor::new(8), 0).is_empty());
    }
}
