//! BUDP — the bottom-up dynamic program for the **multiple optimal shortcut
//! potentials** problem (MOSP, Algorithms 3–4).
//!
//! Preprocessing runs LRDP at every clique; BUDP then computes, bottom-up
//! over the pivot-rooted tree,
//!
//! ```text
//! H[v][c] = the best total benefit of a node-disjoint packing of shortcut
//!           potentials inside subtree(v) with total (DP-estimated) cost ≤ c
//! ```
//!
//! by comparing the paper's two cases at every node: (i) no shortcut rooted
//! at `v` — knapsack-combine the children's packings; (ii) a shortcut
//! `S[v, c′]` rooted at `v` — its benefit plus the best packing allocation
//! over the frontier `D(S[v, c′])` (the subtrees hanging below the
//! shortcut). Budgets live on the same grid as LRDP; costs round up, so the
//! returned packing's estimated cost never exceeds `K`.

use crate::context::OfflineContext;
use crate::grid::BudgetGrid;
use crate::lrdp::{Combine, Compose, RootTables, ShortcutSolution};
use std::collections::HashMap;

/// The packing chosen by BUDP.
#[derive(Clone, Debug, Default)]
pub struct BudpResult {
    /// Chosen node-disjoint shortcuts.
    pub shortcuts: Vec<ShortcutSolution>,
    /// `H[pivot][K]` — the DP's additive benefit estimate of the packing.
    pub dp_benefit: f64,
}

#[derive(Clone, Copy, Debug)]
enum NodeChoice {
    /// Case (i): combine children packings.
    Children,
    /// Case (ii): shortcut `sol` rooted here plus frontier packings with
    /// remaining budget index `rem`.
    Shortcut { sol: usize, rem: usize },
}

/// Runs BUDP given the per-root LRDP tables (`roots[v]` must be the LRDP
/// output rooted at clique `v`).
pub fn budp(ctx: &OfflineContext, grid: &BudgetGrid, roots: &[RootTables]) -> BudpResult {
    let rooted = ctx.rooted();
    let n = ctx.tree().n_cliques();
    let m = grid.len();
    debug_assert_eq!(roots.len(), n);

    let mut h: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut choice: Vec<Vec<NodeChoice>> = vec![Vec::new(); n];
    let mut child_combines: Vec<Option<Combine>> = (0..n).map(|_| None).collect();
    let mut frontier_combines: HashMap<(usize, usize), (Vec<usize>, Combine)> = HashMap::new();

    // bottom-up over the pivot-rooted DFS order
    let order: Vec<usize> = rooted.dfs_order().to_vec();
    for &v in order.iter().rev() {
        let kids = rooted.children(v);
        let mut table = vec![0.0f64; m];
        let mut ch = vec![NodeChoice::Children; m];

        // case (i): children packings
        if !kids.is_empty() {
            let tables: Vec<&[f64]> = kids.iter().map(|c| h[*c].as_slice()).collect();
            let comb = Combine::run(&tables, grid, Compose::Add);
            table.copy_from_slice(&comb.free);
            child_combines[v] = Some(comb);
        }

        // case (ii): a shortcut rooted at v plus frontier packings
        for (si, sol) in roots[v].solutions.iter().enumerate() {
            if sol.dp_benefit <= 0.0 {
                continue;
            }
            let alloc = sol.min_index;
            let frontier = sol.shortcut.frontier(rooted);
            let ftables: Vec<&[f64]> = frontier.iter().map(|d| h[*d].as_slice()).collect();
            let fcomb = Combine::run(&ftables, grid, Compose::Add);
            for ci in alloc..m {
                let remaining = grid.value(ci) - grid.value(alloc);
                let rem = grid
                    .round_down(remaining)
                    .expect("grid contains 0, so round_down(≥0) exists");
                let cand = sol.dp_benefit + fcomb.free[rem];
                if cand > table[ci] {
                    table[ci] = cand;
                    ch[ci] = NodeChoice::Shortcut { sol: si, rem };
                }
            }
            frontier_combines.insert((v, si), (frontier, fcomb));
        }

        // monotone by construction? case (ii) entries may dip below a
        // previous index's value after a better earlier alternative; enforce
        // prefix max, inheriting choices.
        for ci in 1..m {
            if table[ci - 1] > table[ci] {
                table[ci] = table[ci - 1];
                ch[ci] = ch[ci - 1];
            }
        }
        h[v] = table;
        choice[v] = ch;
    }

    // reconstruction from the pivot at the full budget
    let pivot = rooted.root();
    let mut result = BudpResult {
        shortcuts: Vec::new(),
        dp_benefit: h[pivot][m - 1],
    };
    reconstruct(
        ctx,
        grid,
        roots,
        &h,
        &choice,
        &child_combines,
        &frontier_combines,
        pivot,
        m - 1,
        &mut result.shortcuts,
    );
    result
}

#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn reconstruct(
    ctx: &OfflineContext,
    grid: &BudgetGrid,
    roots: &[RootTables],
    h: &[Vec<f64>],
    choice: &[Vec<NodeChoice>],
    child_combines: &[Option<Combine>],
    frontier_combines: &HashMap<(usize, usize), (Vec<usize>, Combine)>,
    v: usize,
    ci: usize,
    out: &mut Vec<ShortcutSolution>,
) {
    if h[v][ci] <= 0.0 {
        return; // nothing materialized in this subtree
    }
    let rooted = ctx.rooted();
    match choice[v][ci] {
        NodeChoice::Children => {
            let Some(comb) = &child_combines[v] else {
                return;
            };
            for (c, ci_c) in comb.backtrack(false, ci, rooted.children(v)) {
                reconstruct(
                    ctx,
                    grid,
                    roots,
                    h,
                    choice,
                    child_combines,
                    frontier_combines,
                    c,
                    ci_c,
                    out,
                );
            }
        }
        NodeChoice::Shortcut { sol, rem } => {
            out.push(roots[v].solutions[sol].clone());
            let (frontier, fcomb) = &frontier_combines[&(v, sol)];
            for (d, ci_d) in fcomb.backtrack(false, rem, frontier) {
                reconstruct(
                    ctx,
                    grid,
                    roots,
                    h,
                    choice,
                    child_combines,
                    frontier_combines,
                    d,
                    ci_d,
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrdp::lrdp_all;
    use crate::workload::Workload;
    use peanut_junction::build_junction_tree;
    use peanut_pgm::{fixtures, Scope};

    fn run(
        bn: &peanut_pgm::BayesianNetwork,
        queries: Vec<Scope>,
        k: u64,
    ) -> (BudpResult, peanut_junction::JunctionTree) {
        let tree = build_junction_tree(bn).unwrap();
        let w = Workload::from_queries(queries);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let grid = BudgetGrid::exact(k);
        let roots = lrdp_all(&ctx, &grid, 1);
        let res = budp(&ctx, &grid, &roots);
        (res, tree)
    }

    #[test]
    fn packing_is_node_disjoint() {
        let bn = fixtures::binary_tree(15, 3);
        let queries: Vec<Scope> = (0..14u32)
            .map(|a| Scope::from_indices(&[a, a + 1]))
            .chain((0..12u32).map(|a| Scope::from_indices(&[a, a + 3])))
            .collect();
        let (res, _) = run(&bn, queries, 48);
        for (i, a) in res.shortcuts.iter().enumerate() {
            for b in &res.shortcuts[i + 1..] {
                assert!(
                    !a.shortcut.overlaps(&b.shortcut),
                    "BUDP returned overlapping shortcuts"
                );
            }
        }
    }

    #[test]
    fn estimated_cost_within_budget() {
        let bn = fixtures::chain(10, 2, 1);
        let queries: Vec<Scope> = (0..8u32)
            .map(|a| Scope::from_indices(&[a, a + 2]))
            .collect();
        for k in [4u64, 8, 16, 32] {
            let (res, _) = run(&bn, queries.clone(), k);
            let est: u64 = res.shortcuts.iter().map(|s| s.dp_cost).sum();
            assert!(est <= k, "estimate {est} exceeds budget {k}");
        }
    }

    #[test]
    fn packing_beats_or_matches_best_single() {
        let bn = fixtures::chain(12, 2, 9);
        let queries: Vec<Scope> = (0..10u32)
            .map(|a| Scope::from_indices(&[a, a + 1]))
            .chain([Scope::from_indices(&[0, 11]), Scope::from_indices(&[2, 9])])
            .collect();
        let tree = build_junction_tree(&bn).unwrap();
        let w = Workload::from_queries(queries);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let grid = BudgetGrid::exact(32);
        let roots = lrdp_all(&ctx, &grid, 1);
        let res = budp(&ctx, &grid, &roots);
        let best_single = roots
            .iter()
            .filter_map(|rt| rt.dp_value.last().copied())
            .filter(|v| v.is_finite())
            .fold(0.0f64, f64::max);
        assert!(
            res.dp_benefit >= best_single - 1e-9,
            "packing {} < best single {}",
            res.dp_benefit,
            best_single
        );
    }

    #[test]
    fn zero_budget_materializes_nothing() {
        let bn = fixtures::chain(8, 2, 2);
        let queries = vec![Scope::from_indices(&[0, 7])];
        let (res, _) = run(&bn, queries, 0);
        assert!(res.shortcuts.is_empty());
        assert_eq!(res.dp_benefit, 0.0);
    }

    #[test]
    fn larger_budget_never_hurts() {
        let bn = fixtures::binary_tree(15, 11);
        let queries: Vec<Scope> = (0..13u32).map(|a| Scope::from_indices(&[a, 14])).collect();
        let mut prev = 0.0;
        for k in [2u64, 4, 8, 16, 32, 64] {
            let (res, _) = run(&bn, queries.clone(), k);
            assert!(
                res.dp_benefit >= prev - 1e-9,
                "benefit decreased from {prev} to {} at K={k}",
                res.dp_benefit
            );
            prev = res.dp_benefit;
        }
    }
}
