//! Query workloads: the `Q` of the optimization problems.

use peanut_pgm::Scope;
use std::collections::HashMap;

/// One distinct query with its empirical probability.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadEntry {
    /// The query variables.
    pub query: Scope,
    /// `Pr_Q(q)` — estimated from frequencies (Def. 3.3).
    pub weight: f64,
}

/// A query log summarized into distinct queries with empirical
/// probabilities, as used by the benefit definition (Def. 3.3).
#[derive(Clone, Debug, Default)]
pub struct Workload {
    entries: Vec<WorkloadEntry>,
}

impl Workload {
    /// Builds a workload from a raw query log; duplicate queries are merged
    /// and weights normalized to probabilities.
    pub fn from_queries<I: IntoIterator<Item = Scope>>(queries: I) -> Self {
        let mut counts: HashMap<Scope, usize> = HashMap::new();
        let mut total = 0usize;
        for q in queries {
            *counts.entry(q).or_insert(0) += 1;
            total += 1;
        }
        let mut entries: Vec<WorkloadEntry> = counts
            .into_iter()
            .map(|(query, c)| WorkloadEntry {
                query,
                weight: c as f64 / total.max(1) as f64,
            })
            .collect();
        // deterministic order
        entries.sort_by(|a, b| a.query.cmp(&b.query));
        Workload { entries }
    }

    /// Builds from explicit `(query, weight)` pairs (weights are
    /// renormalized).
    pub fn from_weighted<I: IntoIterator<Item = (Scope, f64)>>(pairs: I) -> Self {
        let mut entries: Vec<WorkloadEntry> = pairs
            .into_iter()
            .map(|(query, weight)| WorkloadEntry { query, weight })
            .collect();
        let total: f64 = entries.iter().map(|e| e.weight).sum();
        if total > 0.0 {
            for e in &mut entries {
                e.weight /= total;
            }
        }
        entries.sort_by(|a, b| a.query.cmp(&b.query));
        Workload { entries }
    }

    /// The distinct queries with probabilities.
    #[inline]
    pub fn entries(&self) -> &[WorkloadEntry] {
        &self.entries
    }

    /// Number of distinct queries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the workload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_become_probabilities() {
        let a = Scope::from_indices(&[0, 1]);
        let b = Scope::from_indices(&[2]);
        let w = Workload::from_queries([a.clone(), b.clone(), a.clone(), a.clone()]);
        assert_eq!(w.len(), 2);
        let ea = w.entries().iter().find(|e| e.query == a).unwrap();
        let eb = w.entries().iter().find(|e| e.query == b).unwrap();
        assert!((ea.weight - 0.75).abs() < 1e-12);
        assert!((eb.weight - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weighted_renormalizes() {
        let w = Workload::from_weighted([
            (Scope::from_indices(&[0]), 2.0),
            (Scope::from_indices(&[1]), 6.0),
        ]);
        let total: f64 = w.entries().iter().map(|e| e.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((w.entries()[1].weight - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_workload() {
        let w = Workload::from_queries(std::iter::empty());
        assert!(w.is_empty());
    }
}
