//! PEANUT+ (§4.6): relax the node-disjointness constraint of MOSP with a
//! ratio-greedy packing over *all* LRDP candidates.
//!
//! PEANUT's optimal packing is disjoint and often leaves budget unused;
//! PEANUT+ instead pools every single-root optimal shortcut produced by
//! LRDP (all roots × all grid budgets), sorts by benefit-to-size ratio, and
//! greedily materializes — overlaps allowed — until the budget is filled.
//! The online phase then resolves per-query conflicts with GWMIN.

use crate::context::OfflineContext;
use crate::lrdp::{RootTables, ShortcutSolution};
use peanut_pgm::Size;

/// The PEANUT+ greedy packing: candidates (across all roots and budgets)
/// chosen by decreasing `B(S, Q) / μ(S)` until `Σ μ(S) > budget` would hold.
///
/// Candidates with non-positive true benefit are discarded; identical node
/// sets are deduplicated (LRDP already dedups within a root; across roots,
/// node sets are distinct by construction because the root is part of the
/// set). Unlike PEANUT, the **true** sizes are charged against the budget,
/// so the actual materialized space is controlled exactly (this is why the
/// paper compares PEANUT+ and INDSEP "at parity budget").
pub fn greedy_pack(
    _ctx: &OfflineContext,
    roots: &[RootTables],
    budget: Size,
) -> Vec<ShortcutSolution> {
    let mut pool: Vec<&ShortcutSolution> = roots
        .iter()
        .flat_map(|rt| rt.solutions.iter())
        .filter(|s| s.true_benefit > 0.0 && s.shortcut.size() <= budget)
        .collect();
    pool.sort_by(|a, b| {
        let ra = a.true_benefit / a.shortcut.size() as f64;
        let rb = b.true_benefit / b.shortcut.size() as f64;
        rb.partial_cmp(&ra)
            .expect("finite ratios")
            .then_with(|| a.shortcut.nodes().cmp(b.shortcut.nodes()))
    });
    let mut used: Size = 0;
    let mut chosen: Vec<ShortcutSolution> = Vec::new();
    for cand in pool {
        let sz = cand.shortcut.size();
        if used.saturating_add(sz) > budget {
            continue; // skip and keep scanning — fill the budget greedily
        }
        if chosen
            .iter()
            .any(|c| c.shortcut.nodes() == cand.shortcut.nodes())
        {
            continue;
        }
        used += sz;
        chosen.push(cand.clone());
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::BudgetGrid;
    use crate::lrdp::lrdp_all;
    use crate::workload::Workload;
    use peanut_junction::build_junction_tree;
    use peanut_pgm::{fixtures, Scope};

    fn setup(
        n: usize,
    ) -> (
        peanut_pgm::BayesianNetwork,
        peanut_junction::JunctionTree,
        Vec<Scope>,
    ) {
        let bn = fixtures::chain(n, 2, 5);
        let tree = build_junction_tree(&bn).unwrap();
        let queries: Vec<Scope> = (0..(n as u32 - 3))
            .map(|a| Scope::from_indices(&[a, a + 3]))
            .collect();
        (bn, tree, queries)
    }

    #[test]
    fn budget_respected_exactly() {
        let (_bn, tree, queries) = setup(12);
        let w = Workload::from_queries(queries);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let grid = BudgetGrid::exact(64);
        let roots = lrdp_all(&ctx, &grid, 1);
        for budget in [0u64, 2, 4, 8, 16, 64] {
            let chosen = greedy_pack(&ctx, &roots, budget);
            let total: u64 = chosen.iter().map(|s| s.shortcut.size()).sum();
            assert!(total <= budget, "total {total} > budget {budget}");
        }
    }

    #[test]
    fn monotone_in_budget() {
        let (_bn, tree, queries) = setup(12);
        let w = Workload::from_queries(queries);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let grid = BudgetGrid::exact(64);
        let roots = lrdp_all(&ctx, &grid, 1);
        let mut prev = 0.0;
        for budget in [2u64, 4, 8, 16, 32, 64] {
            let chosen = greedy_pack(&ctx, &roots, budget);
            let total: f64 = chosen.iter().map(|s| s.true_benefit).sum();
            assert!(total >= prev - 1e-9);
            prev = total;
        }
    }

    #[test]
    fn overlaps_allowed_and_dedup_holds() {
        let (_bn, tree, queries) = setup(14);
        let w = Workload::from_queries(queries);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let grid = BudgetGrid::exact(128);
        let roots = lrdp_all(&ctx, &grid, 1);
        let chosen = greedy_pack(&ctx, &roots, 128);
        // no duplicates
        for (i, a) in chosen.iter().enumerate() {
            for b in &chosen[i + 1..] {
                assert_ne!(a.shortcut.nodes(), b.shortcut.nodes());
            }
        }
        // with a generous budget on a chain, PEANUT+ typically picks
        // overlapping regions — just assert it picked more than one
        assert!(chosen.len() > 1, "expected several candidates");
    }
}
