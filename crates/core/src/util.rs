//! Small utilities: fixed-width bitsets over clique ids.

/// A fixed-capacity bitset over clique identifiers.
///
/// Junction trees in this workspace have at most a few hundred cliques, so
/// membership sets fit a handful of `u64` words; the offline DP probes these
/// sets millions of times, which is why a dense bitset (not a hash set) is
/// the right structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set with room for `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Builds from an iterator of members.
    pub fn from_members<I: IntoIterator<Item = usize>>(capacity: usize, it: I) -> Self {
        let mut s = Self::new(capacity);
        for i in it {
            s.insert(i);
        }
        s
    }

    /// Capacity (universe size).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an element.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes an element.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True when `self ∩ other ≠ ∅`.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of members of `self ∩ other`.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_ascending() {
        let s = BitSet::from_members(200, [5usize, 191, 63, 64]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![5, 63, 64, 191]);
    }

    #[test]
    fn intersections() {
        let a = BitSet::from_members(100, [1usize, 2, 3]);
        let b = BitSet::from_members(100, [3usize, 4]);
        let c = BitSet::from_members(100, [7usize]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection_len(&b), 1);
        assert!(BitSet::new(100).is_empty());
    }
}
