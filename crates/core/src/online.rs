//! The online component (§4.5–4.6), shared by every materialization-based
//! method (PEANUT, PEANUT+, INDSEP): given a query, detect the useful
//! materialized shortcut potentials, shrink the Steiner tree with them, and
//! run (or cost) message passing on the reduced tree.

use crate::context::{build_query_info, delta};
use crate::gwmin::gwmin;
use crate::shortcut::Shortcut;
use crate::stats::WorkloadStats;
use peanut_junction::cost::{marginalization_ops, QueryCost};
use peanut_junction::{QueryEngine, QueryPlan, ReducedTree};
use peanut_pgm::{PgmError, Potential, Scope, Scratch, Size};

/// A shortcut potential chosen for materialization.
#[derive(Clone, Debug)]
pub struct MaterializedShortcut {
    /// The shortcut (subtree, cut, scope `X_S`, size `μ(S)`).
    pub shortcut: Shortcut,
    /// The dense table `P(X_S)` (numeric mode only).
    pub potential: Option<Potential>,
    /// Workload benefit `B(S, Q)` at materialization time.
    pub benefit: f64,
    /// Benefit-to-size ratio, the weight used by the online conflict graph.
    pub ratio: f64,
}

/// The outcome of an offline phase: the set of materialized shortcut
/// potentials.
#[derive(Clone, Debug, Default)]
pub struct Materialization {
    /// Materialized shortcuts, in decreasing ratio order.
    pub shortcuts: Vec<MaterializedShortcut>,
    /// Whether shortcuts may overlap (PEANUT+ / INDSEP) — if so, the online
    /// phase must run GWMIN on the per-query conflict graph.
    pub overlapping: bool,
    /// Lifecycle version of this artifact. A freshly selected
    /// materialization is epoch 0; a serving stack that hot-swaps
    /// materializations stamps each published artifact with the next epoch
    /// so downstream caches can tell stale answers from current ones.
    pub epoch: u64,
}

impl Materialization {
    /// Stamps the lifecycle epoch (builder-style).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }
    /// The *actual budget*: total materialized table entries
    /// (Σ μ(S), the y-axis of the paper's Figure 4).
    pub fn total_size(&self) -> Size {
        self.shortcuts
            .iter()
            .fold(0u64, |a, s| a.saturating_add(s.shortcut.size()))
    }

    /// Number of materialized shortcut potentials.
    pub fn len(&self) -> usize {
        self.shortcuts.len()
    }

    /// True when nothing is materialized.
    pub fn is_empty(&self) -> bool {
        self.shortcuts.is_empty()
    }
}

/// An answer traced with the baseline it is measured against: what the
/// plain (un-shortcut) junction tree would have charged for the same query.
/// The gap between the two is the *observed benefit* the lifecycle layer
/// watches for drift.
#[derive(Clone, Debug)]
pub struct TracedAnswer {
    /// `P(query)` (or `P(targets | evidence)`).
    pub potential: Potential,
    /// Cost actually charged, shortcuts included.
    pub cost: QueryCost,
    /// Operation count of the same query on the plain junction tree.
    pub baseline_ops: Size,
}

/// Query processor that exploits a [`Materialization`].
pub struct OnlineEngine<'e, 't> {
    engine: &'e QueryEngine<'t>,
    mat: &'e Materialization,
    stats: Option<&'e WorkloadStats>,
}

impl<'e, 't> OnlineEngine<'e, 't> {
    /// Wraps a query engine (symbolic or numeric) with a materialization.
    pub fn new(engine: &'e QueryEngine<'t>, mat: &'e Materialization) -> Self {
        OnlineEngine {
            engine,
            mat,
            stats: None,
        }
    }

    /// Like [`new`](Self::new), but every answered query is also recorded
    /// into `stats` (scope, charged cost, plain-JT baseline) — the feed of
    /// the epoch lifecycle's drift detector.
    pub fn with_stats(
        engine: &'e QueryEngine<'t>,
        mat: &'e Materialization,
        stats: &'e WorkloadStats,
    ) -> Self {
        OnlineEngine {
            engine,
            mat,
            stats: Some(stats),
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &QueryEngine<'t> {
        self.engine
    }

    /// The materialization this engine answers through.
    pub fn materialization(&self) -> &Materialization {
        self.mat
    }

    /// Builds the shortcut-reduced tree for an out-of-clique query;
    /// `None` for in-clique queries.
    pub fn reduce(&self, query: &Scope) -> Result<Option<ReducedTree>, PgmError> {
        Ok(self.reduce_traced(query, false)?.0)
    }

    /// [`reduce`](Self::reduce), optionally also returning the baseline
    /// operation count of the *unreduced* plan (the plain-JT cost). The
    /// baseline falls out of the reduction for free when shortcuts are
    /// considered, so tracing adds no work on the materialized path.
    fn reduce_traced(
        &self,
        query: &Scope,
        want_baseline: bool,
    ) -> Result<(Option<ReducedTree>, Size), PgmError> {
        let tree = self.engine.tree();
        let rooted = self.engine.rooted();
        match self.engine.plan(query)? {
            QueryPlan::InClique(u) => {
                let baseline = if want_baseline {
                    marginalization_ops(tree.clique(u), tree.domain())
                } else {
                    0
                };
                Ok((None, baseline))
            }
            QueryPlan::OutOfClique(st) => {
                let mut rt =
                    ReducedTree::from_steiner(tree, rooted, &st, self.engine.numeric_state());
                let baseline = if want_baseline || !self.mat.is_empty() {
                    rt.cost(query, tree.domain()).ops
                } else {
                    0
                };
                if self.mat.is_empty() {
                    return Ok((Some(rt), baseline));
                }
                let qi = build_query_info(tree, rooted, query, 1.0)?;
                // useful shortcuts under Def. 3.1
                let useful: Vec<usize> = (0..self.mat.shortcuts.len())
                    .filter(|&i| delta(tree, rooted, &self.mat.shortcuts[i].shortcut, &qi))
                    .collect();
                // resolve conflicts between overlapping useful shortcuts
                let chosen: Vec<usize> = if self.mat.overlapping {
                    let weights: Vec<f64> = useful
                        .iter()
                        .map(|&i| self.mat.shortcuts[i].ratio)
                        .collect();
                    let adj: Vec<Vec<usize>> = useful
                        .iter()
                        .map(|&i| {
                            useful
                                .iter()
                                .enumerate()
                                .filter(|&(_, &j)| {
                                    j != i
                                        && self.mat.shortcuts[i]
                                            .shortcut
                                            .overlaps(&self.mat.shortcuts[j].shortcut)
                                })
                                .map(|(jj, _)| jj)
                                .collect()
                        })
                        .collect();
                    gwmin(&weights, &adj)
                        .into_iter()
                        .map(|k| useful[k])
                        .collect()
                } else {
                    useful
                };
                // apply replacements in decreasing ratio order, keeping only
                // those that strictly reduce the operation count
                let mut order = chosen;
                order.sort_by(|&a, &b| {
                    self.mat.shortcuts[b]
                        .ratio
                        .partial_cmp(&self.mat.shortcuts[a].ratio)
                        .expect("finite ratios")
                        .then(a.cmp(&b))
                });
                let domain = tree.domain();
                let mut cost = baseline;
                for i in order {
                    let ms = &self.mat.shortcuts[i];
                    let region: Vec<usize> = (0..rt.len())
                        .filter(|&k| match rt.node(k).label {
                            peanut_junction::NodeLabel::Clique(u) => {
                                ms.shortcut.node_set().contains(u)
                            }
                            peanut_junction::NodeLabel::Shortcut(_) => false,
                        })
                        .collect();
                    if region.is_empty() || region.len() == rt.len() {
                        continue;
                    }
                    let candidate = rt.clone().replace_region(
                        &region,
                        ms.shortcut.scope().clone(),
                        ms.potential.clone(),
                        i,
                    )?;
                    let new_cost = candidate.cost(query, domain).ops;
                    if new_cost < cost {
                        rt = candidate;
                        cost = new_cost;
                    }
                }
                Ok((Some(rt), baseline))
            }
        }
    }

    /// Operation count for answering `query` with the materialization.
    pub fn cost(&self, query: &Scope) -> Result<QueryCost, PgmError> {
        match self.reduce(query)? {
            None => self.engine.cost(query),
            Some(rt) => Ok(rt.cost(query, self.engine.tree().domain())),
        }
    }

    /// Numeric answer plus cost (requires a numeric engine and materialized
    /// tables).
    pub fn answer(&self, query: &Scope) -> Result<(Potential, QueryCost), PgmError> {
        self.answer_in(query, &mut Scratch::new())
    }

    /// [`answer`](Self::answer) with caller-provided kernel scratch.
    pub fn answer_in(
        &self,
        query: &Scope,
        scratch: &mut Scratch,
    ) -> Result<(Potential, QueryCost), PgmError> {
        if self.stats.is_some() {
            let t = self.answer_traced_in(query, scratch)?;
            return Ok((t.potential, t.cost));
        }
        match self.reduce(query)? {
            None => self.engine.answer_in(query, scratch),
            Some(rt) => rt.answer_in(query, self.engine.tree().domain(), scratch),
        }
    }

    /// Numeric answer together with the plain-JT baseline cost of the same
    /// query. When the engine carries a [`WorkloadStats`] accumulator
    /// (see [`with_stats`](Self::with_stats)) the observation is recorded.
    pub fn answer_traced_in(
        &self,
        query: &Scope,
        scratch: &mut Scratch,
    ) -> Result<TracedAnswer, PgmError> {
        let (rt, baseline_ops) = self.reduce_traced(query, true)?;
        let (potential, cost) = match rt {
            None => self.engine.answer_in(query, scratch)?,
            Some(rt) => rt.answer_in(query, self.engine.tree().domain(), scratch)?,
        };
        if let Some(stats) = self.stats {
            stats.record(query, &cost, baseline_ops);
        }
        Ok(TracedAnswer {
            potential,
            cost,
            baseline_ops,
        })
    }

    /// Conditional distribution `P(targets | evidence)` answered through the
    /// materialization (§3.1 joint→conditional reduction).
    pub fn conditional(
        &self,
        targets: &Scope,
        evidence: &[(peanut_pgm::Var, u32)],
    ) -> Result<(Potential, QueryCost), PgmError> {
        self.conditional_in(targets, evidence, &mut Scratch::new())
    }

    /// [`conditional`](Self::conditional) with caller-provided kernel
    /// scratch.
    pub fn conditional_in(
        &self,
        targets: &Scope,
        evidence: &[(peanut_pgm::Var, u32)],
        scratch: &mut Scratch,
    ) -> Result<(Potential, QueryCost), PgmError> {
        peanut_junction::query::conditional_from_joint(targets, evidence, scratch, |q, s| {
            self.answer_in(q, s)
        })
    }

    /// [`conditional_in`](Self::conditional_in) traced with the plain-JT
    /// baseline of the underlying joint query (the scope the workload model
    /// and the drift detector reason about).
    pub fn conditional_traced_in(
        &self,
        targets: &Scope,
        evidence: &[(peanut_pgm::Var, u32)],
        scratch: &mut Scratch,
    ) -> Result<TracedAnswer, PgmError> {
        let mut baseline_ops: Size = 0;
        let (potential, cost) =
            peanut_junction::query::conditional_from_joint(targets, evidence, scratch, |q, s| {
                let t = self.answer_traced_in(q, s)?;
                baseline_ops = t.baseline_ops;
                Ok((t.potential, t.cost))
            })?;
        Ok(TracedAnswer {
            potential,
            cost,
            baseline_ops,
        })
    }

    /// Cost of answering with the *plain* junction tree (for savings
    /// percentages).
    pub fn baseline_cost(&self, query: &Scope) -> Result<QueryCost, PgmError> {
        self.engine.cost(query)
    }

    /// In-clique marginalization cost helper (exposed for INDSEP parity).
    pub fn in_clique_cost(&self, u: usize) -> Size {
        marginalization_ops(self.engine.tree().clique(u), self.engine.tree().domain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OfflineContext;
    use crate::workload::Workload;
    use peanut_junction::{build_junction_tree, NumericState, RootedTree};
    use peanut_pgm::{fixtures, joint};

    /// Hand-materialize one shortcut on the Figure-1 tree and check the
    /// online engine uses it correctly.
    #[test]
    fn online_engine_applies_useful_shortcut() {
        let bn = fixtures::figure1();
        let mut tree = build_junction_tree(&bn).unwrap();
        let d = bn.domain().clone();
        let bc = Scope::from_iter([d.var("b").unwrap(), d.var("c").unwrap()]);
        let pivot = tree.cliques().iter().position(|c| *c == bc).unwrap();
        tree.set_pivot(pivot);
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let mut ns = NumericState::initialize(&tree, &bn).unwrap();
        ns.calibrate(&tree, &rooted).unwrap();

        // shortcut over {egh}: scope {e, g}
        let egh = tree
            .cliques()
            .iter()
            .position(|c| {
                c.len() == 3 && c.contains(d.var("g").unwrap()) && c.contains(d.var("h").unwrap())
            })
            .unwrap();
        let s = Shortcut::from_nodes(&tree, &rooted, vec![egh]).unwrap();
        let (pot, _) = s.materialize(&tree, &rooted, &ns).unwrap();
        let benefit = 1.0;
        let mat = Materialization {
            shortcuts: vec![MaterializedShortcut {
                ratio: benefit / s.size() as f64,
                benefit,
                potential: Some(pot),
                shortcut: s,
            }],
            overlapping: false,
            epoch: 0,
        };
        let online = OnlineEngine::new(&engine, &mat);

        let q = Scope::from_iter([
            d.var("b").unwrap(),
            d.var("i").unwrap(),
            d.var("f").unwrap(),
        ]);
        let base = online.baseline_cost(&q).unwrap();
        let (got, with) = online.answer(&q).unwrap();
        let want = joint::marginal(&bn, &q).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-9);
        assert!(with.ops < base.ops, "shortcut must reduce cost");
        assert_eq!(with.shortcuts_used, 1);
    }

    /// A shortcut that would lose a query variable must not be applied.
    #[test]
    fn lossy_shortcut_not_applied() {
        let bn = fixtures::figure1();
        let mut tree = build_junction_tree(&bn).unwrap();
        let d = bn.domain().clone();
        let bc = Scope::from_iter([d.var("b").unwrap(), d.var("c").unwrap()]);
        let pivot = tree.cliques().iter().position(|c| *c == bc).unwrap();
        tree.set_pivot(pivot);
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let mut ns = NumericState::initialize(&tree, &bn).unwrap();
        ns.calibrate(&tree, &rooted).unwrap();

        // shortcut over {ce, ef, egh}: scope {c, e, g} — loses f
        let names: Vec<usize> = ["ce", "ef", "egh"]
            .iter()
            .map(|n| {
                let sc = Scope::from_iter(n.chars().map(|ch| d.var(&ch.to_string()).unwrap()));
                tree.cliques().iter().position(|c| *c == sc).unwrap()
            })
            .collect();
        let s = Shortcut::from_nodes(&tree, &rooted, names).unwrap();
        let (pot, _) = s.materialize(&tree, &rooted, &ns).unwrap();
        let mat = Materialization {
            shortcuts: vec![MaterializedShortcut {
                ratio: 1.0,
                benefit: 1.0,
                potential: Some(pot),
                shortcut: s,
            }],
            overlapping: false,
            epoch: 0,
        };
        let online = OnlineEngine::new(&engine, &mat);
        let q = Scope::from_iter([
            d.var("b").unwrap(),
            d.var("i").unwrap(),
            d.var("f").unwrap(),
        ]);
        let (got, cost) = online.answer(&q).unwrap();
        let want = joint::marginal(&bn, &q).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-9);
        assert_eq!(cost.shortcuts_used, 0, "lossy shortcut must be skipped");
    }

    /// Empty materialization behaves exactly like the plain engine.
    #[test]
    fn empty_materialization_is_plain_jt() {
        let bn = fixtures::asia();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::symbolic(&tree);
        let mat = Materialization::default();
        let online = OnlineEngine::new(&engine, &mat);
        for pair in [[0u32, 7], [1, 6], [2, 4]] {
            let q = Scope::from_indices(&pair);
            assert_eq!(online.cost(&q).unwrap().ops, engine.cost(&q).unwrap().ops);
        }
        let _ = OfflineContext::new(
            &tree,
            &Workload::from_queries([Scope::from_indices(&[0, 7])]),
        )
        .unwrap();
    }
}
