//! Flat packing of a materialization's shortcut tables.
//!
//! A [`FlatMaterialization`] is the serving-side counterpart of the
//! junction tree's [`TreeArena`](peanut_junction::TreeArena): every
//! materialized shortcut table of one [`Materialization`] copied into a
//! single contiguous `f64` slab, addressed by per-shortcut `(offset, len)`
//! spans. The epoch lifecycle publishes one of these per artifact, so a
//! published epoch is a *relocatable* buffer — the seam the planned
//! zero-copy mmap materialization store plugs into: persist the slab,
//! map it back, [`unpack_into`](FlatMaterialization::unpack_into) a
//! freshly selected (table-less) materialization, and serve.

use crate::online::Materialization;
use peanut_pgm::Size;

/// All dense shortcut tables of one materialization, packed back to back
/// into a single slab. Spans are parallel to
/// [`Materialization::shortcuts`]; symbolic shortcuts (no table) carry no
/// span.
#[derive(Clone, Debug, Default)]
pub struct FlatMaterialization {
    /// Lifecycle epoch of the packed artifact.
    epoch: u64,
    /// Per-shortcut `(offset, len)` into `slab`; `None` for symbolic
    /// (table-less) shortcuts.
    spans: Vec<Option<(usize, usize)>>,
    /// One contiguous value buffer holding every packed table.
    slab: Vec<f64>,
}

impl FlatMaterialization {
    /// Packs every dense table of `mat` into one contiguous slab, in
    /// shortcut order.
    pub fn pack(mat: &Materialization) -> Self {
        let mut spans = Vec::with_capacity(mat.shortcuts.len());
        let total: usize = mat
            .shortcuts
            .iter()
            .filter_map(|s| s.potential.as_ref().map(|p| p.len()))
            .sum();
        let mut slab = Vec::with_capacity(total);
        for s in &mat.shortcuts {
            spans.push(s.potential.as_ref().map(|p| {
                let off = slab.len();
                slab.extend_from_slice(p.values());
                (off, p.len())
            }));
        }
        FlatMaterialization {
            epoch: mat.epoch,
            spans,
            slab,
        }
    }

    /// The lifecycle epoch this pack was taken from.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shortcut slots (dense or symbolic).
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no shortcuts are packed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total packed entries (the dense portion of the actual budget).
    #[inline]
    pub fn packed_entries(&self) -> Size {
        self.slab.len() as Size
    }

    /// The whole packed slab — one relocatable buffer.
    #[inline]
    pub fn slab(&self) -> &[f64] {
        &self.slab
    }

    /// `(offset, len)` span of shortcut `i`'s table, `None` if symbolic.
    #[inline]
    pub fn span(&self, i: usize) -> Option<(usize, usize)> {
        self.spans[i]
    }

    /// The packed values of shortcut `i`'s table, `None` if symbolic.
    pub fn table(&self, i: usize) -> Option<&[f64]> {
        self.spans[i].map(|(off, len)| &self.slab[off..off + len])
    }

    /// Writes the packed values back into `mat`'s shortcut tables (the
    /// mmap-load path: reattach a persisted slab to a re-derived
    /// materialization). Returns `false` without touching anything when the
    /// shapes disagree — wrong shortcut count, a dense/symbolic mismatch,
    /// or a table length drift.
    #[must_use]
    pub fn unpack_into(&self, mat: &mut Materialization) -> bool {
        if mat.shortcuts.len() != self.spans.len() {
            return false;
        }
        let compatible =
            mat.shortcuts
                .iter()
                .zip(&self.spans)
                .all(|(s, span)| match (&s.potential, span) {
                    (Some(p), Some((_, len))) => p.len() == *len,
                    (None, None) => true,
                    _ => false,
                });
        if !compatible {
            return false;
        }
        for (s, span) in mat.shortcuts.iter_mut().zip(&self.spans) {
            if let (Some(p), Some((off, len))) = (&mut s.potential, span) {
                p.values_mut().copy_from_slice(&self.slab[*off..off + len]);
            }
        }
        mat.epoch = self.epoch;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::MaterializedShortcut;
    use crate::shortcut::Shortcut;
    use peanut_junction::{build_junction_tree, NumericState, RootedTree};
    use peanut_pgm::fixtures;

    fn sample_mat() -> Materialization {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let mut ns = NumericState::initialize(&tree, &bn).unwrap();
        ns.calibrate(&tree, &rooted).unwrap();
        let shortcuts = [vec![0], vec![1]]
            .into_iter()
            .filter_map(|nodes| Shortcut::from_nodes(&tree, &rooted, nodes).ok())
            .enumerate()
            .map(|(i, s)| {
                // leave every other shortcut symbolic to cover the None span
                let potential = (i % 2 == 0).then(|| s.materialize(&tree, &rooted, &ns).unwrap().0);
                MaterializedShortcut {
                    ratio: 1.0,
                    benefit: 1.0,
                    potential,
                    shortcut: s,
                }
            })
            .collect();
        Materialization {
            shortcuts,
            overlapping: false,
            epoch: 7,
        }
    }

    #[test]
    fn pack_round_trips_bitwise() {
        let mat = sample_mat();
        let flat = FlatMaterialization::pack(&mat);
        assert_eq!(flat.epoch(), 7);
        assert_eq!(flat.len(), mat.shortcuts.len());
        // packed tables are byte-identical to the owned ones
        for (i, s) in mat.shortcuts.iter().enumerate() {
            match (&s.potential, flat.table(i)) {
                (Some(p), Some(t)) => {
                    assert_eq!(p.len(), t.len());
                    for (a, b) in p.values().iter().zip(t) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
                (None, None) => {}
                other => panic!("span/table mismatch at {i}: {other:?}"),
            }
        }
        // relocate: zero the owned tables, reattach from the pack
        let mut blank = mat.clone();
        for s in &mut blank.shortcuts {
            if let Some(p) = &mut s.potential {
                p.values_mut().fill(0.0);
            }
        }
        blank.epoch = 0;
        assert!(flat.unpack_into(&mut blank));
        assert_eq!(blank.epoch, 7);
        for (a, b) in blank.shortcuts.iter().zip(&mat.shortcuts) {
            match (&a.potential, &b.potential) {
                (Some(pa), Some(pb)) => {
                    for (x, y) in pa.values().iter().zip(pb.values()) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                (None, None) => {}
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn unpack_rejects_shape_drift() {
        let mat = sample_mat();
        let flat = FlatMaterialization::pack(&mat);
        let mut fewer = mat.clone();
        fewer.shortcuts.pop();
        assert!(!flat.unpack_into(&mut fewer));
        let mut symbolic = mat.clone();
        for s in &mut symbolic.shortcuts {
            s.potential = None;
        }
        let before = symbolic.epoch;
        assert!(!flat.unpack_into(&mut symbolic));
        assert_eq!(symbolic.epoch, before, "failed unpack must not stamp");
    }

    #[test]
    fn empty_materialization_packs_empty() {
        let flat = FlatMaterialization::pack(&Materialization::default());
        assert!(flat.is_empty());
        assert_eq!(flat.packed_entries(), 0);
        assert!(flat.slab().is_empty());
    }
}
