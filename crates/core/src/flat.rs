//! Flat packing of a materialization's shortcut tables.
//!
//! A [`FlatMaterialization`] is the serving-side counterpart of the
//! junction tree's [`TreeArena`](peanut_junction::TreeArena): every
//! materialized shortcut table of one [`Materialization`] copied into a
//! single contiguous `f64` slab, addressed by per-shortcut `(offset, len)`
//! spans. The epoch lifecycle publishes one of these per artifact, so a
//! published epoch is a *relocatable* buffer — the seam the planned
//! zero-copy mmap materialization store plugs into: persist the slab,
//! map it back, [`unpack_into`](FlatMaterialization::unpack_into) a
//! freshly selected (table-less) materialization, and serve.

use crate::online::Materialization;
use peanut_pgm::Size;

/// Sentinel offset marking a symbolic (table-less) shortcut slot in the
/// on-disk span arrays a [`FlatView`] borrows. Dense spans always carry a
/// real offset, so the all-ones pattern can never collide with one.
pub const SYMBOLIC_SPAN: u64 = u64::MAX;

/// All dense shortcut tables of one materialization, packed back to back
/// into a single slab. Spans are parallel to
/// [`Materialization::shortcuts`]; symbolic shortcuts (no table) carry no
/// span.
#[derive(Clone, Debug, Default)]
pub struct FlatMaterialization {
    /// Lifecycle epoch of the packed artifact.
    epoch: u64,
    /// Per-shortcut `(offset, len)` into `slab`; `None` for symbolic
    /// (table-less) shortcuts.
    spans: Vec<Option<(usize, usize)>>,
    /// One contiguous value buffer holding every packed table.
    slab: Vec<f64>,
}

impl FlatMaterialization {
    /// Packs every dense table of `mat` into one contiguous slab, in
    /// shortcut order.
    pub fn pack(mat: &Materialization) -> Self {
        let mut spans = Vec::with_capacity(mat.shortcuts.len());
        let total: usize = mat
            .shortcuts
            .iter()
            .filter_map(|s| s.potential.as_ref().map(|p| p.len()))
            .sum();
        let mut slab = Vec::with_capacity(total);
        for s in &mat.shortcuts {
            spans.push(s.potential.as_ref().map(|p| {
                let off = slab.len();
                slab.extend_from_slice(p.values());
                (off, p.len())
            }));
        }
        FlatMaterialization {
            epoch: mat.epoch,
            spans,
            slab,
        }
    }

    /// The lifecycle epoch this pack was taken from.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shortcut slots (dense or symbolic).
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no shortcuts are packed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total packed entries (the dense portion of the actual budget).
    #[inline]
    pub fn packed_entries(&self) -> Size {
        self.slab.len() as Size
    }

    /// The whole packed slab — one relocatable buffer.
    #[inline]
    pub fn slab(&self) -> &[f64] {
        &self.slab
    }

    /// `(offset, len)` span of shortcut `i`'s table, `None` if symbolic.
    #[inline]
    pub fn span(&self, i: usize) -> Option<(usize, usize)> {
        self.spans[i]
    }

    /// The packed values of shortcut `i`'s table, `None` if symbolic.
    pub fn table(&self, i: usize) -> Option<&[f64]> {
        self.spans[i].map(|(off, len)| &self.slab[off..off + len])
    }

    /// Writes the packed values back into `mat`'s shortcut tables (the
    /// mmap-load path: reattach a persisted slab to a re-derived
    /// materialization). Returns `false` without touching anything when the
    /// shapes disagree — wrong shortcut count, a dense/symbolic mismatch,
    /// or a table length drift.
    #[must_use]
    pub fn unpack_into(&self, mat: &mut Materialization) -> bool {
        if mat.shortcuts.len() != self.spans.len() {
            return false;
        }
        let compatible =
            mat.shortcuts
                .iter()
                .zip(&self.spans)
                .all(|(s, span)| match (&s.potential, span) {
                    (Some(p), Some((_, len))) => p.len() == *len,
                    (None, None) => true,
                    _ => false,
                });
        if !compatible {
            return false;
        }
        for (s, span) in mat.shortcuts.iter_mut().zip(&self.spans) {
            if let (Some(p), Some((off, len))) = (&mut s.potential, span) {
                p.values_mut().copy_from_slice(&self.slab[*off..off + len]);
            }
        }
        mat.epoch = self.epoch;
        true
    }
}

/// A [`FlatMaterialization`] borrowed straight from someone else's memory —
/// the zero-copy read side of the materialization store. The span arrays
/// and the value slab are slices into an mmap'd (or otherwise externally
/// owned) buffer; constructing a view performs **no** deserialization pass
/// and no allocation. Symbolic shortcuts are marked with
/// [`SYMBOLIC_SPAN`] in the offset array.
///
/// The view is a safe type: whoever produces the slices (the store's
/// audited byte-cast module) is responsible for alignment and bounds; the
/// accessors here re-check span bounds so a corrupt file can at worst
/// return `None`, never read out of range.
#[derive(Clone, Copy, Debug)]
pub struct FlatView<'a> {
    epoch: u64,
    span_off: &'a [u64],
    span_len: &'a [u64],
    slab: &'a [f64],
}

impl<'a> FlatView<'a> {
    /// Wraps borrowed span arrays and a value slab as a view. Returns
    /// `None` when the two span arrays disagree in length (a malformed
    /// file) — span/slab *bounds* are checked lazily per access.
    pub fn new(
        epoch: u64,
        span_off: &'a [u64],
        span_len: &'a [u64],
        slab: &'a [f64],
    ) -> Option<Self> {
        if span_off.len() != span_len.len() {
            return None;
        }
        Some(FlatView {
            epoch,
            span_off,
            span_len,
            slab,
        })
    }

    /// The lifecycle epoch the viewed pack was taken from.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shortcut slots (dense or symbolic).
    #[inline]
    pub fn len(&self) -> usize {
        self.span_off.len()
    }

    /// True when no shortcuts are packed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.span_off.is_empty()
    }

    /// Total packed entries (the dense portion of the actual budget).
    #[inline]
    pub fn packed_entries(&self) -> Size {
        self.slab.len() as Size
    }

    /// The whole borrowed slab.
    #[inline]
    pub fn slab(&self) -> &'a [f64] {
        self.slab
    }

    /// `(offset, len)` span of shortcut `i`'s table; `None` if symbolic
    /// or out of the slab's bounds (corrupt span).
    pub fn span(&self, i: usize) -> Option<(usize, usize)> {
        let off = self.span_off[i];
        if off == SYMBOLIC_SPAN {
            return None;
        }
        let (off, len) = (off as usize, self.span_len[i] as usize);
        (off.checked_add(len)? <= self.slab.len()).then_some((off, len))
    }

    /// The borrowed values of shortcut `i`'s table, `None` if symbolic.
    pub fn table(&self, i: usize) -> Option<&'a [f64]> {
        self.span(i).map(|(off, len)| &self.slab[off..off + len])
    }

    /// Copies the view into an owned [`FlatMaterialization`] (the one
    /// deliberate copy on a rehydration path that needs to outlive the
    /// mapping).
    pub fn to_flat(&self) -> FlatMaterialization {
        FlatMaterialization {
            epoch: self.epoch,
            spans: (0..self.len()).map(|i| self.span(i)).collect(),
            slab: self.slab.to_vec(),
        }
    }

    /// Writes the viewed values into `mat`'s shortcut tables, shape-checked
    /// exactly like [`FlatMaterialization::unpack_into`]: returns `false`
    /// without touching anything on any disagreement.
    #[must_use]
    pub fn unpack_into(&self, mat: &mut Materialization) -> bool {
        if mat.shortcuts.len() != self.len() {
            return false;
        }
        let compatible =
            mat.shortcuts
                .iter()
                .enumerate()
                .all(|(i, s)| match (&s.potential, self.span(i)) {
                    (Some(p), Some((_, len))) => p.len() == len,
                    (None, None) => self.span_off[i] == SYMBOLIC_SPAN,
                    _ => false,
                });
        if !compatible {
            return false;
        }
        for (i, s) in mat.shortcuts.iter_mut().enumerate() {
            if let (Some(p), Some((off, len))) = (&mut s.potential, self.span(i)) {
                p.values_mut().copy_from_slice(&self.slab[off..off + len]);
            }
        }
        mat.epoch = self.epoch;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::MaterializedShortcut;
    use crate::shortcut::Shortcut;
    use peanut_junction::{build_junction_tree, NumericState, RootedTree};
    use peanut_pgm::fixtures;

    fn sample_mat() -> Materialization {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let mut ns = NumericState::initialize(&tree, &bn).unwrap();
        ns.calibrate(&tree, &rooted).unwrap();
        let shortcuts = [vec![0], vec![1]]
            .into_iter()
            .filter_map(|nodes| Shortcut::from_nodes(&tree, &rooted, nodes).ok())
            .enumerate()
            .map(|(i, s)| {
                // leave every other shortcut symbolic to cover the None span
                let potential = (i % 2 == 0).then(|| s.materialize(&tree, &rooted, &ns).unwrap().0);
                MaterializedShortcut {
                    ratio: 1.0,
                    benefit: 1.0,
                    potential,
                    shortcut: s,
                }
            })
            .collect();
        Materialization {
            shortcuts,
            overlapping: false,
            epoch: 7,
        }
    }

    #[test]
    fn pack_round_trips_bitwise() {
        let mat = sample_mat();
        let flat = FlatMaterialization::pack(&mat);
        assert_eq!(flat.epoch(), 7);
        assert_eq!(flat.len(), mat.shortcuts.len());
        // packed tables are byte-identical to the owned ones
        for (i, s) in mat.shortcuts.iter().enumerate() {
            match (&s.potential, flat.table(i)) {
                (Some(p), Some(t)) => {
                    assert_eq!(p.len(), t.len());
                    for (a, b) in p.values().iter().zip(t) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
                (None, None) => {}
                other => panic!("span/table mismatch at {i}: {other:?}"),
            }
        }
        // relocate: zero the owned tables, reattach from the pack
        let mut blank = mat.clone();
        for s in &mut blank.shortcuts {
            if let Some(p) = &mut s.potential {
                p.values_mut().fill(0.0);
            }
        }
        blank.epoch = 0;
        assert!(flat.unpack_into(&mut blank));
        assert_eq!(blank.epoch, 7);
        for (a, b) in blank.shortcuts.iter().zip(&mat.shortcuts) {
            match (&a.potential, &b.potential) {
                (Some(pa), Some(pb)) => {
                    for (x, y) in pa.values().iter().zip(pb.values()) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                (None, None) => {}
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn unpack_rejects_shape_drift() {
        let mat = sample_mat();
        let flat = FlatMaterialization::pack(&mat);
        let mut fewer = mat.clone();
        fewer.shortcuts.pop();
        assert!(!flat.unpack_into(&mut fewer));
        let mut symbolic = mat.clone();
        for s in &mut symbolic.shortcuts {
            s.potential = None;
        }
        let before = symbolic.epoch;
        assert!(!flat.unpack_into(&mut symbolic));
        assert_eq!(symbolic.epoch, before, "failed unpack must not stamp");
    }

    #[test]
    fn empty_materialization_packs_empty() {
        let flat = FlatMaterialization::pack(&Materialization::default());
        assert!(flat.is_empty());
        assert_eq!(flat.packed_entries(), 0);
        assert!(flat.slab().is_empty());
    }

    /// Encodes a pack the way the store file does: `u64` span arrays with
    /// the symbolic sentinel.
    fn spans_of(flat: &FlatMaterialization) -> (Vec<u64>, Vec<u64>) {
        (0..flat.len())
            .map(|i| match flat.span(i) {
                Some((off, len)) => (off as u64, len as u64),
                None => (SYMBOLIC_SPAN, 0),
            })
            .unzip()
    }

    #[test]
    fn view_round_trips_bitwise_and_rebuilds_owned() {
        let mat = sample_mat();
        let flat = FlatMaterialization::pack(&mat);
        let (off, len) = spans_of(&flat);
        let view = FlatView::new(flat.epoch(), &off, &len, flat.slab()).unwrap();
        assert_eq!(view.epoch(), 7);
        assert_eq!(view.len(), flat.len());
        assert_eq!(view.packed_entries(), flat.packed_entries());
        for i in 0..flat.len() {
            match (flat.table(i), view.table(i)) {
                (Some(a), Some(b)) => {
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                (None, None) => assert_eq!(view.span(i), None),
                other => panic!("table mismatch at {i}: {other:?}"),
            }
        }
        // unpack through the view restores a blanked materialization
        let mut blank = mat.clone();
        for s in &mut blank.shortcuts {
            if let Some(p) = &mut s.potential {
                p.values_mut().fill(0.0);
            }
        }
        blank.epoch = 0;
        assert!(view.unpack_into(&mut blank));
        assert_eq!(blank.epoch, 7);
        for (a, b) in blank.shortcuts.iter().zip(&mat.shortcuts) {
            match (&a.potential, &b.potential) {
                (Some(pa), Some(pb)) => assert_eq!(pa.values(), pb.values()),
                (None, None) => {}
                _ => unreachable!(),
            }
        }
        // ...and the owned copy equals the original pack bitwise
        let owned = view.to_flat();
        assert_eq!(owned.epoch(), flat.epoch());
        assert_eq!(owned.slab().len(), flat.slab().len());
        for (a, b) in owned.slab().iter().zip(flat.slab()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn view_rejects_malformed_spans() {
        // disagreeing span-array lengths never construct
        assert!(FlatView::new(0, &[0], &[], &[]).is_none());
        // a span pointing past the slab is reported as absent, not read
        let slab = [1.0, 2.0];
        let view = FlatView::new(3, &[1], &[4], &slab).unwrap();
        assert_eq!(view.span(0), None);
        assert_eq!(view.table(0), None);
        // an overflowing offset+len must not wrap around
        let view = FlatView::new(3, &[u64::MAX - 1], &[4], &slab).unwrap();
        assert_eq!(view.span(0), None);
        // a dense-looking mat cannot attach to the corrupt span
        let mut mat = sample_mat();
        let (off, len) = spans_of(&FlatMaterialization::pack(&mat));
        let mut bad_off = off.clone();
        bad_off[0] = 10_000; // out of the slab
        let flat = FlatMaterialization::pack(&mat);
        let view = FlatView::new(7, &bad_off, &len, flat.slab()).unwrap();
        assert!(!view.unpack_into(&mut mat));
    }
}
