//! Shortcut potentials (paper §3.2).
//!
//! A shortcut potential `S` is identified by a connected subtree `T_S ⊆ T`;
//! it is the joint distribution of the variables in the separators that cut
//! `T_S` out of `T` (its scope `X_S`), and materializing it costs
//! `μ(S) = ∏_{x ∈ X_S} α(x)` table entries.

use crate::util::BitSet;
use peanut_junction::{JunctionTree, NumericState, ReducedTree, RootedTree, SteinerTree};
use peanut_pgm::{PgmError, Potential, Scope, Size};

/// A shortcut potential: subtree, cut, scope and size (§3.2).
#[derive(Clone, Debug)]
pub struct Shortcut {
    /// `V(S)`: member cliques, ascending id.
    nodes: Vec<usize>,
    /// Membership bitset over clique ids.
    node_set: BitSet,
    /// `r_S`: the member closest to the pivot.
    root: usize,
    /// `cut(S)`: edge ids with exactly one endpoint in `V(S)`.
    cut: Vec<usize>,
    /// `X_S`: union of the cut separators' scopes.
    scope: Scope,
    /// `μ(S) = ∏_{x ∈ X_S} α(x)`.
    size: Size,
}

impl Shortcut {
    /// Builds a shortcut from its member cliques, validating connectivity
    /// and computing cut, scope and size.
    pub fn from_nodes(
        tree: &JunctionTree,
        rooted: &RootedTree,
        mut nodes: Vec<usize>,
    ) -> Result<Self, PgmError> {
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.is_empty() {
            return Err(PgmError::UnknownName("empty shortcut subtree".into()));
        }
        let node_set = BitSet::from_members(tree.n_cliques(), nodes.iter().copied());
        // connectivity + root: exactly one member whose parent is not a
        // member (or which is the global root)
        let mut tops: Vec<usize> = nodes
            .iter()
            .copied()
            .filter(|&u| rooted.parent(u).is_none_or(|p| !node_set.contains(p)))
            .collect();
        if tops.len() != 1 {
            return Err(PgmError::UnknownName(format!(
                "shortcut subtree is not connected ({} components)",
                tops.len()
            )));
        }
        let root = tops.pop().expect("single top");

        // cut: the root's parent edge plus every member-to-nonmember child
        // edge
        let mut cut = Vec::new();
        let mut scope = Scope::empty();
        if let Some(e) = rooted.parent_edge(root) {
            cut.push(e);
            scope = scope.union(tree.separator(e));
        }
        for &u in &nodes {
            for &(w, e) in tree.neighbors(u) {
                if rooted.parent(w) == Some(u) && !node_set.contains(w) {
                    cut.push(e);
                    scope = scope.union(tree.separator(e));
                }
            }
        }
        cut.sort_unstable();
        let size = peanut_pgm::table_size(&scope, tree.domain());
        Ok(Shortcut {
            nodes,
            node_set,
            root,
            cut,
            scope,
            size,
        })
    }

    /// `V(S)`, ascending clique ids.
    #[inline]
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Membership bitset.
    #[inline]
    pub fn node_set(&self) -> &BitSet {
        &self.node_set
    }

    /// `r_S`.
    #[inline]
    pub fn root(&self) -> usize {
        self.root
    }

    /// `cut(S)` edge ids.
    #[inline]
    pub fn cut(&self) -> &[usize] {
        &self.cut
    }

    /// `X_S`.
    #[inline]
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// `μ(S)`.
    #[inline]
    pub fn size(&self) -> Size {
        self.size
    }

    /// True when the two shortcuts share a clique (used by PEANUT+'s
    /// conflict graph).
    pub fn overlaps(&self, other: &Shortcut) -> bool {
        self.node_set.intersects(&other.node_set)
    }

    /// The frontier `D(S)`: cliques outside `V(S)` whose parent is inside —
    /// the roots of the subtrees BUDP may keep packing below `S`.
    pub fn frontier(&self, rooted: &RootedTree) -> Vec<usize> {
        let mut d: Vec<usize> = self
            .nodes
            .iter()
            .flat_map(|&u| rooted.children(u).iter().copied())
            .filter(|&w| !self.node_set.contains(w))
            .collect();
        d.sort_unstable();
        d
    }

    /// Materializes the joint `P(X_S)` from a calibrated tree by message
    /// passing inside `T_S`, returning the table and the operation count of
    /// computing it (charged to the offline phase).
    pub fn materialize(
        &self,
        tree: &JunctionTree,
        rooted: &RootedTree,
        numeric: &NumericState,
    ) -> Result<(Potential, Size), PgmError> {
        let st = SteinerTree::from_parts(self.nodes.clone(), self.root);
        let rt = ReducedTree::from_steiner(tree, rooted, &st, Some(numeric));
        // note: the subtree root's own sep-to-parent division must NOT be
        // applied here — from_steiner marks the region root as the reduced
        // root, so no division happens at it, and `answer` with query = X_S
        // yields exactly P(X_S).
        let (pot, cost) = rt.answer(&self.scope, tree.domain())?;
        Ok((pot, cost.ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_junction::build_junction_tree;
    use peanut_pgm::{fixtures, joint};

    fn fig1() -> (peanut_pgm::BayesianNetwork, JunctionTree, RootedTree) {
        let bn = fixtures::figure1();
        let mut tree = build_junction_tree(&bn).unwrap();
        // root at the clique containing b and c, as in the paper's Figure 2
        let d = bn.domain();
        let bc = Scope::from_iter([d.var("b").unwrap(), d.var("c").unwrap()]);
        let pivot = tree.cliques().iter().position(|c| *c == bc).unwrap();
        tree.set_pivot(pivot);
        let rooted = RootedTree::new(&tree);
        (bn, tree, rooted)
    }

    fn clique_named(tree: &JunctionTree, d: &peanut_pgm::Domain, names: &[&str]) -> usize {
        let sc = Scope::from_iter(names.iter().map(|n| d.var(n).unwrap()));
        tree.cliques().iter().position(|c| *c == sc).unwrap()
    }

    #[test]
    fn paper_figure2_shortcut() {
        // The paper's Figure 2 shortcut is the subtree {egh, ce} with scope
        // {c, e, g} in *their* tree (where both ef and egh hang off ce). In
        // our tree egh hangs off ef (an equally valid MST), so the analogous
        // connected region is {ce, ef, egh}; its cut is bc–ce (over c) and
        // egh–gil (over g) — the e-separators are internal — giving scope
        // {c, g} and size 4.
        let (bn, tree, rooted) = fig1();
        let d = bn.domain();
        let region = vec![
            clique_named(&tree, d, &["c", "e"]),
            clique_named(&tree, d, &["e", "f"]),
            clique_named(&tree, d, &["e", "g", "h"]),
        ];
        let s = Shortcut::from_nodes(&tree, &rooted, region).unwrap();
        let expect = Scope::from_iter([d.var("c").unwrap(), d.var("g").unwrap()]);
        assert_eq!(s.scope(), &expect);
        assert_eq!(s.size(), 4);
        assert_eq!(s.cut().len(), 2);

        // the two-clique region {ce, ef} reproduces a three-separator cut:
        // bc–ce (c), ef–egh (e) ⇒ scope {c, e}
        let region2 = vec![
            clique_named(&tree, d, &["c", "e"]),
            clique_named(&tree, d, &["e", "f"]),
        ];
        let s2 = Shortcut::from_nodes(&tree, &rooted, region2).unwrap();
        let expect2 = Scope::from_iter([d.var("c").unwrap(), d.var("e").unwrap()]);
        assert_eq!(s2.scope(), &expect2);
    }

    #[test]
    fn disconnected_nodes_rejected() {
        let (bn, tree, rooted) = fig1();
        let d = bn.domain();
        let nodes = vec![
            clique_named(&tree, d, &["a", "b", "d"]),
            clique_named(&tree, d, &["g", "i", "l"]),
        ];
        assert!(Shortcut::from_nodes(&tree, &rooted, nodes).is_err());
        assert!(Shortcut::from_nodes(&tree, &rooted, vec![]).is_err());
    }

    #[test]
    fn whole_tree_shortcut_has_empty_scope() {
        let (_, tree, rooted) = fig1();
        let all: Vec<usize> = (0..tree.n_cliques()).collect();
        let s = Shortcut::from_nodes(&tree, &rooted, all).unwrap();
        assert!(s.scope().is_empty());
        assert_eq!(s.size(), 1);
        assert!(s.cut().is_empty());
        assert!(s.frontier(&rooted).is_empty());
    }

    #[test]
    fn materialized_table_is_brute_force_marginal() {
        let (bn, tree, rooted) = fig1();
        let d = bn.domain();
        let mut ns = NumericState::initialize(&tree, &bn).unwrap();
        ns.calibrate(&tree, &rooted).unwrap();
        let region = vec![
            clique_named(&tree, d, &["c", "e"]),
            clique_named(&tree, d, &["e", "f"]),
            clique_named(&tree, d, &["e", "g", "h"]),
        ];
        let s = Shortcut::from_nodes(&tree, &rooted, region).unwrap();
        let (pot, ops) = s.materialize(&tree, &rooted, &ns).unwrap();
        let want = joint::marginal(&bn, s.scope()).unwrap();
        assert!(pot.max_abs_diff(&want).unwrap() < 1e-9);
        assert!(ops > 0);
    }

    #[test]
    fn overlap_and_frontier() {
        let (bn, tree, rooted) = fig1();
        let d = bn.domain();
        let ce = clique_named(&tree, d, &["c", "e"]);
        let ef = clique_named(&tree, d, &["e", "f"]);
        let egh = clique_named(&tree, d, &["e", "g", "h"]);
        let gil = clique_named(&tree, d, &["g", "i", "l"]);
        let s1 = Shortcut::from_nodes(&tree, &rooted, vec![ce, ef]).unwrap();
        let s2 = Shortcut::from_nodes(&tree, &rooted, vec![ef, egh]).unwrap();
        let s3 = Shortcut::from_nodes(&tree, &rooted, vec![gil]).unwrap();
        assert!(s1.overlaps(&s2));
        assert!(!s1.overlaps(&s3));
        // frontier of {ce, ef}: children outside = egh
        assert_eq!(s1.frontier(&rooted), vec![egh]);
    }
}
