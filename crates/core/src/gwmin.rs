//! GWMIN — the greedy maximum-weight-independent-set heuristic of Sakai,
//! Togasaki and Yamazaki (2003), used by PEANUT+'s online phase to pick a
//! non-conflicting set of overlapping shortcut potentials (§4.6).

/// Selects an independent set of the conflict graph greedily: repeatedly
/// take the vertex maximizing `w(v) / (deg(v) + 1)` among the remaining
/// vertices, then delete it and its neighbors.
///
/// `adj[i]` lists the neighbors of vertex `i`; `weights[i] ≥ 0`. Returns the
/// chosen vertex indices in selection order. GWMIN guarantees a total
/// weight of at least `Σ_v w(v)/(deg(v)+1)`.
pub fn gwmin(weights: &[f64], adj: &[Vec<usize>]) -> Vec<usize> {
    let n = weights.len();
    debug_assert_eq!(adj.len(), n);
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut chosen = Vec::new();
    loop {
        let mut best: Option<(f64, usize)> = None;
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            let score = weights[v] / (degree[v] + 1) as f64;
            // ties broken by lower index for determinism
            if best.is_none_or(|(bs, bv)| score > bs || (score == bs && v < bv)) {
                best = Some((score, v));
            }
        }
        let Some((_, v)) = best else { break };
        chosen.push(v);
        alive[v] = false;
        for &u in &adj[v] {
            if alive[u] {
                alive[u] = false;
                for &w in &adj[u] {
                    degree[w] = degree[w].saturating_sub(1);
                }
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        assert!(gwmin(&[], &[]).is_empty());
    }

    #[test]
    fn isolated_vertices_all_chosen() {
        let w = [1.0, 2.0, 3.0];
        let adj = vec![vec![], vec![], vec![]];
        let mut got = gwmin(&w, &adj);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn triangle_picks_heaviest() {
        let w = [1.0, 5.0, 2.0];
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        assert_eq!(gwmin(&w, &adj), vec![1]);
    }

    #[test]
    fn path_alternates() {
        // path 0-1-2-3 with equal weights: degree heuristic takes the
        // endpoints first
        let w = [1.0, 1.0, 1.0, 1.0];
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let mut got = gwmin(&w, &adj);
        got.sort_unstable();
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn result_is_independent() {
        // star: center heavy but high degree
        let w = [10.0, 4.0, 4.0, 4.0, 4.0];
        let adj = vec![vec![1, 2, 3, 4], vec![0], vec![0], vec![0], vec![0]];
        let got = gwmin(&w, &adj);
        for (i, &a) in got.iter().enumerate() {
            for &b in &got[i + 1..] {
                assert!(!adj[a].contains(&b));
            }
        }
        // leaves total 16 > center 10; scores: center 10/5 = 2, leaves 4/2 = 2
        // → tie broken toward center (index 0)... then leaves die. Check
        // independence held regardless.
        assert!(!got.is_empty());
    }
}
