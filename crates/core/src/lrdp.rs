//! LRDP — the left-to-right (depth-first) dynamic program for the
//! **single optimal shortcut potential** problem (SOSP, Algorithms 1–2).
//!
//! ## Formulation
//!
//! For a root `r_S`, the paper's candidate space is: shortcut subtrees
//! `V(S) ∋ r_S` contained in `subtree(r_S)`. Every candidate is identified
//! by a non-empty *antichain of explicit cut edges* `{(v, π_v)}` — no chosen
//! edge an ancestor of another — with `V(S)` the union of the paths
//! `path(π_v, r_S)`. Algorithm 1 values a candidate through the per-branch
//! quantities `b_Q(v)` / `c(v)` — the true benefit (Def. 3.3) and true size
//! `μ` of the single-path shortcut `S_v = path(π_v, r_S)` — composing
//! benefits additively and costs multiplicatively across branches (see the
//! faithfulness notes). The forward/backward passes of the paper's
//! pseudocode compute the optimum of that valuation; we implement the
//! equivalent post-order branch DP, which is clearer and has the same
//! `O(n·K²)` complexity (over the budget grid, `O(n·|G|²)`).
//!
//! ## Faithfulness notes (see `DESIGN.md` §5)
//!
//! * Benefits of merged branches are additive *estimates* (shared path
//!   nodes re-counted). Costs of merged branches compose **multiplicatively**
//!   (`μ(S₁∪S₂) ≤ μ(S₁)·μ(S₂)`, exact when the branch cut scopes are
//!   disjoint) — the reading consistent with the paper's own NP-hardness
//!   reduction (`e^{Σw} = Πe^w`) and with Figure 4's actual ≤ target
//!   budgets; a literal additive Σc(v) would under-estimate merged sizes by
//!   orders of magnitude. Reconstructed solutions get their **true** `μ(S)`
//!   and true benefit recomputed; multiplicative composition guarantees
//!   `true μ(S) ≤` the DP estimate, so budgets are never exceeded.
//! * Costs round **up** to grid points, so a solution's additive estimate
//!   never exceeds the budget it was returned for.
//! * Like the paper's edge-indexed tables, candidates never include a leaf
//!   clique of the junction tree in `V(S)` (there is no edge below a leaf to
//!   cut).

use crate::context::OfflineContext;
use crate::exec::{Executor, ScopedExecutor};
use crate::grid::BudgetGrid;
use crate::shortcut::Shortcut;
use crate::sync::OnceLock;
use peanut_pgm::{Size, Var};
use std::collections::HashMap;

/// A reconstructed SOSP solution.
#[derive(Clone, Debug)]
pub struct ShortcutSolution {
    /// The shortcut with its true cut/scope/size.
    pub shortcut: Shortcut,
    /// The DP's additive benefit estimate.
    pub dp_benefit: f64,
    /// The DP's additive cost estimate (grid value it was charged).
    pub dp_cost: Size,
    /// True workload benefit `B(S, Q)` (Def. 3.3).
    pub true_benefit: f64,
    /// Smallest grid index at which this solution is optimal.
    pub min_index: usize,
}

/// LRDP output for one root: the optimal shortcut per budget grid point.
#[derive(Clone, Debug)]
pub struct RootTables {
    /// `r_S`.
    pub root: usize,
    /// `P[r_S, c]` per grid index (`NEG_INFINITY` = no candidate fits).
    pub dp_value: Vec<f64>,
    /// Unique reconstructed solutions.
    pub solutions: Vec<ShortcutSolution>,
    /// Grid index → index into `solutions`.
    pub per_budget: Vec<Option<usize>>,
}

/// Runs LRDP for every clique as `r_S`, optionally fanning out across
/// threads (the roots are independent). Spawn-per-call; see
/// [`lrdp_all_on`] for running on an externally owned executor (e.g. the
/// serving tier's persistent worker pool).
pub fn lrdp_all(ctx: &OfflineContext, grid: &BudgetGrid, threads: usize) -> Vec<RootTables> {
    lrdp_all_on(ctx, grid, &ScopedExecutor::new(threads))
}

/// Runs LRDP for every clique as `r_S` on the given [`Executor`]. Tiny
/// trees skip the fan-out entirely — the DP per root is cheaper than any
/// dispatch. Output is deterministic (sorted by root) regardless of task
/// completion order.
pub fn lrdp_all_on(
    ctx: &OfflineContext,
    grid: &BudgetGrid,
    exec: &dyn Executor,
) -> Vec<RootTables> {
    let n = ctx.tree().n_cliques();
    if n < 4 {
        return (0..n).map(|r| lrdp(ctx, r, grid)).collect();
    }
    // each task owns slot `r`: no result lock, and the output is already
    // in root order — no reassembly sort
    let slots: Vec<OnceLock<RootTables>> = (0..n).map(|_| OnceLock::new()).collect();
    exec.run_tasks(n, &|r| {
        let tables = lrdp(ctx, r, grid);
        assert!(slots[r].set(tables).is_ok(), "executor runs each root once");
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("executor ran every root"))
        .collect()
}

/// Runs LRDP rooted at `r_s` over the given budget grid.
pub fn lrdp(ctx: &OfflineContext, r_s: usize, grid: &BudgetGrid) -> RootTables {
    let rooted = ctx.rooted();
    let m = grid.len();
    let sub_nodes = rooted.subtree_nodes(r_s).to_vec();
    if rooted.children(r_s).is_empty() {
        // leaf root: no candidate has an edge to cut below r_s
        return RootTables {
            root: r_s,
            dp_value: vec![f64::NEG_INFINITY; m],
            solutions: Vec::new(),
            per_budget: vec![None; m],
        };
    }

    // ---- pass 1: per-node path values b_Q(v), c(v) -------------------
    let mut cut_val: HashMap<usize, f64> = HashMap::with_capacity(sub_nodes.len());
    let mut cut_cost_idx: HashMap<usize, Option<usize>> = HashMap::with_capacity(sub_nodes.len());
    {
        let mut state = PathState::new(ctx);
        state.push(r_s);
        // iterative DFS carrying an explicit stack of (node, next-child)
        let mut stack: Vec<(usize, usize)> = vec![(r_s, 0)];
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let kids = rooted.children(u);
            if *next < kids.len() {
                let w = kids[*next];
                *next += 1;
                // path currently ends at u = π_w: value/cost of S_w
                let (val, cost) = state.read();
                cut_val.insert(w, val);
                cut_cost_idx.insert(w, grid.round_up(cost));
                state.push(w);
                stack.push((w, 0));
            } else {
                state.pop(u);
                stack.pop();
            }
        }
    }

    // ---- pass 2: post-order branch DP ---------------------------------
    // D[w][ci]: best additive value of w's branch decision within budget
    // grid[ci]; NEG_INFINITY when infeasible.
    let mut d: HashMap<usize, Vec<f64>> = HashMap::with_capacity(sub_nodes.len());
    let mut choice: HashMap<usize, Vec<Choice>> = HashMap::with_capacity(sub_nodes.len());
    let mut combines: HashMap<usize, Combine> = HashMap::new();

    for &w in sub_nodes.iter().rev() {
        if w == r_s {
            continue;
        }
        let kids = rooted.children(w);
        let mut table = vec![f64::NEG_INFINITY; m];
        let mut ch = vec![Choice::None; m];
        // option 1: explicit cut at (w, π_w)
        if let Some(start) = cut_cost_idx[&w] {
            let val = cut_val[&w];
            for ci in start..m {
                if val > table[ci] {
                    table[ci] = val;
                    ch[ci] = Choice::Cut;
                }
            }
        }
        // option 2: extend into w — requires ≥1 explicit cut deeper
        if !kids.is_empty() {
            let child_tables: Vec<&[f64]> = kids.iter().map(|c| d[c].as_slice()).collect();
            let comb = Combine::run(&child_tables, grid, Compose::Mul);
            for ci in 0..m {
                if comb.req[ci] > table[ci] {
                    table[ci] = comb.req[ci];
                    ch[ci] = Choice::Extend;
                }
            }
            combines.insert(w, comb);
        }
        d.insert(w, table);
        choice.insert(w, ch);
    }

    // ---- top level: combine r_s's children, at least one explicit cut --
    let kids = rooted.children(r_s);
    let child_tables: Vec<&[f64]> = kids.iter().map(|c| d[c].as_slice()).collect();
    let top = Combine::run(&child_tables, grid, Compose::Mul);
    let dp_value = top.req.clone();

    // ---- reconstruction ------------------------------------------------
    let mut solutions: Vec<ShortcutSolution> = Vec::new();
    let mut per_budget: Vec<Option<usize>> = vec![None; m];
    let mut seen: HashMap<Vec<usize>, usize> = HashMap::new();
    for ci in 0..m {
        if !dp_value[ci].is_finite() || dp_value[ci] <= 0.0 {
            continue;
        }
        let mut cut_nodes: Vec<usize> = Vec::new();
        let taken = top.backtrack(true, ci, kids);
        for (w, ci_w) in taken {
            collect_cuts(w, ci_w, &choice, &combines, rooted, &mut cut_nodes);
        }
        if cut_nodes.is_empty() {
            continue;
        }
        cut_nodes.sort_unstable();
        let idx = match seen.get(&cut_nodes) {
            Some(&i) => i,
            None => {
                // V(S) = union of paths from each cut node's parent to r_s
                let mut members: Vec<usize> = Vec::new();
                let mut marked = vec![false; ctx.tree().n_cliques()];
                for &cn in &cut_nodes {
                    let mut u = rooted.parent(cn).expect("cut node below r_s");
                    loop {
                        if marked[u] {
                            break;
                        }
                        marked[u] = true;
                        members.push(u);
                        if u == r_s {
                            break;
                        }
                        u = rooted.parent(u).expect("within subtree");
                    }
                }
                let shortcut = Shortcut::from_nodes(ctx.tree(), rooted, members)
                    .expect("reconstructed member set is connected");
                let true_benefit = ctx.benefit(&shortcut);
                let i = solutions.len();
                solutions.push(ShortcutSolution {
                    shortcut,
                    dp_benefit: dp_value[ci],
                    dp_cost: grid.value(ci),
                    true_benefit,
                    min_index: ci,
                });
                seen.insert(cut_nodes.clone(), i);
                i
            }
        };
        per_budget[ci] = Some(idx);
    }

    RootTables {
        root: r_s,
        dp_value,
        solutions,
        per_budget,
    }
}

fn collect_cuts(
    w: usize,
    ci: usize,
    choice: &HashMap<usize, Vec<Choice>>,
    combines: &HashMap<usize, Combine>,
    rooted: &peanut_junction::RootedTree,
    out: &mut Vec<usize>,
) {
    match choice[&w][ci] {
        Choice::None => unreachable!("backtrack reached an infeasible state"),
        Choice::Cut => out.push(w),
        Choice::Extend => {
            let comb = &combines[&w];
            for (c, ci_c) in comb.backtrack(true, ci, rooted.children(w)) {
                collect_cuts(c, ci_c, choice, combines, rooted, out);
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Choice {
    None,
    Cut,
    Extend,
}

/// How branch/packing costs compose in a [`Combine`] run: multiplicative
/// within a single shortcut (scope unions), additive across disjoint
/// shortcuts (storage).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Compose {
    /// Storage of separate tables adds.
    Add,
    /// Scope unions multiply table sizes.
    Mul,
}

/// Backpointer of one combine-layer cell.
#[derive(Clone, Copy, Debug)]
enum CombPtr {
    /// Impossible state.
    Dead,
    /// Value inherited from the previous grid index (prefix max).
    Inherit,
    /// Child skipped (value from previous layer, same index).
    Skip,
    /// Child taken with the given allocations.
    Take { prev_ci: usize, child_ci: usize },
}

/// Knapsack combination of children branch tables over the budget grid with
/// round-up cost addition. Shared with BUDP (crate-internal).
pub(crate) struct Combine {
    /// Best value, any number of children taken.
    pub(crate) free: Vec<f64>,
    /// Best value, at least one child taken.
    pub(crate) req: Vec<f64>,
    free_ptr: Vec<Vec<CombPtr>>,
    req_ptr: Vec<Vec<CombPtr>>,
}

impl Combine {
    #[allow(clippy::needless_range_loop)] // prev_ci indexes `free` and feeds grid.combine*
    pub(crate) fn run(children: &[&[f64]], grid: &BudgetGrid, mode: Compose) -> Combine {
        let m = grid.len();
        let mut free = vec![0.0f64; m];
        let mut req = vec![f64::NEG_INFINITY; m];
        let mut free_ptr: Vec<Vec<CombPtr>> = Vec::with_capacity(children.len());
        let mut req_ptr: Vec<Vec<CombPtr>> = Vec::with_capacity(children.len());
        for table in children {
            let mut nf = free.clone();
            let mut nr = req.clone();
            let mut pf = vec![CombPtr::Skip; m];
            let mut pr: Vec<CombPtr> = req
                .iter()
                .map(|v| {
                    if v.is_finite() {
                        CombPtr::Skip
                    } else {
                        CombPtr::Dead
                    }
                })
                .collect();
            for prev_ci in 0..m {
                if !free[prev_ci].is_finite() {
                    continue;
                }
                for (child_ci, &cv) in table.iter().enumerate() {
                    if !cv.is_finite() {
                        continue;
                    }
                    let combined = match mode {
                        Compose::Add => grid.combine(prev_ci, child_ci),
                        Compose::Mul => grid.combine_mul(prev_ci, child_ci),
                    };
                    let Some(t) = combined else {
                        break; // larger child_ci only grows the combination
                    };
                    let cand = free[prev_ci] + cv;
                    if cand > nf[t] {
                        nf[t] = cand;
                        pf[t] = CombPtr::Take { prev_ci, child_ci };
                    }
                    if cand > nr[t] {
                        nr[t] = cand;
                        pr[t] = CombPtr::Take { prev_ci, child_ci };
                    }
                }
            }
            // prefix max to keep tables monotone
            for ci in 1..m {
                if nf[ci - 1] > nf[ci] {
                    nf[ci] = nf[ci - 1];
                    pf[ci] = CombPtr::Inherit;
                }
                if nr[ci - 1] > nr[ci] {
                    nr[ci] = nr[ci - 1];
                    pr[ci] = CombPtr::Inherit;
                }
            }
            free = nf;
            req = nr;
            free_ptr.push(pf);
            req_ptr.push(pr);
        }
        Combine {
            free,
            req,
            free_ptr,
            req_ptr,
        }
    }

    /// Recovers the taken children (with their budget allocations) for the
    /// final state at grid index `ci` in the `req` (or `free`) table.
    pub(crate) fn backtrack(
        &self,
        want_req: bool,
        mut ci: usize,
        kids: &[usize],
    ) -> Vec<(usize, usize)> {
        let mut taken = Vec::new();
        let mut in_req = want_req;
        let mut k = kids.len();
        while k > 0 {
            let ptr = if in_req {
                self.req_ptr[k - 1][ci]
            } else {
                self.free_ptr[k - 1][ci]
            };
            match ptr {
                CombPtr::Dead => unreachable!("backtrack entered an infeasible cell"),
                CombPtr::Inherit => {
                    ci -= 1;
                }
                CombPtr::Skip => {
                    k -= 1;
                }
                CombPtr::Take { prev_ci, child_ci } => {
                    taken.push((kids[k - 1], child_ci));
                    ci = prev_ci;
                    in_req = false; // the remaining prefix may be anything
                    k -= 1;
                }
            }
        }
        taken
    }
}

// ---------------------------------------------------------------------
// Incremental path state: b_Q(v) and c(v) for the path ending at the top
// of the DFS stack.
// ---------------------------------------------------------------------

struct PathState<'c, 't> {
    ctx: &'c OfflineContext<'t>,
    /// Per distinct query: |path ∩ T_q|.
    cnt_i: Vec<u32>,
    /// Per distinct query: # internal path nodes with an off-path T_q child.
    cnt_b: Vec<u32>,
    /// Per distinct query: Σ_{u∈path} contrib(u, q).
    sum_contrib: Vec<f64>,
    /// Per query, per query-var: # (path ∩ T_q) cliques containing the var.
    var_in_i: Vec<Vec<u32>>,
    /// Per variable: # current cut separators containing it.
    cut_cnt: Vec<u32>,
    path: Vec<usize>,
}

impl<'c, 't> PathState<'c, 't> {
    fn new(ctx: &'c OfflineContext<'t>) -> Self {
        let nq = ctx.queries().len();
        PathState {
            cnt_i: vec![0; nq],
            cnt_b: vec![0; nq],
            sum_contrib: vec![0.0; nq],
            var_in_i: ctx
                .queries()
                .iter()
                .map(|qi| vec![0u32; qi.scope.len()])
                .collect(),
            cut_cnt: vec![0; ctx.tree().domain().len()],
            path: Vec::new(),
            ctx,
        }
    }

    fn apply(&mut self, u: usize, sign: i64) {
        let ctx = self.ctx;
        let rooted = ctx.rooted();
        let parent_on_path = self.path.last().copied();
        for (k, qi) in ctx.queries().iter().enumerate() {
            let in_q_u = qi.steiner.contains(u);
            if let Some(p) = parent_on_path {
                if qi.steiner.contains(p) {
                    // p becomes (or stops being) an internal path node
                    let off_path_children = qi.steiner_children(p) - u32::from(in_q_u);
                    if off_path_children > 0 {
                        self.cnt_b[k] = self.cnt_b[k].wrapping_add_signed(sign as i32);
                    }
                }
            }
            if in_q_u {
                self.cnt_i[k] = self.cnt_i[k].wrapping_add_signed(sign as i32);
                for (j, x) in qi.scope.iter().enumerate() {
                    if ctx.tree().clique(u).contains(x) {
                        self.var_in_i[k][j] = self.var_in_i[k][j].wrapping_add_signed(sign as i32);
                    }
                }
            }
            self.sum_contrib[k] += sign as f64 * ctx.contrib(u, qi);
        }
        // cut-scope bookkeeping
        if parent_on_path.is_some() {
            // edge (parent, u) becomes internal (or external again on pop)
            let e = rooted.parent_edge(u).expect("u below r_s");
            for x in ctx.tree().separator(e).iter() {
                self.cut_cnt[x.index()] = self.cut_cnt[x.index()].wrapping_add_signed(-sign as i32);
            }
        } else if let Some(e) = rooted.parent_edge(u) {
            // r_s's own upward separator joins the cut
            for x in ctx.tree().separator(e).iter() {
                self.cut_cnt[x.index()] = self.cut_cnt[x.index()].wrapping_add_signed(sign as i32);
            }
        }
        for &w in rooted.children(u) {
            let e = rooted.parent_edge(w).expect("child edge");
            for x in ctx.tree().separator(e).iter() {
                self.cut_cnt[x.index()] = self.cut_cnt[x.index()].wrapping_add_signed(sign as i32);
            }
        }
    }

    fn push(&mut self, u: usize) {
        self.apply(u, 1);
        self.path.push(u);
    }

    fn pop(&mut self, u: usize) {
        let popped = self.path.pop();
        debug_assert_eq!(popped, Some(u));
        self.apply(u, -1);
    }

    /// `(b_Q, c)` of the shortcut whose subtree is the current path.
    fn read(&self) -> (f64, Size) {
        let ctx = self.ctx;
        let top = *self.path.last().expect("path non-empty");
        // cost: μ over variables present in any cut separator
        let mut cost: Size = 1;
        for (xi, &cnt) in self.cut_cnt.iter().enumerate() {
            if cnt > 0 {
                cost = cost.saturating_mul(ctx.tree().domain().card(Var(xi as u32)) as u64);
            }
        }
        // benefit: Σ_q w_q δ(path, q) Σ_{u∈path} contrib(u, q)
        let mut val = 0.0;
        for (k, qi) in ctx.queries().iter().enumerate() {
            if qi.single_node || self.cnt_i[k] == 0 {
                continue;
            }
            let cond_b =
                self.cnt_b[k] > 0 || (qi.steiner.contains(top) && qi.steiner_children(top) > 0);
            if !cond_b {
                continue;
            }
            let mut covered = true;
            for (j, (x, cnt_q)) in qi.var_cover.iter().enumerate() {
                let in_xs = self.cut_cnt[x.index()] > 0;
                let outside = *cnt_q > self.var_in_i[k][j];
                if !in_xs && !outside {
                    covered = false;
                    break;
                }
            }
            if covered {
                val += qi.weight * self.sum_contrib[k];
            }
        }
        (val, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use peanut_junction::build_junction_tree;
    use peanut_pgm::{fixtures, Scope};

    fn chain_setup(n: usize) -> (peanut_pgm::BayesianNetwork, peanut_junction::JunctionTree) {
        let bn = fixtures::chain(n, 2, 7);
        let tree = build_junction_tree(&bn).unwrap();
        (bn, tree)
    }

    #[test]
    fn leaf_root_yields_nothing() {
        let (_bn, tree) = chain_setup(5);
        let q = Scope::from_indices(&[0, 4]);
        let w = Workload::from_queries([q]);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let grid = BudgetGrid::exact(64);
        // find a leaf of the rooted tree
        let leaf = (0..tree.n_cliques())
            .find(|&u| ctx.rooted().children(u).is_empty())
            .unwrap();
        let rt = lrdp(&ctx, leaf, &grid);
        assert!(rt.solutions.is_empty());
        assert!(rt.per_budget.iter().all(Option::is_none));
    }

    #[test]
    fn chain_shortcut_found_and_fits_budget() {
        // chain of 8 binary vars → path junction tree of 7 cliques; a query
        // on the endpoints makes interior segment shortcuts useful. Rooted
        // at the pivot itself a shortcut would lose x0 (only clique 0 holds
        // it), so we root LRDP at the interior clique 1.
        let (_bn, tree) = chain_setup(8);
        let q = Scope::from_indices(&[0, 7]);
        let w = Workload::from_queries([q]);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let grid = BudgetGrid::exact(64);
        let rt = lrdp(&ctx, 1, &grid);
        let last = rt.per_budget.last().unwrap().expect("solution at K");
        let sol = &rt.solutions[last];
        assert!(sol.true_benefit > 0.0);
        assert!(sol.shortcut.size() <= 64);
        // on a path junction tree the additive estimate is exact
        assert!((sol.dp_benefit - sol.true_benefit).abs() < 1e-9);
        // the pivot-rooted run must find nothing that keeps x0
        let rt0 = lrdp(&ctx, tree.pivot(), &grid);
        assert!(rt0
            .solutions
            .iter()
            .all(|s| s.true_benefit == 0.0 || s.dp_benefit == 0.0 || s.true_benefit > 0.0));
    }

    #[test]
    fn in_clique_only_workload_yields_no_benefit() {
        // every query fits one clique => delta = 0 everywhere => the DP
        // finds nothing with positive benefit at any root
        let bn = fixtures::chain(8, 2, 4);
        let tree = build_junction_tree(&bn).unwrap();
        let queries: Vec<Scope> = (0..7u32)
            .map(|a| Scope::from_indices(&[a, a + 1]))
            .collect();
        let w = Workload::from_queries(queries);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let grid = BudgetGrid::exact(64);
        for r_s in 0..tree.n_cliques() {
            let rt = lrdp(&ctx, r_s, &grid);
            assert!(
                rt.solutions.iter().all(|s| s.true_benefit == 0.0),
                "in-clique workload produced a positive-benefit shortcut"
            );
            assert!(rt.per_budget.iter().all(Option::is_none));
        }
    }

    #[test]
    fn single_query_benefit_matches_definition() {
        // LRDP's dp_benefit for chain (single-branch) solutions equals
        // B(S, Q) computed directly from Defs. 3.2-3.3.
        let bn = fixtures::chain(7, 2, 2);
        let tree = build_junction_tree(&bn).unwrap();
        let q = Scope::from_indices(&[0, 6]);
        let w = Workload::from_queries([q]);
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let grid = BudgetGrid::exact(64);
        let rt = lrdp(&ctx, 1, &grid);
        assert!(!rt.solutions.is_empty());
        for sol in &rt.solutions {
            let direct = ctx.benefit(&sol.shortcut);
            assert!(
                (sol.dp_benefit - direct).abs() < 1e-9,
                "dp {} vs direct {direct}",
                sol.dp_benefit
            );
        }
    }

    #[test]
    fn dp_matches_exhaustive_antichain_enumeration() {
        // On small trees, enumerate every explicit-cut antichain and check
        // the DP's additive optimum at every budget.
        for (bn_name, bn) in [
            ("chain6", fixtures::chain(6, 2, 3)),
            ("btree7", fixtures::binary_tree(7, 5)),
            ("fig1", fixtures::figure1()),
        ] {
            let tree = build_junction_tree(&bn).unwrap();
            let d = bn.domain();
            let n = d.len() as u32;
            // small mixed workload
            let queries: Vec<Scope> = (0..n)
                .flat_map(|a| ((a + 1)..n).map(move |b| Scope::from_indices(&[a, b])))
                .take(12)
                .collect();
            let w = Workload::from_queries(queries);
            let ctx = OfflineContext::new(&tree, &w).unwrap();
            let grid = BudgetGrid::exact(40);
            let rooted = ctx.rooted();
            for r_s in 0..tree.n_cliques() {
                let rt = lrdp(&ctx, r_s, &grid);
                let brute = exhaustive_antichains(&ctx, r_s, &grid);
                for (ci, &bf) in brute.iter().enumerate() {
                    let dp = rt.dp_value[ci];
                    let close = (dp.is_infinite() && bf.is_infinite()) || (dp - bf).abs() < 1e-6;
                    assert!(
                        close,
                        "{bn_name} root {r_s} budget {}: dp={dp} brute={bf}",
                        grid.value(ci)
                    );
                }
                let _ = rooted;
            }
        }
    }

    /// Brute force over explicit-cut antichains with the same additive
    /// valuation the DP optimizes.
    fn exhaustive_antichains(ctx: &OfflineContext, r_s: usize, grid: &BudgetGrid) -> Vec<f64> {
        let rooted = ctx.rooted();
        let m = grid.len();
        let mut best = vec![f64::NEG_INFINITY; m];
        // collect candidate cut nodes: strict descendants of r_s
        let nodes: Vec<usize> = rooted
            .subtree_nodes(r_s)
            .iter()
            .copied()
            .filter(|&u| u != r_s)
            .collect();
        // path value/cost of S_u = path(π_u, r_s), computed directly
        let mut val = HashMap::new();
        let mut cost = HashMap::new();
        for &u in &nodes {
            let members = rooted.path_to_ancestor(rooted.parent(u).unwrap(), r_s);
            let s = Shortcut::from_nodes(ctx.tree(), rooted, members).unwrap();
            val.insert(u, ctx.benefit(&s));
            cost.insert(u, s.size());
        }
        // enumerate subsets that form antichains
        let k = nodes.len();
        assert!(k <= 16, "test trees must stay small");
        'subsets: for mask in 1u32..(1 << k) {
            let chosen: Vec<usize> = (0..k)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| nodes[i])
                .collect();
            for (a_i, &a) in chosen.iter().enumerate() {
                for &b in &chosen[a_i + 1..] {
                    if rooted.is_ancestor(a, b) || rooted.is_ancestor(b, a) {
                        continue 'subsets;
                    }
                }
            }
            let total_v: f64 = chosen.iter().map(|u| val[u]).sum();
            // grid-rounded additive cost, mirroring the DP's rounding
            let mut idx = 0usize;
            for u in &chosen {
                let Some(cu) = grid.round_up(cost[u]) else {
                    continue 'subsets;
                };
                match grid.combine_mul(idx, cu) {
                    Some(t) => idx = t,
                    None => continue 'subsets,
                }
            }
            for slot in best.iter_mut().skip(idx) {
                if total_v > *slot {
                    *slot = total_v;
                }
            }
        }
        best
    }
}
