//! Property tests for the materialization core on random networks.

use peanut_core::budp::budp;
use peanut_core::lrdp::lrdp_all;
use peanut_core::{
    BudgetGrid, Materialization, MaterializedShortcut, OfflineContext, OnlineEngine, Peanut,
    PeanutConfig, Shortcut, Workload,
};
use peanut_junction::{build_junction_tree, QueryEngine, RootedTree};
use peanut_pgm::generate::{generate_network, DagConfig};
use peanut_pgm::{Scope, Var};
use proptest::prelude::*;

fn net_strategy() -> impl Strategy<Value = (u64, usize)> {
    (0u64..5_000, 6usize..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any connected clique subset yields a shortcut whose scope is exactly
    /// the union of its boundary separators, and whose size multiplies the
    /// scope cardinalities.
    #[test]
    fn shortcut_invariants((seed, n) in net_strategy(), pick in 0usize..100) {
        let cfg = DagConfig { n_nodes: n, n_edges: n - 1 + n / 3, max_in_degree: 3, window: 3, cardinalities: vec![2, 3] };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        // grow a connected region from a random start
        let start = pick % tree.n_cliques();
        let mut region = vec![start];
        let mut cursor = start;
        for _ in 0..(pick % 3) {
            if let Some(&c) = rooted.children(cursor).first() {
                region.push(c);
                cursor = c;
            }
        }
        let s = Shortcut::from_nodes(&tree, &rooted, region.clone()).unwrap();
        // scope == union of cut separator scopes
        let mut expect = Scope::empty();
        for &e in s.cut() {
            expect = expect.union(tree.separator(e));
        }
        prop_assert_eq!(s.scope(), &expect);
        let size: u64 = s.scope().iter().map(|v| tree.domain().card(v) as u64).product();
        prop_assert_eq!(s.size(), size);
        // frontier nodes are children of members, outside the region
        for d in s.frontier(&rooted) {
            prop_assert!(!s.nodes().contains(&d));
            prop_assert!(s.nodes().contains(&rooted.parent(d).unwrap()));
        }
    }

    /// PEANUT (BUDP) packings are node-disjoint, within budget (both in DP
    /// estimate and true size after repair), and online costs never exceed
    /// the plain-JT baseline.
    #[test]
    fn peanut_end_to_end((seed, n) in net_strategy(), k in 8u64..200) {
        let cfg = DagConfig { n_nodes: n, n_edges: n - 1 + n / 4, max_in_degree: 2, window: 3, cardinalities: vec![2] };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let tree = build_junction_tree(&bn).unwrap();
        let queries: Vec<Scope> = (0..n as u32 - 1)
            .map(|a| Scope::from_iter([Var(a), Var((a + (n as u32 / 2)) % n as u32)]))
            .filter(|q| q.len() == 2)
            .collect();
        let w = Workload::from_queries(queries.clone());
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let grid = BudgetGrid::exact(k);
        let roots = lrdp_all(&ctx, &grid, 1);
        let res = budp(&ctx, &grid, &roots);
        let est: u64 = res.shortcuts.iter().map(|s| s.dp_cost).sum();
        prop_assert!(est <= k);
        for (i, a) in res.shortcuts.iter().enumerate() {
            for b in &res.shortcuts[i + 1..] {
                prop_assert!(!a.shortcut.overlaps(&b.shortcut));
            }
        }
        // full method with repair
        let pc = PeanutConfig::disjoint(k).with_epsilon(1.0);
        let mat = Peanut::offline(&ctx, &pc);
        prop_assert!(mat.total_size() <= k);
        let engine = QueryEngine::symbolic(&tree);
        let online = OnlineEngine::new(&engine, &mat);
        for q in queries.iter().take(6) {
            let base = online.baseline_cost(q).unwrap().ops;
            let with = online.cost(q).unwrap().ops;
            prop_assert!(with <= base, "shortcut increased cost: {with} > {base}");
        }
    }

    /// The online engine preserves exact answers for arbitrary materialized
    /// shortcuts (numeric mode).
    #[test]
    fn online_answers_preserved((seed, n) in net_strategy(), k in 16u64..128) {
        let cfg = DagConfig { n_nodes: n, n_edges: n - 1, max_in_degree: 2, window: 2, cardinalities: vec![2] };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let tree = build_junction_tree(&bn).unwrap();
        let queries: Vec<Scope> = (0..(n as u32).saturating_sub(3))
            .map(|a| Scope::from_iter([Var(a), Var(a + 3)]))
            .collect();
        if queries.is_empty() { return Ok(()); }
        let w = Workload::from_queries(queries.clone());
        let ctx = OfflineContext::new(&tree, &w).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let cfg_p = PeanutConfig::plus(k).with_epsilon(1.0);
        let (mat, _) = Peanut::offline_numeric(&ctx, &cfg_p, engine.numeric_state().unwrap()).unwrap();
        let online = OnlineEngine::new(&engine, &mat);
        for q in queries.iter().take(4) {
            let (got, _) = online.answer(q).unwrap();
            let want = peanut_pgm::joint::marginal(&bn, q).unwrap();
            prop_assert!(got.max_abs_diff(&want).unwrap() < 1e-9);
        }
        let _: &Materialization = &mat;
        let _: Option<&MaterializedShortcut> = mat.shortcuts.first();
    }
}
