//! Overload-control coverage: shedding determinism on the virtual clock
//! (same arrival schedule + seed ⇒ the same set of shed queries),
//! admission-cap semantics (global and per-tenant), bounded sojourns
//! under saturation with deadline shedding vs the FIFO baseline, and
//! lane-starvation freedom (a saturating background lane never stalls a
//! serving-lane batch beyond its deadline).

use peanut_core::Materialization;
use peanut_junction::{build_junction_tree, JunctionTree, QueryEngine, RootedTree};
use peanut_pgm::{fixtures, BayesianNetwork};
use peanut_serving::{
    poisson_arrivals, replay_open_loop, replay_open_loop_mixed, workload_queries, AdmissionConfig,
    Lane, OpenLoopConfig, ReplayClock, ServeOutcome, ServeRequest, ServingConfig, ServingEngine,
    ShardConfig, ShardedServingEngine, ShedReason, TenantId, WorkerPool, WorkloadMix,
};
use std::time::{Duration, Instant};

fn fixture() -> (BayesianNetwork, JunctionTree) {
    let bn = fixtures::chain(12, 2, 7);
    let tree = build_junction_tree(&bn).unwrap();
    (bn, tree)
}

fn queries(tree: &JunctionTree, n: usize, seed: u64) -> Vec<ServeRequest> {
    let rooted = RootedTree::new(tree);
    let mix = WorkloadMix {
        pool_size: 32,
        evidence_fraction: 0.2,
        ..WorkloadMix::default()
    };
    workload_queries(tree, &rooted, n, &mix, seed)
}

fn shed_indices(outcomes: &[ServeOutcome]) -> Vec<usize> {
    outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_shed())
        .map(|(i, _)| i)
        .collect()
}

/// A saturated virtual-clock replay: offered load is twice the simulated
/// service capacity, so the FIFO backlog grows without bound.
fn saturated_cfg(admission: AdmissionConfig) -> OpenLoopConfig {
    OpenLoopConfig {
        max_batch: 16,
        admission,
        clock: ReplayClock::Virtual {
            per_query: Duration::from_millis(1), // capacity: 1000 q/s
        },
    }
}

/// Same arrival schedule + same seed ⇒ the same set of shed queries —
/// shedding decisions on the virtual clock are a pure function of
/// (schedule, config), not of wall-clock jitter.
#[test]
fn shedding_is_deterministic_on_the_virtual_clock() {
    let (bn, tree) = fixture();
    let qs = queries(&tree, 400, 11);
    let schedule = poisson_arrivals(qs.len(), 2000.0, 42); // 2× capacity
    let cfg = saturated_cfg(AdmissionConfig::default().with_deadline(Duration::from_millis(8)));
    let run = || {
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig::default().with_workers(1),
        );
        replay_open_loop(&serving, &qs, &schedule, &cfg)
    };
    let (outcomes_a, report_a) = run();
    let (outcomes_b, report_b) = run();
    assert!(
        report_a.shed_deadline > 0,
        "a 2× saturated run must shed: {report_a:?}"
    );
    assert_eq!(shed_indices(&outcomes_a), shed_indices(&outcomes_b));
    assert_eq!(report_a.served, report_b.served);
    assert_eq!(report_a.shed_deadline, report_b.shed_deadline);
    assert_eq!(report_a.shed_admission, report_b.shed_admission);
    assert_eq!(report_a.batches, report_b.batches);
    assert_eq!(report_a.sojourn_p99, report_b.sojourn_p99);
    // and the schedule itself is deterministic in its seed
    assert_eq!(schedule, poisson_arrivals(qs.len(), 2000.0, 42));
}

/// Under saturation, deadline shedding keeps served-query p99 bounded
/// near the budget while the FIFO baseline's p99 grows with the backlog
/// — and every offered query resolves to exactly one typed outcome.
#[test]
fn deadline_shedding_bounds_p99_where_fifo_collapses() {
    let (bn, tree) = fixture();
    let qs = queries(&tree, 600, 7);
    let schedule = poisson_arrivals(qs.len(), 2000.0, 13); // 2× capacity
    let deadline = Duration::from_millis(10);
    let run = |admission: AdmissionConfig| {
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig::default().with_workers(1),
        );
        replay_open_loop(&serving, &qs, &schedule, &saturated_cfg(admission))
    };
    let (fifo_outcomes, fifo) = run(AdmissionConfig::fifo());
    let (shed_outcomes, shed) = run(AdmissionConfig::default().with_deadline(deadline));

    // FIFO serves everything, however late; shedding trades lateness for
    // typed Shed outcomes
    assert_eq!(fifo.shed_deadline + fifo.shed_admission, 0);
    assert_eq!(fifo.served + fifo.errors, qs.len());
    assert!(shed.shed_deadline > 0, "saturation must shed: {shed:?}");
    assert_eq!(
        shed.served + shed.errors + shed.shed_deadline + shed.shed_admission,
        qs.len()
    );
    for outcomes in [&fifo_outcomes, &shed_outcomes] {
        assert_eq!(outcomes.len(), qs.len());
    }
    for o in &shed_outcomes {
        if let Some(ShedReason::DeadlineBlown {
            waited,
            deadline: d,
        }) = o.shed_reason()
        {
            assert!(waited > d, "only blown budgets may be shed");
        }
    }

    // the acceptance shape: shedding bounds p99, FIFO does not. A wave
    // that started within budget may finish up to max_batch service
    // quanta later, so the bound is deadline + one full wave.
    let wave = Duration::from_millis(16); // max_batch × per_query
    assert!(
        shed.sojourn_p99 <= deadline + wave,
        "shed p99 must stay near the budget: {:?}",
        shed.sojourn_p99
    );
    assert!(
        fifo.sojourn_p99 >= 2 * shed.sojourn_p99,
        "FIFO p99 ({:?}) must visibly exceed the shed p99 ({:?}) under 2× load",
        fifo.sojourn_p99,
        shed.sojourn_p99
    );
}

/// A global backlog cap refuses arrivals at entry with a typed
/// `AdmissionLimit { tenant: None, .. }` outcome, and the backlog never
/// exceeds the cap.
#[test]
fn global_admission_cap_bounds_the_backlog() {
    let (bn, tree) = fixture();
    let qs = queries(&tree, 400, 3);
    let schedule = poisson_arrivals(qs.len(), 3000.0, 5); // 3× capacity
    let cap = 24;
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let serving = ServingEngine::new(
        engine,
        Materialization::default(),
        ServingConfig::default().with_workers(1),
    );
    let cfg = saturated_cfg(AdmissionConfig::default().with_max_backlog(cap));
    let (outcomes, report) = replay_open_loop(&serving, &qs, &schedule, &cfg);
    assert!(report.shed_admission > 0, "3× load must refuse arrivals");
    assert!(
        report.peak_backlog <= cap,
        "the cap is a hard bound: peak {} vs cap {cap}",
        report.peak_backlog
    );
    for o in &outcomes {
        if let Some(reason) = o.shed_reason() {
            match reason {
                ShedReason::AdmissionLimit {
                    tenant,
                    backlog,
                    limit,
                } => {
                    assert!(tenant.is_none(), "global cap sheds without a tenant");
                    assert_eq!(*limit, cap);
                    assert!(*backlog >= cap);
                }
                other => panic!("only admission sheds configured, got {other:?}"),
            }
        }
    }
}

/// Per-tenant admission isolates a flooding tenant: its arrivals are
/// refused against its own cap while the quiet tenant keeps being
/// admitted and served.
#[test]
fn per_tenant_admission_isolates_a_flooding_tenant() {
    let (bn, tree) = fixture();
    let hot = TenantId(0);
    let quiet = TenantId(1);
    let mut sharded = ShardedServingEngine::new(ShardConfig::default().with_workers(1));
    for id in [hot, quiet] {
        sharded
            .register(
                id,
                QueryEngine::numeric(&tree, &bn).unwrap(),
                Materialization::default(),
            )
            .unwrap();
    }
    // 9 of 10 arrivals are the flooding tenant's
    let qs = queries(&tree, 500, 19);
    let arrivals: Vec<(TenantId, ServeRequest)> = qs
        .into_iter()
        .enumerate()
        .map(|(i, q)| (if i % 10 == 9 { quiet } else { hot }, q))
        .collect();
    let schedule = poisson_arrivals(arrivals.len(), 3000.0, 23);
    let cfg = saturated_cfg(AdmissionConfig::default().with_max_tenant_backlog(8));
    let (outcomes, report) = replay_open_loop_mixed(&sharded, &arrivals, &schedule, &cfg);
    assert!(report.shed_admission > 0, "the flood must hit the cap");
    let shed_of = |t: TenantId| {
        outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.shed_reason(),
                    Some(ShedReason::AdmissionLimit { tenant: Some(x), .. }) if *x == t
                )
            })
            .count()
    };
    let served_of = |t: TenantId| {
        outcomes
            .iter()
            .zip(&arrivals)
            .filter(|(o, (at, _))| *at == t && o.is_served())
            .count()
    };
    assert!(
        shed_of(hot) > 4 * shed_of(quiet).max(1),
        "the flooding tenant must absorb the sheds: hot {} vs quiet {}",
        shed_of(hot),
        shed_of(quiet)
    );
    assert!(
        served_of(quiet) > 0,
        "the quiet tenant must keep being served through the flood"
    );
}

/// A saturating background lane never stalls a serving-lane batch beyond
/// its deadline: workers yield a background wave between tasks, so a
/// serving wave waits for at most one in-flight background task per
/// worker — not for the whole backlog.
#[test]
fn background_saturation_does_not_starve_the_serving_lane() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let pool = WorkerPool::new(2);
    let bg_done = Arc::new(AtomicUsize::new(0));
    const BG_WAVES: usize = 8;
    const BG_TASKS: usize = 16;
    let bg_task_ms = 10u64;
    // queue ~1.28s of background work (640ms per worker)
    let handles: Vec<_> = (0..BG_WAVES)
        .map(|_| {
            let done = Arc::clone(&bg_done);
            pool.submit_batch(Lane::Background, BG_TASKS, move |_i, _s| {
                std::thread::sleep(Duration::from_millis(bg_task_ms));
                done.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();

    // a serving wave submitted into the saturated pool must complete
    // within a small multiple of one background task, not the backlog
    let start = Instant::now();
    pool.run_wave(8, &|_i, _s| {});
    let elapsed = start.elapsed();
    let background_left = BG_WAVES * BG_TASKS - bg_done.load(Ordering::Relaxed);
    assert!(
        elapsed < Duration::from_millis(250),
        "serving wave stalled {elapsed:?} behind the background backlog"
    );
    assert!(
        background_left > 0,
        "the background backlog must still be pending when serving returns"
    );

    // nothing is lost: the yielded background waves still run to completion
    for h in handles {
        h.wait();
    }
    assert_eq!(bg_done.load(Ordering::Relaxed), BG_WAVES * BG_TASKS);
    let stats = pool.stats();
    assert_eq!(stats.lane_waves[Lane::Serving.index()], 1);
    assert_eq!(stats.lane_waves[Lane::Background.index()], BG_WAVES as u64);
}

/// The FIFO baseline on the same shape: with no overload controls and no
/// virtual clock, the open-loop driver on an idle engine serves
/// everything — sanity that the wall-clock path works end to end.
#[test]
fn wall_clock_open_loop_serves_everything_below_capacity() {
    let (bn, tree) = fixture();
    let qs = queries(&tree, 64, 29);
    // all arrivals immediately due: one saturated burst, drained closed-loop
    let schedule = vec![Duration::ZERO; qs.len()];
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let serving = ServingEngine::new(
        engine,
        Materialization::default(),
        ServingConfig::default().with_workers(2),
    );
    let cfg = OpenLoopConfig {
        max_batch: 16,
        admission: AdmissionConfig::fifo(),
        clock: ReplayClock::Wall,
    };
    let (outcomes, report) = replay_open_loop(&serving, &qs, &schedule, &cfg);
    assert_eq!(report.served, qs.len());
    assert_eq!(
        report.shed_deadline + report.shed_admission + report.errors,
        0
    );
    assert!(outcomes.iter().all(ServeOutcome::is_served));
    assert_eq!(report.batches, 4);
    assert!(report.duration > Duration::ZERO);
    assert!(
        report.pool.tasks > 0,
        "a 2-worker engine must have fanned out onto the pool: {:?}",
        report.pool
    );
}
