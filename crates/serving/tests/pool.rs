//! Pool lifecycle coverage: the persistent worker pool must survive task
//! panics (subsequent batches still answer correctly vs the VE oracle),
//! join every worker on drop, and — regardless of spawn mode or worker
//! count — produce byte-identical answers to the sequential path.

use peanut_core::Materialization;
use peanut_junction::{build_junction_tree, QueryEngine};
use peanut_pgm::{fixtures, BayesianNetwork, Scope};
use peanut_serving::{
    ServeOutcome, ServeRequest, ServingConfig, ServingEngine, SpawnMode, WorkerPool,
};
use peanut_ve::ve_answer;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn batch(bn: &BayesianNetwork) -> Vec<ServeRequest> {
    let n = bn.domain().len() as u32;
    (0..n)
        .flat_map(|a| {
            ((a + 1)..n.min(a + 3))
                .map(move |b| ServeRequest::marginal(Scope::from_indices(&[a, b])))
        })
        .collect()
}

/// A panicking wave on a pool shared with a serving engine must not
/// poison the pool: the next batches answer correctly vs the VE oracle.
#[test]
fn worker_panic_does_not_poison_the_pool() {
    let bn = fixtures::figure1();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let pool = Arc::new(WorkerPool::new(2));
    let serving = ServingEngine::with_pool(
        engine,
        Materialization::default(),
        // cache capacity 0: every batch must recompute through the pool
        ServingConfig::default()
            .with_workers(2)
            .with_cache_capacity(0),
        Arc::clone(&pool),
    );

    // a wave with a panicking task: the submitter sees the panic…
    let blown = catch_unwind(AssertUnwindSafe(|| {
        pool.run_wave(4, &|i, _scratch| {
            if i == 2 {
                panic!("injected task panic");
            }
        });
    }));
    assert!(blown.is_err(), "the submitting thread must see the panic");
    assert_eq!(pool.stats().panics, 1);

    // …and the pool keeps serving whole batches, correct vs the oracle
    let queries = batch(&bn);
    for _ in 0..3 {
        let (answers, stats) = serving.serve_batch(&queries);
        assert_eq!(stats.queries, queries.len());
        for (q, a) in queries.iter().zip(&answers) {
            let a = a.served().expect("served after panic");
            let (mut want, _) = ve_answer(&bn, &q.targets).unwrap();
            want.normalize();
            assert!(a.potential.max_abs_diff(&want).unwrap() < 1e-9);
        }
    }
    assert!(pool.stats().tasks > 4, "post-panic waves must have run");
}

/// Dropping an engine (and its pool handle) joins every worker: no
/// thread keeps a reference to the pool's shared state alive.
#[test]
fn drop_joins_all_workers() {
    let bn = fixtures::sprinkler();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let pool = Arc::new(WorkerPool::new(3));
    let weak = Arc::downgrade(&pool);
    let serving = ServingEngine::with_pool(
        engine,
        Materialization::default(),
        ServingConfig::default()
            .with_workers(3)
            .with_cache_capacity(0),
        pool,
    );
    let queries = batch(&bn);
    let (answers, _) = serving.serve_batch(&queries);
    assert!(answers.iter().all(ServeOutcome::is_served));
    drop(serving);
    // the engine held the last Arc<WorkerPool>; its drop joined the
    // workers, so nothing can be holding the pool anymore
    assert!(weak.upgrade().is_none(), "drop must join all workers");
}

/// One worker, two persistent workers, and the scoped baseline must all
/// produce byte-identical answers — the fan-out is a scheduling decision,
/// never a numeric one.
#[test]
fn pool_answers_are_byte_identical_to_sequential() {
    let bn = fixtures::chain(14, 2, 13);
    let tree = build_junction_tree(&bn).unwrap();
    let queries = batch(&bn);
    let serve = |workers: usize, spawn: SpawnMode| -> Vec<Vec<f64>> {
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig::default()
                .with_workers(workers)
                .with_cache_capacity(0)
                .with_spawn(spawn),
        );
        let (answers, _) = serving.serve_batch(&queries);
        answers
            .iter()
            .map(|a| a.served().expect("served").potential.values().to_vec())
            .collect()
    };
    let sequential = serve(1, SpawnMode::Persistent);
    let pooled = serve(2, SpawnMode::Persistent);
    let scoped = serve(2, SpawnMode::Scoped);
    assert_eq!(
        sequential, pooled,
        "a fanned-out pool must be byte-identical to the sequential path"
    );
    assert_eq!(
        sequential, scoped,
        "the scoped baseline must be byte-identical to the sequential path"
    );
}

/// A 1-worker configuration never spawns a pool at all: the sequential
/// fast path answers in the calling thread.
#[test]
fn one_worker_engine_spawns_no_pool() {
    let bn = fixtures::sprinkler();
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let serving = ServingEngine::new(
        engine,
        Materialization::default(),
        ServingConfig::default().with_workers(1),
    );
    serving.warm_pool(); // no-op for 1 worker
    let (answers, _) = serving.serve_batch(&batch(&bn));
    assert!(answers.iter().all(ServeOutcome::is_served));
    assert!(
        serving.pool_stats().is_none(),
        "sequential serving must not spawn workers"
    );
}

/// Dropping the pool while submitted waves are still queued behind the
/// running one must drain them, not abandon them: `Drop` only flips the
/// shutdown flag, and workers re-check it *before* looking for waves —
/// but every submitter is still parked inside `run_wave`, which must
/// return (wave complete) before the submitting thread can release its
/// handle. This drives that exact ordering from many submitters.
#[test]
fn drop_with_queued_waves_completes_them_first() {
    use peanut_core::sync::atomic::{AtomicUsize, Ordering};
    // one worker ⇒ waves genuinely queue; the counter is test-only
    // (ordering: wave completion inside `run_wave` is the real barrier
    // for every Relaxed access below)
    let pool = WorkerPool::new(1);
    let ran = AtomicUsize::new(0);
    std::thread::scope(|s| {
        // several submitters race their waves into the single-worker queue;
        // each run_wave blocks until its own wave fully completes
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..3 {
                    pool.run_wave(5, &|_i, _s| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
    });
    // all submitters returned ⇒ every queued wave drained before drop
    assert_eq!(ran.load(Ordering::Relaxed), 4 * 3 * 5);
    let stats = pool.stats();
    drop(pool);
    assert_eq!(stats.waves, 12);
    assert_eq!(stats.tasks, 60);
}

/// A panic in the *last* task of a wave exercises the completion edge:
/// the panicking worker itself must still count the task done, wake the
/// submitter, and hand over the payload — there is no later task to
/// limp home on.
#[test]
fn panic_in_last_task_of_wave_still_completes_and_reraises() {
    let pool = WorkerPool::new(2);
    for total in [1usize, 2, 7] {
        let blown = catch_unwind(AssertUnwindSafe(|| {
            pool.run_wave(total, &|i, _scratch| {
                if i == total - 1 {
                    panic!("last task of {total} exploded");
                }
            });
        }));
        let payload = blown.expect_err("the submitter must see the panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains(&format!("last task of {total}")),
            "payload must be the task's own: {msg:?}"
        );
    }
    assert_eq!(pool.stats().panics, 3);
    // the pool survives all three edge panics
    pool.run_wave(4, &|_i, _s| {});
    assert_eq!(pool.stats().waves, 4);
}

/// Zero-task waves — directly and through the `Executor` impl — are
/// no-ops that neither wake a worker nor count a wave.
#[test]
fn zero_task_waves_are_no_ops_even_via_executor() {
    use peanut_core::Executor;
    let pool = WorkerPool::new(2);
    pool.run_wave(0, &|_i, _s| unreachable!("no tasks to run"));
    Executor::run_tasks(&pool, 0, &|_i| unreachable!("no tasks to run"));
    let stats = pool.stats();
    assert_eq!(stats.waves, 0, "empty waves must not count");
    assert_eq!(stats.tasks, 0);
    assert_eq!(stats.unparks, 0, "no worker may be woken for nothing");
    // and the pool still serves real waves afterwards
    pool.run_wave(3, &|_i, _s| {});
    assert_eq!(pool.stats().tasks, 3);
}

/// The pool amortizes its spawns: repeated batches reuse the same parked
/// workers, and the stats surface shows it.
#[test]
fn pool_spawns_once_across_batches() {
    let bn = fixtures::chain(12, 2, 7);
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();
    let serving = ServingEngine::new(
        engine,
        Materialization::default(),
        ServingConfig::default()
            .with_workers(2)
            .with_cache_capacity(0),
    );
    let queries = batch(&bn);
    for _ in 0..5 {
        let (answers, _) = serving.serve_batch(&queries);
        assert!(answers.iter().all(ServeOutcome::is_served));
    }
    let stats = serving.pool_stats().expect("pool spawned");
    assert_eq!(stats.workers, 2, "spawned once, sized by the config");
    assert_eq!(stats.waves, 5, "one wave per batch");
    assert_eq!(stats.tasks, 5 * queries.len() as u64);
    assert!(
        stats.tasks_per_spawn() >= queries.len() as f64,
        "spawn amortization must grow with uptime: {stats:?}"
    );
}
