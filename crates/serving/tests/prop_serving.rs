//! Differential property tests: the batched, multi-threaded serving engine
//! must agree with single-threaded variable elimination on random networks
//! and random query batches — including evidence-restricted queries and
//! batches answered through materialized shortcut potentials.

use peanut_core::{Materialization, OfflineContext, Peanut, PeanutConfig, Workload};
use peanut_junction::{build_junction_tree, QueryEngine};
use peanut_pgm::generate::{generate_network, DagConfig};
use peanut_pgm::{BayesianNetwork, Potential, Scope, Var};
use peanut_serving::{ServeRequest, ServingConfig, ServingEngine};
use peanut_ve::ve_answer;
use peanut_workload::{uniform_queries, with_evidence, QuerySpec};
use proptest::prelude::*;

/// Oracle: `P(targets | evidence)` via single-threaded VE.
fn ve_conditional(bn: &BayesianNetwork, targets: &Scope, evidence: &[(Var, u32)]) -> Potential {
    let ev_scope = Scope::from_iter(evidence.iter().map(|&(v, _)| v));
    let q = targets.union(&ev_scope);
    let (mut joint, _) = ve_answer(bn, &q).unwrap();
    for &(v, val) in evidence {
        joint = joint.restrict(v, val).unwrap();
    }
    joint.normalize();
    joint
}

fn random_batch(bn: &BayesianNetwork, n: usize, seed: u64) -> Vec<ServeRequest> {
    let spec = QuerySpec {
        min_vars: 1,
        max_vars: 4,
    };
    let scopes = uniform_queries(bn.domain(), n, spec, seed);
    with_evidence(bn.domain(), &scopes, 0.4, seed ^ 0xf00d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serving answers (numeric, multi-threaded, deduped, with shortcut
    /// materialization) match VE within 1e-9.
    #[test]
    fn serving_matches_single_threaded_ve(seed in 0u64..2_000, n in 4usize..10, budget in 0u64..256) {
        let cfg = DagConfig {
            n_nodes: n,
            n_edges: n - 1 + n / 3,
            max_in_degree: 3,
            window: 3,
            cardinalities: vec![2, 3],
        };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let batch = random_batch(&bn, 20, seed ^ 0xba7c);

        // materialize shortcuts against the marginal part of the batch so
        // the shortcut-reduced path is exercised, not just plain JT
        let train: Vec<Scope> = batch
            .iter()
            .filter(|q| q.is_marginal())
            .map(|q| q.targets.clone())
            .collect();
        let mat = if train.is_empty() || budget == 0 {
            Materialization::default()
        } else {
            let ctx = OfflineContext::new(&tree, &Workload::from_queries(train)).unwrap();
            let (mat, _) = Peanut::offline_numeric(
                &ctx,
                &PeanutConfig::plus(budget).with_epsilon(1.0),
                engine.numeric_state().unwrap(),
            )
            .unwrap();
            mat
        };

        let serving = ServingEngine::new(engine, mat, ServingConfig::default().with_workers(4));
        let (answers, stats) = serving.serve_batch(&batch);
        prop_assert_eq!(answers.len(), batch.len());
        prop_assert!(stats.unique <= stats.queries);

        for (q, a) in batch.iter().zip(&answers) {
            let a = a.served().expect("batch query must succeed");
            let want = if q.is_marginal() {
                ve_answer(&bn, &q.targets).unwrap().0
            } else {
                ve_conditional(&bn, &q.targets, &q.evidence)
            };
            prop_assert!(
                a.potential.max_abs_diff(&want).unwrap() < 1e-9,
                "serving diverged from VE on {:?}", q
            );
        }
    }
}
