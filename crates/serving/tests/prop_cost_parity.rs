//! Differential property tests of the symbolic cost model: the `QueryCost`
//! reported by the plain JT path and by the shortcut-reduced path must
//! agree with an independently computed operation count over the (reduced)
//! Steiner tree, and the numeric kernels must report the identical ops —
//! guarding the stride-walk kernel rewrite against silent cost regressions.

use peanut_core::{Materialization, OfflineContext, OnlineEngine, Peanut, PeanutConfig, Workload};
use peanut_junction::cost::marginalization_ops;
use peanut_junction::{build_junction_tree, QueryEngine, QueryPlan, ReducedTree};
use peanut_pgm::generate::{generate_network, DagConfig};
use peanut_pgm::{table_size, Domain, Scope};
use peanut_workload::{uniform_queries, QuerySpec};
use proptest::prelude::*;

/// Independent re-derivation of the §5.1 cost model on a reduced tree:
/// recursive (rather than the engine's iterative post-order) accumulation
/// of `|table(U_v)| · (1 + #incoming) + |table(U_v)|` per node, built
/// directly on `table_size`.
fn reference_ops(rt: &ReducedTree, query: &Scope, domain: &Domain) -> u64 {
    fn visit(
        rt: &ReducedTree,
        u: usize,
        query: &Scope,
        domain: &Domain,
        total: &mut u64,
    ) -> (Scope, Scope) {
        // returns (message scope into the parent, query vars carried so far)
        let node_scope = rt.node(u).scope.clone();
        let mut product_scope = node_scope.clone();
        let mut carried = node_scope.intersect(query);
        let n_in = rt.children(u).len();
        for &c in rt.children(u) {
            let (m, carry) = visit(rt, c, query, domain, total);
            product_scope = product_scope.union(&m);
            carried = carried.union(&carry);
        }
        let t = table_size(&product_scope, domain);
        let is_root = u == rt.root();
        let factors = 1 + n_in + usize::from(!is_root); // + separator division
        *total = total
            .saturating_add(t.saturating_mul(factors as u64))
            .saturating_add(t);
        if is_root {
            (Scope::empty(), carried)
        } else {
            let p = rt.parent(u).expect("non-root");
            let sep = node_scope.intersect(&rt.node(p).scope);
            (sep.union(&carried), carried)
        }
    }
    let mut total = 0u64;
    visit(rt, rt.root(), query, domain, &mut total);
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Plain-JT and shortcut-path symbolic costs both equal the independent
    /// recomputation, in-clique queries are charged exactly
    /// `marginalization_ops`, and numeric execution reports the same ops.
    #[test]
    fn cost_model_parity(seed in 0u64..2_000, n in 5usize..11, budget in 0u64..200) {
        let cfg = DagConfig {
            n_nodes: n,
            n_edges: n - 1 + n / 4,
            max_in_degree: 2,
            window: 3,
            cardinalities: vec![2, 3],
        };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let domain = tree.domain();

        let spec = QuerySpec { min_vars: 1, max_vars: 3 };
        let queries = uniform_queries(bn.domain(), 12, spec, seed ^ 0xc0c0);
        let mat = if budget == 0 {
            Materialization::default()
        } else {
            let ctx = OfflineContext::new(&tree, &Workload::from_queries(queries.clone())).unwrap();
            let (mat, _) = Peanut::offline_numeric(
                &ctx,
                &PeanutConfig::plus(budget).with_epsilon(1.0),
                engine.numeric_state().unwrap(),
            )
            .unwrap();
            mat
        };
        let online = OnlineEngine::new(&engine, &mat);

        for q in &queries {
            match engine.plan(q).unwrap() {
                QueryPlan::InClique(u) => {
                    let c = engine.cost(q).unwrap();
                    prop_assert_eq!(c.ops, marginalization_ops(tree.clique(u), domain));
                    prop_assert_eq!(c.messages, 0);
                }
                QueryPlan::OutOfClique(_) => {
                    // plain JT path vs independent recomputation
                    let plain_rt = engine.reduced_for(q).unwrap().expect("out-of-clique");
                    let plain = engine.cost(q).unwrap();
                    prop_assert_eq!(plain.ops, reference_ops(&plain_rt, q, domain));
                    // shortcut-reduced path vs independent recomputation
                    let with_mat = online.cost(q).unwrap();
                    if let Some(rt) = online.reduce(q).unwrap() {
                        prop_assert_eq!(with_mat.ops, reference_ops(&rt, q, domain));
                        prop_assert_eq!(with_mat.shortcuts_used, rt.shortcuts_used());
                    }
                    // the online engine never regresses past plain JT
                    prop_assert!(with_mat.ops <= plain.ops);
                }
            }
            // numeric execution must report the identical symbolic count
            let (_, c_num) = online.answer(q).unwrap();
            prop_assert_eq!(c_num.ops, online.cost(q).unwrap().ops);
        }
    }
}
