//! Cold-tenant paging guarantees of the store-backed sharded engine:
//!
//! * a fleet with a resident-set cap **smaller than its tenant count**
//!   serves a full mixed replay with zero errors, answers **bit-identical**
//!   to an uncapped (always-resident) fleet, and never ends a batch with
//!   more than `max_resident` tenants in RAM;
//! * a paged-out tenant faults back in on access, resuming its epoch
//!   sequence (publishes persist write-behind and survive a page-out);
//! * paging telemetry (faults, page-outs, fault wall time) is reported
//!   per batch and cumulatively.

use peanut_core::{Materialization, OfflineContext, Peanut, PeanutConfig, Workload};
use peanut_junction::{build_junction_tree, JunctionTree, QueryEngine};
use peanut_pgm::{fixtures, BayesianNetwork, Scope};
use peanut_serving::{
    ServeOutcome, ServeRequest, ShardConfig, ShardedServingEngine, StoreConfig, TenantId,
};
use peanut_workload::{uniform_queries, with_evidence, QuerySpec};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("peanut-paging-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fleet_models(n: usize) -> Vec<BayesianNetwork> {
    (0..n)
        .map(|i| fixtures::chain(8 + i % 3, 2, 13 + 2 * i as u64))
        .collect()
}

fn tenant_batch(bn: &BayesianNetwork, n: usize, seed: u64) -> Vec<ServeRequest> {
    let spec = QuerySpec {
        min_vars: 1,
        max_vars: 3,
    };
    let scopes = uniform_queries(bn.domain(), n, spec, seed);
    with_evidence(bn.domain(), &scopes, 0.3, seed ^ 0xf00d)
}

fn train_mat(
    tree: &JunctionTree,
    engine: &QueryEngine<'_>,
    batch: &[ServeRequest],
) -> Materialization {
    let train: Vec<Scope> = batch.iter().map(|q| q.stat_scope()).collect();
    let ctx = OfflineContext::new(tree, &Workload::from_queries(train)).unwrap();
    Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(256).with_epsilon(1.0),
        engine.numeric_state().unwrap(),
    )
    .unwrap()
    .0
}

/// Registers `trees.len()` tenants, each with a trained materialization,
/// on a fleet configured with `store` and `max_resident`.
fn build_fleet<'a>(
    trees: &'a [JunctionTree],
    bns: &'a [BayesianNetwork],
    batches: &[Vec<ServeRequest>],
    store: Option<StoreConfig>,
    max_resident: usize,
) -> ShardedServingEngine<'a> {
    let mut fleet = ShardedServingEngine::new(
        ShardConfig::default()
            .with_workers(2)
            .with_max_resident(max_resident),
    );
    if let Some(store) = store {
        fleet.set_store(store);
    }
    for (i, (tree, bn)) in trees.iter().zip(bns).enumerate() {
        let engine = QueryEngine::numeric(tree, bn).unwrap();
        let mat = train_mat(tree, &engine, &batches[i]);
        fleet.register(TenantId(i as u32), engine, mat).unwrap();
    }
    fleet
}

/// The tentpole acceptance check: 6 tenants behind a resident cap of 2
/// drain a full mixed replay with zero errors and bit-identical answers
/// to an uncapped fleet, while the resident set stays bounded and cold
/// tenants actually cycle through the store.
#[test]
fn capped_fleet_replays_bit_identically_to_uncapped() {
    let bns = fleet_models(6);
    let trees: Vec<JunctionTree> = bns
        .iter()
        .map(|bn| build_junction_tree(bn).unwrap())
        .collect();
    let batches: Vec<Vec<ServeRequest>> = bns
        .iter()
        .enumerate()
        .map(|(i, bn)| tenant_batch(bn, 10, 41 + i as u64))
        .collect();

    let dir = temp_dir("replay");
    let capped = build_fleet(&trees, &bns, &batches, Some(StoreConfig::new(&dir)), 2);
    let uncapped = build_fleet(&trees, &bns, &batches, None, 0);

    // arrival stream sweeping through all tenants, several passes: every
    // pass past the first re-faults tenants the cap evicted
    let arrivals: Vec<(TenantId, ServeRequest)> = (0..3)
        .flat_map(|_| {
            batches
                .iter()
                .enumerate()
                .flat_map(|(t, qs)| qs.iter().map(move |q| (TenantId(t as u32), q.clone())))
        })
        .collect();

    let mut total_faults = 0usize;
    let mut total_page_outs = 0usize;
    for chunk in arrivals.chunks(15) {
        let (capped_answers, stats) = capped.serve_mixed(chunk);
        let (plain_answers, _) = uncapped.serve_mixed(chunk);
        assert!(
            stats.resident <= 2,
            "resident set must stay within the cap: {} > 2",
            stats.resident
        );
        total_faults += stats.faults;
        total_page_outs += stats.page_outs;
        for (i, (c, p)) in capped_answers.iter().zip(&plain_answers).enumerate() {
            let (c, p) = (
                c.served().expect("capped fleet must serve without errors"),
                p.served()
                    .expect("uncapped fleet must serve without errors"),
            );
            let c_bits: Vec<u64> = c.potential.values().iter().map(|v| v.to_bits()).collect();
            let p_bits: Vec<u64> = p.potential.values().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                c_bits, p_bits,
                "arrival {i} ({}) must answer bit-identically through the page cycle",
                chunk[i].0
            );
            assert_eq!(c.cost.ops, p.cost.ops, "same reduced-tree computation");
        }
    }
    assert!(
        total_faults > 0 && total_page_outs > 0,
        "a 6-tenant sweep under a cap of 2 must actually page: \
         {total_faults} faults, {total_page_outs} page-outs"
    );
    let paging = capped.paging_stats();
    assert_eq!(paging.registered, 6);
    assert!(paging.resident <= 2);
    assert_eq!(paging.max_resident, 2);
    assert_eq!(paging.faults as usize, total_faults);
    assert_eq!(paging.page_outs as usize, total_page_outs);
    assert_eq!(paging.fault_errors, 0);
    assert!(paging.fault_wall > std::time::Duration::ZERO);
    assert_eq!(uncapped.paging_stats().faults, 0, "no store, no paging");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A publish on a resident tenant persists write-behind; after the tenant
/// is paged out, its next access faults the *published* epoch back in and
/// the epoch sequence resumes from there.
#[test]
fn publish_survives_a_page_out() {
    let bns = fleet_models(3);
    let trees: Vec<JunctionTree> = bns
        .iter()
        .map(|bn| build_junction_tree(bn).unwrap())
        .collect();
    let batches: Vec<Vec<ServeRequest>> = bns
        .iter()
        .enumerate()
        .map(|(i, bn)| tenant_batch(bn, 8, 7 + i as u64))
        .collect();
    let dir = temp_dir("publish");
    let fleet = build_fleet(&trees, &bns, &batches, Some(StoreConfig::new(&dir)), 1);

    // tenant 0: publish a fresh (empty) epoch while resident
    let t0 = fleet.tenant(TenantId(0)).unwrap();
    assert_eq!(t0.publish(Materialization::default()), 1);
    assert_eq!(
        t0.persisted_epoch(),
        Some(1),
        "publish persists write-behind"
    );
    assert_eq!(t0.persist_errors(), 0);
    drop(t0);

    // touching the other tenants under a cap of 1 evicts tenant 0
    fleet.tenant(TenantId(1)).unwrap();
    fleet.tenant(TenantId(2)).unwrap();
    assert!(fleet.resident_len() <= 1);

    // fault tenant 0 back in: it resumes at the published epoch, and the
    // next publish continues the sequence
    let t0 = fleet.tenant(TenantId(0)).unwrap();
    assert_eq!(
        t0.epoch(),
        1,
        "fault-in must pick the newest persisted epoch"
    );
    assert!(
        t0.materialization().is_empty(),
        "epoch 1 was the empty publish"
    );
    assert_eq!(t0.publish(Materialization::default()), 2);
    assert!(fleet.paging_stats().faults >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The resident-only `tenants()` view and the by-id fault-in: a paged-out
/// tenant disappears from the fleet iteration but is transparently
/// rehydrated when addressed directly.
#[test]
fn tenants_view_tracks_residency() {
    let bns = fleet_models(4);
    let trees: Vec<JunctionTree> = bns
        .iter()
        .map(|bn| build_junction_tree(bn).unwrap())
        .collect();
    let batches: Vec<Vec<ServeRequest>> = bns
        .iter()
        .enumerate()
        .map(|(i, bn)| tenant_batch(bn, 8, 90 + i as u64))
        .collect();
    let dir = temp_dir("view");
    let fleet = build_fleet(&trees, &bns, &batches, Some(StoreConfig::new(&dir)), 2);
    assert_eq!(fleet.len(), 4);
    assert_eq!(fleet.tenants().len(), 4, "everyone starts resident");

    // one batch per tenant in id order leaves only the two most recent
    for (t, qs) in batches.iter().enumerate() {
        let batch: Vec<(TenantId, ServeRequest)> =
            qs.iter().map(|q| (TenantId(t as u32), q.clone())).collect();
        let (answers, _) = fleet.serve_mixed(&batch);
        assert!(answers.iter().all(ServeOutcome::is_served));
    }
    let resident: Vec<TenantId> = fleet.tenants().into_iter().map(|(id, _)| id).collect();
    assert_eq!(
        resident,
        vec![TenantId(2), TenantId(3)],
        "LRU must keep the two most recently served tenants"
    );
    // addressing a cold tenant faults it in (and re-enforces the cap)
    assert!(fleet.tenant(TenantId(0)).is_some());
    let resident: Vec<TenantId> = fleet.tenants().into_iter().map(|(id, _)| id).collect();
    assert!(resident.contains(&TenantId(0)));
    assert!(fleet.resident_len() <= 2);
    let _ = std::fs::remove_dir_all(&dir);
}
