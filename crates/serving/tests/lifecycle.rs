//! Epoch-lifecycle guarantees:
//!
//! * answers served across a hot materialization swap stay correct —
//!   differential against single-threaded VE within 1e-9, on random
//!   networks and random (evidence-bearing) batches;
//! * pre-swap answer-cache entries are never served for post-swap
//!   epochs (epoch-tagged lazy invalidation);
//! * the re-materialization controller is deterministic: the same drift
//!   schedule and seeds produce the same swap points and the same
//!   selected shortcut sets.

use peanut_core::{Materialization, OfflineContext, Peanut, PeanutConfig, Workload};
use peanut_junction::{build_junction_tree, QueryEngine};
use peanut_pgm::generate::{generate_network, DagConfig};
use peanut_pgm::{fixtures, BayesianNetwork, Potential, Scope, Var};
use peanut_serving::{
    LifecycleConfig, RematerializationController, ServeOutcome, ServeRequest, ServingConfig,
    ServingEngine,
};
use peanut_ve::ve_answer;
use peanut_workload::{drifting_queries, uniform_queries, with_evidence, DriftSchedule, QuerySpec};
use proptest::prelude::*;

/// Oracle: `P(targets | evidence)` via single-threaded VE.
fn ve_conditional(bn: &BayesianNetwork, targets: &Scope, evidence: &[(Var, u32)]) -> Potential {
    let ev_scope = Scope::from_iter(evidence.iter().map(|&(v, _)| v));
    let q = targets.union(&ev_scope);
    let (mut joint, _) = ve_answer(bn, &q).unwrap();
    for &(v, val) in evidence {
        joint = joint.restrict(v, val).unwrap();
    }
    joint.normalize();
    joint
}

fn random_batch(bn: &BayesianNetwork, n: usize, seed: u64) -> Vec<ServeRequest> {
    let spec = QuerySpec {
        min_vars: 1,
        max_vars: 4,
    };
    let scopes = uniform_queries(bn.domain(), n, spec, seed);
    with_evidence(bn.domain(), &scopes, 0.4, seed ^ 0xf00d)
}

fn train_mat(
    tree: &peanut_junction::JunctionTree,
    engine: &QueryEngine<'_>,
    batch: &[ServeRequest],
    budget: u64,
) -> Materialization {
    let train: Vec<Scope> = batch.iter().map(|q| q.stat_scope()).collect();
    if train.is_empty() || budget == 0 {
        return Materialization::default();
    }
    let ctx = OfflineContext::new(tree, &Workload::from_queries(train)).unwrap();
    Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(budget).with_epsilon(1.0),
        engine.numeric_state().unwrap(),
    )
    .unwrap()
    .0
}

fn check_against_ve(bn: &BayesianNetwork, batch: &[ServeRequest], answers: &[ServeOutcome]) {
    for (q, a) in batch.iter().zip(answers) {
        let a = a.served().expect("batch query must succeed");
        let want = if q.is_marginal() {
            ve_answer(bn, &q.targets).unwrap().0
        } else {
            ve_conditional(bn, &q.targets, &q.evidence)
        };
        assert!(
            a.potential.max_abs_diff(&want).unwrap() < 1e-9,
            "serving diverged from VE on {q:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serve a batch, hot-swap to a materialization trained on different
    /// traffic, then re-serve the same batch (whose pre-swap answers are
    /// still sitting in the cache) plus fresh queries: every post-swap
    /// answer must carry the new epoch and still match VE within 1e-9.
    #[test]
    fn answers_across_epoch_swap_match_ve(seed in 0u64..1_500, n in 5usize..10, budget in 1u64..256) {
        let cfg = DagConfig {
            n_nodes: n,
            n_edges: n - 1 + n / 3,
            max_in_degree: 3,
            window: 3,
            cardinalities: vec![2, 3],
        };
        let Ok(bn) = generate_network(&cfg, seed) else { return Ok(()) };
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let batch_a = random_batch(&bn, 16, seed ^ 0xba7c);
        let batch_b = random_batch(&bn, 16, seed ^ 0x5afe);
        let mat_a = train_mat(&tree, &engine, &batch_a, budget);
        let mat_b = train_mat(&tree, &engine, &batch_b, budget.saturating_mul(2));

        let serving = ServingEngine::new(engine, mat_a, ServingConfig::default().with_workers(4));
        let (pre, s_pre) = serving.serve_batch(&batch_a);
        prop_assert_eq!(s_pre.epoch, 0);
        check_against_ve(&bn, &batch_a, &pre);

        // hot swap while the cache is full of epoch-0 entries
        let epoch = serving.publish(mat_b);
        prop_assert_eq!(epoch, 1);

        let mixed: Vec<ServeRequest> = batch_a.iter().chain(&batch_b).cloned().collect();
        let (post, s_post) = serving.serve_batch(&mixed);
        prop_assert_eq!(s_post.epoch, 1);
        prop_assert_eq!(s_post.cache_hits, 0, "pre-swap entries must never hit post-swap");
        check_against_ve(&bn, &mixed, &post);
        for a in post.iter().filter_map(ServeOutcome::served) {
            prop_assert_eq!(a.epoch, 1, "post-swap answers must carry the new epoch");
            prop_assert!(!a.from_cache);
        }

        // once re-populated, the epoch-1 cache serves zero-copy again
        let (warm, s_warm) = serving.serve_batch(&mixed);
        prop_assert_eq!(s_warm.cache_hits, s_warm.unique);
        for (a, b) in post.iter().zip(&warm) {
            let (a, b) = (a.served().unwrap(), b.served().unwrap());
            prop_assert!(
                std::sync::Arc::ptr_eq(&a.answer, &b.answer),
                "warm path must share, not copy"
            );
        }
    }
}

/// One full drift-replay run: returns the swap points (arrival counts and
/// epochs) and the final epoch's shortcut fingerprint.
#[allow(clippy::type_complexity)]
fn drift_run(seed: u64) -> (Vec<(u64, u64)>, Vec<(Vec<usize>, u64)>, u64) {
    let bn = fixtures::chain(20, 2, 13);
    let tree = build_junction_tree(&bn).unwrap();
    let engine = QueryEngine::numeric(&tree, &bn).unwrap();

    let deep: Vec<Scope> = (10..15u32)
        .map(|a| Scope::from_indices(&[a, a + 5]))
        .collect();
    let shallow: Vec<Scope> = (0..5u32)
        .map(|a| Scope::from_indices(&[a, a + 5]))
        .collect();
    let train_w = Workload::from_queries(deep.iter().cloned());
    let ctx = OfflineContext::new(&tree, &train_w).unwrap();
    let (mat, _) = Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(512).with_epsilon(1.0),
        engine.numeric_state().unwrap(),
    )
    .unwrap();

    let serving = ServingEngine::new(engine, mat, ServingConfig::default().with_workers(2));
    let mut ctl = RematerializationController::new(
        &serving,
        &train_w,
        LifecycleConfig::new(512).with_min_window(64),
    );

    let schedule = DriftSchedule::Linear {
        from: 1.0,
        to: 0.0,
        over: 300,
    };
    let stream = drifting_queries(&deep, &shallow, &schedule, 600, seed);
    let mut swap_points = Vec::new();
    for chunk in stream.chunks(25) {
        let batch: Vec<ServeRequest> = chunk.iter().cloned().map(ServeRequest::marginal).collect();
        let (answers, _) = serving.serve_batch(&batch);
        assert!(answers.iter().all(ServeOutcome::is_served));
        if let Some(ev) = ctl.tick().unwrap() {
            swap_points.push((ev.at_arrivals, ev.epoch));
        }
    }
    let final_mat = serving.materialization();
    let fingerprint = final_mat
        .shortcuts
        .iter()
        .map(|s| (s.shortcut.nodes().to_vec(), s.shortcut.size()))
        .collect();
    (swap_points, fingerprint, serving.epoch())
}

/// Same drift schedule + seed ⇒ identical swap points and identical
/// selected shortcut sets, run to run — the lifecycle adds no hidden
/// nondeterminism on top of the already-pinned offline DP.
#[test]
fn controller_is_deterministic() {
    let (swaps1, mat1, epoch1) = drift_run(42);
    let (swaps2, mat2, epoch2) = drift_run(42);
    assert!(!swaps1.is_empty(), "drift replay must trigger a swap");
    assert_eq!(swaps1, swaps2, "swap points drifted between runs");
    assert_eq!(mat1, mat2, "selected shortcut sets drifted between runs");
    assert_eq!(epoch1, epoch2);
    assert!(epoch1 >= 1);

    // a different seed draws a different stream — swap points may differ,
    // but the machinery must still converge to a materialized epoch
    let (_, mat3, epoch3) = drift_run(43);
    assert!(epoch3 >= 1);
    assert!(!mat3.is_empty());
}
