//! Tenant-isolation guarantees of the sharded serving engine:
//!
//! * answers from a mixed-tenant batch are **byte-identical** to each
//!   tenant served alone on a single-threaded engine, and match a
//!   single-threaded VE oracle within 1e-9 — on random networks and
//!   random evidence-bearing batches;
//! * one tenant's epoch swap never invalidates another tenant's cache
//!   entries (and never changes its answers).

use peanut_core::{Materialization, OfflineContext, Peanut, PeanutConfig, Workload};
use peanut_junction::{build_junction_tree, QueryEngine};
use peanut_pgm::generate::{generate_network, DagConfig};
use peanut_pgm::{fixtures, BayesianNetwork, Potential, Scope, Var};
use peanut_serving::{
    ServeRequest, ServingConfig, ServingEngine, ShardConfig, ShardedServingEngine, TenantId,
};
use peanut_ve::ve_answer;
use peanut_workload::{uniform_queries, with_evidence, QuerySpec};
use proptest::prelude::*;

/// Oracle: `P(targets | evidence)` via single-threaded VE.
fn ve_conditional(bn: &BayesianNetwork, targets: &Scope, evidence: &[(Var, u32)]) -> Potential {
    let ev_scope = Scope::from_iter(evidence.iter().map(|&(v, _)| v));
    let q = targets.union(&ev_scope);
    let (mut joint, _) = ve_answer(bn, &q).unwrap();
    for &(v, val) in evidence {
        joint = joint.restrict(v, val).unwrap();
    }
    joint.normalize();
    joint
}

fn random_batch(bn: &BayesianNetwork, n: usize, seed: u64) -> Vec<ServeRequest> {
    let spec = QuerySpec {
        min_vars: 1,
        max_vars: 4,
    };
    let scopes = uniform_queries(bn.domain(), n, spec, seed);
    with_evidence(bn.domain(), &scopes, 0.4, seed ^ 0xf00d)
}

fn train_mat(
    tree: &peanut_junction::JunctionTree,
    engine: &QueryEngine<'_>,
    batch: &[ServeRequest],
    budget: u64,
) -> Materialization {
    let train: Vec<Scope> = batch.iter().map(|q| q.stat_scope()).collect();
    if train.is_empty() || budget == 0 {
        return Materialization::default();
    }
    let ctx = OfflineContext::new(tree, &Workload::from_queries(train)).unwrap();
    Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(budget).with_epsilon(1.0),
        engine.numeric_state().unwrap(),
    )
    .unwrap()
    .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interleave per-tenant batches (with evidence queries and shared
    /// worker fan-out) and check every arrival against (a) the same tenant
    /// served alone on a single-threaded engine — byte-identical — and
    /// (b) a VE oracle on that tenant's model — within 1e-9.
    #[test]
    fn mixed_batch_matches_each_tenant_alone(seed in 0u64..1_000, n in 5usize..9) {
        let cfg_a = DagConfig {
            n_nodes: n,
            n_edges: n - 1 + n / 3,
            max_in_degree: 3,
            window: 3,
            cardinalities: vec![2, 3],
        };
        let cfg_b = DagConfig { n_nodes: n + 2, ..cfg_a.clone() };
        let Ok(bn_a) = generate_network(&cfg_a, seed) else { return Ok(()) };
        let Ok(bn_b) = generate_network(&cfg_b, seed ^ 0xb) else { return Ok(()) };
        let bns = [bn_a, bn_b];
        let trees = [
            build_junction_tree(&bns[0]).unwrap(),
            build_junction_tree(&bns[1]).unwrap(),
        ];

        // per-tenant batches over each tenant's own model, with evidence
        let batches: Vec<Vec<ServeRequest>> = bns
            .iter()
            .enumerate()
            .map(|(i, bn)| random_batch(bn, 12, seed ^ (i as u64) << 8))
            .collect();

        // sharded engine with materialized shortcuts and shared workers
        let mut sharded = ShardedServingEngine::new(ShardConfig::default().with_workers(4));
        for (i, (tree, bn)) in trees.iter().zip(&bns).enumerate() {
            let engine = QueryEngine::numeric(tree, bn).unwrap();
            let mat = train_mat(tree, &engine, &batches[i], 128);
            sharded.register(TenantId(i as u32), engine, mat).unwrap();
        }

        // interleave the two tenants' arrivals round-robin
        let mixed: Vec<(TenantId, ServeRequest)> = batches[0]
            .iter()
            .zip(&batches[1])
            .flat_map(|(a, b)| {
                [(TenantId(0), a.clone()), (TenantId(1), b.clone())]
            })
            .collect();
        let (served, stats) = sharded.serve_mixed(&mixed);
        prop_assert_eq!(stats.arrivals, mixed.len());

        // (a) byte-identical to each tenant served alone, single-threaded
        for (i, (tree, bn)) in trees.iter().zip(&bns).enumerate() {
            let engine = QueryEngine::numeric(tree, bn).unwrap();
            let mat = train_mat(tree, &engine, &batches[i], 128);
            let alone = ServingEngine::new(engine, mat, ServingConfig::default().with_workers(1));
            let (alone_answers, _) = alone.serve_batch(&batches[i]);
            let mixed_answers = served
                .iter()
                .zip(&mixed)
                .filter(|(_, (tid, _))| *tid == TenantId(i as u32))
                .map(|(a, _)| a);
            for (m, a) in mixed_answers.zip(&alone_answers) {
                let (m, a) = (m.served().unwrap(), a.served().unwrap());
                prop_assert_eq!(m.potential.scope(), a.potential.scope());
                let m_bits: Vec<u64> = m.potential.values().iter().map(|v| v.to_bits()).collect();
                let a_bits: Vec<u64> = a.potential.values().iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(
                    m_bits, a_bits,
                    "mixed-batch serving must be byte-identical to serving the tenant alone"
                );
            }
        }

        // (b) against the VE oracle on the owning tenant's model
        for ((tid, q), a) in mixed.iter().zip(&served) {
            let bn = &bns[tid.0 as usize];
            let a = a.served().unwrap();
            let want = if q.is_marginal() {
                ve_answer(bn, &q.targets).unwrap().0
            } else {
                ve_conditional(bn, &q.targets, &q.evidence)
            };
            prop_assert!(
                a.potential.max_abs_diff(&want).unwrap() < 1e-9,
                "tenant {} diverged from its own model's VE on {:?}",
                tid,
                q
            );
        }
    }
}

/// One tenant's epoch swap must not invalidate (or change) another
/// tenant's cache entries: after tenant A publishes, tenant B's repeats
/// are still served zero-copy from B's cache at B's old epoch.
#[test]
fn epoch_swap_is_tenant_local() {
    let bns = [fixtures::figure1(), fixtures::sprinkler()];
    let trees = [
        build_junction_tree(&bns[0]).unwrap(),
        build_junction_tree(&bns[1]).unwrap(),
    ];
    let mut sharded = ShardedServingEngine::new(ShardConfig::default().with_workers(2));
    for (i, (tree, bn)) in trees.iter().zip(&bns).enumerate() {
        let engine = QueryEngine::numeric(tree, bn).unwrap();
        sharded
            .register(TenantId(i as u32), engine, Materialization::default())
            .unwrap();
    }
    let mixed: Vec<(TenantId, ServeRequest)> = (0..2u32)
        .flat_map(|t| {
            (0..3u32).map(move |v| {
                (
                    TenantId(t),
                    ServeRequest::marginal(Scope::from_indices(&[v, v + 1])),
                )
            })
        })
        .collect();
    let (first, _) = sharded.serve_mixed(&mixed);

    // tenant 0 swaps epochs twice; tenant 1 is never touched
    let tree = &trees[0];
    let engine = QueryEngine::numeric(tree, &bns[0]).unwrap();
    let mat = train_mat(
        tree,
        &engine,
        &mixed
            .iter()
            .filter(|(t, _)| *t == TenantId(0))
            .map(|(_, q)| q.clone())
            .collect::<Vec<_>>(),
        256,
    );
    sharded.tenant(TenantId(0)).unwrap().publish(mat);
    sharded
        .tenant(TenantId(0))
        .unwrap()
        .publish(Materialization::default());
    assert_eq!(sharded.tenant(TenantId(0)).unwrap().epoch(), 2);
    assert_eq!(sharded.tenant(TenantId(1)).unwrap().epoch(), 0);

    let (second, stats) = sharded.serve_mixed(&mixed);
    for ((tid, _), (a, b)) in mixed.iter().zip(first.iter().zip(&second)) {
        let (a, b) = (a.served().unwrap(), b.served().unwrap());
        if *tid == TenantId(1) {
            // B's entries survived both of A's swaps: zero-copy, old epoch
            assert!(
                std::sync::Arc::ptr_eq(&a.answer, &b.answer),
                "tenant 1's cache entry must survive tenant 0's swaps"
            );
            assert!(b.from_cache);
            assert_eq!(b.epoch, 0);
        } else {
            // A recomputes under its new epoch, same (materialization-
            // independent) distribution
            assert!(!b.from_cache);
            assert_eq!(b.epoch, 2);
            assert!(a.potential.max_abs_diff(&b.potential).unwrap() < 1e-12);
        }
    }
    let t1 = stats
        .per_tenant
        .iter()
        .find(|(t, _)| *t == TenantId(1))
        .map(|(_, b)| b)
        .unwrap();
    assert_eq!(t1.cache_hits, t1.unique, "tenant 1 must stay fully cached");
    assert_eq!(t1.stale_hits, 0);
}
