//! Workload replay: stream a query mix through a [`ServingEngine`] batch by
//! batch and measure what a load test would — throughput, latency
//! percentiles, operation counts, shortcut hit rates. [`replay_mixed`]
//! drives a multi-tenant arrival stream through a
//! [`ShardedServingEngine`] the same way.
//!
//! Both drivers pre-warm the engine's persistent worker pool before the
//! timed run, so the one-time thread spawn is charged to setup (as it
//! would be in a real server's boot) rather than to the first batch's
//! latency.

use crate::engine::{Query, ServingEngine};
use crate::shard::{ShardedServingEngine, TenantId};
use peanut_junction::{JunctionTree, RootedTree};
use peanut_workload::{skewed_queries, uniform_queries, with_evidence, QuerySpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Replay knobs.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Queries per batch (the arrival buffer a server would drain at once).
    pub batch_size: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { batch_size: 64 }
    }
}

/// Aggregate report of one replay run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayReport {
    /// Queries replayed.
    pub queries: usize,
    /// Batches served.
    pub batches: usize,
    /// Queries that returned an error.
    pub errors: usize,
    /// Unique computations after in-batch coalescing.
    pub unique: usize,
    /// Unique queries served from the cross-batch answer cache.
    pub cache_hits: usize,
    /// Cache entries found stale after an epoch swap and lazily dropped.
    pub stale_hits: usize,
    /// Materialization epochs observed: (first batch, last batch). They
    /// differ when a re-materialization was published mid-replay.
    pub epochs: (u64, u64),
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Queries per second over the whole run.
    pub throughput_qps: f64,
    /// Median per-query service time (cache hits count as zero, in-batch
    /// duplicates share their computation's time).
    pub latency_p50: Duration,
    /// 95th-percentile per-query service time.
    pub latency_p95: Duration,
    /// 99th-percentile per-query service time.
    pub latency_p99: Duration,
    /// Summed operation count (cost-model ops) over unique computations.
    pub total_ops: u64,
    /// Summed shortcut uses over unique computations.
    pub shortcuts_used: usize,
    /// Tenants faulted in from the store over the run (mixed replays on a
    /// paging fleet; zero otherwise).
    pub faults: usize,
    /// Tenants paged out over the run.
    pub page_outs: usize,
    /// Peak resident tenants observed at any batch end.
    pub max_resident: usize,
    /// Total wall-clock time spent faulting tenants in.
    pub fault_wall: Duration,
}

impl ReplayReport {
    /// Unique queries actually computed (cache hits excluded).
    pub fn computed(&self) -> usize {
        self.unique.saturating_sub(self.cache_hits)
    }

    /// Mean operation count per freshly computed unique query — the
    /// cost-model figure the drift experiments compare across epochs.
    pub fn mean_ops_per_computed(&self) -> f64 {
        if self.computed() == 0 {
            return 0.0;
        }
        self.total_ops as f64 / self.computed() as f64
    }
}

/// Streams `queries` through `engine` in batches and aggregates telemetry.
pub fn replay(engine: &ServingEngine<'_>, queries: &[Query], cfg: &ReplayConfig) -> ReplayReport {
    let batch_size = cfg.batch_size.max(1);
    engine.warm_pool();
    let start = Instant::now();
    let mut report = ReplayReport {
        queries: queries.len(),
        ..ReplayReport::default()
    };
    let mut latencies: Vec<Duration> = Vec::with_capacity(queries.len());
    for batch in queries.chunks(batch_size) {
        let (answers, stats) = engine.serve_batch(batch);
        if report.batches == 0 {
            report.epochs.0 = stats.epoch;
        }
        report.epochs.1 = stats.epoch;
        report.batches += 1;
        report.unique += stats.unique;
        report.cache_hits += stats.cache_hits;
        report.stale_hits += stats.stale_hits;
        report.total_ops = report.total_ops.saturating_add(stats.total_ops);
        report.shortcuts_used += stats.shortcuts_used;
        for a in &answers {
            match a {
                Ok(served) => latencies.push(served.latency()),
                Err(_) => report.errors += 1,
            }
        }
    }
    report.wall = start.elapsed();
    if report.wall.as_secs_f64() > 0.0 {
        report.throughput_qps = report.queries as f64 / report.wall.as_secs_f64();
    }
    latencies.sort_unstable();
    report.latency_p50 = percentile(&latencies, 0.50);
    report.latency_p95 = percentile(&latencies, 0.95);
    report.latency_p99 = percentile(&latencies, 0.99);
    report
}

/// Streams a multi-tenant arrival stream through a sharded engine in
/// mixed batches (the buffer a fleet endpoint drains at once) and
/// aggregates fleet-level telemetry. `epochs` reports the min/max epoch
/// observed across all tenants and batches.
pub fn replay_mixed(
    engine: &ShardedServingEngine<'_>,
    arrivals: &[(TenantId, Query)],
    cfg: &ReplayConfig,
) -> ReplayReport {
    let batch_size = cfg.batch_size.max(1);
    engine.warm_pool();
    let start = Instant::now();
    let mut report = ReplayReport {
        queries: arrivals.len(),
        ..ReplayReport::default()
    };
    let mut epochs: Option<(u64, u64)> = None;
    let mut latencies: Vec<Duration> = Vec::with_capacity(arrivals.len());
    for batch in arrivals.chunks(batch_size) {
        let (answers, stats) = engine.serve_mixed(batch);
        report.batches += 1;
        report.unique += stats.unique;
        report.cache_hits += stats.cache_hits;
        report.stale_hits += stats.stale_hits;
        report.total_ops = report.total_ops.saturating_add(stats.total_ops);
        report.shortcuts_used += stats.shortcuts_used;
        report.faults += stats.faults;
        report.page_outs += stats.page_outs;
        report.max_resident = report.max_resident.max(stats.resident);
        report.fault_wall += stats.fault_wall;
        for (_, b) in &stats.per_tenant {
            let (lo, hi) = epochs.get_or_insert((b.epoch, b.epoch));
            *lo = (*lo).min(b.epoch);
            *hi = (*hi).max(b.epoch);
        }
        for a in &answers {
            match a {
                Ok(served) => latencies.push(served.latency()),
                Err(_) => report.errors += 1,
            }
        }
    }
    report.epochs = epochs.unwrap_or_default();
    report.wall = start.elapsed();
    if report.wall.as_secs_f64() > 0.0 {
        report.throughput_qps = report.queries as f64 / report.wall.as_secs_f64();
    }
    latencies.sort_unstable();
    report.latency_p50 = percentile(&latencies, 0.50);
    report.latency_p95 = percentile(&latencies, 0.95);
    report.latency_p99 = percentile(&latencies, 0.99);
    report
}

/// Nearest-rank percentile of a **sorted** latency list.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Shape of a sampled serving workload (see [`workload_queries`]).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadMix {
    /// Per-query variable-count spec.
    pub spec: QuerySpec,
    /// Fraction of the pool drawn from the paper's skewed sampler (the
    /// rest is uniform).
    pub skew_fraction: f64,
    /// Fraction of pool queries turned into evidence-conditioned ones.
    pub evidence_fraction: f64,
    /// Number of distinct queries in the pool.
    pub pool_size: usize,
}

impl Default for WorkloadMix {
    fn default() -> Self {
        WorkloadMix {
            spec: QuerySpec::default(),
            skew_fraction: 0.7,
            evidence_fraction: 0.25,
            pool_size: 64,
        }
    }
}

/// Samples a serving workload following the paper's workload model
/// (Def. 3.3: a distribution over a *finite* query pool): draws up to
/// `mix.pool_size` **distinct** queries (duplicate generator draws are
/// removed) — a skewed/uniform blend with a fraction turned into
/// conditional queries — then samples `n` arrivals from the pool with
/// replacement. Repeated arrivals are what batch coalescing and the answer
/// cache exploit. Deterministic in `seed`.
pub fn workload_queries(
    tree: &JunctionTree,
    rooted: &RootedTree,
    n: usize,
    mix: &WorkloadMix,
    seed: u64,
) -> Vec<Query> {
    assert!(
        (0.0..=1.0).contains(&mix.skew_fraction),
        "fraction in [0, 1]"
    );
    let pool_size = mix.pool_size.clamp(1, n.max(1));
    let n_skewed = (pool_size as f64 * mix.skew_fraction).round() as usize;
    let mut scopes = skewed_queries(tree, rooted, n_skewed, mix.spec, seed);
    scopes.extend(uniform_queries(
        tree.domain(),
        pool_size - n_skewed.min(pool_size),
        mix.spec,
        seed ^ 0x5eed,
    ));
    let mut seen = std::collections::HashSet::new();
    let pool: Vec<Query> =
        with_evidence(tree.domain(), &scopes, mix.evidence_fraction, seed ^ 0xe71d)
            .into_iter()
            .map(|(targets, evidence)| Query::conditioned(targets, evidence))
            .filter(|q| seen.insert(q.clone()))
            .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa881);
    (0..n)
        .map(|_| pool[rng.gen_range(0..pool.len())].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ServingConfig, ServingEngine};
    use peanut_core::Materialization;
    use peanut_junction::{build_junction_tree, QueryEngine};
    use peanut_pgm::fixtures;

    #[test]
    fn replay_reports_consistent_counts() {
        let bn = fixtures::chain(10, 2, 7);
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving =
            ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
        let mix = WorkloadMix {
            skew_fraction: 0.5,
            evidence_fraction: 0.3,
            pool_size: 24,
            ..WorkloadMix::default()
        };
        let queries = workload_queries(&tree, &rooted, 100, &mix, 17);
        assert_eq!(queries.len(), 100);
        let report = replay(&serving, &queries, &ReplayConfig { batch_size: 32 });
        assert_eq!(report.queries, 100);
        assert_eq!(report.batches, 4);
        assert_eq!(report.errors, 0);
        assert!(report.unique <= 100);
        assert!(
            report.unique < 100,
            "pool sampling must repeat queries: {} unique",
            report.unique
        );
        assert!(report.throughput_qps > 0.0);
        assert!(report.latency_p50 <= report.latency_p95);
        assert!(report.latency_p95 <= report.latency_p99);
        assert!(report.total_ops > 0);
    }

    #[test]
    fn replay_mixed_aggregates_across_tenants() {
        use crate::shard::{ShardConfig, ShardedServingEngine, TenantId};
        let bn_a = fixtures::chain(10, 2, 7);
        let bn_b = fixtures::chain(12, 2, 9);
        let tree_a = build_junction_tree(&bn_a).unwrap();
        let tree_b = build_junction_tree(&bn_b).unwrap();
        let mut sharded = ShardedServingEngine::new(ShardConfig::default());
        sharded
            .register(
                TenantId(0),
                QueryEngine::numeric(&tree_a, &bn_a).unwrap(),
                Materialization::default(),
            )
            .unwrap();
        sharded
            .register(
                TenantId(1),
                QueryEngine::numeric(&tree_b, &bn_b).unwrap(),
                Materialization::default(),
            )
            .unwrap();
        let rooted_a = RootedTree::new(&tree_a);
        let mix = WorkloadMix {
            pool_size: 12,
            evidence_fraction: 0.0,
            ..WorkloadMix::default()
        };
        let arrivals: Vec<(TenantId, Query)> = workload_queries(&tree_a, &rooted_a, 60, &mix, 3)
            .into_iter()
            .enumerate()
            .map(|(i, q)| (TenantId((i % 2) as u32), q))
            .collect();
        let report = replay_mixed(&sharded, &arrivals, &ReplayConfig { batch_size: 20 });
        assert_eq!(report.queries, 60);
        assert_eq!(report.batches, 3);
        assert_eq!(report.errors, 0);
        assert_eq!(report.epochs, (0, 0));
        assert!(report.unique <= 60);
        assert!(report.total_ops > 0);
        // a second pass over the same stream is served from the caches
        let warm = replay_mixed(&sharded, &arrivals, &ReplayConfig { batch_size: 20 });
        assert_eq!(warm.cache_hits, warm.unique);
        assert_eq!(warm.total_ops, 0);
    }

    #[test]
    fn workload_queries_deterministic() {
        let bn = fixtures::chain(12, 2, 3);
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let mix = WorkloadMix {
            evidence_fraction: 0.4,
            pool_size: 16,
            ..WorkloadMix::default()
        };
        let a = workload_queries(&tree, &rooted, 50, &mix, 5);
        let b = workload_queries(&tree, &rooted, 50, &mix, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 0.99), Duration::from_millis(99));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }
}
