//! Workload replay: stream a query mix through a [`ServingEngine`] batch by
//! batch and measure what a load test would — throughput, latency
//! percentiles, operation counts, shortcut hit rates. [`replay_mixed`]
//! drives a multi-tenant arrival stream through a
//! [`ShardedServingEngine`] the same way.
//!
//! The closed-loop drivers above offer the next batch only once the
//! previous one completed, so they measure service time and can never
//! overload the engine. [`replay_open_loop`] / [`replay_open_loop_mixed`]
//! instead replay a **timed arrival schedule** (for example
//! [`poisson_arrivals`]) against a backlog the engine drains as fast as
//! it can: when offered load exceeds capacity the backlog grows, sojourn
//! times (queueing + service) explode, and the overload controls of
//! [`AdmissionConfig`] — admission
//! caps and deadline shedding — are what keep served-query p99 bounded.
//! That is the regime the saturation benches measure.
//!
//! All drivers pre-warm the engine's persistent worker pool before the
//! timed run, so the one-time thread spawn is charged to setup (as it
//! would be in a real server's boot) rather than to the first batch's
//! latency.

use crate::engine::ServingEngine;
use crate::overload::{AdmissionConfig, ServeOutcome, ShedReason};
use crate::pool::PoolStats;
use crate::shard::{ShardedServingEngine, TenantId};
use peanut_core::ServeRequest;
use peanut_junction::{JunctionTree, RootedTree};
use peanut_workload::{skewed_queries, uniform_queries, with_evidence, QuerySpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Replay knobs.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Queries per batch (the arrival buffer a server would drain at once).
    pub batch_size: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { batch_size: 64 }
    }
}

/// Aggregate report of one replay run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayReport {
    /// Queries replayed.
    pub queries: usize,
    /// Batches served.
    pub batches: usize,
    /// Queries that returned an error.
    pub errors: usize,
    /// Unique computations after in-batch coalescing.
    pub unique: usize,
    /// Unique queries served from the cross-batch answer cache.
    pub cache_hits: usize,
    /// Cache entries found stale after an epoch swap and lazily dropped.
    pub stale_hits: usize,
    /// Materialization epochs observed: (first batch, last batch). They
    /// differ when a re-materialization was published mid-replay.
    pub epochs: (u64, u64),
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Queries per second over the whole run.
    pub throughput_qps: f64,
    /// Median per-query service time (cache hits count as zero, in-batch
    /// duplicates share their computation's time).
    pub latency_p50: Duration,
    /// 95th-percentile per-query service time.
    pub latency_p95: Duration,
    /// 99th-percentile per-query service time.
    pub latency_p99: Duration,
    /// Summed operation count (cost-model ops) over unique computations.
    pub total_ops: u64,
    /// Summed shortcut uses over unique computations.
    pub shortcuts_used: usize,
    /// Tenants faulted in from the store over the run (mixed replays on a
    /// paging fleet; zero otherwise).
    pub faults: usize,
    /// Tenants paged out over the run.
    pub page_outs: usize,
    /// Peak resident tenants observed at any batch end.
    pub max_resident: usize,
    /// Total wall-clock time spent faulting tenants in.
    pub fault_wall: Duration,
    /// Worker-pool activity **attributable to this replay**: the pool's
    /// counter deltas over the run window ([`PoolStats::delta_since`]),
    /// not pool-lifetime totals — so warmup, and every earlier replay on
    /// the same engine, are excluded. All-zero when the engine never
    /// fanned out onto a pool.
    pub pool: PoolStats,
}

impl ReplayReport {
    /// Unique queries actually computed (cache hits excluded).
    pub fn computed(&self) -> usize {
        self.unique.saturating_sub(self.cache_hits)
    }

    /// Mean operation count per freshly computed unique query — the
    /// cost-model figure the drift experiments compare across epochs.
    pub fn mean_ops_per_computed(&self) -> f64 {
        if self.computed() == 0 {
            return 0.0;
        }
        self.total_ops as f64 / self.computed() as f64
    }
}

/// Streams `queries` through `engine` in batches and aggregates telemetry.
pub fn replay(
    engine: &ServingEngine<'_>,
    queries: &[ServeRequest],
    cfg: &ReplayConfig,
) -> ReplayReport {
    let batch_size = cfg.batch_size.max(1);
    engine.warm_pool();
    let pool_before = engine.pool_stats().unwrap_or_default();
    let start = Instant::now();
    let mut report = ReplayReport {
        queries: queries.len(),
        ..ReplayReport::default()
    };
    let mut latencies: Vec<Duration> = Vec::with_capacity(queries.len());
    for batch in queries.chunks(batch_size) {
        let (answers, stats) = engine.serve_batch(batch);
        if report.batches == 0 {
            report.epochs.0 = stats.epoch;
        }
        report.epochs.1 = stats.epoch;
        report.batches += 1;
        report.unique += stats.unique;
        report.cache_hits += stats.cache_hits;
        report.stale_hits += stats.stale_hits;
        report.total_ops = report.total_ops.saturating_add(stats.total_ops);
        report.shortcuts_used += stats.shortcuts_used;
        for a in &answers {
            match a.served() {
                Some(served) => latencies.push(served.latency()),
                None => report.errors += 1,
            }
        }
    }
    report.wall = start.elapsed();
    report.pool = engine
        .pool_stats()
        .unwrap_or_default()
        .delta_since(&pool_before);
    if report.wall.as_secs_f64() > 0.0 {
        report.throughput_qps = report.queries as f64 / report.wall.as_secs_f64();
    }
    latencies.sort_unstable();
    report.latency_p50 = percentile(&latencies, 0.50);
    report.latency_p95 = percentile(&latencies, 0.95);
    report.latency_p99 = percentile(&latencies, 0.99);
    report
}

/// Streams a multi-tenant arrival stream through a sharded engine in
/// mixed batches (the buffer a fleet endpoint drains at once) and
/// aggregates fleet-level telemetry. `epochs` reports the min/max epoch
/// observed across all tenants and batches.
pub fn replay_mixed(
    engine: &ShardedServingEngine<'_>,
    arrivals: &[(TenantId, ServeRequest)],
    cfg: &ReplayConfig,
) -> ReplayReport {
    let batch_size = cfg.batch_size.max(1);
    engine.warm_pool();
    let pool_before = engine.pool_stats().unwrap_or_default();
    let start = Instant::now();
    let mut report = ReplayReport {
        queries: arrivals.len(),
        ..ReplayReport::default()
    };
    let mut epochs: Option<(u64, u64)> = None;
    let mut latencies: Vec<Duration> = Vec::with_capacity(arrivals.len());
    for batch in arrivals.chunks(batch_size) {
        let (answers, stats) = engine.serve_mixed(batch);
        report.batches += 1;
        report.unique += stats.unique;
        report.cache_hits += stats.cache_hits;
        report.stale_hits += stats.stale_hits;
        report.total_ops = report.total_ops.saturating_add(stats.total_ops);
        report.shortcuts_used += stats.shortcuts_used;
        report.faults += stats.faults;
        report.page_outs += stats.page_outs;
        report.max_resident = report.max_resident.max(stats.resident);
        report.fault_wall += stats.fault_wall;
        for (_, b) in &stats.per_tenant {
            let (lo, hi) = epochs.get_or_insert((b.epoch, b.epoch));
            *lo = (*lo).min(b.epoch);
            *hi = (*hi).max(b.epoch);
        }
        for a in &answers {
            match a.served() {
                Some(served) => latencies.push(served.latency()),
                None => report.errors += 1,
            }
        }
    }
    report.epochs = epochs.unwrap_or_default();
    report.wall = start.elapsed();
    report.pool = engine
        .pool_stats()
        .unwrap_or_default()
        .delta_since(&pool_before);
    if report.wall.as_secs_f64() > 0.0 {
        report.throughput_qps = report.queries as f64 / report.wall.as_secs_f64();
    }
    latencies.sort_unstable();
    report.latency_p50 = percentile(&latencies, 0.50);
    report.latency_p95 = percentile(&latencies, 0.95);
    report.latency_p99 = percentile(&latencies, 0.99);
    report
}

/// Nearest-rank percentile of a **sorted** latency list.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The clock an open-loop replay runs against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplayClock {
    /// Real time: arrivals in the future are waited out with a sleep,
    /// sojourns are measured with [`Instant`]. What the benches use.
    #[default]
    Wall,
    /// Deterministic simulated time: serving a dispatched query advances
    /// the clock by exactly `per_query`, and nothing else advances it
    /// except idle jumps to the next arrival. Admission and shedding
    /// decisions become a pure function of (schedule, config), which is
    /// what the shedding-determinism tests pin down.
    Virtual {
        /// Simulated service time charged per dispatched query.
        per_query: Duration,
    },
}

/// Knobs for the open-loop drivers.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// Most queries dispatched per wave — the drain quantum; the backlog
    /// beyond it waits for the next wave.
    pub max_batch: usize,
    /// Overload controls (admission caps, deadline). The default is the
    /// unprotected FIFO baseline.
    pub admission: AdmissionConfig,
    /// Wall or virtual time (see [`ReplayClock`]).
    pub clock: ReplayClock,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            max_batch: 64,
            admission: AdmissionConfig::default(),
            clock: ReplayClock::Wall,
        }
    }
}

/// Aggregate report of one open-loop replay. Per-query resolutions come
/// back alongside it as [`ServeOutcome`]s.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpenLoopReport {
    /// Queries offered by the arrival schedule.
    pub offered: usize,
    /// Queries served to completion.
    pub served: usize,
    /// Queries that reached the engine and returned an error.
    pub errors: usize,
    /// Queries shed at dispatch with a blown deadline.
    pub shed_deadline: usize,
    /// Queries refused at arrival by an admission cap.
    pub shed_admission: usize,
    /// Dispatch waves driven.
    pub batches: usize,
    /// Peak backlog length observed right after an admission round.
    pub peak_backlog: usize,
    /// Clock time from first arrival to last completion (simulated time
    /// under [`ReplayClock::Virtual`], real time under `Wall`).
    pub duration: Duration,
    /// Served queries per clock second.
    pub throughput_qps: f64,
    /// Median served-query sojourn (queueing + service — *not* the
    /// closed-loop service time; this is what a client actually waits).
    pub sojourn_p50: Duration,
    /// 95th-percentile served-query sojourn.
    pub sojourn_p95: Duration,
    /// 99th-percentile served-query sojourn — the figure shedding keeps
    /// bounded while the FIFO baseline's grows with the backlog.
    pub sojourn_p99: Duration,
    /// Worker-pool counter deltas attributable to this replay
    /// ([`PoolStats::delta_since`]); all-zero without a pool.
    pub pool: PoolStats,
}

/// A Poisson arrival process: `n` absolute arrival offsets with
/// exponential inter-arrival times at rate `qps`, deterministic in
/// `seed`. The canonical open-loop schedule — offered load is `qps`
/// regardless of how fast the engine drains.
pub fn poisson_arrivals(n: usize, qps: f64, seed: u64) -> Vec<Duration> {
    assert!(qps > 0.0, "arrival rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // inverse-CDF exponential; gen_range(0.0..1.0) excludes 1.0,
            // so the log argument stays positive
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -(1.0 - u).ln() / qps;
            Duration::from_secs_f64(t)
        })
        .collect()
}

/// What one dispatched wave's serve call returns.
type BatchResults = Vec<ServeOutcome>;

/// Clock state for one open-loop drive.
enum ClockState {
    Wall(Instant),
    Virtual { now: Duration, per_query: Duration },
}

impl ClockState {
    fn start(clock: ReplayClock) -> Self {
        match clock {
            ReplayClock::Wall => ClockState::Wall(Instant::now()),
            ReplayClock::Virtual { per_query } => ClockState::Virtual {
                now: Duration::ZERO,
                per_query,
            },
        }
    }

    fn now(&self) -> Duration {
        match self {
            ClockState::Wall(start) => start.elapsed(),
            ClockState::Virtual { now, .. } => *now,
        }
    }

    /// Idle with an empty backlog: jump (or sleep) to the next arrival.
    fn advance_to(&mut self, t: Duration) {
        match self {
            ClockState::Wall(start) => {
                let elapsed = start.elapsed();
                if t > elapsed {
                    std::thread::sleep(t - elapsed);
                }
            }
            ClockState::Virtual { now, .. } => *now = (*now).max(t),
        }
    }

    /// Charge the service time of a dispatched wave.
    fn charge(&mut self, dispatched: usize) {
        if let ClockState::Virtual { now, per_query } = self {
            *now += *per_query * dispatched as u32;
        }
    }
}

/// The shared open-loop drive: admission at arrival, deadline shedding
/// at dispatch, `serve` for the actual compute. `tenant_of` returns the
/// arriving tenant where per-tenant caps apply (mixed replays).
fn open_loop_drive(
    n: usize,
    schedule: &[Duration],
    cfg: &OpenLoopConfig,
    tenant_of: &dyn Fn(usize) -> Option<TenantId>,
    serve: &mut dyn FnMut(&[usize]) -> BatchResults,
) -> (Vec<ServeOutcome>, OpenLoopReport) {
    assert_eq!(n, schedule.len(), "one arrival offset per query");
    assert!(
        schedule.windows(2).all(|w| w[0] <= w[1]),
        "arrival schedule must be sorted"
    );
    let max_batch = cfg.max_batch.max(1);
    let mut outcomes: Vec<Option<ServeOutcome>> = (0..n).map(|_| None).collect();
    let mut report = OpenLoopReport {
        offered: n,
        ..OpenLoopReport::default()
    };
    let mut clock = ClockState::start(cfg.clock);
    let mut backlog: VecDeque<(usize, Duration)> = VecDeque::new();
    let mut tenant_load: HashMap<u32, usize> = HashMap::new();
    let mut sojourns: Vec<Duration> = Vec::with_capacity(n);
    let mut next = 0usize;
    while next < n || !backlog.is_empty() {
        let now = clock.now();
        // admit every due arrival, refusing over admission caps
        while next < n && schedule[next] <= now {
            let tenant = tenant_of(next);
            let cap = cfg.admission.max_backlog;
            let tcap = cfg.admission.max_tenant_backlog;
            let tload = tenant
                .map(|t| *tenant_load.entry(t.0).or_default())
                .unwrap_or(0);
            if cap > 0 && backlog.len() >= cap {
                outcomes[next] = Some(ServeOutcome::Shed(ShedReason::AdmissionLimit {
                    tenant: None,
                    backlog: backlog.len(),
                    limit: cap,
                }));
                report.shed_admission += 1;
            } else if tenant.is_some() && tcap > 0 && tload >= tcap {
                outcomes[next] = Some(ServeOutcome::Shed(ShedReason::AdmissionLimit {
                    tenant,
                    backlog: tload,
                    limit: tcap,
                }));
                report.shed_admission += 1;
            } else {
                backlog.push_back((next, schedule[next]));
                if let Some(t) = tenant {
                    *tenant_load.entry(t.0).or_default() += 1;
                }
            }
            next += 1;
        }
        report.peak_backlog = report.peak_backlog.max(backlog.len());
        if backlog.is_empty() {
            if next < n {
                clock.advance_to(schedule[next]);
            }
            continue;
        }
        // dispatch a wave, shedding queries whose budget queueing already
        // blew — serving them would waste capacity on abandoned answers
        let mut wave: Vec<(usize, Duration)> = Vec::with_capacity(max_batch.min(backlog.len()));
        while wave.len() < max_batch {
            let (i, arrived) = match backlog.pop_front() {
                Some(entry) => entry,
                None => break,
            };
            if let Some(t) = tenant_of(i) {
                if let Some(load) = tenant_load.get_mut(&t.0) {
                    *load = load.saturating_sub(1);
                }
            }
            if let Some(deadline) = cfg.admission.deadline {
                let waited = now.saturating_sub(arrived);
                if waited > deadline {
                    outcomes[i] = Some(ServeOutcome::Shed(ShedReason::DeadlineBlown {
                        waited,
                        deadline,
                    }));
                    report.shed_deadline += 1;
                    continue;
                }
            }
            wave.push((i, arrived));
        }
        if wave.is_empty() {
            continue;
        }
        let indices: Vec<usize> = wave.iter().map(|&(i, _)| i).collect();
        let results = serve(&indices);
        clock.charge(wave.len());
        let done = clock.now();
        report.batches += 1;
        for ((i, arrived), r) in wave.into_iter().zip(results) {
            match &r {
                ServeOutcome::Served(_) => {
                    sojourns.push(done.saturating_sub(arrived));
                    report.served += 1;
                }
                ServeOutcome::Failed(_) => report.errors += 1,
                // the engine itself never sheds — only this driver does —
                // but a pass-through keeps the outcome types honest
                ServeOutcome::Shed(_) => report.shed_deadline += 1,
            }
            outcomes[i] = Some(r);
        }
    }
    report.duration = clock.now();
    if report.duration.as_secs_f64() > 0.0 {
        report.throughput_qps = report.served as f64 / report.duration.as_secs_f64();
    }
    sojourns.sort_unstable();
    report.sojourn_p50 = percentile(&sojourns, 0.50);
    report.sojourn_p95 = percentile(&sojourns, 0.95);
    report.sojourn_p99 = percentile(&sojourns, 0.99);
    let outcomes = outcomes
        .into_iter()
        .map(|o| o.expect("every offered query resolves to exactly one outcome"))
        .collect();
    (outcomes, report)
}

/// Replays `queries` against `engine` on a timed arrival `schedule`
/// (absolute offsets, sorted — see [`poisson_arrivals`]), applying the
/// overload controls in `cfg.admission`. Returns one [`ServeOutcome`]
/// per offered query plus the aggregate report; served-query sojourns
/// include queueing delay, which is what distinguishes this driver from
/// the closed-loop [`replay`].
pub fn replay_open_loop(
    engine: &ServingEngine<'_>,
    queries: &[ServeRequest],
    schedule: &[Duration],
    cfg: &OpenLoopConfig,
) -> (Vec<ServeOutcome>, OpenLoopReport) {
    engine.warm_pool();
    let pool_before = engine.pool_stats().unwrap_or_default();
    let mut batch: Vec<ServeRequest> = Vec::new();
    let (outcomes, mut report) = open_loop_drive(
        queries.len(),
        schedule,
        cfg,
        &|_| None,
        &mut |indices: &[usize]| {
            batch.clear();
            batch.extend(indices.iter().map(|&i| queries[i].clone()));
            let (answers, _) = engine.serve_batch(&batch);
            answers
        },
    );
    report.pool = engine
        .pool_stats()
        .unwrap_or_default()
        .delta_since(&pool_before);
    (outcomes, report)
}

/// The multi-tenant open-loop driver: like [`replay_open_loop`] over a
/// mixed `(TenantId, ServeRequest)` arrival stream, with
/// [`max_tenant_backlog`](AdmissionConfig::max_tenant_backlog) enforced
/// per arriving tenant so one tenant's burst cannot monopolize the
/// backlog.
pub fn replay_open_loop_mixed(
    engine: &ShardedServingEngine<'_>,
    arrivals: &[(TenantId, ServeRequest)],
    schedule: &[Duration],
    cfg: &OpenLoopConfig,
) -> (Vec<ServeOutcome>, OpenLoopReport) {
    engine.warm_pool();
    let pool_before = engine.pool_stats().unwrap_or_default();
    let mut batch: Vec<(TenantId, ServeRequest)> = Vec::new();
    let (outcomes, mut report) = open_loop_drive(
        arrivals.len(),
        schedule,
        cfg,
        &|i| Some(arrivals[i].0),
        &mut |indices: &[usize]| {
            batch.clear();
            batch.extend(indices.iter().map(|&i| arrivals[i].clone()));
            let (answers, _) = engine.serve_mixed(&batch);
            answers
        },
    );
    report.pool = engine
        .pool_stats()
        .unwrap_or_default()
        .delta_since(&pool_before);
    (outcomes, report)
}

/// Shape of a sampled serving workload (see [`workload_queries`]).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadMix {
    /// Per-query variable-count spec.
    pub spec: QuerySpec,
    /// Fraction of the pool drawn from the paper's skewed sampler (the
    /// rest is uniform).
    pub skew_fraction: f64,
    /// Fraction of pool queries turned into evidence-conditioned ones.
    pub evidence_fraction: f64,
    /// Number of distinct queries in the pool.
    pub pool_size: usize,
}

impl Default for WorkloadMix {
    fn default() -> Self {
        WorkloadMix {
            spec: QuerySpec::default(),
            skew_fraction: 0.7,
            evidence_fraction: 0.25,
            pool_size: 64,
        }
    }
}

/// Samples a serving workload following the paper's workload model
/// (Def. 3.3: a distribution over a *finite* query pool): draws up to
/// `mix.pool_size` **distinct** requests (duplicate generator draws are
/// removed) — a skewed/uniform blend with a fraction turned into
/// evidence-conditioned requests — then samples `n` arrivals from the
/// pool with replacement. Repeated arrivals are what batch coalescing and
/// the answer cache exploit. Deterministic in `seed`.
pub fn workload_queries(
    tree: &JunctionTree,
    rooted: &RootedTree,
    n: usize,
    mix: &WorkloadMix,
    seed: u64,
) -> Vec<ServeRequest> {
    assert!(
        (0.0..=1.0).contains(&mix.skew_fraction),
        "fraction in [0, 1]"
    );
    let pool_size = mix.pool_size.clamp(1, n.max(1));
    let n_skewed = (pool_size as f64 * mix.skew_fraction).round() as usize;
    let mut scopes = skewed_queries(tree, rooted, n_skewed, mix.spec, seed);
    scopes.extend(uniform_queries(
        tree.domain(),
        pool_size - n_skewed.min(pool_size),
        mix.spec,
        seed ^ 0x5eed,
    ));
    let mut seen = std::collections::HashSet::new();
    let pool: Vec<ServeRequest> =
        with_evidence(tree.domain(), &scopes, mix.evidence_fraction, seed ^ 0xe71d)
            .into_iter()
            .filter(|q| seen.insert(q.clone()))
            .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa881);
    (0..n)
        .map(|_| pool[rng.gen_range(0..pool.len())].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ServingConfig, ServingEngine};
    use peanut_core::Materialization;
    use peanut_junction::{build_junction_tree, QueryEngine};
    use peanut_pgm::fixtures;

    #[test]
    fn replay_reports_consistent_counts() {
        let bn = fixtures::chain(10, 2, 7);
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving =
            ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
        let mix = WorkloadMix {
            skew_fraction: 0.5,
            evidence_fraction: 0.3,
            pool_size: 24,
            ..WorkloadMix::default()
        };
        let queries = workload_queries(&tree, &rooted, 100, &mix, 17);
        assert_eq!(queries.len(), 100);
        let report = replay(&serving, &queries, &ReplayConfig { batch_size: 32 });
        assert_eq!(report.queries, 100);
        assert_eq!(report.batches, 4);
        assert_eq!(report.errors, 0);
        assert!(report.unique <= 100);
        assert!(
            report.unique < 100,
            "pool sampling must repeat queries: {} unique",
            report.unique
        );
        assert!(report.throughput_qps > 0.0);
        assert!(report.latency_p50 <= report.latency_p95);
        assert!(report.latency_p95 <= report.latency_p99);
        assert!(report.total_ops > 0);
    }

    #[test]
    fn replay_mixed_aggregates_across_tenants() {
        use crate::shard::{ShardConfig, ShardedServingEngine, TenantId};
        let bn_a = fixtures::chain(10, 2, 7);
        let bn_b = fixtures::chain(12, 2, 9);
        let tree_a = build_junction_tree(&bn_a).unwrap();
        let tree_b = build_junction_tree(&bn_b).unwrap();
        let mut sharded = ShardedServingEngine::new(ShardConfig::default());
        sharded
            .register(
                TenantId(0),
                QueryEngine::numeric(&tree_a, &bn_a).unwrap(),
                Materialization::default(),
            )
            .unwrap();
        sharded
            .register(
                TenantId(1),
                QueryEngine::numeric(&tree_b, &bn_b).unwrap(),
                Materialization::default(),
            )
            .unwrap();
        let rooted_a = RootedTree::new(&tree_a);
        let mix = WorkloadMix {
            pool_size: 12,
            evidence_fraction: 0.0,
            ..WorkloadMix::default()
        };
        let arrivals: Vec<(TenantId, ServeRequest)> =
            workload_queries(&tree_a, &rooted_a, 60, &mix, 3)
                .into_iter()
                .enumerate()
                .map(|(i, q)| (TenantId((i % 2) as u32), q))
                .collect();
        let report = replay_mixed(&sharded, &arrivals, &ReplayConfig { batch_size: 20 });
        assert_eq!(report.queries, 60);
        assert_eq!(report.batches, 3);
        assert_eq!(report.errors, 0);
        assert_eq!(report.epochs, (0, 0));
        assert!(report.unique <= 60);
        assert!(report.total_ops > 0);
        // a second pass over the same stream is served from the caches
        let warm = replay_mixed(&sharded, &arrivals, &ReplayConfig { batch_size: 20 });
        assert_eq!(warm.cache_hits, warm.unique);
        assert_eq!(warm.total_ops, 0);
    }

    #[test]
    fn workload_queries_deterministic() {
        let bn = fixtures::chain(12, 2, 3);
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let mix = WorkloadMix {
            evidence_fraction: 0.4,
            pool_size: 16,
            ..WorkloadMix::default()
        };
        let a = workload_queries(&tree, &rooted, 50, &mix, 5);
        let b = workload_queries(&tree, &rooted, 50, &mix, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 0.99), Duration::from_millis(99));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }
}
