//! Stateful evidence sessions: pin an evidence assignment once, then
//! stream marginal queries against a session-local restricted engine.
//!
//! The per-query conditional path answers `P(targets | e)` by computing a
//! *joint* marginal over `targets ∪ vars(e)` and restricting — every query
//! re-pays the evidence: the Steiner tree spans the evidence variables, so
//! a distant context inflates every single answer. Real conditioned
//! traffic is session-shaped (one observed context, many queries — the
//! pattern Darwiche's *Dynamic Jointrees* exploits), and
//! [`ServingEngine::open_session`] amortizes it: the engine absorbs the
//! evidence into a clone of the calibrated tree **once**
//! ([`QueryEngine::restricted_to_evidence`]), re-calibrates, and every
//! subsequent query is a plain marginal over just its targets.
//!
//! Sessions deliberately answer on the *plain* restricted tree, without
//! shortcuts: materialized shortcut potentials hold prior-joint marginals,
//! which are simply wrong under an evidence restriction. What the session
//! records instead — per-target-scope arrivals at baseline cost, plus the
//! evidence context itself ([`WorkloadStats::record_evidence`]) — is
//! exactly the signal the lifecycle layer needs to re-select shortcuts
//! under the *restricted* distribution.
//!
//! # Epoch-swap semantics
//!
//! A session snapshots its epoch (and that epoch's stats accumulator) at
//! open and owns its restricted tree outright, so a concurrent
//! [`publish`](ServingEngine::publish) never touches an in-flight
//! session: its answers keep their open-time epoch tag until the session
//! is dropped. Sessions opened after the swap see the new epoch. Session
//! queries fan out on the engine's serving-priority worker lane and are
//! counted in [`ServingEngine::session_backlog`] while in flight.

use crate::engine::{Answer, BatchStats, Served, ServingEngine};
use crate::overload::ServeOutcome;
use crate::pool::SpawnMode;
use peanut_core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use peanut_core::sync::{thread, Arc, OnceLock};
use peanut_core::{Materialization, OnlineEngine, WorkloadStats};
use peanut_junction::QueryEngine;
use peanut_pgm::{PgmError, Scope, Scratch, Var};
use std::panic::resume_unwind;
use std::time::Instant;

/// Session registry counters of one [`ServingEngine`]: all advisory
/// telemetry, surfaced through the engine accessors below.
#[derive(Default)]
pub(crate) struct SessionCounters {
    /// Sessions opened over the engine's lifetime.
    pub(crate) opened: AtomicU64,
    /// Sessions currently open (decremented on drop).
    pub(crate) active: AtomicUsize,
    /// Session queries currently in flight, the session share of the
    /// engine's admission backlog.
    pub(crate) backlog: AtomicUsize,
}

/// Decrements the session backlog when a serve wave finishes — or
/// unwinds, so a panicking batch cannot wedge the admission signal.
struct BacklogGuard<'a> {
    counter: &'a AtomicUsize,
    n: usize,
}

impl Drop for BacklogGuard<'_> {
    fn drop(&mut self) {
        // ordering: advisory backlog telemetry only.
        self.counter.fetch_sub(self.n, Ordering::Relaxed);
    }
}

/// One open evidence session: an owned evidence-restricted, re-calibrated
/// engine plus the epoch snapshot it was opened under. Created by
/// [`ServingEngine::open_session`]; closing is just dropping it.
pub struct EvidenceSession<'s, 't> {
    serving: &'s ServingEngine<'t>,
    /// The session-local engine: the shared tree with the evidence
    /// absorbed and messages re-propagated, paid once at open.
    local: QueryEngine<'t>,
    /// Empty materialization the session answers through — shortcut
    /// tables hold prior-joint marginals, invalid under the restriction.
    unmaterialized: Materialization,
    evidence: Vec<(Var, u32)>,
    evidence_scope: Scope,
    /// The open-time epoch's accumulator; a publish mid-session retires
    /// it, and this session keeps feeding the retired window (exactly
    /// like an in-flight batch would).
    stats: Arc<WorkloadStats>,
    epoch: u64,
}

impl<'t> ServingEngine<'t> {
    /// Opens an evidence session: absorbs `evidence` into a session-local
    /// clone of the calibrated tree and re-propagates **once**, so the
    /// marginal stream served through [`EvidenceSession::serve_batch`]
    /// never re-pays the evidence. Contradictory evidence is not an error
    /// (the restricted tables are all-zero and every answer sums to 0);
    /// unknown variables and out-of-range values are.
    pub fn open_session(
        &self,
        mut evidence: Vec<(Var, u32)>,
    ) -> Result<EvidenceSession<'_, 't>, PgmError> {
        evidence.sort_unstable();
        let local = self.engine().restricted_to_evidence(&evidence)?;
        let (mat, stats) = self.epoch_snapshot();
        let evidence_scope = Scope::from_iter(evidence.iter().map(|&(v, _)| v));
        // ordering: registry counters are advisory telemetry.
        self.sessions.opened.fetch_add(1, Ordering::Relaxed);
        self.sessions.active.fetch_add(1, Ordering::Relaxed);
        Ok(EvidenceSession {
            serving: self,
            local,
            unmaterialized: Materialization::default(),
            evidence,
            evidence_scope,
            stats,
            epoch: mat.epoch,
        })
    }

    /// Sessions currently open on this engine.
    pub fn active_sessions(&self) -> usize {
        // ordering: advisory telemetry.
        self.sessions.active.load(Ordering::Relaxed)
    }

    /// Sessions opened over this engine's lifetime.
    pub fn sessions_opened(&self) -> u64 {
        // ordering: advisory telemetry.
        self.sessions.opened.load(Ordering::Relaxed)
    }

    /// Session queries currently in flight — the session share of the
    /// engine's backlog, for admission accounting next to batch traffic.
    pub fn session_backlog(&self) -> usize {
        // ordering: advisory telemetry.
        self.sessions.backlog.load(Ordering::Relaxed)
    }
}

impl<'s, 't> EvidenceSession<'s, 't> {
    /// The pinned evidence assignment (sorted by variable).
    pub fn evidence(&self) -> &[(Var, u32)] {
        &self.evidence
    }

    /// The scope of the pinned evidence variables.
    pub fn evidence_scope(&self) -> &Scope {
        &self.evidence_scope
    }

    /// The materialization epoch this session was opened under; every
    /// answer it produces carries this tag, across concurrent publishes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The session-local restricted engine (for diagnostics/tests).
    pub fn engine(&self) -> &QueryEngine<'t> {
        &self.local
    }

    /// Serves one marginal `P(targets | evidence)` under the pinned
    /// context.
    pub fn serve_one(&self, targets: &Scope) -> ServeOutcome {
        let (mut outcomes, _) = self.serve_batch(std::slice::from_ref(targets));
        // lint:allow(hot_panic) — serve_batch returns one outcome per
        // target by construction.
        outcomes.pop().expect("one outcome per target")
    }

    /// Serves a batch of marginal target scopes under the pinned
    /// evidence, in submission order. Each answer is the normalized
    /// `P(targets | evidence)` computed on the session-local restricted
    /// tree — no joint over `targets ∪ vars(e)` is ever formed, which is
    /// where the amortization over the per-query conditional path comes
    /// from. Fans out on the engine's serving-priority lane and counts
    /// toward [`ServingEngine::session_backlog`] while in flight.
    pub fn serve_batch(&self, targets: &[Scope]) -> (Vec<ServeOutcome>, BatchStats) {
        let start = Instant::now();
        let mut bstats = BatchStats {
            queries: targets.len(),
            unique: targets.len(),
            epoch: self.epoch,
            ..BatchStats::default()
        };
        if targets.is_empty() {
            return (Vec::new(), bstats);
        }
        let backlog = &self.serving.sessions.backlog;
        // ordering: advisory backlog telemetry (released by the guard).
        backlog.fetch_add(targets.len(), Ordering::Relaxed);
        let _backlog = BacklogGuard {
            counter: backlog,
            n: targets.len(),
        };

        let mut results: Vec<Option<Result<Answer, PgmError>>> = Vec::new();
        results.resize_with(targets.len(), || None);
        let n_workers = self.serving.workers().min(targets.len()).max(1);
        if targets.len() <= 1 || n_workers == 1 {
            // in-thread fast path, mirroring the batch engine
            let online = OnlineEngine::with_stats(&self.local, &self.unmaterialized, &self.stats);
            let mut scratch = Scratch::new();
            for (i, t) in targets.iter().enumerate() {
                results[i] = Some(self.answer_local(&online, t, &mut scratch));
            }
        } else if self.serving.spawn_mode() == SpawnMode::Persistent {
            // serving-priority lane of the shared persistent pool: session
            // streams are foreground traffic, same as batches
            let slots: Vec<OnceLock<Result<Answer, PgmError>>> =
                (0..targets.len()).map(|_| OnceLock::new()).collect();
            self.serving.pool().run_wave(targets.len(), &|w, scratch| {
                let online =
                    OnlineEngine::with_stats(&self.local, &self.unmaterialized, &self.stats);
                let r = self.answer_local(&online, &targets[w], scratch);
                assert!(slots[w].set(r).is_ok(), "wave claims each index once");
            });
            for (w, slot) in slots.into_iter().enumerate() {
                // lint:allow(hot_panic) — protocol invariant: run_wave does
                // not return before every claimed index has completed.
                results[w] = Some(slot.into_inner().expect("completed wave ran every task"));
            }
        } else {
            // scoped baseline, mirroring the batch engine's fallback
            let next = AtomicUsize::new(0);
            let outs: Vec<Vec<(usize, Result<Answer, PgmError>)>> = thread::scope(|s| {
                let handles: Vec<_> = (0..n_workers)
                    .map(|_| {
                        s.spawn(|| {
                            let online = OnlineEngine::with_stats(
                                &self.local,
                                &self.unmaterialized,
                                &self.stats,
                            );
                            let mut scratch = Scratch::new();
                            let mut out = Vec::new();
                            loop {
                                // ordering: work-claiming counter only; the
                                // scope join publishes the results.
                                let w = next.fetch_add(1, Ordering::Relaxed);
                                if w >= targets.len() {
                                    break;
                                }
                                out.push((
                                    w,
                                    self.answer_local(&online, &targets[w], &mut scratch),
                                ));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|p| resume_unwind(p)))
                    .collect()
            });
            for (w, r) in outs.into_iter().flatten() {
                results[w] = Some(r);
            }
        }

        let mut served = 0u64;
        let outcomes: Vec<ServeOutcome> = results
            .into_iter()
            .map(|r| {
                // lint:allow(hot_panic) — invariant: every fan-out path
                // above fills every index.
                match r.expect("all targets answered") {
                    Ok(a) => {
                        served += 1;
                        bstats.total_ops = bstats.total_ops.saturating_add(a.cost.ops);
                        ServeOutcome::Served(Served {
                            answer: Arc::new(a),
                            from_cache: false,
                        })
                    }
                    Err(e) => ServeOutcome::Failed(e),
                }
            })
            .collect();
        // one evidence-context record per served query: the accumulator
        // weighs contexts by the traffic they actually carried, which is
        // what evidence-aware re-selection prices against
        self.stats.record_evidence(&self.evidence_scope, served);
        bstats.wall = start.elapsed();
        (outcomes, bstats)
    }

    /// Answers one target marginal on the restricted tree and normalizes
    /// it into `P(targets | evidence)`. Target scopes recorded via the
    /// per-worker [`OnlineEngine`] are the *restricted* scopes — the
    /// distribution re-selection should price under for this traffic.
    fn answer_local(
        &self,
        online: &OnlineEngine<'_, 't>,
        targets: &Scope,
        scratch: &mut Scratch,
    ) -> Result<Answer, PgmError> {
        let t = Instant::now();
        let traced = online.answer_traced_in(targets, scratch)?;
        let mut potential = traced.potential;
        // restricted tables hold P(·, e); normalizing yields P(· | e).
        // Contradictory evidence leaves an all-zero table (sum 0), which
        // normalize passes through untouched.
        potential.normalize();
        Ok(Answer {
            potential,
            cost: traced.cost,
            baseline_ops: traced.baseline_ops,
            epoch: self.epoch,
            service_time: t.elapsed(),
        })
    }
}

impl Drop for EvidenceSession<'_, '_> {
    fn drop(&mut self) {
        // ordering: advisory registry telemetry.
        self.serving.sessions.active.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServingConfig;
    use peanut_core::ServeRequest;
    use peanut_junction::build_junction_tree;
    use peanut_pgm::fixtures;

    fn serving_for(bn: &peanut_pgm::BayesianNetwork) -> ServingEngine<'static> {
        // leak the tree for 'static; tests only — the engines borrow it
        let tree = Box::leak(Box::new(build_junction_tree(bn).unwrap()));
        let engine = QueryEngine::numeric(tree, bn).unwrap();
        ServingEngine::new(engine, Materialization::default(), ServingConfig::default())
    }

    #[test]
    fn session_matches_per_query_conditional_path() {
        let bn = fixtures::chain(10, 2, 3);
        let serving = serving_for(&bn);
        let evidence = vec![(Var(9), 1), (Var(8), 0)];
        let session = serving.open_session(evidence.clone()).unwrap();
        assert_eq!(
            session.evidence(),
            &[(Var(8), 0), (Var(9), 1)],
            "evidence is canonicalized"
        );
        let targets: Vec<Scope> = (0..4u32)
            .map(|i| Scope::from_indices(&[i, i + 1]))
            .collect();
        let (outcomes, bstats) = session.serve_batch(&targets);
        assert_eq!(bstats.queries, targets.len());
        let requests: Vec<ServeRequest> = targets
            .iter()
            .map(|t| ServeRequest::new(t.clone(), evidence.clone()))
            .collect();
        let (per_query, _) = serving.serve_batch(&requests);
        for (s, p) in outcomes.iter().zip(&per_query) {
            let (s, p) = (s.served().unwrap(), p.served().unwrap());
            assert!((s.potential.sum() - 1.0).abs() < 1e-12);
            let diff = s.potential.max_abs_diff(&p.potential).unwrap();
            assert!(
                diff < 1e-9,
                "session diverged from conditional path: {diff}"
            );
        }
    }

    #[test]
    fn session_registry_counts_open_close_and_backlog_drains() {
        let bn = fixtures::sprinkler();
        let serving = serving_for(&bn);
        assert_eq!(serving.active_sessions(), 0);
        {
            let s1 = serving.open_session(vec![(Var(0), 1)]).unwrap();
            let s2 = serving.open_session(vec![(Var(3), 0)]).unwrap();
            assert_eq!(serving.active_sessions(), 2);
            assert_eq!(serving.sessions_opened(), 2);
            let (o, _) = s1.serve_batch(&[Scope::from_indices(&[1]), Scope::from_indices(&[2])]);
            assert!(o.iter().all(ServeOutcome::is_served));
            assert!(s2.serve_one(&Scope::from_indices(&[1])).is_served());
            assert_eq!(serving.session_backlog(), 0, "backlog drains after serve");
        }
        assert_eq!(serving.active_sessions(), 0, "drop closes the session");
        assert_eq!(serving.sessions_opened(), 2);
    }

    #[test]
    fn session_rejects_bad_evidence_but_not_contradictions() {
        let bn = fixtures::sprinkler();
        let serving = serving_for(&bn);
        assert!(serving.open_session(vec![(Var(99), 0)]).is_err());
        // same variable pinned to two values: a contradiction, served as
        // all-zero tables rather than an error (Hugin semantics)
        let s = serving
            .open_session(vec![(Var(1), 0), (Var(1), 1)])
            .unwrap();
        let a = s.serve_one(&Scope::from_indices(&[2]));
        assert_eq!(a.served().unwrap().potential.sum(), 0.0);
    }

    #[test]
    fn session_records_restricted_scopes_and_evidence_contexts() {
        let bn = fixtures::chain(8, 2, 3);
        let serving = serving_for(&bn);
        let session = serving.open_session(vec![(Var(7), 1)]).unwrap();
        let t = Scope::from_indices(&[0, 1]);
        let (o, _) = session.serve_batch(&[t.clone(), t.clone()]);
        assert!(o.iter().all(ServeOutcome::is_served));
        let stats = serving.stats();
        let snap = stats.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.evidence_queries, 2);
        assert!((snap.evidence_fraction() - 1.0).abs() < 1e-12);
        // the recorded scope is the *restricted* target scope, not the
        // joint targets∪evidence scope the per-query path would log
        let counts = stats.scope_counts();
        assert_eq!(counts, vec![(t, 2)]);
        let ev = stats.evidence_scope_counts();
        assert_eq!(ev, vec![(Scope::from_indices(&[7]), 2)]);
    }

    #[test]
    fn errors_are_per_target_not_per_session() {
        let bn = fixtures::sprinkler();
        let serving = serving_for(&bn);
        let session = serving.open_session(vec![(Var(0), 1)]).unwrap();
        // a target overlapping the pinned evidence is answerable on the
        // restricted tree (it is just a variable of the tree), so the
        // interesting failure is an unknown variable
        let (o, _) = session.serve_batch(&[Scope::from_indices(&[1]), Scope::from_indices(&[99])]);
        assert!(o[0].is_served());
        assert!(o[1].failure().is_some());
    }
}
