//! Overload control: admission limits, deadline-aware shedding, and the
//! typed per-query outcomes they produce.
//!
//! A closed-loop replay (the [`replay`](crate::replay::replay) driver)
//! can never overload the engine — it offers the next batch only after
//! the previous one completed, so measured "latency" is pure service
//! time and the queue never grows. Real traffic is *open-loop*: arrivals
//! come on their own schedule, and when offered load exceeds capacity
//! the backlog — and with it every query's sojourn time — grows without
//! bound. A production front-end has exactly two defensible responses,
//! and both must be **typed outcomes**, never silent errors:
//!
//! * **Admission control** ([`AdmissionConfig::max_backlog`],
//!   [`AdmissionConfig::max_tenant_backlog`]) — refuse a query at
//!   arrival when the backlog (global, or the arriving tenant's share of
//!   it) is already at its limit. Refusing early is the cheapest
//!   possible shed: the query never occupies queue memory and never
//!   delays anyone else. The per-tenant cap doubles as fairness
//!   isolation — one tenant's burst cannot consume the whole backlog.
//! * **Deadline shedding** ([`AdmissionConfig::deadline`]) — at dispatch
//!   time, drop queries whose latency budget is already blown by
//!   queueing alone. Serving them would waste capacity on answers the
//!   client has stopped waiting for, which is precisely what drives the
//!   FIFO baseline's p99 collapse under saturation.
//!
//! Every offered query resolves to exactly one [`ServeOutcome`]:
//! [`Served`](ServeOutcome::Served) with the answer,
//! [`Shed`](ServeOutcome::Shed) with a typed [`ShedReason`], or
//! [`Failed`](ServeOutcome::Failed) with the engine error. The open-loop
//! drivers in [`replay`](mod@crate::replay) ([`replay_open_loop`],
//! [`replay_open_loop_mixed`]) consume an [`AdmissionConfig`] and report
//! served-query sojourn percentiles next to the shed counts, so the
//! saturation benches can show shedding holding p99 bounded while the
//! unbounded-FIFO configuration (the [`AdmissionConfig::fifo`] default)
//! degrades.
//!
//! [`replay_open_loop`]: crate::replay::replay_open_loop
//! [`replay_open_loop_mixed`]: crate::replay::replay_open_loop_mixed

use crate::engine::Served;
use crate::shard::TenantId;
use peanut_pgm::PgmError;
use std::time::Duration;

/// Why the overload controller refused to serve a query. Always surfaced
/// as a [`ServeOutcome::Shed`], never a silent error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The query's latency budget was already exhausted by queueing
    /// delay when it reached the front of the backlog; computing it
    /// would burn capacity on an answer nobody is waiting for.
    DeadlineBlown {
        /// How long the query had waited in the backlog at dispatch.
        waited: Duration,
        /// The configured deadline it blew.
        deadline: Duration,
    },
    /// Admission control refused the query at arrival: the backlog
    /// (global, or the arriving tenant's share) was at its limit.
    AdmissionLimit {
        /// The tenant whose per-tenant cap was hit, or `None` when the
        /// *global* backlog cap rejected the query.
        tenant: Option<TenantId>,
        /// Backlog occupancy (of the limiting scope) at arrival.
        backlog: usize,
        /// The configured limit it collided with.
        limit: usize,
    },
}

/// The resolution of one offered query under overload control.
#[derive(Clone, Debug)]
pub enum ServeOutcome {
    /// Computed (or cache-served) successfully.
    Served(Served),
    /// Deliberately not served; the typed reason says why.
    Shed(ShedReason),
    /// Dispatched, but the engine returned an error.
    Failed(PgmError),
}

impl ServeOutcome {
    /// The answer, when the query was served.
    pub fn served(&self) -> Option<&Served> {
        match self {
            ServeOutcome::Served(s) => Some(s),
            _ => None,
        }
    }

    /// The shed reason, when the query was shed.
    pub fn shed_reason(&self) -> Option<&ShedReason> {
        match self {
            ServeOutcome::Shed(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the query was served.
    pub fn is_served(&self) -> bool {
        matches!(self, ServeOutcome::Served(_))
    }

    /// Whether the query was shed (by admission or deadline).
    pub fn is_shed(&self) -> bool {
        matches!(self, ServeOutcome::Shed(_))
    }

    /// The engine error, when dispatch failed.
    pub fn failure(&self) -> Option<&PgmError> {
        match self {
            ServeOutcome::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// Overload-control knobs for the open-loop replay drivers.
///
/// The default ([`AdmissionConfig::fifo`]) disables everything —
/// unbounded backlog, no deadline — which is exactly the head-of-line
/// FIFO baseline whose p99 collapses under saturation; the benches
/// measure shedding configurations against it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queries waiting in the backlog before arrivals are
    /// refused ([`ShedReason::AdmissionLimit`] with `tenant: None`).
    /// `0` means unbounded.
    pub max_backlog: usize,
    /// Maximum backlog entries *per tenant* (mixed replays only) before
    /// that tenant's arrivals are refused. `0` means unbounded.
    pub max_tenant_backlog: usize,
    /// Sojourn budget: queries still queued this long after arrival are
    /// shed at dispatch ([`ShedReason::DeadlineBlown`]) instead of
    /// computed. `None` means never shed — serve everything, however
    /// late.
    pub deadline: Option<Duration>,
}

impl AdmissionConfig {
    /// The unprotected FIFO baseline: admit everything, shed nothing.
    pub fn fifo() -> Self {
        AdmissionConfig::default()
    }

    /// Sets the sojourn deadline (chainable, like every `with_*` knob on
    /// the serving configs).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the global backlog cap (chainable). `0` means unbounded.
    pub fn with_max_backlog(mut self, max_backlog: usize) -> Self {
        self.max_backlog = max_backlog;
        self
    }

    /// Sets the per-tenant backlog cap (chainable). `0` means unbounded.
    pub fn with_max_tenant_backlog(mut self, max_tenant_backlog: usize) -> Self {
        self.max_tenant_backlog = max_tenant_backlog;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors_discriminate() {
        let shed = ServeOutcome::Shed(ShedReason::DeadlineBlown {
            waited: Duration::from_millis(30),
            deadline: Duration::from_millis(10),
        });
        assert!(shed.is_shed());
        assert!(!shed.is_served());
        assert!(shed.served().is_none());
        assert!(matches!(
            shed.shed_reason(),
            Some(ShedReason::DeadlineBlown { .. })
        ));
        let failed = ServeOutcome::Failed(PgmError::EmptyNetwork);
        assert!(!failed.is_shed());
        assert!(!failed.is_served());
        assert!(failed.shed_reason().is_none());
        assert_eq!(failed.failure(), Some(&PgmError::EmptyNetwork));
        assert!(shed.failure().is_none());
    }

    #[test]
    fn fifo_baseline_disables_everything() {
        let fifo = AdmissionConfig::fifo();
        assert_eq!(fifo.max_backlog, 0);
        assert_eq!(fifo.max_tenant_backlog, 0);
        assert!(fifo.deadline.is_none());
        let shed = AdmissionConfig::fifo()
            .with_deadline(Duration::from_millis(25))
            .with_max_backlog(128)
            .with_max_tenant_backlog(32);
        assert_eq!(shed.deadline, Some(Duration::from_millis(25)));
        assert_eq!(shed.max_backlog, 128);
        assert_eq!(shed.max_tenant_backlog, 32);
    }
}
