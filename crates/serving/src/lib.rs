//! # peanut-serving
//!
//! Batched concurrent query serving over a calibrated, materialized
//! junction tree — the layer between the paper's single-query online phase
//! (§4.5–4.6) and the ROADMAP's multi-user serving north star.
//!
//! * [`engine`] — [`ServingEngine`]: owns a calibrated
//!   [`QueryEngine`](peanut_junction::QueryEngine) and a
//!   [`Materialization`](peanut_core::Materialization) behind `Arc`, accepts
//!   batches of marginal and evidence-conditioned queries, coalesces
//!   duplicates, and fans the unique work out across a worker pool. Each
//!   worker runs the shortcut-aware online engine on the stride-walk kernel
//!   path with its own [`Scratch`](peanut_pgm::Scratch), so steady-state
//!   serving performs no transient allocation.
//! * [`replay`] — a workload-replay driver: streams
//!   `peanut_workload` query mixes through an engine batch by batch and
//!   reports throughput and latency percentiles.
//! * [`lifecycle`] — the epoch lifecycle: a
//!   [`RematerializationController`](lifecycle::RematerializationController)
//!   watches the observed benefit of the served epoch, re-runs the offline
//!   selection on the observed distribution when the workload drifts, and
//!   hot-publishes the next epoch without pausing serving.

pub mod engine;
pub mod lifecycle;
pub mod replay;

pub use engine::{Answer, BatchStats, Query, Served, ServingConfig, ServingEngine};
pub use lifecycle::{expected_savings, LifecycleConfig, RematerializationController, SwapEvent};
pub use replay::{replay, workload_queries, ReplayConfig, ReplayReport, WorkloadMix};
