// Unsafe is confined to `pool` (lifetime erasure of wave task closures);
// every other module is verified unsafe-free at compile time, and the
// `cargo xtask lint` pass additionally requires a `// SAFETY:` comment on
// each unsafe site in the allowlisted file.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
//! # peanut-serving
//!
//! Batched concurrent query serving over a calibrated, materialized
//! junction tree — the layer between the paper's single-query online phase
//! (§4.5–4.6) and the ROADMAP's multi-user serving north star.
//!
//! * [`engine`] — [`ServingEngine`]: owns a calibrated
//!   [`QueryEngine`](peanut_junction::QueryEngine) and a
//!   [`Materialization`](peanut_core::Materialization) behind `Arc`, accepts
//!   batches of marginal and evidence-conditioned queries, coalesces
//!   duplicates, and fans the unique work out across a worker pool. Each
//!   worker runs the shortcut-aware online engine on the stride-walk kernel
//!   path with its own [`Scratch`](peanut_pgm::Scratch), so steady-state
//!   serving performs no transient allocation.
//! * [`pool`] — the concurrency backbone: a persistent [`WorkerPool`] of
//!   long-lived workers, spawned once per engine (or shared across a
//!   sharded engine's shards), parked between waves on a condvar-fronted
//!   work queue, with per-task panic isolation and join-on-drop shutdown.
//!   It doubles as the [`Executor`](peanut_core::Executor) the lifecycle's
//!   off-path re-selections run on, and surfaces [`PoolStats`]
//!   (spawn-amortization telemetry) for the benches.
//! * [`shard`] — multi-tenant sharded serving: a
//!   [`ShardedServingEngine`] registry of
//!   tenants (each a calibrated tree with its own epoch-versioned
//!   materialization, stats and answer cache) that fans mixed
//!   `(TenantId, Query)` batches across one shared worker pool, with
//!   per-tenant dedup and fully isolated epoch state. With a
//!   [`StoreConfig`] attached, the registry doubles as an LRU resident
//!   set: cold tenants page out to mmap-able epoch files and fault back
//!   in on their next arrival (`peanut-store`).
//! * [`replay`](mod@replay) — a workload-replay driver: streams
//!   `peanut_workload` query mixes through an engine batch by batch and
//!   reports throughput and latency percentiles; [`replay_mixed`] does the
//!   same for multi-tenant arrival streams.
//! * [`lifecycle`] — the epoch lifecycle: a
//!   [`RematerializationController`]
//!   watches the observed benefit of the served epoch across a ring of
//!   observation windows, re-runs the offline selection on the observed
//!   distribution when the workload drifts, and hot-publishes the next
//!   epoch without pausing serving. A
//!   [`FleetController`] lifts the loop to the
//!   sharded engine, splitting one global budget across tenants by
//!   observed benefit (greedy knapsack over candidate shortcut sets).

pub mod engine;
pub mod lifecycle;
#[allow(unsafe_code)]
pub mod pool;
pub mod replay;
pub mod shard;

pub use engine::{Answer, BatchStats, Query, Served, ServingConfig, ServingEngine};
pub use lifecycle::{
    expected_savings, FleetConfig, FleetController, FleetRebalance, LifecycleConfig,
    RematerializationController, SwapEvent, TenantAllocation,
};
pub use peanut_store::StoreConfig;
pub use pool::{PoolStats, SpawnMode, WorkerPool};
pub use replay::{replay, replay_mixed, workload_queries, ReplayConfig, ReplayReport, WorkloadMix};
pub use shard::{MixedBatchStats, PagingStats, ShardConfig, ShardedServingEngine, TenantId};
