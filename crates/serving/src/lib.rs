// Unsafe is confined to `pool` (lifetime erasure of wave task closures);
// every other module is verified unsafe-free at compile time, and the
// `cargo xtask lint` pass additionally requires a `// SAFETY:` comment on
// each unsafe site in the allowlisted file.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
//! # peanut-serving
//!
//! Batched concurrent query serving over a calibrated, materialized
//! junction tree — the layer between the paper's single-query online phase
//! (§4.5–4.6) and the ROADMAP's multi-user serving north star.
//!
//! * [`engine`] — [`ServingEngine`]: owns a calibrated
//!   [`QueryEngine`](peanut_junction::QueryEngine) and a
//!   [`Materialization`](peanut_core::Materialization) behind `Arc`, accepts
//!   batches of marginal and evidence-conditioned queries, coalesces
//!   duplicates, and fans the unique work out across a worker pool. Each
//!   worker runs the shortcut-aware online engine on the stride-walk kernel
//!   path with its own [`Scratch`](peanut_pgm::Scratch), so steady-state
//!   serving performs no transient allocation.
//! * [`pool`] — the concurrency backbone: a persistent [`WorkerPool`] of
//!   long-lived workers, spawned once per engine (or shared across a
//!   sharded engine's shards), parked between waves on a condvar-fronted
//!   three-[`Lane`] priority queue (serving > re-materialization >
//!   background), with per-task panic isolation and drain-then-join
//!   shutdown. Batches are submitted blocking (`run_wave`) or
//!   non-blocking (`submit_batch` → [`WaveHandle`]); the pool doubles as
//!   the [`Executor`](peanut_core::Executor) the lifecycle's off-path
//!   re-selections run on — routed to [`Lane::Remat`] so they can never
//!   head-of-line block query traffic — and surfaces [`PoolStats`]
//!   (spawn-amortization telemetry) for the benches.
//! * [`session`](mod@session) — stateful evidence sessions: an
//!   [`EvidenceSession`] pins an evidence assignment once
//!   ([`ServingEngine::open_session`]), absorbing it into a session-local
//!   restricted engine and re-calibrating a single time, then streams
//!   plain target marginals against it — amortizing the evidence cost the
//!   per-query conditional path re-pays on every request. Sessions
//!   snapshot their epoch at open (publish-isolated), fan out on the
//!   serving-priority lane, and feed observed evidence contexts into the
//!   epoch's [`WorkloadStats`](peanut_core::WorkloadStats) so re-selection
//!   prices shortcuts under the restricted distribution.
//! * [`shard`] — multi-tenant sharded serving: a
//!   [`ShardedServingEngine`] registry of
//!   tenants (each a calibrated tree with its own epoch-versioned
//!   materialization, stats and answer cache) that fans mixed
//!   `(TenantId, ServeRequest)` batches across one shared worker pool,
//!   with per-tenant dedup and fully isolated epoch state. With a
//!   [`StoreConfig`] attached, the registry doubles as an LRU resident
//!   set: cold tenants page out to mmap-able epoch files and fault back
//!   in on their next arrival (`peanut-store`).
//! * [`replay`](mod@replay) — a workload-replay driver: streams
//!   `peanut_workload` query mixes through an engine batch by batch and
//!   reports throughput and latency percentiles; [`replay_mixed`] does the
//!   same for multi-tenant arrival streams. The open-loop drivers
//!   ([`replay_open_loop`], [`replay_open_loop_mixed`]) replay a timed
//!   arrival schedule instead, so sojourn percentiles reflect queueing
//!   under saturation rather than closed-loop service time.
//! * [`overload`] — production overload behavior for the open-loop path:
//!   per-tenant admission control and deadline-aware shedding, every
//!   offered query resolving to a typed [`ServeOutcome`] (served / shed
//!   with a [`ShedReason`] / failed) — never a silent error.
//! * [`lifecycle`] — the epoch lifecycle: a
//!   [`RematerializationController`]
//!   watches the observed benefit of the served epoch across a ring of
//!   observation windows, re-runs the offline selection on the observed
//!   distribution when the workload drifts, and hot-publishes the next
//!   epoch without pausing serving. A
//!   [`FleetController`] lifts the loop to the
//!   sharded engine, splitting one global budget across tenants by
//!   observed benefit (greedy knapsack over candidate shortcut sets).

pub mod engine;
pub mod lifecycle;
pub mod overload;
#[allow(unsafe_code)]
pub mod pool;
pub mod replay;
pub mod session;
pub mod shard;

pub use engine::{Answer, BatchStats, Query, Served, ServingConfig, ServingEngine};
pub use lifecycle::{
    expected_savings, FleetConfig, FleetController, FleetRebalance, LifecycleConfig,
    RematerializationController, SwapEvent, TenantAllocation,
};
pub use overload::{AdmissionConfig, ServeOutcome, ShedReason};
pub use peanut_core::ServeRequest;
pub use peanut_store::StoreConfig;
pub use pool::{Lane, LaneExecutor, PoolStats, SpawnMode, WaveHandle, WorkerPool};
pub use replay::{
    poisson_arrivals, replay, replay_mixed, replay_open_loop, replay_open_loop_mixed,
    workload_queries, OpenLoopConfig, OpenLoopReport, ReplayClock, ReplayConfig, ReplayReport,
    WorkloadMix,
};
pub use session::EvidenceSession;
pub use shard::{MixedBatchStats, PagingStats, ShardConfig, ShardedServingEngine, TenantId};
