//! The materialization lifecycle: drift-aware hot re-materialization.
//!
//! The offline phase optimizes a materialization for the *training*
//! workload (Def. 3.3); the paper's robustness experiments (§5.3,
//! Figures 8–9) show the benefit eroding as served traffic drifts away
//! from that distribution. A [`RematerializationController`] closes the
//! loop at serving time:
//!
//! 1. it watches the current epoch's [`WorkloadStats`] (fed by the
//!    serving workers' [`OnlineEngine`]s) and compares the *observed*
//!    benefit against the epoch's *reference* benefit — the savings the
//!    selection promised on the distribution it was trained on;
//! 2. when the observed benefit decays past a configurable fraction of the
//!    reference ([`LifecycleConfig::decay_threshold`]), it re-runs the
//!    offline selection (PEANUT / PEANUT+) on the **observed** query
//!    distribution — on the controller's thread, while serving keeps
//!    draining batches;
//! 3. if the new artifact's expected benefit (recomputed with the cost
//!    model on the observed distribution) beats what the stale epoch is
//!    delivering, it [`publish`](ServingEngine::publish)es the new epoch.
//!    The swap is a pointer exchange: no serving pause, no cache flush —
//!    stale cache entries die lazily by their epoch tag.
//!
//! Everything the controller decides is a deterministic function of the
//! recorded arrivals and its configuration, so a replay of the same drift
//! schedule with the same seeds and the same `tick()` cadence produces the
//! same swap points and the same selected shortcut sets.
//!
//! [`OnlineEngine`]: peanut_core::OnlineEngine

use crate::engine::ServingEngine;
use peanut_core::{
    Materialization, OfflineContext, OnlineEngine, Peanut, PeanutConfig, Variant, Workload,
};
use peanut_junction::cost::expected_ops;
use peanut_junction::QueryEngine;
use peanut_pgm::{PgmError, Scope, Size};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Drift-detection and re-selection knobs.
#[derive(Clone, Debug)]
pub struct LifecycleConfig {
    /// Arrivals an observation window must hold before a decision is
    /// taken. The controller rolls the window after every decision
    /// (publish *or* decline), so detection always judges the most recent
    /// `min_window`-or-more arrivals — a forever-cumulative average would
    /// dilute a drift signal with pre-drift history.
    pub min_window: u64,
    /// Re-materialize when `observed_savings < decay_threshold ×
    /// reference_savings` — i.e. the epoch delivers less than this
    /// fraction of the benefit it was selected for.
    pub decay_threshold: f64,
    /// Savings below this are treated as "no benefit": epochs whose
    /// reference is under the floor are not drift-checked (there is
    /// nothing to decay), and a candidate selection must promise more
    /// than the floor to be published.
    pub min_reference_savings: f64,
    /// When the current epoch has an *empty* materialization, attempt a
    /// first selection from observed traffic once the window fills
    /// (cold-start bootstrap).
    pub bootstrap: bool,
    /// Space budget `K` for re-selection (table entries).
    pub budget: Size,
    /// Budget-grid parameter ε of §4.4.
    pub epsilon: f64,
    /// PEANUT (disjoint) or PEANUT+ (overlapping) re-selection.
    pub variant: Variant,
    /// Worker threads for the offline DP fan-out.
    pub threads: usize,
}

impl LifecycleConfig {
    /// Sensible defaults around a budget: PEANUT+ at the paper's ε = 1.2,
    /// window 512, trigger at half the promised benefit.
    pub fn new(budget: Size) -> Self {
        LifecycleConfig {
            min_window: 512,
            decay_threshold: 0.5,
            min_reference_savings: 0.01,
            bootstrap: true,
            budget,
            epsilon: 1.2,
            variant: Variant::PeanutPlus,
            threads: 1,
        }
    }
}

/// One published re-materialization, as observed by the controller.
#[derive(Clone, Debug)]
pub struct SwapEvent {
    /// The epoch that was published.
    pub epoch: u64,
    /// Arrivals in the observation window that triggered the decision.
    pub at_arrivals: u64,
    /// Observed savings of the retired epoch over its window.
    pub observed_savings: f64,
    /// Reference savings the retired epoch was selected for.
    pub reference_savings: f64,
    /// Expected savings of the new epoch on the observed distribution
    /// (this becomes the new reference).
    pub new_reference_savings: f64,
    /// Distinct scopes in the observed workload the selection ran on.
    pub distinct_scopes: usize,
    /// Shortcut potentials in the new materialization.
    pub shortcuts: usize,
    /// Total table entries of the new materialization.
    pub total_size: Size,
    /// Wall-clock time of the re-selection (runs off the serving path).
    pub selection: Duration,
}

/// Expected savings of `mat` over the plain junction tree on a workload
/// distribution, recomputed with the symbolic cost model — the benefit
/// definition (Def. 3.3) evaluated on arbitrary (e.g. observed) traffic.
pub fn expected_savings(
    engine: &QueryEngine<'_>,
    mat: &Materialization,
    entries: &[(Scope, f64)],
) -> f64 {
    let online = OnlineEngine::new(engine, mat);
    let with = expected_ops(entries, |q| online.cost(q).ok().map(|c| c.ops));
    let base = expected_ops(entries, |q| online.baseline_cost(q).ok().map(|c| c.ops));
    if base > 0.0 {
        1.0 - with / base
    } else {
        0.0
    }
}

fn workload_entries(w: &Workload) -> Vec<(Scope, f64)> {
    w.entries()
        .iter()
        .map(|e| (e.query.clone(), e.weight))
        .collect()
}

/// Watches a [`ServingEngine`]'s observed benefit and hot-swaps the
/// materialization when the workload drifts.
pub struct RematerializationController<'s, 't> {
    serving: &'s ServingEngine<'t>,
    cfg: LifecycleConfig,
    reference_savings: f64,
    swaps: Vec<SwapEvent>,
    /// Observation windows closed so far (decisions taken, swaps or not).
    windows: u64,
    /// Consecutive re-selections that produced nothing publishable.
    declined: u32,
    /// Decayed windows to sit out before attempting re-selection again
    /// (linear backoff after declines: permanently unhelpable traffic
    /// must not re-run the offline DP every single window).
    backoff: u32,
}

impl<'s, 't> RematerializationController<'s, 't> {
    /// Wraps a serving engine. `training` is the workload the *current*
    /// materialization was selected on; its expected savings become the
    /// reference the observed benefit is compared against.
    pub fn new(
        serving: &'s ServingEngine<'t>,
        training: &Workload,
        cfg: LifecycleConfig,
    ) -> Self {
        let reference_savings = expected_savings(
            serving.engine(),
            &serving.materialization(),
            &workload_entries(training),
        );
        RematerializationController {
            serving,
            cfg,
            reference_savings,
            swaps: Vec::new(),
            windows: 0,
            declined: 0,
            backoff: 0,
        }
    }

    /// The reference savings the current epoch is held against.
    pub fn reference_savings(&self) -> f64 {
        self.reference_savings
    }

    /// Every swap published so far.
    pub fn swaps(&self) -> &[SwapEvent] {
        &self.swaps
    }

    /// Observation windows closed so far (every decision, swap or not).
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// One decision round: inspect the current epoch's observations, and
    /// if drift (or a cold-start) warrants it, re-run the offline
    /// selection on the observed distribution and publish the next epoch.
    /// Returns the swap event when a swap happened.
    ///
    /// Deterministic: the decision depends only on the recorded arrivals
    /// and the configuration, never on wall-clock time.
    pub fn tick(&mut self) -> Result<Option<SwapEvent>, PgmError> {
        let stats = self.serving.stats();
        let snap = stats.snapshot();
        if snap.queries < self.cfg.min_window {
            return Ok(None);
        }
        // a decision closes the window either way: detection must judge
        // recent traffic, not a forever average diluted by old regimes
        self.windows += 1;
        let observed = snap.observed_savings();
        let decayed = self.reference_savings > self.cfg.min_reference_savings
            && observed < self.cfg.decay_threshold * self.reference_savings;
        let cold_start = self.cfg.bootstrap
            && self.serving.materialization().is_empty()
            && self.reference_savings <= self.cfg.min_reference_savings;
        if !decayed && !cold_start {
            // a healthy window clears any decline backoff: if traffic
            // shifts again, the next decay deserves a fresh attempt
            self.declined = 0;
            self.backoff = 0;
            self.serving.reset_stats();
            return Ok(None);
        }
        if self.backoff > 0 {
            // recent re-selections found nothing publishable for traffic
            // like this; sit this window out instead of re-running the
            // offline DP on what is almost surely the same distribution
            self.backoff -= 1;
            self.serving.reset_stats();
            return Ok(None);
        }

        // Re-select on the observed distribution — off the serving path:
        // batches keep draining on other threads while the DP runs here.
        let observed_workload = stats.observed_workload();
        if observed_workload.is_empty() {
            self.serving.reset_stats();
            return Ok(None);
        }
        let engine = self.serving.engine();
        let ctx = OfflineContext::new(engine.tree(), &observed_workload)?;
        let pcfg = PeanutConfig {
            budget: self.cfg.budget,
            epsilon: self.cfg.epsilon,
            threads: self.cfg.threads.max(1),
            variant: self.cfg.variant,
        };
        let t0 = Instant::now();
        let mat = match engine.numeric_state() {
            Some(ns) => Peanut::offline_numeric(&ctx, &pcfg, ns)?.0,
            None => Peanut::offline(&ctx, &pcfg),
        };
        let selection = t0.elapsed();

        // Publish only when the candidate's expected benefit on the
        // observed traffic beats both the floor and what the stale epoch
        // is still delivering.
        let entries = workload_entries(&observed_workload);
        let new_reference = expected_savings(engine, &mat, &entries);
        if new_reference <= self.cfg.min_reference_savings || new_reference <= observed {
            self.declined += 1;
            self.backoff = self.declined.min(16);
            self.serving.reset_stats();
            return Ok(None);
        }
        let event = SwapEvent {
            epoch: 0, // stamped below
            at_arrivals: snap.queries,
            observed_savings: observed,
            reference_savings: self.reference_savings,
            new_reference_savings: new_reference,
            distinct_scopes: observed_workload.len(),
            shortcuts: mat.len(),
            total_size: mat.total_size(),
            selection,
        };
        let epoch = self.serving.publish(mat);
        let event = SwapEvent { epoch, ..event };
        self.reference_savings = new_reference;
        self.declined = 0;
        self.backoff = 0;
        self.swaps.push(event.clone());
        Ok(Some(event))
    }

    /// Drives [`tick`](Self::tick) on an interval until `stop` is raised —
    /// meant for a dedicated background thread next to the serving loop.
    /// Returns the swaps published during the run.
    pub fn run(&mut self, stop: &AtomicBool, poll: Duration) -> Result<usize, PgmError> {
        let before = self.swaps.len();
        while !stop.load(Ordering::Relaxed) {
            self.tick()?;
            std::thread::sleep(poll);
        }
        Ok(self.swaps.len() - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Query, ServingConfig};
    use peanut_junction::build_junction_tree;
    use peanut_pgm::fixtures;

    fn pair_queries(lo: u32, hi: u32, span: u32) -> Vec<Query> {
        (lo..hi.saturating_sub(span))
            .map(|a| Query::Marginal(Scope::from_indices(&[a, a + span])))
            .collect()
    }

    /// Drive a chain-network engine from a training regime into a fully
    /// drifted one and check the controller swaps exactly once, improving
    /// the served cost.
    #[test]
    fn controller_swaps_on_drift() {
        let bn = fixtures::chain(20, 2, 13);
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();

        // train on deep long-range pairs
        let train: Vec<Query> = pair_queries(10, 20, 5);
        let train_w = Workload::from_queries(train.iter().map(|q| q.stat_scope()));
        let ctx = OfflineContext::new(&tree, &train_w).unwrap();
        let (mat, _) = Peanut::offline_numeric(
            &ctx,
            &PeanutConfig::plus(512).with_epsilon(1.0),
            engine.numeric_state().unwrap(),
        )
        .unwrap();
        assert!(!mat.is_empty(), "test premise: training selects shortcuts");

        let serving = ServingEngine::new(
            engine,
            mat,
            ServingConfig {
                workers: 1,
                ..ServingConfig::default()
            },
        );
        let mut ctl = RematerializationController::new(
            &serving,
            &train_w,
            LifecycleConfig {
                min_window: 32,
                ..LifecycleConfig::new(512)
            },
        );
        assert!(ctl.reference_savings() > 0.0);

        // serve the training regime: no swap
        for _ in 0..4 {
            serving.serve_batch(&train);
            assert!(ctl.tick().unwrap().is_none(), "no drift yet");
        }
        assert_eq!(serving.epoch(), 0);

        // full drift to shallow pairs the training shortcuts don't cover;
        // the decision window must fill with drifted arrivals (a declined
        // decision waits another min_window arrivals), so drive plenty
        let drifted: Vec<Query> = pair_queries(0, 10, 5);
        let mut swapped = None;
        for _ in 0..30 {
            serving.serve_batch(&drifted);
            if let Some(ev) = ctl.tick().unwrap() {
                swapped = Some(ev);
                break;
            }
        }
        let ev = swapped.expect("controller must react to full drift");
        assert_eq!(ev.epoch, 1);
        assert_eq!(serving.epoch(), 1);
        assert!(ev.new_reference_savings > ev.observed_savings);
        assert!(ev.shortcuts > 0);

        // the fresh epoch now covers the drifted traffic
        let stats = serving.stats();
        serving.serve_batch(&drifted);
        assert!(
            stats.snapshot().observed_savings() > ev.observed_savings,
            "post-swap savings must improve on the stale epoch"
        );
        // and the controller settles: same traffic, no further swap
        for _ in 0..4 {
            serving.serve_batch(&drifted);
            assert!(ctl.tick().unwrap().is_none(), "stable after the swap");
        }
    }

    /// An engine started without any materialization bootstraps one from
    /// observed traffic.
    #[test]
    fn controller_bootstraps_cold_start() {
        let bn = fixtures::chain(16, 2, 13);
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig {
                workers: 1,
                ..ServingConfig::default()
            },
        );
        let mut ctl = RematerializationController::new(
            &serving,
            &Workload::default(),
            LifecycleConfig {
                min_window: 16,
                ..LifecycleConfig::new(512)
            },
        );
        let traffic = pair_queries(0, 16, 6);
        let mut swapped = false;
        for _ in 0..6 {
            serving.serve_batch(&traffic);
            if ctl.tick().unwrap().is_some() {
                swapped = true;
                break;
            }
        }
        assert!(swapped, "cold start must materialize from observations");
        assert!(!serving.materialization().is_empty());
        assert_eq!(serving.epoch(), 1);
    }

    /// Traffic no materialization can help (in-clique queries, zero
    /// headroom) decays the benefit but must never publish — and the
    /// decline backoff must keep closing windows without getting stuck.
    #[test]
    fn controller_declines_unhelpable_traffic() {
        let bn = fixtures::chain(14, 2, 13);
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let train: Vec<Query> = pair_queries(0, 14, 5);
        let train_w = Workload::from_queries(train.iter().map(|q| q.stat_scope()));
        let ctx = OfflineContext::new(&tree, &train_w).unwrap();
        let (mat, _) = Peanut::offline_numeric(
            &ctx,
            &PeanutConfig::plus(512).with_epsilon(1.0),
            engine.numeric_state().unwrap(),
        )
        .unwrap();
        let serving = ServingEngine::new(engine, mat, ServingConfig::default());
        let mut ctl = RematerializationController::new(
            &serving,
            &train_w,
            LifecycleConfig {
                min_window: 8,
                ..LifecycleConfig::new(512)
            },
        );
        assert!(ctl.reference_savings() > 0.0, "test premise");
        // single-variable in-clique queries: cost == baseline, always
        let flat: Vec<Query> = (0..14u32)
            .map(|v| Query::Marginal(Scope::from_indices(&[v])))
            .collect();
        for _ in 0..12 {
            serving.serve_batch(&flat);
            assert!(ctl.tick().unwrap().is_none(), "nothing publishable");
        }
        assert!(ctl.swaps().is_empty());
        assert_eq!(serving.epoch(), 0);
        assert!(ctl.windows() >= 10, "windows must keep closing: {}", ctl.windows());
    }

    /// A window of traffic the current epoch already serves well must not
    /// trigger a swap, even with an aggressive threshold.
    #[test]
    fn controller_holds_without_drift() {
        let bn = fixtures::chain(14, 2, 13);
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let train: Vec<Query> = pair_queries(0, 14, 5);
        let train_w = Workload::from_queries(train.iter().map(|q| q.stat_scope()));
        let ctx = OfflineContext::new(&tree, &train_w).unwrap();
        let (mat, _) = Peanut::offline_numeric(
            &ctx,
            &PeanutConfig::plus(512).with_epsilon(1.0),
            engine.numeric_state().unwrap(),
        )
        .unwrap();
        let serving = ServingEngine::new(engine, mat, ServingConfig::default());
        let mut ctl = RematerializationController::new(
            &serving,
            &train_w,
            LifecycleConfig {
                min_window: 16,
                decay_threshold: 0.9,
                ..LifecycleConfig::new(512)
            },
        );
        for _ in 0..6 {
            serving.serve_batch(&train);
            assert!(ctl.tick().unwrap().is_none());
        }
        assert_eq!(serving.epoch(), 0);
        assert!(ctl.swaps().is_empty());
    }
}
