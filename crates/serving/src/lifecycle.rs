//! The materialization lifecycle: drift-aware hot re-materialization.
//!
//! The offline phase optimizes a materialization for the *training*
//! workload (Def. 3.3); the paper's robustness experiments (§5.3,
//! Figures 8–9) show the benefit eroding as served traffic drifts away
//! from that distribution. A [`RematerializationController`] closes the
//! loop at serving time:
//!
//! 1. it watches the current epoch's [`WorkloadStats`] (fed by the
//!    serving workers' [`OnlineEngine`]s) across a small **ring of
//!    observation windows**, comparing the *observed* benefit against the
//!    epoch's *reference* benefit — the savings the selection promised on
//!    the distribution it was trained on. A swap needs both horizons to
//!    decay: the most recent window (short horizon) *and* the aggregate of
//!    the whole ring (long horizon), so a one-window traffic blip never
//!    triggers a re-selection;
//! 2. when the benefit decays past a configurable fraction of the
//!    reference ([`LifecycleConfig::decay_threshold`]), it re-runs the
//!    offline selection (PEANUT / PEANUT+) on the **observed** query
//!    distribution accumulated over the ring — on the controller's thread,
//!    while serving keeps draining batches;
//! 3. if the new artifact's expected benefit (recomputed with the cost
//!    model on the observed distribution) beats what the stale epoch is
//!    delivering, it [`publish`](ServingEngine::publish)es the new epoch.
//!    The swap is a pointer exchange: no serving pause, no cache flush —
//!    stale cache entries die lazily by their epoch tag.
//!
//! A [`FleetController`] lifts the same loop to a
//! [`ShardedServingEngine`]: it ticks *all* tenants at once and splits one
//! **global** materialization budget across them by observed benefit — a
//! greedy knapsack over the per-tenant candidate shortcut sets, each
//! candidate priced with the cost model ([`expected_ops`]) on that
//! tenant's observed distribution and weighted by the tenant's share of
//! fleet traffic. When a tenant's traffic spikes, its candidates' weighted
//! benefit grows and the knapsack shifts budget toward it on the next
//! rebalance.
//!
//! Everything both controllers decide is a deterministic function of the
//! recorded arrivals and their configuration, so a replay of the same
//! drift schedule with the same seeds and the same `tick()` cadence
//! produces the same swap points and the same selected shortcut sets.
//!
//! [`OnlineEngine`]: peanut_core::OnlineEngine

use crate::engine::ServingEngine;
use crate::shard::{ShardedServingEngine, TenantId};
use peanut_core::exec::Executor;
use peanut_core::sync::atomic::{AtomicBool, Ordering};
use peanut_core::sync::{thread, Arc};
use peanut_core::{
    Materialization, OfflineContext, OnlineEngine, Peanut, PeanutConfig, StatsSnapshot, Variant,
    Workload, WorkloadStats,
};
use peanut_junction::cost::expected_ops;
use peanut_junction::QueryEngine;
use peanut_pgm::{PgmError, Scope, Size};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Drift-detection and re-selection knobs.
#[derive(Clone, Debug)]
pub struct LifecycleConfig {
    /// Arrivals an observation window must hold before it is closed and
    /// pushed into the ring. Detection always judges the most recent
    /// `min_window`-or-more arrivals (short horizon) against the ring
    /// aggregate (long horizon) — a forever-cumulative average would
    /// dilute a drift signal with pre-drift history.
    pub min_window: u64,
    /// Closed windows the controller keeps (short- vs long-horizon
    /// comparison). A swap requires the ring to be full and *both* the
    /// latest window and the ring aggregate to be decayed, so a single
    /// anomalous window cannot trigger a re-selection. Clamped to ≥ 1.
    pub window_ring: usize,
    /// Re-materialize when `observed_savings < decay_threshold ×
    /// reference_savings` — i.e. the epoch delivers less than this
    /// fraction of the benefit it was selected for.
    pub decay_threshold: f64,
    /// Savings below this are treated as "no benefit": epochs whose
    /// reference is under the floor are not drift-checked (there is
    /// nothing to decay), and a candidate selection must promise more
    /// than the floor to be published.
    pub min_reference_savings: f64,
    /// When the current epoch has an *empty* materialization, attempt a
    /// first selection from observed traffic once the window fills
    /// (cold-start bootstrap). Bootstrap does not wait for the ring to
    /// fill — there is no healthy history to protect.
    pub bootstrap: bool,
    /// Space budget `K` for re-selection (table entries).
    pub budget: Size,
    /// Budget-grid parameter ε of §4.4.
    pub epsilon: f64,
    /// PEANUT (disjoint) or PEANUT+ (overlapping) re-selection.
    pub variant: Variant,
    /// Worker threads for the offline DP fan-out **when the serving
    /// engine has no pool to reuse** (it serves sequentially). An engine
    /// that fans out lends its persistent [`WorkerPool`](crate::WorkerPool)
    /// to the re-selection instead, and this knob is ignored.
    pub threads: usize,
}

impl LifecycleConfig {
    /// Sensible defaults around a budget: PEANUT+ at the paper's ε = 1.2,
    /// window 512 with a ring of 3, trigger at half the promised benefit.
    pub fn new(budget: Size) -> Self {
        LifecycleConfig {
            min_window: 512,
            window_ring: 3,
            decay_threshold: 0.5,
            min_reference_savings: 0.01,
            bootstrap: true,
            budget,
            epsilon: 1.2,
            variant: Variant::PeanutPlus,
            threads: 1,
        }
    }

    /// Sets the observation-window size (chainable, like every `with_*`
    /// knob on the serving configs).
    pub fn with_min_window(mut self, min_window: u64) -> Self {
        self.min_window = min_window;
        self
    }

    /// Sets the ring of closed windows kept for drift detection
    /// (chainable).
    pub fn with_window_ring(mut self, window_ring: usize) -> Self {
        self.window_ring = window_ring;
        self
    }

    /// Sets the benefit-decay fraction that triggers re-selection
    /// (chainable).
    pub fn with_decay_threshold(mut self, decay_threshold: f64) -> Self {
        self.decay_threshold = decay_threshold;
        self
    }

    /// Sets the re-selection variant (chainable).
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the offline fan-out thread count used when the engine has no
    /// pool to lend (chainable).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// One published re-materialization, as observed by the controller.
#[derive(Clone, Debug)]
pub struct SwapEvent {
    /// The epoch that was published.
    pub epoch: u64,
    /// Arrivals across the ring of windows that informed the decision.
    pub at_arrivals: u64,
    /// Observed savings of the retired epoch over the ring (long horizon).
    pub observed_savings: f64,
    /// Reference savings the retired epoch was selected for.
    pub reference_savings: f64,
    /// Expected savings of the new epoch on the observed distribution
    /// (this becomes the new reference).
    pub new_reference_savings: f64,
    /// Distinct scopes in the observed workload the selection ran on.
    pub distinct_scopes: usize,
    /// Shortcut potentials in the new materialization.
    pub shortcuts: usize,
    /// Total table entries of the new materialization.
    pub total_size: Size,
    /// Wall-clock time of the re-selection (runs off the serving path).
    pub selection: Duration,
}

/// Expected savings of `mat` over the plain junction tree on a workload
/// distribution, recomputed with the symbolic cost model — the benefit
/// definition (Def. 3.3) evaluated on arbitrary (e.g. observed) traffic.
pub fn expected_savings(
    engine: &QueryEngine<'_>,
    mat: &Materialization,
    entries: &[(Scope, f64)],
) -> f64 {
    let with = mean_query_ops(engine, mat, entries);
    let base = baseline_query_ops(engine, entries);
    if base > 0.0 {
        1.0 - with / base
    } else {
        0.0
    }
}

/// Probability-weighted mean operation count of `entries` answered through
/// `mat` (symbolic cost model).
fn mean_query_ops(
    engine: &QueryEngine<'_>,
    mat: &Materialization,
    entries: &[(Scope, f64)],
) -> f64 {
    let online = OnlineEngine::new(engine, mat);
    expected_ops(entries, |q| online.cost(q).ok().map(|c| c.ops))
}

/// Probability-weighted mean operation count of `entries` on the plain
/// (shortcut-free) junction tree.
fn baseline_query_ops(engine: &QueryEngine<'_>, entries: &[(Scope, f64)]) -> f64 {
    let none = Materialization::default();
    let online = OnlineEngine::new(engine, &none);
    expected_ops(entries, |q| online.baseline_cost(q).ok().map(|c| c.ops))
}

fn workload_entries(w: &Workload) -> Vec<(Scope, f64)> {
    w.entries()
        .iter()
        .map(|e| (e.query.clone(), e.weight))
        .collect()
}

/// Runs the offline selection on an observed workload, numeric when the
/// engine is calibrated, symbolic otherwise. The LRDP fan-out and the
/// numeric table builds run on `exec` — the serving tier's persistent
/// worker pool when the engine fans out, so a re-selection reuses parked
/// workers instead of spawning its own. The pool routes this work to its
/// re-materialization lane, where concurrent serving-lane waves preempt
/// it between tasks: a drift-triggered re-selection stretches (it yields
/// the workers to queries) instead of stalling the query path.
fn reselect(
    engine: &QueryEngine<'_>,
    observed: &Workload,
    budget: Size,
    epsilon: f64,
    variant: Variant,
    exec: &dyn Executor,
) -> Result<Materialization, PgmError> {
    let ctx = OfflineContext::new(engine.tree(), observed)?;
    let pcfg = PeanutConfig {
        budget,
        epsilon,
        threads: 1,
        variant,
    };
    Ok(match engine.numeric_state() {
        Some(ns) => Peanut::offline_numeric_with(&ctx, &pcfg, ns, exec)?.0,
        None => Peanut::offline_with(&ctx, &pcfg, exec),
    })
}

/// Watches a [`ServingEngine`]'s observed benefit and hot-swaps the
/// materialization when the workload drifts.
pub struct RematerializationController<'s, 't> {
    serving: &'s ServingEngine<'t>,
    cfg: LifecycleConfig,
    reference_savings: f64,
    /// The last `window_ring` closed observation windows, oldest first.
    /// Each is a retired accumulator (in-flight stragglers may still top
    /// one up right after it is retired; the ring only needs window-scale
    /// accuracy).
    ring: VecDeque<Arc<WorkloadStats>>,
    swaps: Vec<SwapEvent>,
    /// Observation windows closed so far (decisions taken, swaps or not).
    windows: u64,
    /// Consecutive re-selections that produced nothing publishable.
    declined: u32,
    /// Decayed windows to sit out before attempting re-selection again
    /// (linear backoff after declines: permanently unhelpable traffic
    /// must not re-run the offline DP every single window).
    backoff: u32,
}

impl<'s, 't> RematerializationController<'s, 't> {
    /// Wraps a serving engine. `training` is the workload the *current*
    /// materialization was selected on; its expected savings become the
    /// reference the observed benefit is compared against.
    pub fn new(serving: &'s ServingEngine<'t>, training: &Workload, cfg: LifecycleConfig) -> Self {
        let reference_savings = expected_savings(
            serving.engine(),
            &serving.materialization(),
            &workload_entries(training),
        );
        RematerializationController {
            serving,
            cfg,
            reference_savings,
            ring: VecDeque::new(),
            swaps: Vec::new(),
            windows: 0,
            declined: 0,
            backoff: 0,
        }
    }

    /// The reference savings the current epoch is held against.
    pub fn reference_savings(&self) -> f64 {
        self.reference_savings
    }

    /// Every swap published so far.
    pub fn swaps(&self) -> &[SwapEvent] {
        &self.swaps
    }

    /// Observation windows closed so far (every decision, swap or not).
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Aggregate counters over the ring of closed windows (long horizon).
    fn ring_snapshot(&self) -> StatsSnapshot {
        let mut agg = StatsSnapshot::default();
        for w in &self.ring {
            let s = w.snapshot();
            agg.queries += s.queries;
            agg.shortcut_queries += s.shortcut_queries;
            agg.shortcuts_used += s.shortcuts_used;
            agg.observed_ops = agg.observed_ops.saturating_add(s.observed_ops);
            agg.baseline_ops = agg.baseline_ops.saturating_add(s.baseline_ops);
        }
        agg
    }

    /// The observed workload accumulated over the whole ring: per-scope
    /// arrival counts of every closed window, merged — the distribution a
    /// re-selection trains on. Deterministic (sorted by scope).
    fn ring_workload(&self) -> Workload {
        let mut counts: HashMap<Scope, u64> = HashMap::new();
        for w in &self.ring {
            for (scope, n) in w.scope_counts() {
                *counts.entry(scope).or_insert(0) += n;
            }
        }
        Workload::from_weighted(counts.into_iter().map(|(s, c)| (s, c as f64)))
    }

    /// One decision round: when the current observation window has filled,
    /// close it into the ring and compare the short- and long-horizon
    /// observed benefit against the reference. If both horizons are
    /// decayed (or an empty materialization cold-starts), re-run the
    /// offline selection on the ring's observed distribution and publish
    /// the next epoch. Returns the swap event when a swap happened.
    ///
    /// Deterministic: the decision depends only on the recorded arrivals
    /// and the configuration, never on wall-clock time.
    pub fn tick(&mut self) -> Result<Option<SwapEvent>, PgmError> {
        let snap = self.serving.stats().snapshot();
        if snap.queries < self.cfg.min_window {
            return Ok(None);
        }
        // the window closes either way: detection must judge recent
        // traffic, not a forever average diluted by old regimes
        self.windows += 1;
        let retired = self.serving.reset_stats();
        self.ring.push_back(retired);
        let ring_len = self.cfg.window_ring.max(1);
        while self.ring.len() > ring_len {
            self.ring.pop_front();
        }

        let short = self
            .ring
            .back()
            .expect("just pushed")
            .snapshot()
            .observed_savings();
        let long_snap = self.ring_snapshot();
        let long = long_snap.observed_savings();
        let has_reference = self.reference_savings > self.cfg.min_reference_savings;
        let short_decayed =
            has_reference && short < self.cfg.decay_threshold * self.reference_savings;
        // both horizons must agree, and the ring must be full: a single
        // anomalous window inside otherwise-healthy traffic changes the
        // aggregate too little to trip the long horizon
        let decayed = short_decayed
            && self.ring.len() == ring_len
            && long < self.cfg.decay_threshold * self.reference_savings;
        let cold_start = self.cfg.bootstrap
            && self.serving.materialization().is_empty()
            && self.reference_savings <= self.cfg.min_reference_savings;
        if !decayed && !cold_start {
            if !short_decayed {
                // a healthy window clears any decline backoff: if traffic
                // shifts again, the next decay deserves a fresh attempt
                self.declined = 0;
                self.backoff = 0;
            }
            return Ok(None);
        }
        if self.backoff > 0 {
            // recent re-selections found nothing publishable for traffic
            // like this; sit this window out instead of re-running the
            // offline DP on what is almost surely the same distribution
            self.backoff -= 1;
            return Ok(None);
        }

        // Re-select on the distribution observed across the ring — off the
        // serving path: batches keep draining on other threads while the
        // DP runs here.
        let observed_workload = self.ring_workload();
        if observed_workload.is_empty() {
            return Ok(None);
        }
        let engine = self.serving.engine();
        let exec = self.serving.offline_exec(self.cfg.threads);
        let t0 = Instant::now();
        let mat = reselect(
            engine,
            &observed_workload,
            self.cfg.budget,
            self.cfg.epsilon,
            self.cfg.variant,
            exec.as_ref(),
        )?;
        let selection = t0.elapsed();

        // Publish only when the candidate's expected benefit on the
        // observed traffic beats both the floor and what the stale epoch
        // is still delivering.
        let entries = workload_entries(&observed_workload);
        let new_reference = expected_savings(engine, &mat, &entries);
        if new_reference <= self.cfg.min_reference_savings || new_reference <= long {
            self.declined += 1;
            self.backoff = self.declined.min(16);
            return Ok(None);
        }
        let event = SwapEvent {
            epoch: 0, // stamped below
            at_arrivals: long_snap.queries,
            observed_savings: long,
            reference_savings: self.reference_savings,
            new_reference_savings: new_reference,
            distinct_scopes: observed_workload.len(),
            shortcuts: mat.len(),
            total_size: mat.total_size(),
            selection,
        };
        let epoch = self.serving.publish(mat);
        let event = SwapEvent { epoch, ..event };
        self.reference_savings = new_reference;
        self.declined = 0;
        self.backoff = 0;
        // pre-swap windows describe the retired epoch; the new epoch's
        // drift detection must start from its own observations
        self.ring.clear();
        self.swaps.push(event.clone());
        Ok(Some(event))
    }

    /// Drives [`tick`](Self::tick) on an interval until `stop` is raised —
    /// meant for a dedicated background thread next to the serving loop.
    /// Returns the swaps published during the run.
    pub fn run(&mut self, stop: &AtomicBool, poll: Duration) -> Result<usize, PgmError> {
        let before = self.swaps.len();
        // ordering: advisory stop flag polled once per tick; a one-tick-
        // late observation is inherent to polling, so Relaxed suffices.
        while !stop.load(Ordering::Relaxed) {
            self.tick()?;
            thread::sleep(poll);
        }
        Ok(self.swaps.len() - before)
    }
}

// ---------------------------------------------------------------------------
// Fleet-level lifecycle: one global budget across all tenants
// ---------------------------------------------------------------------------

/// Knobs of the fleet-level budget controller.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Fleet-wide arrivals (summed over tenants) an observation window
    /// must hold before a rebalance decision is taken.
    pub min_window: u64,
    /// The **global** space budget `K` (table entries) split across all
    /// tenants by the greedy knapsack.
    pub budget: Size,
    /// Budget-grid parameter ε of §4.4 for the per-tenant candidate DPs.
    pub epsilon: f64,
    /// PEANUT (disjoint) or PEANUT+ (overlapping) candidate selection.
    pub variant: Variant,
    /// Worker threads for each tenant's offline DP fan-out when the
    /// sharded engine has no pool to reuse (see
    /// [`LifecycleConfig::threads`]).
    pub threads: usize,
    /// Cache each tenant's full-budget candidate shortcut set between
    /// rebalances, keyed on the fingerprint of its observed distribution
    /// (on by default). A tenant whose window replays the same query mix
    /// — at any traffic volume — skips its offline DP entirely; only
    /// tenants whose distribution actually moved recompute.
    pub cache_candidates: bool,
    /// Per-tenant expected savings below this floor are treated as "no
    /// benefit" (the tenant keeps an empty allocation).
    pub min_savings: f64,
    /// Rebalance when any tenant's observed savings drop below this
    /// fraction of the savings its current allocation promised.
    pub decay_threshold: f64,
    /// Rebalance when the tenants' traffic shares move by at least this
    /// much (L1 distance between consecutive share vectors) — the signal
    /// that follows a tenant's traffic spike.
    pub share_drift: f64,
}

impl FleetConfig {
    /// Defaults around a global budget: PEANUT+ at ε = 1.2, fleet window
    /// 1024, rebalance on a 25% share shift or half-lost benefit.
    pub fn new(budget: Size) -> Self {
        FleetConfig {
            min_window: 1024,
            budget,
            epsilon: 1.2,
            variant: Variant::PeanutPlus,
            threads: 1,
            cache_candidates: true,
            min_savings: 0.01,
            decay_threshold: 0.5,
            share_drift: 0.25,
        }
    }

    /// Sets the fleet-wide observation-window size (chainable).
    pub fn with_min_window(mut self, min_window: u64) -> Self {
        self.min_window = min_window;
        self
    }

    /// Enables or disables the per-tenant candidate cache (chainable).
    pub fn with_cache_candidates(mut self, cache_candidates: bool) -> Self {
        self.cache_candidates = cache_candidates;
        self
    }

    /// Sets the share-drift rebalance trigger (chainable).
    pub fn with_share_drift(mut self, share_drift: f64) -> Self {
        self.share_drift = share_drift;
        self
    }
}

/// One tenant's share of a fleet rebalance.
#[derive(Clone, Debug)]
pub struct TenantAllocation {
    /// The tenant.
    pub tenant: TenantId,
    /// Its share of fleet arrivals in the deciding window.
    pub share: f64,
    /// Shortcut potentials allocated to it.
    pub shortcuts: usize,
    /// Table entries of its allocation (its slice of the global budget).
    pub budget_used: Size,
    /// Expected savings of the allocation on the tenant's observed
    /// distribution (the tenant's new reference).
    pub expected_savings: f64,
    /// The epoch published for this tenant, when its materialization
    /// actually changed (`None` = the allocation was already being served).
    pub published: Option<u64>,
}

/// One fleet rebalance: the global budget re-split across tenants.
#[derive(Clone, Debug)]
pub struct FleetRebalance {
    /// Fleet arrivals in the window that triggered the decision.
    pub at_arrivals: u64,
    /// Total table entries materialized fleet-wide (≤ the global budget):
    /// the fresh allocations of this rebalance plus the standing
    /// allocations of tenants that saw no traffic this window.
    pub total_size: Size,
    /// Per-tenant outcome, in registry (id) order.
    pub allocations: Vec<TenantAllocation>,
    /// Wall-clock time of candidate generation + knapsack (off the
    /// serving path).
    pub selection: Duration,
}

/// Ticks every tenant of a [`ShardedServingEngine`] and splits a global
/// materialization budget across them by observed benefit.
pub struct FleetController<'s, 't> {
    sharded: &'s ShardedServingEngine<'t>,
    cfg: FleetConfig,
    /// Traffic shares at the last rebalance, in registry order.
    last_shares: Option<Vec<(TenantId, f64)>>,
    /// Expected savings each tenant's current allocation promised.
    references: HashMap<TenantId, f64>,
    /// Per-tenant full-budget candidate pools from earlier rebalances,
    /// keyed on the observed-distribution fingerprint they were generated
    /// for ([`FleetConfig::cache_candidates`]).
    candidates_cache: HashMap<TenantId, CachedCandidates>,
    /// Tenant re-selections skipped thanks to the candidate cache.
    cache_hits: u64,
    rebalances: Vec<FleetRebalance>,
}

/// One tenant's cached candidate pool (see
/// [`FleetConfig::cache_candidates`]).
struct CachedCandidates {
    fingerprint: Vec<(Scope, u64)>,
    /// Shared with the rebalance that generated it — a cache hit must not
    /// deep-clone every materialized table just to read the pool.
    pool: Arc<Vec<peanut_core::MaterializedShortcut>>,
    overlapping: bool,
}

/// Canonical fingerprint of an observed distribution: the sorted scope
/// histogram with counts reduced by their GCD, so windows carrying the
/// same query *mix* at different traffic volumes fingerprint identically
/// (the DP's selection depends only on the distribution, never the
/// volume).
fn distribution_fingerprint(mut counts: Vec<(Scope, u64)>) -> Vec<(Scope, u64)> {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let g = counts.iter().fold(0u64, |g, &(_, c)| gcd(g, c));
    if g > 1 {
        for c in &mut counts {
            c.1 /= g;
        }
    }
    counts
}

impl<'s, 't> FleetController<'s, 't> {
    /// Wraps a sharded engine. Tenants' current materializations are
    /// treated as unreferenced (first filled window always rebalances),
    /// which doubles as the fleet's cold start.
    pub fn new(sharded: &'s ShardedServingEngine<'t>, cfg: FleetConfig) -> Self {
        FleetController {
            sharded,
            cfg,
            last_shares: None,
            references: HashMap::new(),
            candidates_cache: HashMap::new(),
            cache_hits: 0,
            rebalances: Vec::new(),
        }
    }

    /// Every rebalance taken so far.
    pub fn rebalances(&self) -> &[FleetRebalance] {
        &self.rebalances
    }

    /// Tenant re-selections skipped because the tenant's observed
    /// distribution fingerprint matched a cached candidate pool.
    pub fn candidate_cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// One fleet decision round. When the fleet-wide window has filled,
    /// decide whether a rebalance is warranted (first window, a traffic
    /// share shift ≥ [`FleetConfig::share_drift`], or a tenant's observed
    /// benefit decaying); if so, generate per-tenant candidate shortcut
    /// sets at the full global budget, split the budget with a greedy
    /// knapsack on benefit-per-entry (weighted by traffic share), and
    /// publish every tenant whose allocation changed. Rolls every tenant's
    /// observation window after any decision.
    ///
    /// Deterministic: tenants are visited in registry order and every
    /// decision depends only on recorded arrivals and configuration.
    pub fn tick(&mut self) -> Result<Option<&FleetRebalance>, PgmError> {
        // fleet snapshot, registry order (resident tenants only: a fleet
        // with paging ticks its hot set; paged-out tenants have no traffic
        // to observe and keep serving their persisted allocation)
        let mut tenants: Vec<(TenantId, Arc<ServingEngine<'t>>, StatsSnapshot)> = Vec::new();
        let mut total: u64 = 0;
        for (id, eng) in self.sharded.tenants() {
            let snap = eng.stats().snapshot();
            total += snap.queries;
            tenants.push((id, eng, snap));
        }
        if total < self.cfg.min_window.max(1) {
            return Ok(None);
        }
        let shares: Vec<(TenantId, f64)> = tenants
            .iter()
            .map(|(id, _, s)| (*id, s.queries as f64 / total as f64))
            .collect();

        let share_shift = match &self.last_shares {
            None => true,
            Some(prev) => {
                let l1: f64 = prev
                    .iter()
                    .zip(&shares)
                    .map(|((_, a), (_, b))| (a - b).abs())
                    .sum();
                l1 >= self.cfg.share_drift
            }
        };
        let decayed = tenants.iter().any(|(id, _, s)| {
            let reference = self.references.get(id).copied().unwrap_or(0.0);
            s.queries > 0
                && reference > self.cfg.min_savings
                && s.observed_savings() < self.cfg.decay_threshold * reference
        });
        // cold start = traffic on a tenant the controller has never
        // allocated for; a tenant whose last allocation came out *empty*
        // (sub-floor benefit, recorded in `references`) is not cold —
        // re-running the fleet DP every window for unhelpable traffic
        // would be pure churn
        let cold = tenants.iter().any(|(id, eng, s)| {
            s.queries > 0 && eng.materialization().is_empty() && !self.references.contains_key(id)
        });
        if !share_shift && !decayed && !cold {
            self.roll_windows();
            return Ok(None);
        }

        // --- per-tenant candidates at the full global budget ---
        struct Candidate<'tt> {
            tenant: TenantId,
            engine: Arc<ServingEngine<'tt>>,
            share: f64,
            entries: Vec<(Scope, f64)>,
            pool: Arc<Vec<peanut_core::MaterializedShortcut>>,
            overlapping: bool,
            selected: Vec<usize>,
            /// Mean per-query ops of the currently selected subset.
            current_ops: f64,
            base_ops: f64,
        }
        let exec = self.sharded.offline_exec(self.cfg.threads);
        let t0 = Instant::now();
        let mut candidates: Vec<Candidate<'t>> = Vec::new();
        for ((id, eng, snap), (_, share)) in tenants.iter().zip(&shares) {
            if snap.queries == 0 {
                continue;
            }
            // one snapshot feeds both the training workload and the cache
            // key: queries landing mid-tick must not key the cached pool to
            // a newer distribution than the one it was generated from
            let counts = eng.stats().scope_counts();
            let observed =
                Workload::from_weighted(counts.iter().map(|(s, c)| (s.clone(), *c as f64)));
            if observed.is_empty() {
                continue;
            }
            // candidate generation is the expensive half of a rebalance
            // (one full-budget offline DP per tenant); a tenant whose
            // observed distribution is unchanged since its pool was last
            // generated reuses it verbatim
            let fingerprint = distribution_fingerprint(counts);
            let cached = self.cfg.cache_candidates.then(|| {
                self.candidates_cache
                    .get(id)
                    .filter(|c| c.fingerprint == fingerprint)
            });
            let (pool, overlapping) = match cached.flatten() {
                Some(hit) => {
                    self.cache_hits += 1;
                    (Arc::clone(&hit.pool), hit.overlapping)
                }
                None => {
                    let cand_mat = reselect(
                        eng.engine(),
                        &observed,
                        self.cfg.budget,
                        self.cfg.epsilon,
                        self.cfg.variant,
                        exec.as_ref(),
                    )?;
                    let overlapping = cand_mat.overlapping;
                    let pool = Arc::new(cand_mat.shortcuts);
                    if self.cfg.cache_candidates {
                        self.candidates_cache.insert(
                            *id,
                            CachedCandidates {
                                fingerprint,
                                pool: Arc::clone(&pool),
                                overlapping,
                            },
                        );
                    }
                    (pool, overlapping)
                }
            };
            let entries = workload_entries(&observed);
            let base_ops = baseline_query_ops(eng.engine(), &entries);
            let none = Materialization::default();
            let current_ops = mean_query_ops(eng.engine(), &none, &entries);
            candidates.push(Candidate {
                tenant: *id,
                engine: Arc::clone(eng),
                share: *share,
                entries,
                pool,
                overlapping,
                selected: Vec::new(),
                current_ops,
                base_ops,
            });
        }

        // Tenants that saw no traffic this window keep serving whatever
        // they were last allocated; that standing allocation is charged
        // against the global budget up front, so the knapsack only spends
        // what is actually free fleet-wide.
        let rebalanced: std::collections::HashSet<TenantId> =
            candidates.iter().map(|c| c.tenant).collect();
        let reserved: Size = self
            .sharded
            .tenants()
            .into_iter()
            .filter(|(id, _)| !rebalanced.contains(id))
            .fold(0u64, |a, (_, eng)| {
                a.saturating_add(eng.materialization().total_size())
            });

        // Pricing a trial subset only needs the symbolic cost model, so
        // trials carry no dense tables (the knapsack would otherwise deep-
        // clone every already-selected potential per evaluation).
        let price = |c: &Candidate<'t>, si: usize| -> (f64, f64) {
            let trial = Materialization {
                shortcuts: c
                    .selected
                    .iter()
                    .chain(std::iter::once(&si))
                    .map(|&i| {
                        let s = &c.pool[i];
                        peanut_core::MaterializedShortcut {
                            shortcut: s.shortcut.clone(),
                            potential: None,
                            benefit: s.benefit,
                            ratio: s.ratio,
                        }
                    })
                    .collect(),
                overlapping: c.overlapping,
                epoch: 0,
            };
            let ops = mean_query_ops(c.engine.engine(), &trial, &c.entries);
            // ops saved per fleet arrival
            (c.share * (c.current_ops - ops), ops)
        };

        // --- greedy knapsack: best weighted benefit per table entry ---
        // Adding a shortcut to tenant T only changes T's marginal deltas,
        // so cached (delta, ops) pairs are re-priced per round only for
        // the tenant that was just extended.
        let mut used: Size = reserved;
        let mut deltas: Vec<Vec<Option<(f64, f64)>>> = candidates
            .iter()
            .map(|c| (0..c.pool.len()).map(|si| Some(price(c, si))).collect())
            .collect();
        loop {
            // (candidate idx, shortcut idx, ratio, new mean ops)
            let mut best: Option<(usize, usize, f64, f64)> = None;
            for (ci, c) in candidates.iter().enumerate() {
                for (si, s) in c.pool.iter().enumerate() {
                    if c.selected.contains(&si) {
                        continue;
                    }
                    let size = s.shortcut.size();
                    if size == 0 || used.saturating_add(size) > self.cfg.budget {
                        continue;
                    }
                    let (delta, ops) = deltas[ci][si].expect("unselected pairs stay priced");
                    if delta <= 0.0 {
                        continue;
                    }
                    let ratio = delta / size as f64;
                    if best.is_none_or(|(_, _, r, _)| ratio > r) {
                        best = Some((ci, si, ratio, ops));
                    }
                }
            }
            let Some((ci, si, _, ops)) = best else { break };
            used = used.saturating_add(candidates[ci].pool[si].shortcut.size());
            candidates[ci].selected.push(si);
            candidates[ci].current_ops = ops;
            deltas[ci][si] = None;
            let extended = &candidates[ci];
            for (other, slot) in deltas[ci].iter_mut().enumerate() {
                if slot.is_some() {
                    *slot = Some(price(extended, other));
                }
            }
        }

        // --- build, publish-if-changed, record ---
        let mut allocations = Vec::with_capacity(candidates.len());
        for c in &candidates {
            let mut savings = if c.base_ops > 0.0 {
                1.0 - c.current_ops / c.base_ops
            } else {
                0.0
            };
            let mut shortcuts: Vec<peanut_core::MaterializedShortcut> =
                c.selected.iter().map(|&i| c.pool[i].clone()).collect();
            if savings <= self.cfg.min_savings && !shortcuts.is_empty() {
                // sub-floor benefit is "no benefit": the tenant keeps an
                // empty allocation and its entries return to the pool
                // (spendable at the *next* rebalance)
                used = used.saturating_sub(
                    shortcuts
                        .iter()
                        .fold(0u64, |a, s| a.saturating_add(s.shortcut.size())),
                );
                shortcuts.clear();
                savings = 0.0;
            }
            // keep the online phase's invariant: decreasing ratio order
            shortcuts.sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("finite ratios"));
            let mat = Materialization {
                shortcuts,
                overlapping: c.overlapping,
                epoch: 0,
            };
            let current = c.engine.materialization();
            let published = if fingerprint(&mat) == fingerprint(&current) {
                None
            } else {
                Some(c.engine.publish(mat.clone()))
            };
            self.references.insert(c.tenant, savings);
            allocations.push(TenantAllocation {
                tenant: c.tenant,
                share: c.share,
                shortcuts: mat.len(),
                budget_used: mat.total_size(),
                expected_savings: savings,
                published,
            });
        }
        let rebalance = FleetRebalance {
            at_arrivals: total,
            total_size: used,
            allocations,
            selection: t0.elapsed(),
        };
        self.last_shares = Some(shares);
        self.roll_windows();
        self.rebalances.push(rebalance);
        Ok(self.rebalances.last())
    }

    /// Starts a fresh observation window on every tenant.
    fn roll_windows(&self) {
        for (_, eng) in self.sharded.tenants() {
            eng.reset_stats();
        }
    }
}

/// Order-insensitive identity of a materialization: the node sets and
/// sizes of its shortcuts. Used to skip republishing an unchanged
/// allocation (which would only churn the tenant's answer cache).
fn fingerprint(mat: &Materialization) -> Vec<(Vec<usize>, Size)> {
    let mut fp: Vec<(Vec<usize>, Size)> = mat
        .shortcuts
        .iter()
        .map(|s| (s.shortcut.nodes().to_vec(), s.shortcut.size()))
        .collect();
    fp.sort();
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServingConfig;
    use crate::overload::ServeOutcome;
    use crate::shard::ShardConfig;
    use peanut_core::ServeRequest;
    use peanut_junction::build_junction_tree;
    use peanut_pgm::{fixtures, Var};

    fn pair_queries(lo: u32, hi: u32, span: u32) -> Vec<ServeRequest> {
        (lo..hi.saturating_sub(span))
            .map(|a| ServeRequest::marginal(Scope::from_indices(&[a, a + span])))
            .collect()
    }

    /// Drive a chain-network engine from a training regime into a fully
    /// drifted one and check the controller swaps exactly once, improving
    /// the served cost.
    #[test]
    fn controller_swaps_on_drift() {
        let bn = fixtures::chain(20, 2, 13);
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();

        // train on deep long-range pairs
        let train: Vec<ServeRequest> = pair_queries(10, 20, 5);
        let train_w = Workload::from_queries(train.iter().map(|q| q.stat_scope()));
        let ctx = OfflineContext::new(&tree, &train_w).unwrap();
        let (mat, _) = Peanut::offline_numeric(
            &ctx,
            &PeanutConfig::plus(512).with_epsilon(1.0),
            engine.numeric_state().unwrap(),
        )
        .unwrap();
        assert!(!mat.is_empty(), "test premise: training selects shortcuts");

        let serving = ServingEngine::new(engine, mat, ServingConfig::default().with_workers(1));
        let mut ctl = RematerializationController::new(
            &serving,
            &train_w,
            LifecycleConfig::new(512)
                .with_min_window(32)
                .with_window_ring(2),
        );
        assert!(ctl.reference_savings() > 0.0);

        // serve the training regime: no swap
        for _ in 0..16 {
            serving.serve_batch(&train);
            assert!(ctl.tick().unwrap().is_none(), "no drift yet");
        }
        assert_eq!(serving.epoch(), 0);

        // full drift to shallow pairs the training shortcuts don't cover;
        // the ring must fill with decayed windows before the controller
        // reacts, so drive plenty
        let drifted: Vec<ServeRequest> = pair_queries(0, 10, 5);
        let mut swapped = None;
        for _ in 0..40 {
            serving.serve_batch(&drifted);
            if let Some(ev) = ctl.tick().unwrap() {
                swapped = Some(ev);
                break;
            }
        }
        let ev = swapped.expect("controller must react to full drift");
        assert_eq!(ev.epoch, 1);
        assert_eq!(serving.epoch(), 1);
        assert!(ev.new_reference_savings > ev.observed_savings);
        assert!(ev.shortcuts > 0);

        // the fresh epoch now covers the drifted traffic
        let stats = serving.stats();
        serving.serve_batch(&drifted);
        assert!(
            stats.snapshot().observed_savings() > ev.observed_savings,
            "post-swap savings must improve on the stale epoch"
        );
        // and the controller settles: same traffic, no further swap
        for _ in 0..8 {
            serving.serve_batch(&drifted);
            assert!(ctl.tick().unwrap().is_none(), "stable after the swap");
        }
    }

    /// An engine started without any materialization bootstraps one from
    /// observed traffic — without waiting for the ring to fill.
    #[test]
    fn controller_bootstraps_cold_start() {
        let bn = fixtures::chain(16, 2, 13);
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig::default().with_workers(1),
        );
        let mut ctl = RematerializationController::new(
            &serving,
            &Workload::default(),
            LifecycleConfig::new(512).with_min_window(16),
        );
        let traffic = pair_queries(0, 16, 6);
        let mut swapped = false;
        let mut batches = 0;
        for _ in 0..6 {
            serving.serve_batch(&traffic);
            batches += 1;
            if ctl.tick().unwrap().is_some() {
                swapped = true;
                break;
            }
        }
        assert!(swapped, "cold start must materialize from observations");
        assert!(
            batches <= 2,
            "bootstrap must not wait for the ring: took {batches} batches"
        );
        assert!(!serving.materialization().is_empty());
        assert_eq!(serving.epoch(), 1);
    }

    /// Traffic no materialization can help (in-clique queries, zero
    /// headroom) decays the benefit but must never publish — and the
    /// decline backoff must keep closing windows without getting stuck.
    #[test]
    fn controller_declines_unhelpable_traffic() {
        let bn = fixtures::chain(14, 2, 13);
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let train: Vec<ServeRequest> = pair_queries(0, 14, 5);
        let train_w = Workload::from_queries(train.iter().map(|q| q.stat_scope()));
        let ctx = OfflineContext::new(&tree, &train_w).unwrap();
        let (mat, _) = Peanut::offline_numeric(
            &ctx,
            &PeanutConfig::plus(512).with_epsilon(1.0),
            engine.numeric_state().unwrap(),
        )
        .unwrap();
        let serving = ServingEngine::new(engine, mat, ServingConfig::default());
        let mut ctl = RematerializationController::new(
            &serving,
            &train_w,
            LifecycleConfig::new(512)
                .with_min_window(8)
                .with_window_ring(2),
        );
        assert!(ctl.reference_savings() > 0.0, "test premise");
        // single-variable in-clique queries: cost == baseline, always
        let flat: Vec<ServeRequest> = (0..14u32)
            .map(|v| ServeRequest::marginal(Scope::from_indices(&[v])))
            .collect();
        for _ in 0..12 {
            serving.serve_batch(&flat);
            assert!(ctl.tick().unwrap().is_none(), "nothing publishable");
        }
        assert!(ctl.swaps().is_empty());
        assert_eq!(serving.epoch(), 0);
        assert!(
            ctl.windows() >= 10,
            "windows must keep closing: {}",
            ctl.windows()
        );
    }

    /// A window of traffic the current epoch already serves well must not
    /// trigger a swap, even with an aggressive threshold.
    #[test]
    fn controller_holds_without_drift() {
        let bn = fixtures::chain(14, 2, 13);
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let train: Vec<ServeRequest> = pair_queries(0, 14, 5);
        let train_w = Workload::from_queries(train.iter().map(|q| q.stat_scope()));
        let ctx = OfflineContext::new(&tree, &train_w).unwrap();
        let (mat, _) = Peanut::offline_numeric(
            &ctx,
            &PeanutConfig::plus(512).with_epsilon(1.0),
            engine.numeric_state().unwrap(),
        )
        .unwrap();
        let serving = ServingEngine::new(engine, mat, ServingConfig::default());
        let mut ctl = RematerializationController::new(
            &serving,
            &train_w,
            LifecycleConfig::new(512)
                .with_min_window(16)
                .with_decay_threshold(0.9),
        );
        for _ in 0..6 {
            serving.serve_batch(&train);
            assert!(ctl.tick().unwrap().is_none());
        }
        assert_eq!(serving.epoch(), 0);
        assert!(ctl.swaps().is_empty());
    }

    /// The ring satellite: a *one-window* traffic blip inside otherwise
    /// healthy traffic must not trigger a swap — the long horizon holds —
    /// while the same blip sustained across the ring does.
    #[test]
    fn one_window_blip_does_not_swap() {
        let bn = fixtures::chain(20, 2, 13);
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let train: Vec<ServeRequest> = pair_queries(10, 20, 5);
        let train_w = Workload::from_queries(train.iter().map(|q| q.stat_scope()));
        let ctx = OfflineContext::new(&tree, &train_w).unwrap();
        let (mat, _) = Peanut::offline_numeric(
            &ctx,
            &PeanutConfig::plus(512).with_epsilon(1.0),
            engine.numeric_state().unwrap(),
        )
        .unwrap();
        assert!(!mat.is_empty(), "test premise");
        let serving = ServingEngine::new(engine, mat, ServingConfig::default().with_workers(1));
        let mut ctl = RematerializationController::new(
            &serving,
            &train_w,
            LifecycleConfig::new(512)
                .with_min_window(8)
                .with_window_ring(3),
        );
        // one batch = one observation window (5 queries < 2×min_window)
        let blip: Vec<ServeRequest> = pair_queries(0, 10, 5)
            .into_iter()
            .flat_map(|q| [q.clone(), q])
            .collect();
        let healthy: Vec<ServeRequest> =
            train.iter().flat_map(|q| [q.clone(), q.clone()]).collect();

        // healthy history fills the ring
        for _ in 0..4 {
            serving.serve_batch(&healthy);
            assert!(ctl.tick().unwrap().is_none());
        }
        assert!(ctl.windows() >= 3, "ring must be full of healthy windows");
        // exactly one decayed window (the blip)…
        serving.serve_batch(&blip);
        assert!(
            ctl.tick().unwrap().is_none(),
            "a one-window blip must not swap"
        );
        // …then traffic recovers: still no swap, ever
        for _ in 0..6 {
            serving.serve_batch(&healthy);
            assert!(ctl.tick().unwrap().is_none());
        }
        assert_eq!(serving.epoch(), 0, "blip must not have published");
        assert!(ctl.swaps().is_empty());

        // control: the same traffic *sustained* does swap once the ring
        // fills with decayed windows
        let mut swapped = false;
        for _ in 0..10 {
            serving.serve_batch(&blip);
            if ctl.tick().unwrap().is_some() {
                swapped = true;
                break;
            }
        }
        assert!(swapped, "sustained drift must still swap");
        assert_eq!(serving.epoch(), 1);
    }

    /// Fleet controller: the global budget follows traffic shares — when a
    /// tenant's share of fleet arrivals doubles, its allocation grows on
    /// the next rebalance (and the total stays within the global budget).
    #[test]
    fn fleet_budget_follows_traffic_spike() {
        let bn_a = fixtures::chain(18, 2, 13);
        let bn_b = fixtures::chain(18, 2, 29);
        let tree_a = build_junction_tree(&bn_a).unwrap();
        let tree_b = build_junction_tree(&bn_b).unwrap();
        let mut sharded = ShardedServingEngine::new(ShardConfig::default().with_workers(1));
        sharded
            .register(
                TenantId(0),
                QueryEngine::numeric(&tree_a, &bn_a).unwrap(),
                Materialization::default(),
            )
            .unwrap();
        sharded
            .register(
                TenantId(1),
                QueryEngine::numeric(&tree_b, &bn_b).unwrap(),
                Materialization::default(),
            )
            .unwrap();

        let global_budget = 192;
        let mut ctl = FleetController::new(
            &sharded,
            FleetConfig::new(global_budget).with_min_window(64),
        );

        let pool_a = pair_queries(0, 18, 7);
        let pool_b = pair_queries(0, 18, 7);
        let serve_mix = |a_arrivals: usize, b_arrivals: usize| {
            let mut batch: Vec<(TenantId, ServeRequest)> = Vec::new();
            for i in 0..a_arrivals {
                batch.push((TenantId(0), pool_a[i % pool_a.len()].clone()));
            }
            for i in 0..b_arrivals {
                batch.push((TenantId(1), pool_b[i % pool_b.len()].clone()));
            }
            let (answers, _) = sharded.serve_mixed(&batch);
            assert!(answers.iter().all(ServeOutcome::is_served));
        };

        // phase 1: tenant 0 dominates (75% of traffic)
        serve_mix(60, 20);
        let r1 = ctl
            .tick()
            .unwrap()
            .expect("first window rebalances")
            .clone();
        assert!(r1.total_size <= global_budget);
        let alloc = |r: &FleetRebalance, t: u32| {
            r.allocations
                .iter()
                .find(|a| a.tenant == TenantId(t))
                .map(|a| a.budget_used)
                .unwrap_or(0)
        };
        let t1_before = alloc(&r1, 1);

        // phase 2: tenant 1 spikes to 75% — its share more than doubles
        serve_mix(20, 60);
        let r2 = ctl.tick().unwrap().expect("share shift rebalances").clone();
        assert!(r2.total_size <= global_budget);
        let t1_after = alloc(&r2, 1);
        assert!(
            t1_after > t1_before,
            "spiking tenant must gain budget: {t1_before} -> {t1_after}"
        );
        assert!(
            alloc(&r2, 0) < alloc(&r1, 0),
            "the cooling tenant must cede budget"
        );
        // published epochs moved the spiking tenant forward
        assert!(sharded.tenant(TenantId(1)).unwrap().epoch() >= 1);
    }

    /// A tenant that goes idle keeps serving its standing allocation;
    /// the next rebalance must charge that allocation against the global
    /// budget, so the fleet-wide materialized size never exceeds it.
    #[test]
    fn fleet_reserves_idle_tenants_allocation() {
        let bn_a = fixtures::chain(18, 2, 13);
        let bn_b = fixtures::chain(18, 2, 29);
        let tree_a = build_junction_tree(&bn_a).unwrap();
        let tree_b = build_junction_tree(&bn_b).unwrap();
        let mut sharded = ShardedServingEngine::new(ShardConfig::default().with_workers(1));
        sharded
            .register(
                TenantId(0),
                QueryEngine::numeric(&tree_a, &bn_a).unwrap(),
                Materialization::default(),
            )
            .unwrap();
        sharded
            .register(
                TenantId(1),
                QueryEngine::numeric(&tree_b, &bn_b).unwrap(),
                Materialization::default(),
            )
            .unwrap();
        let global_budget = 48;
        let mut ctl = FleetController::new(
            &sharded,
            FleetConfig::new(global_budget).with_min_window(32),
        );
        let pool = pair_queries(0, 18, 7);
        let serve = |a: usize, b: usize| {
            let mut batch: Vec<(TenantId, ServeRequest)> = Vec::new();
            for i in 0..a {
                batch.push((TenantId(0), pool[i % pool.len()].clone()));
            }
            for i in 0..b {
                batch.push((TenantId(1), pool[i % pool.len()].clone()));
            }
            sharded.serve_mixed(&batch);
        };
        let fleet_size = |sharded: &ShardedServingEngine<'_>| -> u64 {
            sharded
                .tenants()
                .into_iter()
                .map(|(_, e)| e.materialization().total_size())
                .sum()
        };

        // window 1: both tenants active, both allocated
        serve(40, 40);
        ctl.tick().unwrap().expect("first window rebalances");
        let idle_alloc = sharded
            .tenant(TenantId(1))
            .unwrap()
            .materialization()
            .total_size();
        assert!(idle_alloc > 0, "test premise: tenant 1 got an allocation");
        assert!(fleet_size(&sharded) <= global_budget);

        // window 2: tenant 1 goes fully idle; the share shift rebalances
        // tenant 0 only — tenant 1's standing allocation is reserved
        serve(80, 0);
        let r2 = ctl.tick().unwrap().expect("share shift rebalances").clone();
        assert!(
            r2.allocations.iter().all(|a| a.tenant == TenantId(0)),
            "only the active tenant is re-allocated"
        );
        assert!(r2.total_size <= global_budget);
        assert!(
            fleet_size(&sharded) <= global_budget,
            "idle tenant's standing allocation must count against the budget: \
             fleet {} > budget {global_budget}",
            fleet_size(&sharded)
        );
        assert_eq!(
            sharded
                .tenant(TenantId(1))
                .unwrap()
                .materialization()
                .total_size(),
            idle_alloc,
            "the idle tenant's allocation must be untouched"
        );
    }

    /// The candidate cache is a pure optimization: a fleet driven through
    /// identical traffic must produce byte-identical rebalances with and
    /// without it — and the cached run must actually skip re-selections.
    #[test]
    fn fleet_candidate_cache_preserves_rebalance_output() {
        let bn_a = fixtures::chain(18, 2, 13);
        let bn_b = fixtures::chain(18, 2, 29);
        let tree_a = build_junction_tree(&bn_a).unwrap();
        let tree_b = build_junction_tree(&bn_b).unwrap();
        let build_fleet = || {
            let mut sharded = ShardedServingEngine::new(ShardConfig::default().with_workers(1));
            sharded
                .register(
                    TenantId(0),
                    QueryEngine::numeric(&tree_a, &bn_a).unwrap(),
                    Materialization::default(),
                )
                .unwrap();
            sharded
                .register(
                    TenantId(1),
                    QueryEngine::numeric(&tree_b, &bn_b).unwrap(),
                    Materialization::default(),
                )
                .unwrap();
            sharded
        };
        let cached_fleet = build_fleet();
        let plain_fleet = build_fleet();
        let cfg = |cache: bool| {
            FleetConfig::new(192)
                .with_min_window(32)
                .with_cache_candidates(cache)
        };
        let mut cached_ctl = FleetController::new(&cached_fleet, cfg(true));
        let mut plain_ctl = FleetController::new(&plain_fleet, cfg(false));

        // each phase serves whole multiples of the pool, so every window
        // observes the *same per-tenant distribution* at shifted volumes:
        // the share shift forces a rebalance, the distribution fingerprint
        // stays put, and the cached controller must skip both re-selections
        let pool = pair_queries(0, 18, 7);
        let serve = |fleet: &ShardedServingEngine<'_>, a_rounds: usize, b_rounds: usize| {
            let mut batch: Vec<(TenantId, ServeRequest)> = Vec::new();
            for _ in 0..a_rounds {
                batch.extend(pool.iter().map(|q| (TenantId(0), q.clone())));
            }
            for _ in 0..b_rounds {
                batch.extend(pool.iter().map(|q| (TenantId(1), q.clone())));
            }
            let (answers, _) = fleet.serve_mixed(&batch);
            assert!(answers.iter().all(ServeOutcome::is_served));
        };
        for (a_rounds, b_rounds) in [(4, 2), (2, 4)] {
            serve(&cached_fleet, a_rounds, b_rounds);
            serve(&plain_fleet, a_rounds, b_rounds);
            let with = cached_ctl.tick().unwrap().expect("rebalance").clone();
            let without = plain_ctl.tick().unwrap().expect("rebalance").clone();
            assert_eq!(with.at_arrivals, without.at_arrivals);
            assert_eq!(with.total_size, without.total_size);
            assert_eq!(with.allocations.len(), without.allocations.len());
            for (a, b) in with.allocations.iter().zip(&without.allocations) {
                assert_eq!(a.tenant, b.tenant);
                assert_eq!(a.share, b.share);
                assert_eq!(a.shortcuts, b.shortcuts, "same selected sets");
                assert_eq!(a.budget_used, b.budget_used);
                assert_eq!(a.expected_savings, b.expected_savings);
                assert_eq!(a.published, b.published);
            }
        }
        // the second rebalance re-used both tenants' cached pools…
        assert_eq!(cached_ctl.candidate_cache_hits(), 2);
        assert_eq!(plain_ctl.candidate_cache_hits(), 0);
        // …and the served artifacts are identical shortcut-for-shortcut
        for t in 0..2u32 {
            let a = cached_fleet.tenant(TenantId(t)).unwrap().materialization();
            let b = plain_fleet.tenant(TenantId(t)).unwrap().materialization();
            assert_eq!(fingerprint(&a), fingerprint(&b));
        }
    }

    /// Evidence-aware selection: identical logical traffic recorded
    /// through the per-query conditional path (joint `targets ∪ evidence`
    /// scopes) versus through an evidence session (scopes restricted to
    /// the targets, plus an explicit evidence-context histogram) trains
    /// the re-selection on *different* observed distributions — and the
    /// offline DP picks a different shortcut set.
    #[test]
    fn evidence_sessions_change_reselection() {
        let bn = fixtures::chain(20, 2, 13);
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig::default().with_workers(1),
        );
        let evidence = vec![(Var(19), 1u32)];
        let targets: Vec<Scope> = (0..10u32)
            .map(|a| Scope::from_indices(&[a, a + 5]))
            .collect();

        // (a) per-query conditional path: every arrival re-attaches the
        // evidence, so the recorded scope is the joint over the Steiner
        // tree reaching the evidence variable
        let conds: Vec<ServeRequest> = targets
            .iter()
            .map(|t| ServeRequest::new(t.clone(), evidence.clone()))
            .collect();
        for _ in 0..8 {
            let (answers, _) = serving.serve_batch(&conds);
            assert!(answers.iter().all(ServeOutcome::is_served));
        }
        assert!(serving.stats().snapshot().evidence_fraction() > 0.0);
        let joint_counts = serving.stats().scope_counts();
        let joint_w =
            Workload::from_weighted(joint_counts.iter().map(|(s, c)| (s.clone(), *c as f64)));
        serving.reset_stats();

        // (b) session path: the evidence is pinned once and the recorded
        // scopes are the bare targets under the restricted distribution
        let session = serving.open_session(evidence).unwrap();
        for _ in 0..8 {
            let (answers, _) = session.serve_batch(&targets);
            assert!(answers.iter().all(ServeOutcome::is_served));
        }
        drop(session);
        assert!(serving.stats().snapshot().evidence_fraction() > 0.0);
        let restricted_counts = serving.stats().scope_counts();
        let restricted_w = Workload::from_weighted(
            restricted_counts
                .iter()
                .map(|(s, c)| (s.clone(), *c as f64)),
        );

        assert_ne!(
            joint_counts, restricted_counts,
            "the two serving paths must observe different distributions"
        );

        // same budget, same engine, same DP — only the observed
        // distribution differs, and the chosen shortcut set moves with it
        let exec = serving.offline_exec(1);
        let mat_joint = reselect(
            serving.engine(),
            &joint_w,
            512,
            1.2,
            Variant::PeanutPlus,
            exec.as_ref(),
        )
        .unwrap();
        let mat_restricted = reselect(
            serving.engine(),
            &restricted_w,
            512,
            1.2,
            Variant::PeanutPlus,
            exec.as_ref(),
        )
        .unwrap();
        assert!(
            !mat_joint.is_empty() || !mat_restricted.is_empty(),
            "test premise: at least one distribution selects shortcuts"
        );
        assert_ne!(
            fingerprint(&mat_joint),
            fingerprint(&mat_restricted),
            "evidence-aware recording must change the selected shortcut set"
        );
    }

    /// A steady fleet (shares stable, no decay) must not rebalance again.
    #[test]
    fn fleet_holds_when_stable() {
        let bn = fixtures::chain(16, 2, 13);
        let tree = build_junction_tree(&bn).unwrap();
        let mut sharded = ShardedServingEngine::new(ShardConfig::default().with_workers(1));
        sharded
            .register(
                TenantId(0),
                QueryEngine::numeric(&tree, &bn).unwrap(),
                Materialization::default(),
            )
            .unwrap();
        let mut ctl = FleetController::new(&sharded, FleetConfig::new(512).with_min_window(32));
        let pool = pair_queries(0, 16, 6);
        let batch: Vec<(TenantId, ServeRequest)> =
            pool.iter().map(|q| (TenantId(0), q.clone())).collect();
        for _ in 0..4 {
            sharded.serve_mixed(&batch);
        }
        assert!(ctl.tick().unwrap().is_some(), "cold start rebalances");
        let epoch_after_first = sharded.tenant(TenantId(0)).unwrap().epoch();
        for _ in 0..8 {
            sharded.serve_mixed(&batch);
            let _ = ctl.tick().unwrap();
        }
        assert_eq!(
            sharded.tenant(TenantId(0)).unwrap().epoch(),
            epoch_after_first,
            "stable traffic must not republish"
        );
        assert_eq!(ctl.rebalances().len(), 1);
    }
}
