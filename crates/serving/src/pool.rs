//! The persistent worker pool: long-lived workers, parked between waves.
//!
//! The first serving tier spawned a fresh set of scoped threads per batch.
//! That is correct and simple, but a server draining *small hot batches* —
//! a few queries per wave, thousands of waves per second — pays the thread
//! spawn/join latency on every single wave. A [`WorkerPool`] moves that
//! cost to construction time:
//!
//! * `workers` OS threads are spawned **once** (per engine, or shared
//!   across the shards of a sharded engine) and live until the pool drops;
//! * between waves the workers are **parked** on a condvar — zero CPU,
//!   woken in microseconds instead of re-spawned in tens of them;
//! * a wave ([`run_wave`](WorkerPool::run_wave)) is a batch of independent
//!   index-identified tasks pushed onto a `Mutex<VecDeque>` work queue;
//!   workers claim task indices from the front wave work-stealing-style
//!   (an atomic cursor, no per-task queue nodes);
//! * each worker owns a [`Scratch`] that persists across tasks *and*
//!   waves, so steady-state serving performs no transient allocation —
//!   strictly better than the scoped design, whose scratches died with
//!   their threads at every batch boundary;
//! * a panicking task is **isolated**: the worker catches the unwind,
//!   replaces its scratch, and keeps serving; the panic is re-raised on
//!   the *submitting* thread once the wave completes, so the pool is never
//!   poisoned and subsequent waves are unaffected;
//! * dropping the pool signals shutdown and joins every worker.
//!
//! [`PoolStats`] exposes the telemetry the benches assert on: tasks run,
//! waves served, park/unpark counts, and the spawn amortization that is
//! the whole point (`workers` spawns total, vs `workers × waves` for the
//! scoped design).
//!
//! The pool also implements [`Executor`], so the
//! lifecycle controller's off-path re-materialization (LRDP fan-out +
//! numeric table builds) runs on the same parked workers instead of
//! spawning its own.
//!
//! # Caveat
//!
//! [`run_wave`](WorkerPool::run_wave) blocks the submitting thread until
//! the wave completes and must **not** be called from inside a pool task
//! (a 1-worker pool would deadlock waiting for itself). Serving tasks
//! never submit waves, and the lifecycle controllers submit only from
//! their own tick threads.

use peanut_core::exec::{Executor, ScopedExecutor, SequentialExecutor};
use peanut_core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use peanut_core::sync::thread::{self, JoinHandle};
use peanut_core::sync::{Arc, Condvar, Mutex, OnceLock};
use peanut_pgm::Scratch;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// How a batch fans its fresh work out across workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpawnMode {
    /// One persistent [`WorkerPool`] per engine, spawned lazily on the
    /// first multi-task batch and parked between waves (the default).
    #[default]
    Persistent,
    /// Scoped threads spawned per batch — the pre-pool design, kept as the
    /// spawn-latency baseline the benches measure against.
    Scoped,
}

/// A point-in-time snapshot of a pool's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned — once, at construction. This is the whole
    /// spawn bill; the scoped design pays `workers` per wave instead.
    pub workers: usize,
    /// Waves submitted via [`WorkerPool::run_wave`].
    pub waves: u64,
    /// Tasks executed across all waves.
    pub tasks: u64,
    /// Times a worker parked (blocked on the work condvar).
    pub parks: u64,
    /// Times a parked worker was woken.
    pub unparks: u64,
    /// Tasks that panicked (isolated; re-raised on the submitter).
    pub panics: u64,
}

impl PoolStats {
    /// Tasks served per thread spawn — the spawn-amortization figure. The
    /// scoped baseline is pinned at (roughly) `tasks / (waves × workers)`;
    /// a persistent pool's grows without bound as the engine stays up.
    pub fn tasks_per_spawn(&self) -> f64 {
        self.tasks as f64 / self.workers.max(1) as f64
    }
}

/// The lazily spawned pool slot shared by [`ServingEngine`] and
/// [`ShardedServingEngine`]: one place for the spawn-on-first-use,
/// warm-up, and offline-executor-selection rules, so the two engines
/// cannot drift apart.
///
/// [`ServingEngine`]: crate::engine::ServingEngine
/// [`ShardedServingEngine`]: crate::shard::ShardedServingEngine
#[derive(Default)]
pub(crate) struct PoolCell {
    cell: OnceLock<Arc<WorkerPool>>,
}

impl PoolCell {
    pub(crate) fn new() -> Self {
        PoolCell::default()
    }

    /// Installs an externally owned pool; fails if one is already set.
    pub(crate) fn set(&self, pool: Arc<WorkerPool>) -> Result<(), Arc<WorkerPool>> {
        self.cell.set(pool)
    }

    /// The pool, spawning `workers` threads on first use.
    pub(crate) fn get_or_spawn(&self, workers: usize) -> &Arc<WorkerPool> {
        self.cell.get_or_init(|| Arc::new(WorkerPool::new(workers)))
    }

    /// Telemetry, if the pool has been spawned.
    pub(crate) fn stats(&self) -> Option<PoolStats> {
        self.cell.get().map(|p| p.stats())
    }

    /// Whether batches fan out onto a persistent pool at all.
    pub(crate) fn fans_out(spawn: SpawnMode, workers: usize) -> bool {
        spawn == SpawnMode::Persistent && workers > 1
    }

    /// Pre-spawns the pool so the first fanned-out batch does not pay
    /// thread-spawn latency in-band. A no-op when batches never fan out.
    pub(crate) fn warm(&self, spawn: SpawnMode, workers: usize) {
        if Self::fans_out(spawn, workers) {
            self.get_or_spawn(workers);
        }
    }

    /// Executor for off-path offline work (lifecycle/fleet re-selection):
    /// the persistent pool when batches fan out, a scoped `threads`-wide
    /// fan-out otherwise (sequential when 1).
    pub(crate) fn offline_exec(
        &self,
        spawn: SpawnMode,
        workers: usize,
        threads: usize,
    ) -> Box<dyn Executor + '_> {
        if Self::fans_out(spawn, workers) {
            Box::new(self.get_or_spawn(workers).as_ref())
        } else if threads > 1 {
            Box::new(ScopedExecutor::new(threads))
        } else {
            Box::new(SequentialExecutor)
        }
    }
}

/// Lifetime-erased pointer to a wave's task closure. A raw pointer (not a
/// transmuted `&'static`) because the `Wave` can stay reachable — front of
/// the queue, or in a worker's `Arc` clone — after `run_wave` returns and
/// the closure is destroyed; a retained reference would then be dangling,
/// a retained raw pointer is merely unused.
struct TaskPtr(*const (dyn Fn(usize, &mut Scratch) + Sync));

// SAFETY: the pointee is `Sync` (callable from many threads through a
// shared reference), and `run_wave` guarantees it stays alive for every
// dereference (see `Wave::task`).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One submitted wave: an erased task closure plus claim/completion state.
struct Wave {
    /// The task body. SAFETY: only dereferenced for claimed indices
    /// `< total`, and `run_wave` does not return before every claimed
    /// index has completed — so the pointee outlives every dereference.
    task: TaskPtr,
    total: usize,
    next: AtomicUsize,
    done: Mutex<usize>,
    complete: Condvar,
    panics: AtomicUsize,
    first_panic: Mutex<Option<Box<dyn Any + Send>>>,
}

struct Queue {
    waves: VecDeque<Arc<Wave>>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    work_ready: Condvar,
    waves: AtomicU64,
    tasks: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
    panics: AtomicU64,
}

/// A fixed-size pool of persistent, parked worker threads. See the module
/// docs for the design.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` (clamped to ≥ 1) threads, immediately parked.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                waves: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            waves: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("peanut-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // lint:allow(hot_panic) — construction-time only; a
                    // failed OS spawn leaves no pool to serve with.
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
            workers,
        }
    }

    /// The number of persistent workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        // ordering: all five are independent telemetry counters; the
        // snapshot is advisory (benches and tests assert window-scale
        // totals after joins), so Relaxed loads suffice.
        PoolStats {
            workers: self.workers,
            waves: self.shared.waves.load(Ordering::Relaxed),
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
            unparks: self.shared.unparks.load(Ordering::Relaxed),
            panics: self.shared.panics.load(Ordering::Relaxed),
        }
    }

    /// Runs `task(i, scratch)` for every `i in 0..total` on the pool's
    /// workers and blocks until all of them have completed. Each worker
    /// passes its own long-lived [`Scratch`]. Concurrent waves (from other
    /// threads) queue FIFO.
    ///
    /// If any task panicked, the first panic payload is re-raised here —
    /// on the submitting thread — *after* the wave has fully completed;
    /// the workers themselves survive and keep serving later waves.
    ///
    /// Must not be called from inside a pool task (see the module docs).
    pub fn run_wave(&self, total: usize, task: &(dyn Fn(usize, &mut Scratch) + Sync)) {
        if total == 0 {
            return;
        }
        // Lifetime erasure with both sides of the cast spelled out, so the
        // only thing this transmute can do is extend the trait object's
        // lifetime bound (`&'a dyn` and `*const dyn + 'static` share the
        // same fat-pointer layout; rustc rejects a plain `as` cast here
        // precisely because it refuses to extend trait-object lifetimes).
        // The invariant that makes the erased `'a` sound — every
        // dereference happens before `run_wave` returns — is stated at
        // `Wave::task` and discharged by the completion wait below.
        //
        // SAFETY: reference-to-pointer of the identical pointee type;
        // only the lifetime bound changes, and `Wave::task` keeps every
        // dereference inside `'a`.
        let task = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, &mut Scratch) + Sync),
                *const (dyn Fn(usize, &mut Scratch) + Sync + 'static),
            >(task)
        };
        let wave = Arc::new(Wave {
            task: TaskPtr(task),
            total,
            next: AtomicUsize::new(0),
            done: Mutex::new(0),
            complete: Condvar::new(),
            panics: AtomicUsize::new(0),
            first_panic: Mutex::new(None),
        });
        // Seeded concurrency mutation (see the feature docs in
        // Cargo.toml): notifying *before* the enqueue lets a parked worker
        // wake, re-check a still-empty queue and re-park, after which the
        // push below is never signalled — the lost wakeup the model
        // checker's mutation test must catch as a deadlock.
        #[cfg(feature = "mutation-lost-wakeup")]
        self.shared.work_ready.notify_all();
        {
            let mut q = self.shared.queue.lock();
            q.waves.push_back(Arc::clone(&wave));
        }
        #[cfg(not(feature = "mutation-lost-wakeup"))]
        self.shared.work_ready.notify_all();
        // ordering: telemetry counter, read only by `stats()` snapshots.
        self.shared.waves.fetch_add(1, Ordering::Relaxed);

        let mut done = wave.done.lock();
        while *done < total {
            done = wave.complete.wait(done);
        }
        drop(done);
        // ordering: the `done` mutex above synchronizes the wave's
        // completion; this flag only routes control flow afterwards.
        if wave.panics.load(Ordering::Relaxed) > 0 {
            let payload = wave
                .first_panic
                .lock()
                .take()
                .unwrap_or_else(|| Box::new("pool task panicked"));
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.lock().drain(..) {
            // lint:allow(hot_panic) — shutdown only, and unreachable: the
            // worker loop confines task panics with `catch_unwind`.
            h.join().expect("pool worker joined");
        }
    }
}

/// The serving pool doubles as the offline phase's executor, so a
/// lifecycle re-materialization (LRDP roots, numeric table builds) reuses
/// the already-parked serving workers.
impl Executor for WorkerPool {
    fn run_tasks(&self, total: usize, task: &(dyn Fn(usize) + Sync)) {
        self.run_wave(total, &|i, _scratch| task(i));
    }
}

fn worker_loop(shared: &Shared) {
    let mut scratch = Scratch::new();
    loop {
        // take (a handle on) the front wave, or park until one arrives
        let wave = {
            let mut q = shared.queue.lock();
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(w) = q.waves.front() {
                    break Arc::clone(w);
                }
                // ordering: park/unpark are telemetry counters guarded by
                // the queue mutex anyway; Relaxed is plenty.
                shared.parks.fetch_add(1, Ordering::Relaxed);
                q = shared.work_ready.wait(q);
                shared.unparks.fetch_add(1, Ordering::Relaxed);
            }
        };

        // claim and run tasks until the wave is exhausted
        loop {
            // ordering: pure work-claiming counter — uniqueness of the
            // handed-out index is all that matters; the task's results are
            // published through the `done` mutex, not through this atomic.
            let i = wave.next.fetch_add(1, Ordering::Relaxed);
            if i >= wave.total {
                break;
            }
            // ordering: telemetry counter, read only by `stats()`.
            shared.tasks.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `i < total`, so the submitting `run_wave` has not
            // observed `done == total` yet and the pointee is still alive.
            let task = unsafe { &*wave.task.0 };
            if catch_unwind(AssertUnwindSafe(|| task(i, &mut scratch)))
                .map_err(|payload| {
                    // ordering: both flags are re-read only after the wave
                    // completes (synchronized by the `done` mutex below).
                    wave.panics.fetch_add(1, Ordering::Relaxed);
                    shared.panics.fetch_add(1, Ordering::Relaxed);
                    let mut first = wave.first_panic.lock();
                    first.get_or_insert(payload);
                })
                .is_err()
            {
                // the scratch may hold a half-recycled buffer from the
                // unwound task; replace it rather than reason about it
                scratch = Scratch::new();
            }
            let mut done = wave.done.lock();
            *done += 1;
            if *done == wave.total {
                wave.complete.notify_all();
            }
        }

        // the wave is exhausted: pop it so later waves reach the front
        // (first exhausted-finder wins; ptr_eq keeps a racing pop from
        // removing a *newer* wave)
        let mut q = shared.queue.lock();
        if q.waves.front().is_some_and(|w| Arc::ptr_eq(w, &wave)) {
            q.waves.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_core::sync::atomic::AtomicUsize;

    #[test]
    fn wave_runs_every_task_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run_wave(hits.len(), &|i, _s| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let stats = pool.stats();
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.waves, 1);
        assert_eq!(stats.tasks, 64);
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn workers_park_between_waves() {
        let pool = WorkerPool::new(2);
        for _ in 0..5 {
            pool.run_wave(8, &|_i, _s| {});
        }
        let stats = pool.stats();
        assert_eq!(stats.waves, 5);
        assert_eq!(stats.tasks, 40);
        assert!(
            stats.parks >= stats.waves,
            "workers must park between waves: {stats:?}"
        );
        assert_eq!(stats.tasks_per_spawn(), 20.0);
    }

    #[test]
    fn panicking_task_does_not_poison_the_pool() {
        let pool = WorkerPool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run_wave(8, &|i, _s| {
                if i == 3 {
                    panic!("task 3 exploded");
                }
            });
        }));
        assert!(err.is_err(), "the submitter must see the panic");
        assert_eq!(pool.stats().panics, 1);
        // the pool keeps serving: all workers survived the unwind
        let hits = AtomicUsize::new(0);
        pool.run_wave(16, &|_i, _s| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(4);
        pool.run_wave(4, &|_i, _s| {});
        let alive = Arc::downgrade(&pool.shared);
        drop(pool);
        // every worker held an Arc<Shared>; none left ⇒ all joined
        assert!(
            alive.upgrade().is_none(),
            "drop must join every worker thread"
        );
    }

    #[test]
    fn concurrent_waves_from_many_threads() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        pool.run_wave(7, &|_i, _s| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 10 * 7);
        assert_eq!(pool.stats().tasks, 4 * 10 * 7);
    }

    #[test]
    fn executor_impl_covers_every_index() {
        let pool = WorkerPool::new(2);
        let out = Mutex::new(Vec::new());
        Executor::run_tasks(&pool, 19, &|i| out.lock().push(i));
        let mut v = out.into_inner();
        v.sort_unstable();
        assert_eq!(v, (0..19).collect::<Vec<_>>());
    }

    #[test]
    fn empty_wave_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.run_wave(0, &|_i, _s| unreachable!("no tasks"));
        assert_eq!(pool.stats().waves, 0);
    }
}
