//! The persistent worker pool: long-lived workers, parked between waves,
//! draining a three-lane priority queue.
//!
//! The first serving tier spawned a fresh set of scoped threads per batch.
//! That is correct and simple, but a server draining *small hot batches* —
//! a few queries per wave, thousands of waves per second — pays the thread
//! spawn/join latency on every single wave. A [`WorkerPool`] moves that
//! cost to construction time:
//!
//! * `workers` OS threads are spawned **once** (per engine, or shared
//!   across the shards of a sharded engine) and live until the pool drops;
//! * between waves the workers are **parked** on a condvar — zero CPU,
//!   woken in microseconds instead of re-spawned in tens of them;
//! * a wave is a batch of independent index-identified tasks pushed onto
//!   one of three [`Lane`]s; workers claim task indices from the front
//!   wave of the highest-priority non-empty lane work-stealing-style
//!   (an atomic cursor, no per-task queue nodes);
//! * each worker owns a [`Scratch`] that persists across tasks *and*
//!   waves, so steady-state serving performs no transient allocation;
//! * a panicking task is **isolated**: the worker catches the unwind,
//!   replaces its scratch, and keeps serving; the panic is re-raised on
//!   the thread that waits for the wave, so the pool is never poisoned
//!   and subsequent waves are unaffected;
//! * dropping the pool signals shutdown, **drains every queued wave**
//!   (so detached [`WaveHandle`]s still complete) and joins every worker.
//!
//! # Priority lanes
//!
//! The queue used to be strict FIFO, which let an off-path
//! re-materialization wave head-of-line block every serving wave behind
//! it. Waves now carry a [`Lane`]:
//!
//! * [`Lane::Serving`] — query traffic; always served first;
//! * [`Lane::Remat`] — the lifecycle controllers' off-path re-selection
//!   fan-outs (the pool's [`Executor`] impl routes here);
//! * [`Lane::Background`] — maintenance work nothing waits on.
//!
//! Priority is strict *between* lanes and FIFO *within* a lane, enforced
//! at **task granularity**: a worker draining a lower-priority wave
//! re-checks an advisory lane-occupancy mask between tasks and yields to
//! fresher higher-priority work, so a queued serving wave waits for at
//! most one in-flight lower-lane task per worker — never for a whole
//! re-selection wave. Lower lanes can be starved by a saturated serving
//! lane; that is the intended overload behavior (shed background work,
//! never queries).
//!
//! # Submission modes
//!
//! [`run_wave`](WorkerPool::run_wave) /
//! [`run_wave_on`](WorkerPool::run_wave_on) block the submitting thread
//! until the wave completes — the borrowed-closure path serving batches
//! use. [`submit_batch`](WorkerPool::submit_batch) is the non-blocking
//! front-end: it enqueues an *owned* task closure and returns a
//! [`WaveHandle`] the submitter can [`wait`](WaveHandle::wait) on later
//! (or drop, detaching the wave — it still runs). The blocking paths must
//! **not** be called from inside a pool task (a 1-worker pool would
//! deadlock waiting for itself); `submit_batch` itself is safe anywhere,
//! only waiting on the handle from inside a task is not.
//!
//! [`PoolStats`] exposes the telemetry the benches assert on: tasks run,
//! waves served (total and per lane), park/unpark counts, and the spawn
//! amortization that is the whole point. [`PoolStats::delta_since`]
//! isolates one measurement window from pool-lifetime totals.

use peanut_core::exec::{Executor, ScopedExecutor, SequentialExecutor};
use peanut_core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use peanut_core::sync::thread::{self, JoinHandle};
use peanut_core::sync::{Arc, Condvar, Mutex, OnceLock};
use peanut_pgm::Scratch;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// How a batch fans its fresh work out across workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpawnMode {
    /// One persistent [`WorkerPool`] per engine, spawned lazily on the
    /// first multi-task batch and parked between waves (the default).
    #[default]
    Persistent,
    /// Scoped threads spawned per batch — the pre-pool design, kept as the
    /// spawn-latency baseline the benches measure against.
    Scoped,
}

/// Priority lane of a submitted wave. Order is priority: lower-indexed
/// lanes are always drained first, and workers yield mid-wave (between
/// tasks) to strictly higher lanes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Query traffic — the latency-sensitive lane, always served first.
    #[default]
    Serving,
    /// Off-path re-materialization (lifecycle/fleet re-selection fan-out).
    Remat,
    /// Maintenance work nothing waits on; starved under overload.
    Background,
}

impl Lane {
    /// Number of lanes.
    pub const COUNT: usize = 3;

    /// Every lane, highest priority first.
    pub const ALL: [Lane; Lane::COUNT] = [Lane::Serving, Lane::Remat, Lane::Background];

    /// Queue index; `0` is the highest priority.
    pub const fn index(self) -> usize {
        match self {
            Lane::Serving => 0,
            Lane::Remat => 1,
            Lane::Background => 2,
        }
    }
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lane::Serving => write!(f, "serving"),
            Lane::Remat => write!(f, "remat"),
            Lane::Background => write!(f, "background"),
        }
    }
}

/// A point-in-time snapshot of a pool's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned — once, at construction. This is the whole
    /// spawn bill; the scoped design pays `workers` per wave instead.
    pub workers: usize,
    /// Waves submitted, all lanes.
    pub waves: u64,
    /// Waves submitted per [`Lane`] (indexed by [`Lane::index`]).
    pub lane_waves: [u64; Lane::COUNT],
    /// Tasks executed across all waves.
    pub tasks: u64,
    /// Times a worker parked (blocked on the work condvar).
    pub parks: u64,
    /// Times a parked worker was woken.
    pub unparks: u64,
    /// Tasks that panicked (isolated; re-raised on the waiter).
    pub panics: u64,
}

impl PoolStats {
    /// Tasks served per thread spawn — the spawn-amortization figure. The
    /// scoped baseline is pinned at (roughly) `tasks / (waves × workers)`;
    /// a persistent pool's grows without bound as the engine stays up.
    pub fn tasks_per_spawn(&self) -> f64 {
        self.tasks as f64 / self.workers.max(1) as f64
    }

    /// The counter deltas accumulated since `earlier` (an older snapshot
    /// of the **same** pool): what happened in the window between the two
    /// snapshots. Replay reports use this so a steady-state measurement
    /// is not conflated with warmup (or with every replay that ran before
    /// it on the same engine) — the counters themselves are
    /// pool-lifetime totals.
    pub fn delta_since(&self, earlier: &PoolStats) -> PoolStats {
        let mut lane_waves = [0u64; Lane::COUNT];
        for (d, (now, was)) in lane_waves
            .iter_mut()
            .zip(self.lane_waves.iter().zip(earlier.lane_waves.iter()))
        {
            *d = now.saturating_sub(*was);
        }
        PoolStats {
            workers: self.workers,
            waves: self.waves.saturating_sub(earlier.waves),
            lane_waves,
            tasks: self.tasks.saturating_sub(earlier.tasks),
            parks: self.parks.saturating_sub(earlier.parks),
            unparks: self.unparks.saturating_sub(earlier.unparks),
            panics: self.panics.saturating_sub(earlier.panics),
        }
    }
}

/// The lazily spawned pool slot shared by [`ServingEngine`] and
/// [`ShardedServingEngine`]: one place for the spawn-on-first-use,
/// warm-up, and offline-executor-selection rules, so the two engines
/// cannot drift apart.
///
/// [`ServingEngine`]: crate::engine::ServingEngine
/// [`ShardedServingEngine`]: crate::shard::ShardedServingEngine
#[derive(Default)]
pub(crate) struct PoolCell {
    cell: OnceLock<Arc<WorkerPool>>,
}

impl PoolCell {
    pub(crate) fn new() -> Self {
        PoolCell::default()
    }

    /// Installs an externally owned pool; fails if one is already set.
    pub(crate) fn set(&self, pool: Arc<WorkerPool>) -> Result<(), Arc<WorkerPool>> {
        self.cell.set(pool)
    }

    /// The pool, spawning `workers` threads on first use.
    pub(crate) fn get_or_spawn(&self, workers: usize) -> &Arc<WorkerPool> {
        self.cell.get_or_init(|| Arc::new(WorkerPool::new(workers)))
    }

    /// Telemetry, if the pool has been spawned.
    pub(crate) fn stats(&self) -> Option<PoolStats> {
        self.cell.get().map(|p| p.stats())
    }

    /// Whether batches fan out onto a persistent pool at all.
    pub(crate) fn fans_out(spawn: SpawnMode, workers: usize) -> bool {
        spawn == SpawnMode::Persistent && workers > 1
    }

    /// Pre-spawns the pool so the first fanned-out batch does not pay
    /// thread-spawn latency in-band. A no-op when batches never fan out.
    pub(crate) fn warm(&self, spawn: SpawnMode, workers: usize) {
        if Self::fans_out(spawn, workers) {
            self.get_or_spawn(workers);
        }
    }

    /// Executor for off-path offline work (lifecycle/fleet re-selection):
    /// the persistent pool's [`Lane::Remat`] when batches fan out — so a
    /// re-selection wave can never head-of-line block serving waves — a
    /// scoped `threads`-wide fan-out otherwise (sequential when 1).
    pub(crate) fn offline_exec(
        &self,
        spawn: SpawnMode,
        workers: usize,
        threads: usize,
    ) -> Box<dyn Executor + '_> {
        if Self::fans_out(spawn, workers) {
            Box::new(self.get_or_spawn(workers).lane_executor(Lane::Remat))
        } else if threads > 1 {
            Box::new(ScopedExecutor::new(threads))
        } else {
            Box::new(SequentialExecutor)
        }
    }
}

/// Lifetime-erased pointer to a wave's task closure. A raw pointer (not a
/// transmuted `&'static`) because the `Wave` can stay reachable — front of
/// the queue, or in a worker's `Arc` clone — after `run_wave` returns and
/// the closure is destroyed; a retained reference would then be dangling,
/// a retained raw pointer is merely unused.
struct TaskPtr(*const (dyn Fn(usize, &mut Scratch) + Sync));

// SAFETY: the pointee is `Sync` (callable from many threads through a
// shared reference), and `run_wave_on` guarantees it stays alive for every
// dereference (see `WaveTask::Borrowed`).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// An owned, heap-allocated wave body (`submit_batch` submissions).
type OwnedTask = Box<dyn Fn(usize, &mut Scratch) + Send + Sync>;

/// How a wave carries its task body.
enum WaveTask {
    /// `run_wave`/`run_wave_on`: the closure is borrowed from the
    /// submitting thread's stack. SAFETY: only dereferenced for claimed
    /// indices `< total`, and the blocking submitter does not return
    /// before every claimed index has completed — so the pointee outlives
    /// every dereference.
    Borrowed(TaskPtr),
    /// `submit_batch`: the wave owns its closure, so the submitter is free
    /// to return (or drop the handle) while the wave is still queued.
    Owned(OwnedTask),
}

impl WaveTask {
    fn call(&self, i: usize, scratch: &mut Scratch) {
        match self {
            // SAFETY: `i` was claimed (`< total`), so the blocking
            // submitter is still inside `run_wave_on` waiting on the
            // completion condvar and the pointee is still alive.
            WaveTask::Borrowed(p) => unsafe { (*p.0)(i, scratch) },
            WaveTask::Owned(f) => f(i, scratch),
        }
    }
}

/// One submitted wave: a task closure plus claim/completion state.
struct Wave {
    task: WaveTask,
    lane: Lane,
    total: usize,
    next: AtomicUsize,
    done: Mutex<usize>,
    complete: Condvar,
    panics: AtomicUsize,
    first_panic: Mutex<Option<Box<dyn Any + Send>>>,
}

struct Queue {
    /// One FIFO per lane, indexed by [`Lane::index`] (0 = highest
    /// priority).
    lanes: [VecDeque<Arc<Wave>>; Lane::COUNT],
    shutdown: bool,
}

impl Queue {
    /// The front wave of the highest-priority non-empty lane.
    fn front(&self) -> Option<&Arc<Wave>> {
        self.lanes.iter().find_map(|l| l.front())
    }
}

struct Shared {
    queue: Mutex<Queue>,
    work_ready: Condvar,
    /// Advisory bitmask of non-empty lanes (bit = [`Lane::index`]),
    /// mutated only under the queue mutex. Workers read it lock-free
    /// between tasks to decide whether to yield a lower-priority wave; a
    /// stale read merely delays that yield by one task.
    nonempty: AtomicUsize,
    waves: AtomicU64,
    lane_waves: [AtomicU64; Lane::COUNT],
    tasks: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
    panics: AtomicU64,
}

impl Shared {
    /// Whether a lane strictly higher-priority than `lane` has queued
    /// work. Always false for the top lane.
    fn higher_ready(&self, lane: Lane) -> bool {
        // ordering: advisory preemption hint only — the authoritative
        // queue state is re-read under the mutex when the worker actually
        // re-selects; a stale read delays the yield by at most one task.
        self.nonempty.load(Ordering::Relaxed) & ((1 << lane.index()) - 1) != 0
    }
}

/// A completion handle on a wave submitted via
/// [`WorkerPool::submit_batch`].
///
/// [`wait`](Self::wait) blocks until every task of the wave has completed
/// and re-raises the first task panic, exactly like the blocking
/// [`run_wave`](WorkerPool::run_wave) path. Dropping the handle without
/// waiting *detaches* the wave: it still runs to completion (the pool
/// drains all queued waves before shutting down), panics are still
/// counted in [`PoolStats::panics`], but their payloads are discarded
/// with the wave.
///
/// Must not be waited on from inside a pool task running on the same
/// pool (self-deadlock on a saturated pool); submitting is safe anywhere.
pub struct WaveHandle {
    wave: Arc<Wave>,
}

impl WaveHandle {
    /// Blocks until the wave has fully completed, then re-raises the
    /// first task panic (if any) on this thread.
    pub fn wait(self) {
        wait_wave(&self.wave);
    }

    /// Whether every task of the wave has completed (non-blocking).
    pub fn is_complete(&self) -> bool {
        *self.wave.done.lock() >= self.wave.total
    }

    /// The lane the wave was submitted on.
    pub fn lane(&self) -> Lane {
        self.wave.lane
    }

    /// The number of tasks in the wave.
    pub fn total(&self) -> usize {
        self.wave.total
    }
}

/// Blocks until `wave` completes, then re-raises its first panic.
fn wait_wave(wave: &Wave) {
    let mut done = wave.done.lock();
    while *done < wave.total {
        done = wave.complete.wait(done);
    }
    drop(done);
    // ordering: the `done` mutex above synchronizes the wave's
    // completion; this flag only routes control flow afterwards.
    if wave.panics.load(Ordering::Relaxed) > 0 {
        let payload = wave
            .first_panic
            .lock()
            .take()
            .unwrap_or_else(|| Box::new("pool task panicked"));
        resume_unwind(payload);
    }
}

/// A fixed-size pool of persistent, parked worker threads. See the module
/// docs for the design.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` (clamped to ≥ 1) threads, immediately parked.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            nonempty: AtomicUsize::new(0),
            waves: AtomicU64::new(0),
            lane_waves: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            tasks: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("peanut-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // lint:allow(hot_panic) — construction-time only; a
                    // failed OS spawn leaves no pool to serve with.
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
            workers,
        }
    }

    /// The number of persistent workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        // ordering: every counter load below is independent telemetry;
        // the snapshot is advisory (benches and tests assert window-scale
        // totals after joins), so Relaxed suffices throughout.
        let mut lane_waves = [0u64; Lane::COUNT];
        for (out, ctr) in lane_waves.iter_mut().zip(self.shared.lane_waves.iter()) {
            *out = ctr.load(Ordering::Relaxed);
        }
        PoolStats {
            workers: self.workers,
            waves: self.shared.waves.load(Ordering::Relaxed),
            lane_waves,
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
            unparks: self.shared.unparks.load(Ordering::Relaxed),
            panics: self.shared.panics.load(Ordering::Relaxed),
        }
    }

    /// Pushes a wave onto its lane and wakes the workers.
    fn enqueue(&self, wave: &Arc<Wave>) {
        // Seeded concurrency mutation (see the feature docs in
        // Cargo.toml): notifying *before* the enqueue lets a parked worker
        // wake, re-check a still-empty queue and re-park, after which the
        // push below is never signalled — the lost wakeup the model
        // checker's mutation test must catch as a deadlock.
        #[cfg(feature = "mutation-lost-wakeup")]
        self.shared.work_ready.notify_all();
        {
            let mut q = self.shared.queue.lock();
            q.lanes[wave.lane.index()].push_back(Arc::clone(wave));
            // ordering: advisory lane-occupancy hint, mutated under the
            // queue mutex it mirrors; see `Shared::nonempty`.
            self.shared
                .nonempty
                .fetch_or(1 << wave.lane.index(), Ordering::Relaxed);
        }
        #[cfg(not(feature = "mutation-lost-wakeup"))]
        self.shared.work_ready.notify_all();
        // ordering: telemetry counters, read only by `stats()` snapshots
        // — both fetch_adds below.
        self.shared.waves.fetch_add(1, Ordering::Relaxed);
        self.shared.lane_waves[wave.lane.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Runs `task(i, scratch)` for every `i in 0..total` on the pool's
    /// workers, on [`Lane::Serving`], and blocks until all of them have
    /// completed. Each worker passes its own long-lived [`Scratch`].
    /// Concurrent waves (from other threads) queue FIFO within the lane.
    ///
    /// If any task panicked, the first panic payload is re-raised here —
    /// on the submitting thread — *after* the wave has fully completed;
    /// the workers themselves survive and keep serving later waves.
    ///
    /// Must not be called from inside a pool task (see the module docs).
    pub fn run_wave(&self, total: usize, task: &(dyn Fn(usize, &mut Scratch) + Sync)) {
        self.run_wave_on(Lane::Serving, total, task);
    }

    /// Like [`run_wave`](Self::run_wave) on an explicit [`Lane`].
    pub fn run_wave_on(
        &self,
        lane: Lane,
        total: usize,
        task: &(dyn Fn(usize, &mut Scratch) + Sync),
    ) {
        if total == 0 {
            return;
        }
        // Lifetime erasure with both sides of the cast spelled out, so the
        // only thing this transmute can do is extend the trait object's
        // lifetime bound (`&'a dyn` and `*const dyn + 'static` share the
        // same fat-pointer layout; rustc rejects a plain `as` cast here
        // precisely because it refuses to extend trait-object lifetimes).
        // The invariant that makes the erased `'a` sound — every
        // dereference happens before this function returns — is stated at
        // `WaveTask::Borrowed` and discharged by the completion wait
        // below.
        //
        // SAFETY: reference-to-pointer of the identical pointee type;
        // only the lifetime bound changes, and `WaveTask::Borrowed` keeps
        // every dereference inside `'a`.
        let task = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, &mut Scratch) + Sync),
                *const (dyn Fn(usize, &mut Scratch) + Sync + 'static),
            >(task)
        };
        let wave = Arc::new(Wave {
            task: WaveTask::Borrowed(TaskPtr(task)),
            lane,
            total,
            next: AtomicUsize::new(0),
            done: Mutex::new(0),
            complete: Condvar::new(),
            panics: AtomicUsize::new(0),
            first_panic: Mutex::new(None),
        });
        self.enqueue(&wave);
        wait_wave(&wave);
    }

    /// Enqueues a wave of `total` owned tasks on `lane` and returns
    /// immediately with a [`WaveHandle`] — the non-blocking front-end.
    /// The closure is owned by the wave, so the submitter is free to move
    /// on (or drop the handle, detaching the wave) while workers drain
    /// it; [`WaveHandle::wait`] joins the completion and re-raises the
    /// first task panic.
    ///
    /// A `total` of zero returns an already-complete handle without
    /// touching the queue.
    pub fn submit_batch(
        &self,
        lane: Lane,
        total: usize,
        task: impl Fn(usize, &mut Scratch) + Send + Sync + 'static,
    ) -> WaveHandle {
        let wave = Arc::new(Wave {
            task: WaveTask::Owned(Box::new(task)),
            lane,
            total,
            next: AtomicUsize::new(0),
            done: Mutex::new(0),
            complete: Condvar::new(),
            panics: AtomicUsize::new(0),
            first_panic: Mutex::new(None),
        });
        if total > 0 {
            self.enqueue(&wave);
        }
        WaveHandle { wave }
    }

    /// An [`Executor`] view of this pool that fans `run_tasks` calls out
    /// on `lane` — how callers choose which lane off-path work rides.
    pub fn lane_executor(&self, lane: Lane) -> LaneExecutor<'_> {
        LaneExecutor { pool: self, lane }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.lock().drain(..) {
            // lint:allow(hot_panic) — shutdown only, and unreachable: the
            // worker loop confines task panics with `catch_unwind`.
            h.join().expect("pool worker joined");
        }
    }
}

/// The serving pool doubles as the offline phase's executor, so a
/// lifecycle re-materialization (LRDP roots, numeric table builds) reuses
/// the already-parked serving workers — on [`Lane::Remat`], where it can
/// never head-of-line block serving waves.
impl Executor for WorkerPool {
    fn run_tasks(&self, total: usize, task: &(dyn Fn(usize) + Sync)) {
        self.run_wave_on(Lane::Remat, total, &|i, _scratch| task(i));
    }
}

/// An [`Executor`] bound to one [`Lane`] of a [`WorkerPool`] (see
/// [`WorkerPool::lane_executor`]).
#[derive(Clone, Copy)]
pub struct LaneExecutor<'p> {
    pool: &'p WorkerPool,
    lane: Lane,
}

impl LaneExecutor<'_> {
    /// The lane `run_tasks` waves ride on.
    pub fn lane(&self) -> Lane {
        self.lane
    }
}

impl Executor for LaneExecutor<'_> {
    fn run_tasks(&self, total: usize, task: &(dyn Fn(usize) + Sync)) {
        self.pool
            .run_wave_on(self.lane, total, &|i, _scratch| task(i));
    }
}

fn worker_loop(shared: &Shared) {
    let mut scratch = Scratch::new();
    loop {
        // take (a handle on) the front wave of the highest-priority
        // non-empty lane, or park until one arrives. On shutdown, keep
        // draining until every lane is empty — queued (possibly detached)
        // waves must complete before the pool joins.
        let wave = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(w) = q.front() {
                    break Arc::clone(w);
                }
                if q.shutdown {
                    return;
                }
                // ordering: park/unpark are telemetry counters guarded by
                // the queue mutex anyway; Relaxed is plenty.
                shared.parks.fetch_add(1, Ordering::Relaxed);
                q = shared.work_ready.wait(q);
                shared.unparks.fetch_add(1, Ordering::Relaxed);
            }
        };

        // claim and run tasks until the wave is exhausted — or until a
        // strictly higher-priority lane has work, in which case leave the
        // wave queued and re-select from the top
        let mut preempted = false;
        loop {
            if shared.higher_ready(wave.lane) {
                preempted = true;
                break;
            }
            // ordering: pure work-claiming counter — uniqueness of the
            // handed-out index is all that matters; the task's results are
            // published through the `done` mutex, not through this atomic.
            let i = wave.next.fetch_add(1, Ordering::Relaxed);
            if i >= wave.total {
                break;
            }
            // ordering: telemetry counter, read only by `stats()`.
            shared.tasks.fetch_add(1, Ordering::Relaxed);
            if catch_unwind(AssertUnwindSafe(|| wave.task.call(i, &mut scratch)))
                .map_err(|payload| {
                    // ordering: both flags are re-read only after the wave
                    // completes (synchronized by the `done` mutex below).
                    wave.panics.fetch_add(1, Ordering::Relaxed);
                    shared.panics.fetch_add(1, Ordering::Relaxed);
                    let mut first = wave.first_panic.lock();
                    first.get_or_insert(payload);
                })
                .is_err()
            {
                // the scratch may hold a half-recycled buffer from the
                // unwound task; replace it rather than reason about it
                scratch = Scratch::new();
            }
            let mut done = wave.done.lock();
            *done += 1;
            if *done == wave.total {
                wave.complete.notify_all();
            }
        }
        if preempted {
            // the yielded wave stays at the front of its lane; this (or
            // another) worker returns to it once higher lanes drain
            continue;
        }

        // the wave is exhausted: pop it so later waves reach the front
        // (first exhausted-finder wins; ptr_eq keeps a racing pop from
        // removing a *newer* wave)
        let mut q = shared.queue.lock();
        let lane_q = &mut q.lanes[wave.lane.index()];
        if lane_q.front().is_some_and(|w| Arc::ptr_eq(w, &wave)) {
            lane_q.pop_front();
            if lane_q.is_empty() {
                // ordering: advisory lane-occupancy hint, mutated under
                // the queue mutex it mirrors; see `Shared::nonempty`.
                shared
                    .nonempty
                    .fetch_and(!(1 << wave.lane.index()), Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_core::sync::atomic::AtomicUsize;

    #[test]
    fn wave_runs_every_task_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run_wave(hits.len(), &|i, _s| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let stats = pool.stats();
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.waves, 1);
        assert_eq!(stats.lane_waves, [1, 0, 0]);
        assert_eq!(stats.tasks, 64);
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn workers_park_between_waves() {
        let pool = WorkerPool::new(2);
        for _ in 0..5 {
            pool.run_wave(8, &|_i, _s| {});
        }
        let stats = pool.stats();
        assert_eq!(stats.waves, 5);
        assert_eq!(stats.tasks, 40);
        assert!(
            stats.parks >= stats.waves,
            "workers must park between waves: {stats:?}"
        );
        assert_eq!(stats.tasks_per_spawn(), 20.0);
    }

    #[test]
    fn panicking_task_does_not_poison_the_pool() {
        let pool = WorkerPool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run_wave(8, &|i, _s| {
                if i == 3 {
                    panic!("task 3 exploded");
                }
            });
        }));
        assert!(err.is_err(), "the submitter must see the panic");
        assert_eq!(pool.stats().panics, 1);
        // the pool keeps serving: all workers survived the unwind
        let hits = AtomicUsize::new(0);
        pool.run_wave(16, &|_i, _s| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(4);
        pool.run_wave(4, &|_i, _s| {});
        let alive = Arc::downgrade(&pool.shared);
        drop(pool);
        // every worker held an Arc<Shared>; none left ⇒ all joined
        assert!(
            alive.upgrade().is_none(),
            "drop must join every worker thread"
        );
    }

    #[test]
    fn concurrent_waves_from_many_threads() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        pool.run_wave(7, &|_i, _s| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 10 * 7);
        assert_eq!(pool.stats().tasks, 4 * 10 * 7);
    }

    #[test]
    fn executor_impl_covers_every_index_on_the_remat_lane() {
        let pool = WorkerPool::new(2);
        let out = Mutex::new(Vec::new());
        Executor::run_tasks(&pool, 19, &|i| out.lock().push(i));
        let mut v = out.into_inner();
        v.sort_unstable();
        assert_eq!(v, (0..19).collect::<Vec<_>>());
        assert_eq!(pool.stats().lane_waves, [0, 1, 0]);
    }

    #[test]
    fn lane_executor_routes_to_its_lane() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.lane_executor(Lane::Background).run_tasks(5, &|_i| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5);
        assert_eq!(pool.stats().lane_waves, [0, 0, 1]);
    }

    #[test]
    fn empty_wave_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.run_wave(0, &|_i, _s| unreachable!("no tasks"));
        assert_eq!(pool.stats().waves, 0);
    }

    #[test]
    fn submit_batch_handle_waits_for_completion() {
        let pool = WorkerPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        let handle = pool.submit_batch(Lane::Background, 16, move |_i, _s| {
            h2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(handle.lane(), Lane::Background);
        assert_eq!(handle.total(), 16);
        handle.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 16);
        assert_eq!(pool.stats().lane_waves, [0, 0, 1]);
    }

    #[test]
    fn empty_submit_is_already_complete() {
        let pool = WorkerPool::new(1);
        let handle = pool.submit_batch(Lane::Serving, 0, |_i, _s| unreachable!("no tasks"));
        assert!(handle.is_complete());
        handle.wait();
        assert_eq!(pool.stats().waves, 0);
    }

    #[test]
    fn detached_waves_drain_before_drop_joins() {
        let pool = WorkerPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let h2 = Arc::clone(&hits);
            drop(pool.submit_batch(Lane::Background, 4, move |_i, _s| {
                h2.fetch_add(1, Ordering::Relaxed);
            }));
        }
        drop(pool); // graceful shutdown: queued waves must still run
        assert_eq!(hits.load(Ordering::Relaxed), 8 * 4);
    }

    #[test]
    fn handle_wait_reraises_task_panic() {
        let pool = WorkerPool::new(2);
        let handle = pool.submit_batch(Lane::Serving, 4, |i, _s| {
            if i == 2 {
                panic!("task 2 exploded");
            }
        });
        let err = catch_unwind(AssertUnwindSafe(|| handle.wait()));
        assert!(err.is_err(), "the waiter must see the panic");
        assert_eq!(pool.stats().panics, 1);
        // the pool survives, exactly like the blocking path
        pool.run_wave(4, &|_i, _s| {});
        assert_eq!(pool.stats().waves, 2);
    }

    #[test]
    fn serving_preempts_a_queued_background_backlog() {
        // one worker, wedged inside a background task: everything
        // submitted meanwhile lands queued. When the wedge lifts, the
        // serving wave must be drained before the queued background wave
        // even though it was submitted later.
        let pool = WorkerPool::new(1);
        let started = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicUsize::new(0));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (s2, r2, o2) = (
            Arc::clone(&started),
            Arc::clone(&release),
            Arc::clone(&order),
        );
        let wedge = pool.submit_batch(Lane::Background, 1, move |_i, _s| {
            s2.fetch_add(1, Ordering::Relaxed);
            while r2.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
            o2.lock().push("wedge");
        });
        while started.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        // the worker is inside the wedge; queue background then serving
        let o3 = Arc::clone(&order);
        let bg = pool.submit_batch(Lane::Background, 1, move |_i, _s| {
            o3.lock().push("background");
        });
        let o4 = Arc::clone(&order);
        let serving = pool.submit_batch(Lane::Serving, 1, move |_i, _s| {
            o4.lock().push("serving");
        });
        release.store(1, Ordering::Relaxed);
        serving.wait();
        bg.wait();
        wedge.wait();
        assert_eq!(
            *order.lock(),
            vec!["wedge", "serving", "background"],
            "the serving lane must jump ahead of the queued background wave"
        );
    }

    #[test]
    fn stats_delta_isolates_a_window() {
        let pool = WorkerPool::new(2);
        pool.run_wave(8, &|_i, _s| {});
        let warmup = pool.stats();
        pool.run_wave(8, &|_i, _s| {});
        pool.run_wave_on(Lane::Background, 3, &|_i, _s| {});
        let delta = pool.stats().delta_since(&warmup);
        assert_eq!(delta.workers, 2);
        assert_eq!(delta.waves, 2);
        assert_eq!(delta.tasks, 11);
        assert_eq!(delta.lane_waves, [1, 0, 1]);
        // saturating: a foreign (older-pool) snapshot never underflows
        let zero = pool.stats().delta_since(&pool.stats());
        assert_eq!(zero.waves, 0);
        assert_eq!(zero.tasks, 0);
    }
}
