//! The batched serving engine.
//!
//! A [`ServingEngine`] wraps one calibrated
//! [`QueryEngine`](peanut_junction::QueryEngine) plus one
//! [`Materialization`](peanut_core::Materialization) (both behind `Arc`, so
//! several engines — e.g. per traffic class — can share the same calibrated
//! tree) and answers *batches* of queries:
//!
//! 1. duplicate queries inside a batch are coalesced and computed once
//!    (workloads sample pools with replacement, so real batches repeat);
//! 2. the unique queries are claimed work-stealing-style by a pool of
//!    `workers` scoped threads;
//! 3. every worker owns a [`Scratch`], so all intermediate tables of a
//!    query are recycled into the next one.
//!
//! Answers come back in batch order together with per-query
//! [`QueryCost`] telemetry and service time.

use peanut_core::{Materialization, OnlineEngine};
use peanut_junction::cost::QueryCost;
use peanut_junction::QueryEngine;
use peanut_pgm::{PgmError, Potential, Scope, Scratch, Var};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One query as submitted by a client.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Query {
    /// `P(scope)`.
    Marginal(Scope),
    /// `P(targets | evidence)` (§3.1 joint→conditional reduction).
    Conditional {
        /// Target variables.
        targets: Scope,
        /// Evidence assignments (disjoint from the targets). Keep this
        /// sorted by variable — dedup and the answer cache compare queries
        /// structurally, so construct via [`Query::conditioned`] unless the
        /// list is already canonical.
        evidence: Vec<(Var, u32)>,
    },
}

impl Query {
    /// Builds a query from a target scope and an evidence list (empty
    /// evidence ⇒ marginal). Evidence is canonicalized (sorted by
    /// variable) so order-insensitive duplicates coalesce and hit the
    /// cache.
    pub fn conditioned(targets: Scope, mut evidence: Vec<(Var, u32)>) -> Self {
        if evidence.is_empty() {
            Query::Marginal(targets)
        } else {
            evidence.sort_unstable();
            Query::Conditional { targets, evidence }
        }
    }
}

/// A served answer: the distribution plus execution telemetry.
#[derive(Clone, Debug)]
pub struct Answer {
    /// `P(scope)` or `P(targets | evidence)`.
    pub potential: Potential,
    /// Operation-count telemetry of the (possibly shared) computation.
    pub cost: QueryCost,
    /// Time spent computing this answer — shared by in-batch duplicates of
    /// the same query (they wait on one computation), and zero when the
    /// answer came from the cross-batch cache.
    pub service_time: Duration,
}

/// Per-batch aggregate telemetry.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Queries submitted.
    pub queries: usize,
    /// Unique queries after in-batch coalescing.
    pub unique: usize,
    /// Unique queries served from the cross-batch answer cache.
    pub cache_hits: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Summed operation count over freshly computed queries.
    pub total_ops: u64,
    /// Summed shortcut uses over freshly computed queries.
    pub shortcuts_used: usize,
}

/// Serving knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServingConfig {
    /// Worker threads per batch; `0` means one per available core.
    pub workers: usize,
    /// Coalesce duplicate queries within a batch (on by default).
    pub dedup: bool,
    /// Capacity of the cross-batch answer cache (FIFO eviction); `0`
    /// disables caching. Workloads in the paper's model (Def. 3.3) are
    /// distributions over a finite query pool, so repeated queries dominate
    /// steady-state traffic.
    pub cache_capacity: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            workers: 0,
            dedup: true,
            cache_capacity: 4096,
        }
    }
}

/// Bounded FIFO map of fully computed answers. Values are `Arc`ed so cache
/// lookups under the lock are O(1) pointer clones; the table copy for the
/// caller happens outside the critical section.
#[derive(Default)]
struct AnswerCache {
    map: HashMap<Query, Arc<Answer>>,
    order: VecDeque<Query>,
}

impl AnswerCache {
    fn insert(&mut self, capacity: usize, q: Query, a: Arc<Answer>) {
        if capacity == 0 || self.map.contains_key(&q) {
            return;
        }
        while self.map.len() >= capacity {
            let Some(old) = self.order.pop_front() else { break };
            self.map.remove(&old);
        }
        self.order.push_back(q.clone());
        self.map.insert(q, a);
    }
}

/// Batched concurrent query processor over a calibrated, materialized tree.
pub struct ServingEngine<'t> {
    engine: Arc<QueryEngine<'t>>,
    mat: Arc<Materialization>,
    cfg: ServingConfig,
    cache: Mutex<AnswerCache>,
}

impl<'t> ServingEngine<'t> {
    /// Takes ownership of a (calibrated) query engine and a
    /// materialization.
    pub fn new(engine: QueryEngine<'t>, mat: Materialization, cfg: ServingConfig) -> Self {
        Self::from_shared(Arc::new(engine), Arc::new(mat), cfg)
    }

    /// Shares an already-`Arc`ed engine and materialization.
    pub fn from_shared(
        engine: Arc<QueryEngine<'t>>,
        mat: Arc<Materialization>,
        cfg: ServingConfig,
    ) -> Self {
        ServingEngine {
            engine,
            mat,
            cfg,
            cache: Mutex::new(AnswerCache::default()),
        }
    }

    /// The wrapped query engine.
    pub fn engine(&self) -> &QueryEngine<'t> {
        &self.engine
    }

    /// The wrapped materialization.
    pub fn materialization(&self) -> &Materialization {
        &self.mat
    }

    /// The worker count a batch will actually use (before capping by batch
    /// size).
    pub fn workers(&self) -> usize {
        if self.cfg.workers > 0 {
            self.cfg.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Answers a batch. Results come back in submission order; duplicate
    /// queries share one computation (and its telemetry) when deduping is
    /// on.
    pub fn serve_batch(&self, batch: &[Query]) -> (Vec<Result<Answer, PgmError>>, BatchStats) {
        let start = Instant::now();
        let mut stats = BatchStats {
            queries: batch.len(),
            ..BatchStats::default()
        };
        if batch.is_empty() {
            return (Vec::new(), stats);
        }

        // coalesce duplicates: assign[i] = index into `uniques`
        let (uniques, assign): (Vec<&Query>, Vec<usize>) = if self.cfg.dedup {
            let mut first_of: HashMap<&Query, usize> = HashMap::with_capacity(batch.len());
            let mut uniques = Vec::new();
            let assign = batch
                .iter()
                .map(|q| {
                    *first_of.entry(q).or_insert_with(|| {
                        uniques.push(q);
                        uniques.len() - 1
                    })
                })
                .collect();
            (uniques, assign)
        } else {
            (batch.iter().collect(), (0..batch.len()).collect())
        };
        stats.unique = uniques.len();

        let mut unique_results: Vec<Option<Result<Answer, PgmError>>> = Vec::new();
        unique_results.resize_with(uniques.len(), || None);

        // cross-batch cache: serve repeats from memory, compute the rest.
        // Only Arc clones happen under the lock; table copies are deferred.
        let mut work: Vec<usize> = Vec::with_capacity(uniques.len());
        let mut hits: Vec<(usize, Arc<Answer>)> = Vec::new();
        if self.cfg.cache_capacity > 0 {
            let cache = self.cache.lock().expect("cache lock");
            for (i, q) in uniques.iter().enumerate() {
                match cache.map.get(q) {
                    Some(hit) => hits.push((i, Arc::clone(hit))),
                    None => work.push(i),
                }
            }
        } else {
            work.extend(0..uniques.len());
        }
        stats.cache_hits = hits.len();
        for (i, hit) in hits {
            let mut a = (*hit).clone();
            a.service_time = Duration::ZERO;
            unique_results[i] = Some(Ok(a));
        }

        let n_workers = self.workers().min(work.len()).max(1);
        if work.len() <= 1 || n_workers == 1 {
            // in-thread fast path: no spawn overhead for small batches
            let online = OnlineEngine::new(&self.engine, &self.mat);
            let mut scratch = Scratch::new();
            for &i in &work {
                unique_results[i] = Some(answer_one(&online, uniques[i], &mut scratch));
            }
        } else {
            let next = AtomicUsize::new(0);
            let worker_outs: Vec<Vec<(usize, Result<Answer, PgmError>)>> =
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..n_workers)
                        .map(|_| {
                            s.spawn(|| {
                                let online = OnlineEngine::new(&self.engine, &self.mat);
                                let mut scratch = Scratch::new();
                                let mut out = Vec::new();
                                loop {
                                    let w = next.fetch_add(1, Ordering::Relaxed);
                                    if w >= work.len() {
                                        break;
                                    }
                                    let i = work[w];
                                    out.push((i, answer_one(&online, uniques[i], &mut scratch)));
                                }
                                out
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("serving worker panicked"))
                        .collect()
                });
            for (i, r) in worker_outs.into_iter().flatten() {
                unique_results[i] = Some(r);
            }
        }

        if self.cfg.cache_capacity > 0 && !work.is_empty() {
            // clone outside the lock, insert Arcs inside it
            let fresh: Vec<(Query, Arc<Answer>)> = work
                .iter()
                .filter_map(|&i| match &unique_results[i] {
                    Some(Ok(a)) => Some(((*uniques[i]).clone(), Arc::new(a.clone()))),
                    _ => None,
                })
                .collect();
            let mut cache = self.cache.lock().expect("cache lock");
            for (q, a) in fresh {
                cache.insert(self.cfg.cache_capacity, q, a);
            }
        }

        for &i in &work {
            if let Some(Ok(r)) = &unique_results[i] {
                stats.total_ops = stats.total_ops.saturating_add(r.cost.ops);
                stats.shortcuts_used += r.cost.shortcuts_used;
            }
        }
        // fan back out: move each unique result on its last use, clone only
        // for in-batch duplicates (no per-query table copy on the fast path)
        let mut uses: Vec<usize> = vec![0; uniques.len()];
        for &u in &assign {
            uses[u] += 1;
        }
        let answers = assign
            .into_iter()
            .map(|u| {
                uses[u] -= 1;
                if uses[u] == 0 {
                    unique_results[u].take().expect("all uniques computed")
                } else {
                    unique_results[u].clone().expect("all uniques computed")
                }
            })
            .collect();
        stats.wall = start.elapsed();
        (answers, stats)
    }
}

fn answer_one(
    online: &OnlineEngine<'_, '_>,
    q: &Query,
    scratch: &mut Scratch,
) -> Result<Answer, PgmError> {
    let t = Instant::now();
    let (potential, cost) = match q {
        Query::Marginal(scope) => online.answer_in(scope, scratch)?,
        Query::Conditional { targets, evidence } => {
            online.conditional_in(targets, evidence, scratch)?
        }
    };
    Ok(Answer {
        potential,
        cost,
        service_time: t.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_junction::build_junction_tree;
    use peanut_pgm::{fixtures, joint};

    fn queries(bn: &peanut_pgm::BayesianNetwork) -> Vec<Query> {
        let d = bn.domain();
        let n = d.len() as u32;
        let mut qs: Vec<Query> = (0..n)
            .flat_map(|a| {
                ((a + 1)..n.min(a + 3)).map(move |b| Query::Marginal(Scope::from_indices(&[a, b])))
            })
            .collect();
        qs.push(Query::Conditional {
            targets: Scope::from_indices(&[0]),
            evidence: vec![(Var(n - 1), 0)],
        });
        // force duplicates
        let dup = qs[0].clone();
        qs.push(dup);
        qs
    }

    #[test]
    fn batch_answers_match_sequential_engine() {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig {
                workers: 3,
                ..ServingConfig::default()
            },
        );
        let batch = queries(&bn);
        let (answers, stats) = serving.serve_batch(&batch);
        assert_eq!(answers.len(), batch.len());
        assert_eq!(stats.queries, batch.len());
        assert!(stats.unique < batch.len(), "duplicate must coalesce");
        for (q, a) in batch.iter().zip(&answers) {
            let a = a.as_ref().expect("served");
            match q {
                Query::Marginal(s) => {
                    let want = joint::marginal(&bn, s).unwrap();
                    assert!(a.potential.max_abs_diff(&want).unwrap() < 1e-9);
                }
                Query::Conditional { targets, .. } => {
                    assert_eq!(a.potential.scope(), targets);
                    assert!((a.potential.sum() - 1.0).abs() < 1e-9);
                }
            }
            assert!(a.cost.ops > 0);
        }
    }

    #[test]
    fn dedup_off_computes_every_query() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig {
                workers: 1,
                dedup: false,
                cache_capacity: 0,
            },
        );
        let q = Query::Marginal(Scope::from_indices(&[0, 3]));
        let batch = vec![q.clone(), q.clone(), q];
        let (answers, stats) = serving.serve_batch(&batch);
        assert_eq!(stats.unique, 3);
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn errors_are_reported_per_query() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving =
            ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
        let batch = vec![
            Query::Marginal(Scope::from_indices(&[0])),
            // overlapping targets/evidence is rejected per-query
            Query::Conditional {
                targets: Scope::from_indices(&[1]),
                evidence: vec![(Var(1), 0)],
            },
        ];
        let (answers, _) = serving.serve_batch(&batch);
        assert!(answers[0].is_ok());
        assert!(answers[1].is_err());
    }

    #[test]
    fn cache_serves_repeated_batches() {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving =
            ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
        let batch = queries(&bn);
        let (first, s1) = serving.serve_batch(&batch);
        assert_eq!(s1.cache_hits, 0);
        let (second, s2) = serving.serve_batch(&batch);
        assert_eq!(s2.cache_hits, s2.unique, "second pass fully cached");
        assert_eq!(s2.total_ops, 0, "cache hits charge no fresh ops");
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.potential.values(), b.potential.values());
        }
    }

    #[test]
    fn cache_eviction_respects_capacity() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig {
                cache_capacity: 2,
                ..ServingConfig::default()
            },
        );
        let qs: Vec<Query> = (0..4u32)
            .map(|i| Query::Marginal(Scope::from_indices(&[i])))
            .collect();
        serving.serve_batch(&qs);
        let cached = serving.cache.lock().unwrap().map.len();
        assert!(cached <= 2, "capacity bound violated: {cached}");
    }

    #[test]
    fn empty_batch_is_fine() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving =
            ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
        let (answers, stats) = serving.serve_batch(&[]);
        assert!(answers.is_empty());
        assert_eq!(stats.queries, 0);
    }
}
